//! Fills a [`nca_telemetry::report::RunReportDoc`] from an experiment:
//! the glue between the NIC model (this crate) and the generic report
//! schema (`nca-telemetry`). One [`strategy_report`] call turns a
//! [`ModeledRun`] plus its captured trace into the measured +
//! model-validated block `ncmt_cli --report-out` serializes.

use nca_telemetry::aggregate::{counter_total, gauge_series, merged_hist, rollup};
use nca_telemetry::flight;
use nca_telemetry::report::{
    FaultSummary, HistSummary, ModelValidation, ReportConfig, StrategyReport, UtilizationReport,
};
use nca_telemetry::{StreamAggregate, Time, TraceEvent};

use crate::runner::{Experiment, ModeledRun};

/// Default time-series bucket width for the report utilization block
/// (1 µs of simulated time per bucket).
pub const UTILIZATION_BUCKET_PS: Time = 1_000_000;

/// The workload/pipeline configuration block for `exp`.
pub fn report_config(exp: &Experiment) -> ReportConfig {
    let msg_bytes = exp.dt.size * exp.count as u64;
    ReportConfig {
        datatype: exp.dt.signature(),
        msg_bytes,
        npkt: msg_bytes.div_ceil(exp.params.payload_size).max(1),
        gamma: exp.gamma(),
        hpus: exp.params.hpus as u64,
        payload_size: exp.params.payload_size,
        epsilon: exp.epsilon,
        out_of_order: exp.out_of_order,
    }
}

/// Build the report entry for one strategy run from the events its
/// trace captured. `scope` selects this run's events when several
/// strategies share one ring (see [`nca_telemetry::Telemetry::scoped`]);
/// pass `""` for an unscoped capture.
pub fn strategy_report(
    exp: &Experiment,
    run: &ModeledRun,
    events: &[TraceEvent],
    scope: &str,
) -> StrategyReport {
    let evs: Vec<TraceEvent> = events
        .iter()
        .filter(|ev| ev.scope == scope)
        .cloned()
        .collect();
    let r = &run.report;
    let end_to_end = r.processing_time();

    let attribution = flight::attribute(&evs, r.t_first_byte, r.t_complete);

    let comps = rollup(&evs);
    let spin = comps.get("spin");
    let histograms = spin
        .map(|c| {
            c.hists
                .iter()
                .map(|(name, h)| (name.clone(), HistSummary::of(h)))
                .collect()
        })
        .unwrap_or_default();
    let hpu_busy_ps = spin
        .and_then(|c| c.spans.get("handler"))
        .map(|&(_, total)| total)
        .unwrap_or(0);
    let hpus = exp.params.hpus as u64;
    let hpu_utilization = if end_to_end > 0 {
        hpu_busy_ps as f64 / (hpus * end_to_end) as f64
    } else {
        0.0
    };

    // The gauge tracks footprint plus resident payload bytes, so its
    // maximum is the high-water mark; the run report carries the same
    // peak even when the trace was disabled or evicted.
    let nic_mem_hwm_bytes = gauge_series(&evs, "spin", "nic_mem_bytes")
        .iter()
        .map(|&(_, v)| v as u64)
        .max()
        .unwrap_or(0)
        .max(r.nic_mem_hwm_bytes);

    let model = run.plan.map(|plan| {
        let npkt = r.npkt.max(1);
        let sched_budget_ps =
            (exp.epsilon * npkt.div_ceil(hpus.max(1)) as f64 * run.t_ph_predicted as f64) as u64;
        let sched_overhead_ps = merged_hist(&evs, "spin", "queue_wait_ps")
            .and_then(|h| h.max())
            .unwrap_or(0);
        ModelValidation {
            delta_r: plan.delta_r,
            delta_p: plan.delta_p,
            num_checkpoints: plan.num_checkpoints,
            ckpt_nic_bytes: plan.nic_bytes,
            epsilon: exp.epsilon,
            planned_epsilon_violated: plan.epsilon_violated,
            t_ph_predicted_ps: run.t_ph_predicted,
            t_ph_measured_ps: r.mean_handler_time(),
            sched_budget_ps,
            sched_overhead_ps,
            epsilon_respected: !plan.epsilon_violated && sched_overhead_ps <= sched_budget_ps,
        }
    });

    let faults = fault_summary(run, &evs);

    // Utilization from the streaming reducers: fold this run's events
    // into a bounded aggregate (callers that streamed during the run
    // get the identical block — the fold is deterministic in event
    // order). The gauge peak can lag the pipeline's own counter when
    // the trace was evicted, so take the max of both views.
    let mut agg = StreamAggregate::new(UTILIZATION_BUCKET_PS);
    for ev in &evs {
        agg.fold(ev);
    }
    let mut utilization = UtilizationReport::from_aggregate(&agg, "spin", end_to_end, hpus);
    utilization.peak_queue_depth = utilization.peak_queue_depth.max(r.dma_max_queue as f64);

    let mut out = StrategyReport {
        name: r.strategy.to_string(),
        end_to_end_ps: end_to_end,
        host_setup_ps: r.host_setup_time,
        throughput_gbit: r.throughput_gbit(),
        nic_mem_bytes: r.nic_mem_bytes,
        nic_mem_hwm_bytes,
        dma_writes: r.dma_writes,
        dma_bytes: r.dma_bytes,
        dma_max_queue: r.dma_max_queue as u64,
        attribution: Vec::new(),
        hpu_busy_ps,
        hpu_utilization,
        histograms,
        utilization: Some(utilization),
        model,
        faults,
        eager_fallback: r.eager_fallback,
    };
    out.set_attribution(&attribution);
    out
}

/// The fault/reliability block for a run: the pipeline's
/// [`nca_spin::nic::ReliabilityStats`] plus the strategy-level recovery
/// counters the trace captured (checkpoint reverts, catch-up replays).
/// `None` for lossless runs — they carry no reliability state.
pub fn fault_summary(run: &ModeledRun, evs: &[TraceEvent]) -> Option<FaultSummary> {
    let rel = &run.report.rel;
    if rel.transmissions == 0 && !rel.nic_mem_fallback {
        return None;
    }
    Some(FaultSummary {
        transmissions: rel.transmissions,
        retransmissions: rel.retransmissions,
        drops_injected: rel.drops_injected,
        dups_injected: rel.dups_injected,
        dups_suppressed: rel.dups_suppressed,
        corrupts_injected: rel.corrupts_injected,
        corrupts_rejected: rel.corrupts_rejected,
        acks_received: rel.acks_received,
        host_fallback_packets: rel.host_fallback_packets,
        nic_mem_fallback: rel.nic_mem_fallback,
        delivered_exactly_once: rel.delivered_exactly_once,
        checkpoint_reverts: counter_total(evs, "core", "checkpoint_reverts"),
        catchup_blocks: counter_total(evs, "core", "catchup_blocks"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Strategy;
    use nca_ddt::types::{elem, Datatype, DatatypeExt};
    use nca_spin::params::NicParams;
    use nca_telemetry::Telemetry;

    fn traced_experiment() -> (Experiment, std::sync::Arc<nca_telemetry::RingRecorder>) {
        let dt = Datatype::vector(512, 16, 32, &elem::double());
        let (tel, sink) = Telemetry::ring(1 << 20);
        let mut exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
        exp.telemetry = tel;
        (exp, sink)
    }

    #[test]
    fn strategy_report_attribution_tiles_the_window() {
        let (exp, sink) = traced_experiment();
        let run = exp.run_modeled(Strategy::RwCp);
        let events = sink.events();
        let rep = strategy_report(&exp, &run, &events, "");
        assert_eq!(rep.name, "RW-CP");
        assert_eq!(rep.attribution_sum(), rep.end_to_end_ps);
        assert!(rep.histograms.contains_key("handler_ps"));
        assert!(rep.hpu_busy_ps > 0);
        assert!(rep.hpu_utilization > 0.0 && rep.hpu_utilization <= 1.0);
    }

    #[test]
    fn utilization_block_matches_the_trace() {
        let (exp, sink) = traced_experiment();
        let run = exp.run_modeled(Strategy::RwCp);
        let events = sink.events();
        let rep = strategy_report(&exp, &run, &events, "");
        let u = rep.utilization.expect("utilization is always filled");
        assert_eq!(u.bucket_ps, UTILIZATION_BUCKET_PS);
        assert!(
            u.hpu_busy_frac.len() >= 16,
            "at least one entry per physical HPU, got {}",
            u.hpu_busy_frac.len()
        );
        let busy_sum: f64 = u.hpu_busy_frac.iter().sum();
        // Per-vHPU fractions must re-sum to the scalar utilization the
        // retained-event path computed over the 16 physical HPUs.
        let scalar = busy_sum / 16.0;
        assert!(
            (scalar - rep.hpu_utilization).abs() < 1e-9,
            "streamed {scalar} vs retained {}",
            rep.hpu_utilization
        );
        assert!(u.peak_queue_depth >= rep.dma_max_queue as f64);
        assert!(!u.dma_chan_occupancy.is_empty(), "DMA channels were busy");
        assert!(u
            .dma_chan_occupancy
            .iter()
            .all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn model_block_present_only_for_checkpointed_strategies() {
        let (exp, sink) = traced_experiment();
        let rw = exp.run_modeled(Strategy::RwCp);
        let spec = exp.run_modeled(Strategy::Specialized);
        let events = sink.events();
        let rep_rw = strategy_report(&exp, &rw, &events, "");
        let rep_spec = strategy_report(&exp, &spec, &events, "");
        let m = rep_rw.model.expect("RW-CP carries a Δr plan");
        assert!(m.t_ph_predicted_ps > 0);
        assert!(m.sched_budget_ps > 0);
        assert!(rep_spec.model.is_none());
    }

    #[test]
    fn config_block_matches_the_experiment() {
        let (exp, _sink) = traced_experiment();
        let cfg = report_config(&exp);
        assert_eq!(cfg.msg_bytes, exp.dt.size);
        assert_eq!(cfg.hpus, 16);
        assert_eq!(cfg.npkt, cfg.msg_bytes.div_ceil(cfg.payload_size));
        assert!(cfg.datatype.contains("vec") || !cfg.datatype.is_empty());
    }
}
