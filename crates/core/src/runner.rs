//! End-to-end experiment runner: build the packed message, run a
//! strategy through the NIC pipeline, verify correctness, and report
//! the metrics every figure harness consumes.

use nca_ddt::dataloop::compile_cached;
use nca_ddt::pack::{buffer_span, pack, unpack};
use nca_ddt::types::Datatype;
use nca_sim::{FaultSpec, Pool, Time, WireBuf};
use nca_spin::builtin::ContigProcessor;
use nca_spin::handler::MessageProcessor;
use nca_spin::nic::{EngineMode, ReceiveSim, RunConfig, RunReport};
use nca_spin::params::{NicParams, ReliabilityParams};
use std::sync::Arc;

use nca_telemetry::{
    merge_ring_events, Recorder, RingRecorder, StreamAggregate, StreamingRecorder, TeeRecorder,
    Telemetry, TraceEvent,
};

use crate::baselines::{host_unpack, iovec_offload, BaselineReport};
use crate::costmodel::{HandlerCycles, HostCostModel};
use crate::heuristic::CheckpointPlan;
use crate::strategies::{estimate_t_ph, GeneralKind, GeneralProcessor, SpecializedProcessor};

/// Which receive method to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Datatype-specific handlers.
    Specialized,
    /// General handlers, per-vHPU segment replicas.
    HpuLocal,
    /// General handlers, read-only checkpoints.
    RoCp,
    /// General handlers, progressing checkpoints.
    RwCp,
}

impl Strategy {
    /// All offloaded strategies (Fig. 8 order).
    pub const ALL: [Strategy; 4] = [
        Strategy::Specialized,
        Strategy::RwCp,
        Strategy::RoCp,
        Strategy::HpuLocal,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::Specialized => "Specialized",
            Strategy::HpuLocal => "HPU-local",
            Strategy::RoCp => "RO-CP",
            Strategy::RwCp => "RW-CP",
        }
    }

    /// Instantiate a processor for `count` copies of `dt`. Pass
    /// `Telemetry::disabled()` when no trace is wanted.
    pub fn build(
        &self,
        dt: &Datatype,
        count: u32,
        params: NicParams,
        epsilon: f64,
        telemetry: Telemetry,
    ) -> Box<dyn MessageProcessor> {
        match self {
            Strategy::Specialized => {
                Box::new(SpecializedProcessor::new(dt, count, params).with_telemetry(telemetry))
            }
            Strategy::HpuLocal => Box::new(
                GeneralProcessor::new(GeneralKind::HpuLocal, dt, count, params, epsilon)
                    .with_telemetry(telemetry),
            ),
            Strategy::RoCp => Box::new(
                GeneralProcessor::new(GeneralKind::RoCp, dt, count, params, epsilon)
                    .with_telemetry(telemetry),
            ),
            Strategy::RwCp => Box::new(
                GeneralProcessor::new(GeneralKind::RwCp, dt, count, params, epsilon)
                    .with_telemetry(telemetry),
            ),
        }
    }
}

/// A strategy run plus the model-side predictions that went into it,
/// so reports can compare predicted vs measured (Sec. 3.2.4 ε bound).
pub struct ModeledRun {
    /// The pipeline run report.
    pub report: RunReport,
    /// The Δr plan the strategy committed to (RO-CP/RW-CP only).
    pub plan: Option<CheckpointPlan>,
    /// Predicted per-packet general-handler runtime T_PH(γ), ps.
    pub t_ph_predicted: Time,
}

/// Result of [`Experiment::run_all_modeled`]: one run per strategy (in
/// [`Strategy::ALL`] order) plus the deterministically merged telemetry
/// capture.
pub struct StrategySweep {
    /// `(strategy, run)` pairs in [`Strategy::ALL`] order.
    pub runs: Vec<(Strategy, ModeledRun)>,
    /// Merged event stream — byte-identical to a serial shared-ring
    /// capture (empty when capture was off).
    pub events: Vec<TraceEvent>,
    /// Events evicted by ring pressure (per-job + merge-time).
    pub dropped: u64,
    /// Per-strategy streaming aggregates, [`Strategy::ALL`] order
    /// (empty unless [`CaptureSpec::stream_bucket_ps`] was set). Unlike
    /// [`StrategySweep::events`], these are bounded-memory however long
    /// the runs were.
    pub aggregates: Vec<(Strategy, StreamAggregate)>,
}

/// What [`Experiment::run_all_captured`] records per job.
#[derive(Debug, Clone, Copy, Default)]
pub struct CaptureSpec {
    /// Retain raw events in a private per-job ring of this capacity
    /// (for trace export and flight attribution).
    pub ring_capacity: Option<usize>,
    /// Fold events into a per-job [`StreamAggregate`] with this
    /// time-series bucket width (ps).
    pub stream_bucket_ps: Option<Time>,
}

/// One experiment configuration.
#[derive(Clone)]
pub struct Experiment {
    /// The receive datatype.
    pub dt: Datatype,
    /// Repetition count.
    pub count: u32,
    /// NIC parameters.
    pub params: NicParams,
    /// Out-of-order seed (None = in order).
    pub out_of_order: Option<u64>,
    /// Scheduling-overhead bound for Δr selection.
    pub epsilon: f64,
    /// Record DMA queue time series.
    pub record_dma_history: bool,
    /// Verify the receive buffer against a reference unpack.
    pub verify: bool,
    /// Trace sink threaded into the strategy and the NIC pipeline
    /// (disabled by default).
    pub telemetry: Telemetry,
    /// Network fault model (inert by default: the lossless pipeline is
    /// taken unchanged, preserving bit-identical figure outputs).
    pub faults: FaultSpec,
    /// Reliable-delivery protocol knobs (only consulted when `faults`
    /// is not inert).
    pub reliability: ReliabilityParams,
    /// Refuse to run a strategy whose NIC-memory footprint exceeds
    /// `params.nic_mem_capacity`; instead degrade gracefully to a
    /// contiguous landing + host unpack (still byte-exact).
    pub enforce_nic_capacity: bool,
    /// DMA/handler engine selection. [`EngineMode::Auto`] (the default)
    /// keeps the historical behaviour: eager whenever no telemetry
    /// capture needs per-event timing.
    pub engine: EngineMode,
}

impl Experiment {
    /// Sensible defaults (in order, ε = 0.2, verification on).
    pub fn new(dt: Datatype, count: u32, params: NicParams) -> Self {
        Experiment {
            dt,
            count,
            params,
            out_of_order: None,
            epsilon: 0.2,
            record_dma_history: false,
            verify: true,
            telemetry: Telemetry::disabled(),
            faults: FaultSpec::inert(),
            reliability: ReliabilityParams::default(),
            enforce_nic_capacity: false,
            engine: EngineMode::Auto,
        }
    }

    /// Packed message bytes for this experiment (deterministic pattern).
    pub fn packed_message(&self) -> Vec<u8> {
        let _phase = nca_sim::profile::enter(nca_sim::profile::Phase::Alloc);
        let (origin, span) = buffer_span(&self.dt, self.count);
        let src: Vec<u8> = (0..span as usize)
            .map(|i| (i.wrapping_mul(31) % 251) as u8)
            .collect();
        pack(&self.dt, self.count, &src, origin).expect("packable")
    }

    /// Average contiguous regions per packet (the paper's γ).
    pub fn gamma(&self) -> f64 {
        let dl = compile_cached(&self.dt, self.count);
        let npkt = dl.size.div_ceil(self.params.payload_size).max(1);
        dl.blocks as f64 / npkt as f64
    }

    /// Run one offloaded strategy; panics on receive-buffer corruption
    /// when verification is enabled.
    pub fn run(&self, strategy: Strategy) -> RunReport {
        self.run_modeled(strategy).report
    }

    /// Like [`Experiment::run`], but also captures the strategy's Δr
    /// plan and the predicted T_PH(γ) so a report can validate the
    /// model against the measured run.
    pub fn run_modeled(&self, strategy: Strategy) -> ModeledRun {
        let dl = compile_cached(&self.dt, self.count);
        let t_ph_predicted = estimate_t_ph(&self.params, &HandlerCycles::default(), &dl);
        let (proc_, plan): (Box<dyn MessageProcessor>, Option<CheckpointPlan>) = match strategy {
            Strategy::Specialized => (
                Box::new(
                    SpecializedProcessor::new(&self.dt, self.count, self.params.clone())
                        .with_telemetry(self.telemetry.clone()),
                ),
                None,
            ),
            Strategy::HpuLocal | Strategy::RoCp | Strategy::RwCp => {
                let kind = match strategy {
                    Strategy::HpuLocal => GeneralKind::HpuLocal,
                    Strategy::RoCp => GeneralKind::RoCp,
                    _ => GeneralKind::RwCp,
                };
                let gp = GeneralProcessor::new(
                    kind,
                    &self.dt,
                    self.count,
                    self.params.clone(),
                    self.epsilon,
                );
                let plan = gp.plan().copied();
                (Box::new(gp.with_telemetry(self.telemetry.clone())), plan)
            }
        };
        let report = self.execute(strategy, proc_);
        ModeledRun {
            report,
            plan,
            t_ph_predicted,
        }
    }

    fn execute(&self, strategy: Strategy, proc_: Box<dyn MessageProcessor>) -> RunReport {
        let (origin, span) = buffer_span(&self.dt, self.count);
        // Build the shared wire buffer once; the pipeline, the fallback
        // path and verification all view it without copying.
        let packed: WireBuf = self.packed_message().into();
        let cfg = RunConfig {
            params: self.params.clone(),
            out_of_order: self.out_of_order,
            record_dma_history: self.record_dma_history,
            portals: None,
            telemetry: self.telemetry.clone(),
            faults: self.faults,
            reliability: self.reliability.clone(),
            engine: self.engine,
        };
        if self.enforce_nic_capacity && proc_.nic_mem_bytes() > self.params.nic_mem_capacity {
            return self.execute_host_fallback(strategy, &packed, origin, span, &cfg);
        }
        let report = ReceiveSim::run(proc_, packed.clone(), origin, span, &cfg);
        if self.verify {
            let mut expect = vec![0u8; span as usize];
            unpack(&self.dt, self.count, &packed, &mut expect, origin).expect("unpackable");
            assert_eq!(
                report.host_buf,
                expect,
                "strategy {} corrupted the receive buffer",
                strategy.label()
            );
        }
        report
    }

    /// Graceful degradation when a strategy's NIC-memory footprint does
    /// not fit: land the message contiguously (no per-packet scatter
    /// state on the NIC) and unpack on the host. The receive buffer is
    /// still byte-exact; only the completion time pays the host-unpack
    /// cost. The transport-level fault/reliability machinery still
    /// applies to the contiguous landing.
    fn execute_host_fallback(
        &self,
        strategy: Strategy,
        packed: &WireBuf,
        origin: i64,
        span: u64,
        cfg: &RunConfig,
    ) -> RunReport {
        let landing = Box::new(ContigProcessor::new(0, self.params.spin_min_handler()));
        let mut report = ReceiveSim::run(landing, packed.clone(), 0, packed.len() as u64, cfg);
        debug_assert_eq!(
            report.host_buf[..],
            packed[..],
            "contiguous landing corrupted"
        );
        let dl = compile_cached(&self.dt, self.count);
        let unpack_cost = HostCostModel::default().unpack_time(dl.size, dl.blocks.max(1));
        let mut host_buf = vec![0u8; span as usize];
        unpack(&self.dt, self.count, packed, &mut host_buf, origin).expect("unpackable");
        self.telemetry
            .counter("core", "nic_mem_fallback", 0, report.t_complete, 1);
        report.strategy = strategy.label();
        report.host_buf = host_buf.into();
        report.host_origin = origin;
        report.t_complete += unpack_cost;
        report.rel.nic_mem_fallback = true;
        report
    }

    /// Run every strategy of [`Strategy::ALL`] as independent jobs on
    /// `pool`, one experiment sweep cell per strategy.
    ///
    /// With `ring_capacity = Some(cap)` each job records into its own
    /// private ring sink (scoped to the strategy label); after the
    /// barrier the captures are merged in `Strategy::ALL` order, so the
    /// returned runs, event stream and drop count are **byte-identical
    /// to a serial loop sharing one `Telemetry::ring(cap)`**, at any
    /// worker count. With `None`, each job inherits this experiment's
    /// telemetry handle unchanged (typically disabled) and no events
    /// are returned.
    pub fn run_all_modeled(&self, pool: &Pool, ring_capacity: Option<usize>) -> StrategySweep {
        self.run_all_captured(
            pool,
            CaptureSpec {
                ring_capacity,
                stream_bucket_ps: None,
            },
        )
    }

    /// [`run_all_modeled`](Self::run_all_modeled) with explicit capture
    /// plumbing: a per-job ring (raw events, merged in `Strategy::ALL`
    /// order) and/or a per-job [`StreamAggregate`] (bounded-memory
    /// reducers). When both are requested one tee feeds them the same
    /// event stream. Each job starts at a gauge high-water-mark
    /// boundary ([`StreamingRecorder::begin_job`]), so per-job HWMs
    /// (e.g. `nic_mem_hwm_bytes`) never leak across jobs.
    pub fn run_all_captured(&self, pool: &Pool, capture: CaptureSpec) -> StrategySweep {
        let out = pool.par_map(Strategy::ALL.to_vec(), |_, s| {
            let mut exp = self.clone();
            let ring = capture
                .ring_capacity
                .map(|cap| Arc::new(RingRecorder::new(cap)));
            let stream = capture
                .stream_bucket_ps
                .map(|b| Arc::new(StreamingRecorder::new(b)));
            let recorder: Option<Arc<dyn Recorder>> = match (&ring, &stream) {
                (Some(r), Some(st)) => Some(Arc::new(TeeRecorder::new(
                    r.clone() as Arc<dyn Recorder>,
                    st.clone() as Arc<dyn Recorder>,
                ))),
                (Some(r), None) => Some(r.clone() as Arc<dyn Recorder>),
                (None, Some(st)) => Some(st.clone() as Arc<dyn Recorder>),
                (None, None) => None,
            };
            if let Some(rec) = recorder {
                exp.telemetry = Telemetry::with_recorder(rec).scoped(s.label());
            }
            if let Some(st) = &stream {
                st.begin_job();
            }
            let run = exp.run_modeled(s);
            let ring_capture = ring.map(|k| (k.events(), k.dropped())).unwrap_or_default();
            let agg = stream.map(|st| st.take());
            (s, run, ring_capture, agg)
        });
        let mut runs = Vec::with_capacity(out.len());
        let mut per_job = Vec::with_capacity(out.len());
        let mut aggregates = Vec::new();
        for (s, run, ring_capture, agg) in out {
            runs.push((s, run));
            per_job.push(ring_capture);
            if let Some(a) = agg {
                aggregates.push((s, a));
            }
        }
        let (events, dropped) = match capture.ring_capacity {
            Some(cap) => merge_ring_events(per_job, cap),
            None => (Vec::new(), 0),
        };
        StrategySweep {
            runs,
            events,
            dropped,
            aggregates,
        }
    }

    /// Host-based unpack baseline for this experiment.
    pub fn run_host(&self) -> BaselineReport {
        host_unpack(
            &self.dt,
            self.count,
            &self.params,
            &HostCostModel::default(),
        )
    }

    /// Portals 4 iovec baseline for this experiment.
    pub fn run_iovec(&self) -> BaselineReport {
        iovec_offload(&self.dt, self.count, &self.params)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_ddt::types::{elem, DatatypeExt};

    #[test]
    fn experiment_runs_all_strategies() {
        let dt = Datatype::vector(1024, 32, 64, &elem::double());
        let exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
        for s in Strategy::ALL {
            let r = exp.run(s);
            assert!(r.processing_time() > 0);
            assert!(r.dma_bytes >= exp.packed_message().len() as u64);
        }
    }

    #[test]
    fn gamma_matches_block_arithmetic() {
        // 256 B blocks in 2 KiB packets -> γ = 8.
        let dt = Datatype::vector(4096, 32, 64, &elem::double());
        let exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
        assert!((exp.gamma() - 8.0).abs() < 0.01, "γ = {}", exp.gamma());
    }

    #[test]
    fn baselines_report_consistent_sizes() {
        let dt = Datatype::vector(512, 8, 16, &elem::double());
        let exp = Experiment::new(dt.clone(), 2, NicParams::with_hpus(16));
        let h = exp.run_host();
        let i = exp.run_iovec();
        assert_eq!(h.msg_bytes, dt.size * 2);
        assert_eq!(i.msg_bytes, dt.size * 2);
        // 512 blocks per copy; the copies abut at the extent boundary, so
        // the last block of copy 1 merges with the first of copy 2.
        assert_eq!(i.regions, 1023);
    }
}
