//! Shared handler plumbing: scatter a packet payload into DMA writes via
//! the segment engine.
//!
//! Every receiver strategy moves bytes the same way — what differs is
//! *which* segment state it starts from and what the work *costs*. This
//! module provides the common scatter step and the per-call statistics
//! delta the cost models consume.

use nca_ddt::segment::{SegStats, Segment};
use nca_ddt::sink::BlockSink;
use nca_sim::PktView;
use nca_spin::handler::DmaWrite;

/// Sink that turns emitted blocks into DMA writes carrying real bytes.
/// Each write is a subview of the packet payload — the block scatter
/// re-slices the shared wire buffer instead of copying it.
pub struct DmaSink<'a> {
    /// Packet payload (stream bytes `[stream_base, stream_base+len)`).
    pub payload: &'a PktView,
    /// Stream offset of `payload[0]`.
    pub stream_base: u64,
    /// Collected writes.
    pub writes: Vec<DmaWrite>,
}

impl BlockSink for DmaSink<'_> {
    fn block(&mut self, buf_off: i64, len: u64, stream_off: u64) {
        let s = (stream_off - self.stream_base) as usize;
        self.writes.push(DmaWrite::data(
            buf_off,
            self.payload.subview(s, len as usize),
        ));
    }
}

/// Process stream range `[first, first+payload.len())` on `seg` with
/// catch-up/reset semantics, returning the DMA writes and the statistics
/// delta of this call.
pub fn scatter_packet(
    seg: &mut Segment,
    first: u64,
    payload: &PktView,
) -> (Vec<DmaWrite>, SegStats) {
    let before = seg.stats;
    let mut sink = DmaSink {
        payload,
        stream_base: first,
        writes: Vec::new(),
    };
    seg.process_range(first, first + payload.len() as u64, &mut sink)
        .expect("packet range within message");
    let after = seg.stats;
    let delta = SegStats {
        blocks_emitted: after.blocks_emitted - before.blocks_emitted,
        bytes_emitted: after.bytes_emitted - before.bytes_emitted,
        catchup_blocks: after.catchup_blocks - before.catchup_blocks,
        catchup_bytes: after.catchup_bytes - before.catchup_bytes,
        resets: after.resets - before.resets,
    };
    (sink.writes, delta)
}

/// Like [`scatter_packet`] but positions the segment with a free `seek`
/// first — the specialized handlers compute the start offset
/// arithmetically (O(1) or one binary search), so no catch-up is paid.
pub fn scatter_packet_seek(
    seg: &mut Segment,
    first: u64,
    payload: &PktView,
) -> (Vec<DmaWrite>, SegStats) {
    seg.seek(first).expect("packet offset within message");
    scatter_packet(seg, first, payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_ddt::dataloop::compile;
    use nca_ddt::types::{elem, Datatype, DatatypeExt};

    #[test]
    fn scatter_produces_block_writes() {
        let dt = Datatype::vector(8, 1, 2, &elem::int()); // 8 x 4B blocks
        let dl = compile(&dt, 1);
        let mut seg = Segment::new(dl);
        let payload: PktView = (0..16u8).collect::<Vec<u8>>().into();
        let (writes, stats) = scatter_packet(&mut seg, 0, &payload);
        assert_eq!(writes.len(), 4);
        assert_eq!(stats.blocks_emitted, 4);
        assert_eq!(writes[1].host_off, 8);
        assert_eq!(writes[1].data, vec![4, 5, 6, 7]);
    }

    #[test]
    fn scatter_with_catchup_counts_skipped() {
        let dt = Datatype::vector(8, 1, 2, &elem::int());
        let dl = compile(&dt, 1);
        let mut seg = Segment::new(dl);
        let payload: PktView = vec![0u8; 8].into();
        let (_, stats) = scatter_packet(&mut seg, 16, &payload);
        assert_eq!(stats.catchup_blocks, 4);
        assert_eq!(stats.blocks_emitted, 2);
    }

    #[test]
    fn seek_variant_pays_no_catchup() {
        let dt = Datatype::vector(8, 1, 2, &elem::int());
        let dl = compile(&dt, 1);
        let mut seg = Segment::new(dl);
        let payload: PktView = vec![0u8; 8].into();
        let (writes, stats) = scatter_packet_seek(&mut seg, 16, &payload);
        assert_eq!(stats.catchup_blocks, 0);
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[0].host_off, 32);
    }
}
