//! Shared handler plumbing: scatter a packet payload into DMA writes via
//! the segment engine.
//!
//! Every receiver strategy moves bytes the same way — what differs is
//! *which* segment state it starts from and what the work *costs*. This
//! module provides the common scatter step and the per-call statistics
//! delta the cost models consume.

use nca_ddt::segment::{SegStats, Segment};
use nca_ddt::sink::BlockSink;
use nca_sim::PktView;
use nca_spin::handler::DmaWrite;

/// Sink that turns emitted blocks into DMA writes.
///
/// Without a direct destination each write is a subview of the packet
/// payload — the block scatter re-slices the shared wire buffer instead
/// of copying it. With `direct = Some((buf, origin))` the payload bytes
/// are copied into the receive buffer on the spot (the eager-DMA
/// regime, where landed bytes are unobservable until the run ends) and
/// the collected writes carry lengths only.
pub struct DmaSink<'a> {
    /// Packet payload (stream bytes `[stream_base, stream_base+len)`).
    pub payload: &'a PktView,
    /// Stream offset of `payload[0]`.
    pub stream_base: u64,
    /// Collected writes.
    pub writes: Vec<DmaWrite>,
    /// Direct-scatter destination (receive buffer, datatype origin).
    pub direct: Option<(&'a mut [u8], i64)>,
}

impl BlockSink for DmaSink<'_> {
    fn block(&mut self, buf_off: i64, len: u64, stream_off: u64) {
        let s = (stream_off - self.stream_base) as usize;
        match &mut self.direct {
            Some((buf, origin)) => {
                let d = (buf_off - *origin) as usize;
                nca_ddt::kernels::copy_block(buf, d, self.payload, s, len as usize);
                self.writes.push(DmaWrite::len_only(buf_off, len));
            }
            None => self.writes.push(DmaWrite::data(
                buf_off,
                self.payload.subview(s, len as usize),
            )),
        }
    }

    fn strided(&mut self, buf_off: i64, len: u64, stream_off: u64, n: u64, step: i64) {
        self.writes.reserve(n as usize);
        let s = (stream_off - self.stream_base) as usize;
        match &mut self.direct {
            Some((buf, origin)) => {
                nca_ddt::kernels::copy_strided(
                    buf,
                    buf_off - *origin,
                    step,
                    self.payload,
                    s as i64,
                    len as i64,
                    len,
                    n,
                );
                let mut b = buf_off;
                for _ in 0..n {
                    self.writes.push(DmaWrite::len_only(b, len));
                    b += step;
                }
            }
            None => {
                let mut s = s;
                let mut b = buf_off;
                for _ in 0..n {
                    self.writes
                        .push(DmaWrite::data(b, self.payload.subview(s, len as usize)));
                    s += len as usize;
                    b += step;
                }
            }
        }
    }
}

/// Process stream range `[first, first+payload.len())` on `seg` with
/// catch-up/reset semantics, returning the DMA writes and the statistics
/// delta of this call. `writes` is the (empty) scatter scratch vector —
/// strategies feed back the vector the pipeline recycled via
/// [`nca_spin::handler::MessageProcessor::recycle_dma`] so steady-state
/// packets allocate nothing.
pub fn scatter_packet(
    seg: &mut Segment,
    first: u64,
    payload: &PktView,
    writes: Vec<DmaWrite>,
    direct: Option<(&mut [u8], i64)>,
) -> (Vec<DmaWrite>, SegStats) {
    debug_assert!(writes.is_empty());
    let before = seg.stats;
    let mut sink = DmaSink {
        payload,
        stream_base: first,
        writes,
        direct,
    };
    seg.process_range(first, first + payload.len() as u64, &mut sink)
        .expect("packet range within message");
    let after = seg.stats;
    let delta = SegStats {
        blocks_emitted: after.blocks_emitted - before.blocks_emitted,
        bytes_emitted: after.bytes_emitted - before.bytes_emitted,
        catchup_blocks: after.catchup_blocks - before.catchup_blocks,
        catchup_bytes: after.catchup_bytes - before.catchup_bytes,
        resets: after.resets - before.resets,
    };
    (sink.writes, delta)
}

/// Like [`scatter_packet`] but positions the segment with a free `seek`
/// first — the specialized handlers compute the start offset
/// arithmetically (O(1) or one binary search), so no catch-up is paid.
pub fn scatter_packet_seek(
    seg: &mut Segment,
    first: u64,
    payload: &PktView,
    writes: Vec<DmaWrite>,
    direct: Option<(&mut [u8], i64)>,
) -> (Vec<DmaWrite>, SegStats) {
    seg.seek(first).expect("packet offset within message");
    scatter_packet(seg, first, payload, writes, direct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_ddt::dataloop::compile;
    use nca_ddt::types::{elem, Datatype, DatatypeExt};

    #[test]
    fn scatter_produces_block_writes() {
        let dt = Datatype::vector(8, 1, 2, &elem::int()); // 8 x 4B blocks
        let dl = compile(&dt, 1);
        let mut seg = Segment::new(dl);
        let payload: PktView = (0..16u8).collect::<Vec<u8>>().into();
        let (writes, stats) = scatter_packet(&mut seg, 0, &payload, Vec::new(), None);
        assert_eq!(writes.len(), 4);
        assert_eq!(stats.blocks_emitted, 4);
        assert_eq!(writes[1].host_off, 8);
        assert_eq!(writes[1].data, vec![4, 5, 6, 7]);
    }

    #[test]
    fn scatter_with_catchup_counts_skipped() {
        let dt = Datatype::vector(8, 1, 2, &elem::int());
        let dl = compile(&dt, 1);
        let mut seg = Segment::new(dl);
        let payload: PktView = vec![0u8; 8].into();
        let (_, stats) = scatter_packet(&mut seg, 16, &payload, Vec::new(), None);
        assert_eq!(stats.catchup_blocks, 4);
        assert_eq!(stats.blocks_emitted, 2);
    }

    #[test]
    fn seek_variant_pays_no_catchup() {
        let dt = Datatype::vector(8, 1, 2, &elem::int());
        let dl = compile(&dt, 1);
        let mut seg = Segment::new(dl);
        let payload: PktView = vec![0u8; 8].into();
        let (writes, stats) = scatter_packet_seek(&mut seg, 16, &payload, Vec::new(), None);
        assert_eq!(stats.catchup_blocks, 0);
        assert_eq!(writes.len(), 2);
        assert_eq!(writes[0].host_off, 32);
    }
}
