//! Parallel fault-sweep executor.
//!
//! `ncmt_cli fault-sweep` runs a seed × fault-scale × strategy matrix;
//! every cell is an independent deterministic simulation, which makes
//! the matrix embarrassingly parallel. This module owns the cell logic
//! so the CLI (and tests) can run it through [`nca_sim::Pool`]:
//!
//! * parallelism is at **(seed, scale) cell granularity** — the four
//!   strategies inside a cell share one telemetry ring exactly as the
//!   serial loop did, so per-cell artifacts are untouched;
//! * each cell gets its own private `Telemetry::ring`, sized like the
//!   serial sweep's per-cell ring, so jobs never contend on a sink;
//! * [`fault_sweep`] returns cells **in serial (seed-major, then
//!   scale) order** regardless of worker count — `Pool::par_map`
//!   preserves input ordering — so the emitted `FaultSweepDoc` is
//!   byte-identical to a `--jobs 1` run.

use nca_ddt::pack::{buffer_span, unpack};
use nca_ddt::types::Datatype;
use nca_sim::{FaultSpec, Pool};
use nca_spin::params::NicParams;
use nca_telemetry::report::{FaultSummary, SweepCell};
use nca_telemetry::Telemetry;

use crate::report::fault_summary;
use crate::runner::{Experiment, Strategy};

/// Everything that defines one fault-sweep matrix (the knobs
/// `ncmt_cli fault-sweep` exposes, minus output formatting).
#[derive(Clone)]
pub struct FaultSweepSpec {
    /// Receive datatype for every cell.
    pub dt: Datatype,
    /// Datatype repetition count.
    pub count: u32,
    /// NIC configuration shared by all cells.
    pub params: NicParams,
    /// Fault rates at scale 1.0; each cell runs `base.scaled(scale)`
    /// with its own seed.
    pub base: FaultSpec,
    /// First fault seed; cells use `seed0 .. seed0 + seeds`.
    pub seed0: u64,
    /// Number of seeds in the matrix.
    pub seeds: u64,
    /// Fault-rate scales (0.0 doubles as the lossless control).
    pub scales: Vec<f64>,
    /// Capacity of each cell's private telemetry ring.
    pub ring_capacity: usize,
}

impl FaultSweepSpec {
    /// The `(seed, scale)` grid in serial order: seed-major, scales in
    /// the given order within each seed.
    pub fn cells(&self) -> Vec<(u64, f64)> {
        let mut grid = Vec::with_capacity((self.seeds as usize) * self.scales.len());
        for seed in self.seed0..self.seed0 + self.seeds {
            for &scale in &self.scales {
                grid.push((seed, scale));
            }
        }
        grid
    }
}

/// Run one `(seed, scale)` cell: all strategies against one fault
/// schedule, byte-exactness checked against a host-side unpack
/// reference. Identical to the serial loop body `ncmt_cli fault-sweep`
/// used, with the cell's events captured in a private ring.
fn run_cell(spec: &FaultSweepSpec, seed: u64, scale: f64) -> Vec<SweepCell> {
    let (tel, sink) = Telemetry::ring(spec.ring_capacity);
    let mut exp = Experiment::new(spec.dt.clone(), spec.count, spec.params.clone());
    exp.faults = spec.base.scaled(scale).with_seed(seed);
    exp.verify = false; // manual check below: report, don't panic
    let (origin, span) = buffer_span(&exp.dt, exp.count);
    let packed = exp.packed_message();
    let mut expect = vec![0u8; span as usize];
    unpack(&exp.dt, exp.count, &packed, &mut expect, origin).expect("unpackable");
    let mut cells = Vec::with_capacity(Strategy::ALL.len());
    for s in Strategy::ALL {
        exp.telemetry = tel.scoped(s.label());
        let run = exp.run_modeled(s);
        let byte_exact = run.report.host_buf == expect;
        let events = sink.events();
        let evs: Vec<_> = events
            .iter()
            .filter(|ev| ev.scope == s.label())
            .cloned()
            .collect();
        let f = fault_summary(&run, &evs).unwrap_or_default();
        cells.push(SweepCell {
            seed,
            scale,
            strategy: s.label().to_string(),
            byte_exact,
            end_to_end_ps: run.report.processing_time(),
            faults: FaultSummary {
                delivered_exactly_once: run.report.rel.delivered_exactly_once,
                ..f
            },
        });
    }
    cells
}

/// Run the whole matrix on `pool`, one job per `(seed, scale)` cell.
///
/// The returned cells are in serial order (seed-major, then scale,
/// then [`Strategy::ALL`] order within each cell) at any worker
/// count, so serializing them yields a byte-identical `FaultSweepDoc`.
pub fn fault_sweep(spec: &FaultSweepSpec, pool: &Pool) -> Vec<SweepCell> {
    pool.par_map(spec.cells(), |_, (seed, scale)| run_cell(spec, seed, scale))
        .into_iter()
        .flatten()
        .collect()
}

/// Whether a cell met the sweep's acceptance bar: byte-exact receive
/// buffer and exactly-once delivery.
pub fn cell_ok(cell: &SweepCell) -> bool {
    cell.byte_exact && cell.faults.delivered_exactly_once
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_ddt::types::{elem, DatatypeExt};

    fn tiny_spec() -> FaultSweepSpec {
        FaultSweepSpec {
            dt: Datatype::vector(64, 4, 8, &elem::double()),
            count: 1,
            params: NicParams::with_hpus(4),
            base: FaultSpec {
                drop: 0.05,
                duplicate: 0.02,
                corrupt: 0.01,
                reorder_window: 2_000_000,
                seed: 1,
            },
            seed0: 1,
            seeds: 2,
            scales: vec![0.0, 1.0],
            ring_capacity: 1 << 16,
        }
    }

    #[test]
    fn cells_grid_is_seed_major() {
        let spec = tiny_spec();
        assert_eq!(spec.cells(), vec![(1, 0.0), (1, 1.0), (2, 0.0), (2, 1.0)]);
    }

    #[test]
    fn parallel_sweep_matches_serial_exactly() {
        let spec = tiny_spec();
        let serial = fault_sweep(&spec, &Pool::serial());
        let parallel = fault_sweep(&spec, &Pool::new(3));
        assert_eq!(serial.len(), 4 * Strategy::ALL.len());
        assert_eq!(serial, parallel);
        assert!(serial.iter().all(cell_ok), "tiny sweep must pass");
    }
}
