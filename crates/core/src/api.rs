//! MPI-integration layer (paper Sec. 3.2.6).
//!
//! Models how an MPI implementation drives the offload:
//!
//! 1. **Commit** — [`OffloadManager::commit`] classifies the datatype and
//!    picks a processing strategy (specialized vs general), honouring the
//!    user's [`TypeAttr`] (the `MPI_Type_set_attr` hook: offload on/off,
//!    eviction priority, ε).
//! 2. **Post receive** — [`OffloadManager::post_receive`] allocates NIC
//!    memory for the DDT state; on exhaustion it evicts least-recently-
//!    used lower-priority datatypes, falling back to host-based unpack if
//!    the state still does not fit.
//! 3. **Complete** — the completion event releases the posting (the DDT
//!    state stays resident for reuse until evicted).

use std::collections::HashMap;

use nca_ddt::normalize::classify;
use nca_ddt::types::Datatype;
use nca_spin::nicmem::{AllocId, NicMemory};
use nca_spin::params::NicParams;
use nca_telemetry::Telemetry;

use crate::runner::Strategy;
use crate::strategies::SpecializedProcessor;
use nca_spin::handler::MessageProcessor;

/// Per-type attributes (the `MPI_Type_set_attr` knobs the paper lists).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TypeAttr {
    /// Whether this type may be offloaded at all.
    pub offload: bool,
    /// Eviction priority (higher = keep longer).
    pub priority: u8,
    /// Scheduling-overhead bound ε for Δr selection.
    pub epsilon: f64,
}

impl Default for TypeAttr {
    fn default() -> Self {
        TypeAttr {
            offload: true,
            priority: 0,
            epsilon: 0.2,
        }
    }
}

/// A committed datatype handle.
#[derive(Debug, Clone)]
pub struct CommittedDdt {
    /// Handle id.
    pub id: u64,
    /// The type.
    pub dt: Datatype,
    /// Strategy chosen at commit time.
    pub strategy: Strategy,
    /// Attributes.
    pub attr: TypeAttr,
}

/// How a posted receive will be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PostOutcome {
    /// DDT state resident on the NIC; handlers will process packets.
    Offloaded(Strategy),
    /// NIC memory exhausted (or offload disabled): host-based unpack.
    FallbackHost,
}

struct Resident {
    alloc: AllocId,
    bytes: u64,
    priority: u8,
    /// LRU stamp.
    last_used: u64,
}

/// The per-NIC offload state an MPI library would keep.
pub struct OffloadManager {
    params: NicParams,
    nicmem: NicMemory,
    resident: HashMap<u64, Resident>,
    next_id: u64,
    clock: u64,
    /// Receives served from NIC-resident state without re-copying
    /// (checkpoint reuse — Fig. 18's amortization).
    pub reuse_hits: u64,
    /// Fallbacks to host unpack due to NIC memory pressure.
    pub fallbacks: u64,
    /// Trace sink; events are stamped with the manager's logical clock
    /// (one tick per posted receive), not simulated time.
    tel: Telemetry,
}

impl OffloadManager {
    /// Create a manager over the NIC's DDT memory budget.
    pub fn new(params: NicParams) -> Self {
        let cap = params.nic_mem_capacity;
        OffloadManager {
            params,
            nicmem: NicMemory::new(cap),
            resident: HashMap::new(),
            next_id: 0,
            clock: 0,
            reuse_hits: 0,
            fallbacks: 0,
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a trace sink (reuse hits, evictions, fallbacks, and the
    /// NIC-memory level, keyed by the logical post clock).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Commit a datatype: classify and choose the strategy.
    ///
    /// Specialized handlers are chosen when the shape admits O(1) NIC
    /// state (vector forms) or when the offset-list state is below 1/4 of
    /// NIC memory; otherwise the general RW-CP strategy is used.
    pub fn commit(&mut self, dt: &Datatype, attr: TypeAttr) -> CommittedDdt {
        let id = self.next_id;
        self.next_id += 1;
        let shape = classify(dt);
        let strategy = if shape.constant_state() {
            Strategy::Specialized
        } else if shape.has_specialized_handler() {
            // list-based specialized handler: admit if the list is small
            let probe = SpecializedProcessor::new(dt, 1, self.params.clone());
            if probe.nic_mem_bytes() <= self.params.nic_mem_capacity / 4 {
                Strategy::Specialized
            } else {
                Strategy::RwCp
            }
        } else {
            Strategy::RwCp
        };
        CommittedDdt {
            id,
            dt: dt.clone(),
            strategy,
            attr,
        }
    }

    /// Post a receive of `count` copies of the committed type: ensure its
    /// DDT state is NIC-resident, evicting if necessary.
    pub fn post_receive(&mut self, ddt: &CommittedDdt, count: u32) -> PostOutcome {
        self.clock += 1;
        if !ddt.attr.offload {
            self.fallbacks += 1;
            self.tel.counter("core", "fallbacks", 0, self.clock, 1);
            return PostOutcome::FallbackHost;
        }
        if let Some(r) = self.resident.get_mut(&ddt.id) {
            r.last_used = self.clock;
            self.reuse_hits += 1;
            self.tel.counter("core", "reuse_hits", 0, self.clock, 1);
            return PostOutcome::Offloaded(ddt.strategy);
        }
        let proc_ = ddt.strategy.build(
            &ddt.dt,
            count,
            self.params.clone(),
            ddt.attr.epsilon,
            Telemetry::disabled(),
        );
        let bytes = proc_.nic_mem_bytes();
        loop {
            if let Some(alloc) = self.nicmem.alloc(bytes) {
                self.resident.insert(
                    ddt.id,
                    Resident {
                        alloc,
                        bytes,
                        priority: ddt.attr.priority,
                        last_used: self.clock,
                    },
                );
                self.tel.gauge(
                    "core",
                    "nic_mem_used",
                    0,
                    self.clock,
                    self.nic_mem_used() as f64,
                );
                return PostOutcome::Offloaded(ddt.strategy);
            }
            // Victim selection: lowest priority, then least recently
            // used. Entries with strictly higher priority than the
            // requesting type are protected.
            let victim = self
                .resident
                .iter()
                .filter(|(_, r)| r.priority <= ddt.attr.priority)
                .min_by_key(|(_, r)| (r.priority, r.last_used))
                .map(|(&id, _)| id);
            match victim {
                Some(vid) => {
                    let r = self.resident.remove(&vid).expect("victim resident");
                    self.nicmem.free(r.alloc);
                    self.tel.counter("core", "evictions", 0, self.clock, 1);
                    self.tel.instant("core", "eviction", 0, self.clock);
                }
                None => {
                    self.fallbacks += 1;
                    self.tel.counter("core", "fallbacks", 0, self.clock, 1);
                    return PostOutcome::FallbackHost;
                }
            }
        }
    }

    /// Whether a committed type currently has NIC-resident state.
    pub fn is_resident(&self, ddt: &CommittedDdt) -> bool {
        self.resident.contains_key(&ddt.id)
    }

    /// NIC memory currently used by DDT state.
    pub fn nic_mem_used(&self) -> u64 {
        self.resident.values().map(|r| r.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_ddt::types::{elem, DatatypeExt};

    fn mgr(capacity: u64) -> OffloadManager {
        let mut p = NicParams::with_hpus(16);
        p.nic_mem_capacity = capacity;
        OffloadManager::new(p)
    }

    #[test]
    fn vector_commits_to_specialized() {
        let mut m = mgr(1 << 20);
        let dt = Datatype::vector(100, 4, 8, &elem::double());
        let c = m.commit(&dt, TypeAttr::default());
        assert_eq!(c.strategy, Strategy::Specialized);
    }

    #[test]
    fn nested_commits_to_rwcp() {
        let mut m = mgr(1 << 20);
        let inner = Datatype::vector(4, 1, 3, &elem::int());
        let mid = Datatype::vector(8, 2, 30, &inner);
        let dt = Datatype::vector(16, 1, 1000, &mid);
        let c = m.commit(&dt, TypeAttr::default());
        assert_eq!(c.strategy, Strategy::RwCp);
    }

    #[test]
    fn huge_index_list_commits_to_general() {
        let mut m = mgr(64 << 10); // 64 KiB NIC memory
                                   // Irregular displacements (no constant stride, so no vector
                                   // normalization): the offset list is the NIC state.
        let displs: Vec<i64> = (0..10_000).map(|i| i * 5 + (i * i) % 3).collect();
        let dt = Datatype::indexed_block(1, &displs, &elem::double()).unwrap();
        let c = m.commit(&dt, TypeAttr::default());
        // 10_000 * 8 B list > 16 KiB budget quarter ⇒ general
        assert_eq!(c.strategy, Strategy::RwCp);
    }

    #[test]
    fn reuse_hits_count() {
        let mut m = mgr(1 << 20);
        let dt = Datatype::vector(100, 4, 8, &elem::double());
        let c = m.commit(&dt, TypeAttr::default());
        assert_eq!(
            m.post_receive(&c, 1),
            PostOutcome::Offloaded(Strategy::Specialized)
        );
        assert_eq!(
            m.post_receive(&c, 1),
            PostOutcome::Offloaded(Strategy::Specialized)
        );
        assert_eq!(m.reuse_hits, 1);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut m = mgr(200); // tiny: fits only one list-based state
        let irregular =
            |salt: i64| -> Vec<i64> { (0..12).map(|i| i * 7 + (i * i + salt) % 3).collect() };
        // Construct handles directly: this test isolates post_receive's
        // admission/eviction from commit's strategy choice.
        let mk = |m: &mut OffloadManager, salt: i64| {
            let dt = Datatype::indexed_block(1, &irregular(salt), &elem::double()).unwrap();
            let mut c = m.commit(&dt, TypeAttr::default());
            c.strategy = Strategy::Specialized; // 16 + 8·12 = 112 B list
            c
        };
        let a = mk(&mut m, 0);
        let b = mk(&mut m, 1);
        assert!(matches!(m.post_receive(&a, 1), PostOutcome::Offloaded(_)));
        assert!(matches!(m.post_receive(&b, 1), PostOutcome::Offloaded(_)));
        // `a` was evicted to make room for `b`.
        assert!(!m.is_resident(&a));
        assert!(m.is_resident(&b));
    }

    #[test]
    fn priority_protects_from_eviction() {
        let mut m = mgr(200);
        let hot = {
            let dt = Datatype::indexed_block(
                1,
                &[0, 9, 19, 28, 36, 44, 53, 61, 70, 78, 87, 95],
                &elem::double(),
            )
            .unwrap();
            let mut c = m.commit(
                &dt,
                TypeAttr {
                    priority: 9,
                    ..Default::default()
                },
            );
            c.strategy = Strategy::Specialized;
            c
        };
        let cold = {
            let dt = Datatype::indexed_block(
                1,
                &[1, 10, 20, 29, 37, 45, 54, 62, 71, 79, 88, 96],
                &elem::double(),
            )
            .unwrap();
            let mut c = m.commit(&dt, TypeAttr::default());
            c.strategy = Strategy::Specialized;
            c
        };
        assert!(matches!(m.post_receive(&hot, 1), PostOutcome::Offloaded(_)));
        // `cold` (priority 0) may not evict `hot` (priority 9); with no
        // other victims it falls back to host unpack.
        assert_eq!(m.post_receive(&cold, 1), PostOutcome::FallbackHost);
        assert!(m.is_resident(&hot), "high-priority type must survive");
        assert_eq!(m.fallbacks, 1);
    }

    #[test]
    fn offload_disabled_falls_back() {
        let mut m = mgr(1 << 20);
        let dt = Datatype::vector(10, 1, 2, &elem::int());
        let c = m.commit(
            &dt,
            TypeAttr {
                offload: false,
                ..Default::default()
            },
        );
        assert_eq!(m.post_receive(&c, 1), PostOutcome::FallbackHost);
        assert_eq!(m.fallbacks, 1);
    }
}
