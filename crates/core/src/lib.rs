//! # nca-core — network-accelerated non-contiguous memory transfers
//!
//! The paper's primary contribution: receiver-side NIC offload of MPI
//! derived-datatype processing on sPIN, with
//!
//! * [`strategies`] — **specialized** per-shape handlers and the three
//!   write-conflict-free **general** handlers (HPU-local, RO-CP, RW-CP);
//! * [`heuristic`] — the checkpoint-interval (Δr) selection under the ε
//!   scheduling-overhead bound and NIC-memory/packet-buffer capacity;
//! * [`costmodel`] — the calibrated `T_PH(γ) = T_init + T_setup + γ·T_block`
//!   handler model and the host-unpack model;
//! * [`baselines`] — host-based unpack (RDMA + CPU) and Portals 4 iovec
//!   offload;
//! * [`api`] — the MPI integration layer (commit-time strategy selection,
//!   NIC memory admission with priority/LRU eviction, host fallback);
//! * [`runner`] — end-to-end experiment driver with byte-exact
//!   receive-buffer verification.
//!
//! ```
//! use nca_core::runner::{Experiment, Strategy};
//! use nca_ddt::types::{elem, Datatype, DatatypeExt};
//! use nca_spin::params::NicParams;
//!
//! // A 64 KiB message of 128-byte strided blocks, received via RW-CP.
//! let dt = Datatype::vector(512, 16, 32, &elem::double());
//! let exp = Experiment::new(dt, 1, NicParams::with_hpus(16));
//! let report = exp.run(Strategy::RwCp);
//! assert!(report.throughput_gbit() > 1.0);
//! ```

pub mod api;
pub mod baselines;
pub mod costmodel;
pub mod engine;
pub mod heuristic;
pub mod report;
pub mod runner;
pub mod strategies;
pub mod sweep;

pub use api::{CommittedDdt, OffloadManager, PostOutcome, TypeAttr};
pub use baselines::{host_pipelined_unpack, host_unpack, iovec_offload, BaselineReport};
pub use costmodel::{HandlerCycles, HostCostModel};
pub use heuristic::{select_checkpoint_interval, CheckpointPlan};
pub use report::{report_config, strategy_report};
pub use runner::{Experiment, ModeledRun, Strategy, StrategySweep};
pub use strategies::{GeneralKind, GeneralProcessor, SpecializedProcessor};
pub use sweep::{cell_ok, fault_sweep, FaultSweepSpec};
