//! Checkpoint-interval (Δr) selection — paper Sec. 3.2.4.
//!
//! RW-CP's blocked-RR scheduling introduces a dependency: the packets of
//! one Δr-sized sequence are processed sequentially on one vHPU. The
//! paper bounds that overhead by a user-tunable factor ε of the packet
//! processing time, subject to NIC memory and packet-buffer capacity:
//!
//! 1. `T_pkt + ⌈Δr/k⌉·(P−1)·T_pkt ≤ ε · ⌈n_pkt/P⌉ · T_PH(γ)`
//! 2. `(n_pkt·k/Δr) · C ≤ M_NIC`
//! 3. `min(T_PH(γ)·k / T_pkt, Δr) ≤ B_pkt`
//!
//! Constraint (1) caps Δr from above (smaller Δr ⇒ less scheduling
//! dependency ⇒ more checkpoints), constraint (2) from below. We pick
//! the **largest** Δr satisfying (1) — minimizing NIC memory — and relax
//! upward if (2) requires it (accepting a scheduling overhead above ε,
//! flagged in the result).

use nca_ddt::checkpoint::CHECKPOINT_NIC_BYTES;
use nca_sim::Time;
use nca_spin::params::NicParams;

/// Result of the Δr selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointPlan {
    /// Chosen checkpoint interval in stream bytes (multiple of the
    /// packet payload size k).
    pub delta_r: u64,
    /// Packets per sequence (Δp = Δr / k).
    pub delta_p: u64,
    /// Number of checkpoints the table will hold.
    pub num_checkpoints: u64,
    /// NIC memory the checkpoints occupy.
    pub nic_bytes: u64,
    /// Whether the ε bound had to be violated to fit NIC memory.
    pub epsilon_violated: bool,
}

/// Select Δr for a message of `msg_bytes` whose per-packet handler
/// runtime is `t_ph` (from the cost model, at the message's γ).
pub fn select_checkpoint_interval(
    p: &NicParams,
    msg_bytes: u64,
    t_ph: Time,
    epsilon: f64,
) -> CheckpointPlan {
    let k = p.payload_size;
    let npkt = msg_bytes.div_ceil(k).max(1);
    let t_pkt = p.t_pkt();
    let hpus = p.hpus as u64;

    // Constraint (1): ⌈Δr/k⌉ ≤ (ε·⌈npkt/P⌉·T_PH − T_pkt) / ((P−1)·T_pkt)
    let budget = epsilon * npkt.div_ceil(hpus) as f64 * t_ph as f64 - t_pkt as f64;
    let max_seq = if hpus <= 1 {
        npkt // no cross-HPU dependency with one HPU
    } else {
        let q = budget / ((hpus - 1) as f64 * t_pkt as f64);
        q.floor().max(1.0) as u64
    };
    let mut delta_p = max_seq.clamp(1, npkt);
    let mut eps_violated = false;

    // Constraint (2): checkpoints must fit NIC memory:
    // npkt/Δp · C ≤ M_NIC  ⇒  Δp ≥ npkt·C / M_NIC.
    let min_dp_mem = (npkt * CHECKPOINT_NIC_BYTES)
        .div_ceil(p.nic_mem_capacity)
        .max(1);
    if min_dp_mem > delta_p {
        delta_p = min_dp_mem.min(npkt);
        eps_violated = true;
    }

    // Constraint (3): packets buffered while a sequence is in flight must
    // fit the packet buffer.
    let buffered = ((t_ph.max(1) * k) / t_pkt.max(1)).min(delta_p * k);
    if buffered > p.pkt_buffer_bytes {
        // Cannot buffer enough: shrink the sequence (more checkpoints).
        delta_p = (p.pkt_buffer_bytes / k).max(1).min(delta_p);
    }

    let delta_r = delta_p * k;
    let num_checkpoints = msg_bytes.div_ceil(delta_r).max(1);
    CheckpointPlan {
        delta_r,
        delta_p,
        num_checkpoints,
        nic_bytes: num_checkpoints * CHECKPOINT_NIC_BYTES,
        epsilon_violated: eps_violated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p16() -> NicParams {
        NicParams::with_hpus(16)
    }

    #[test]
    fn faster_handlers_mean_more_checkpoints() {
        // Fig. 13b: larger blocks ⇒ faster handlers ⇒ smaller Δr ⇒ more
        // NIC memory.
        let p = p16();
        let msg = 4u64 << 20;
        let slow = select_checkpoint_interval(&p, msg, nca_sim::us(10), 0.2);
        let fast = select_checkpoint_interval(&p, msg, nca_sim::ns(400), 0.2);
        assert!(fast.num_checkpoints >= slow.num_checkpoints);
        assert!(fast.nic_bytes >= slow.nic_bytes);
    }

    #[test]
    fn more_hpus_mean_more_checkpoints() {
        // Fig. 13c: more HPUs ⇒ faster message processing ⇒ smaller Δr.
        let msg = 4u64 << 20;
        let t_ph = nca_sim::us(1);
        let few = select_checkpoint_interval(&NicParams::with_hpus(4), msg, t_ph, 0.2);
        let many = select_checkpoint_interval(&NicParams::with_hpus(32), msg, t_ph, 0.2);
        assert!(many.num_checkpoints >= few.num_checkpoints);
    }

    #[test]
    fn memory_capacity_forces_larger_interval() {
        let mut p = p16();
        p.nic_mem_capacity = 8 * CHECKPOINT_NIC_BYTES; // room for 8 ckpts
        let msg = 4u64 << 20; // 2048 packets
        let plan = select_checkpoint_interval(&p, msg, nca_sim::ns(300), 0.2);
        assert!(plan.num_checkpoints <= 8);
        assert!(plan.nic_bytes <= p.nic_mem_capacity);
    }

    #[test]
    fn delta_r_is_multiple_of_payload() {
        let p = p16();
        let plan = select_checkpoint_interval(&p, 4 << 20, nca_sim::us(2), 0.2);
        assert_eq!(plan.delta_r % p.payload_size, 0);
        assert_eq!(plan.delta_p, plan.delta_r / p.payload_size);
    }

    #[test]
    fn single_packet_message_gets_one_checkpoint() {
        let p = p16();
        let plan = select_checkpoint_interval(&p, 100, nca_sim::ns(300), 0.2);
        assert_eq!(plan.num_checkpoints, 1);
        assert_eq!(plan.delta_p, 1);
    }
}
