//! Calibrated handler and host cost models.
//!
//! The paper models the general payload-handler runtime as
//! `T_PH(γ) = T_init + T_setup + γ · T_block` (Sec. 3.2.4) and reports
//! measured breakdowns in Fig. 12 for 16 Cortex-A15 HPUs @ 800 MHz.
//! We implement exactly that decomposition; every constant below is a
//! calibration anchored to a published curve:
//!
//! * Fig. 2 — minimal handler envelope (~226 ns) closing the 24.4 %
//!   1-byte-put overhead.
//! * Fig. 12 — specialized handlers ≈ 0.4 µs at γ=16; RW-CP ≈ 2×
//!   specialized; RO-CP dominated by its checkpoint copy (init) and
//!   catch-up (87 % of runtime at γ=16); HPU-local ≈ 15 µs at γ=16 with
//!   `(P−1)·γ` catch-up blocks per packet.
//! * Fig. 8 — crossover vs host-based unpack at 4 B blocks: tiny DMA
//!   writes make the PCIe engine the bottleneck for offload, while the
//!   host's tight copy loop (~4 cycles/block on the 3.4 GHz i7-4770)
//!   stays ahead.
//!
//! All times are picoseconds; HPU cycles are converted at the configured
//! clock (800 MHz default ⇒ 1.25 ns/cycle).

use nca_ddt::segment::SegStats;
use nca_sim::Time;
use nca_spin::handler::HandlerCost;
use nca_spin::params::NicParams;

/// Handler-phase constants in HPU **cycles** (800 MHz A15 reference).
#[derive(Debug, Clone, Copy)]
pub struct HandlerCycles {
    /// `T_init`: handler launch + argument marshalling.
    pub init: u64,
    /// `T_init` extra for RO-CP: the 612 B checkpoint copy into handler-
    /// local state (≈ 2 cycles/byte incl. locality penalty).
    pub init_ckpt_copy: u64,
    /// `T_setup`: datatype-processing function startup.
    pub setup: u64,
    /// Per contiguous region found & DMA command issued — general
    /// (MPITypes-interpreting) handlers.
    pub block_general: u64,
    /// Per contiguous region — specialized handlers (straight-line loop).
    pub block_specialized: u64,
    /// Per region traversed during catch-up (no DMA issue).
    pub block_catchup: u64,
    /// One binary-search probe (indexed/indexed-block specialized
    /// handlers locate the first block of a packet in O(log m)).
    pub search_probe: u64,
}

impl Default for HandlerCycles {
    fn default() -> Self {
        HandlerCycles {
            init: 120,             // 150 ns @800 MHz
            init_ckpt_copy: 1224,  // 612 B × 2 cy/B ≈ 1.53 µs
            setup: 80,             // 100 ns
            block_general: 36,     // 45 ns
            block_specialized: 12, // 15 ns
            block_catchup: 32,     // 40 ns
            search_probe: 16,      // 20 ns
        }
    }
}

/// Host-side unpack model (MPITypes `MPIT_Type_memcpy` on the paper's
/// i7-4770 @ 3.4 GHz, cold caches).
///
/// The per-byte rate is working-set dependent: messages far larger than
/// the LLC unpack at the cold rate (the nca-memsim LLC replay shows
/// ≈3.5–4× DRAM amplification over the copied volume ⇒ ≈2.5 GB/s),
/// while messages that fit comfortably run near copy speed. The
/// transition is log-interpolated between `llc/32` and `llc` bytes.
/// This is what makes the FFT2D offload benefit shrink at scale
/// (Fig. 19): per-peer messages drop below the LLC as P grows.
#[derive(Debug, Clone, Copy)]
pub struct HostCostModel {
    /// Fixed call overhead.
    pub base: Time,
    /// Per contiguous region (merged) — loop iteration + address calc.
    pub per_block: Time,
    /// Per byte, cold (working set ≫ LLC).
    pub per_byte_cold_ps: f64,
    /// Per byte, hot (working set ≪ LLC).
    pub per_byte_hot_ps: f64,
    /// LLC capacity in bytes (8 MiB on the i7-4770).
    pub llc_bytes: u64,
}

impl Default for HostCostModel {
    fn default() -> Self {
        HostCostModel {
            base: nca_sim::ns(400),
            per_block: nca_sim::ps(1_200), // 1.2 ns ≈ 4 cycles @3.4 GHz
            per_byte_cold_ps: 400.0,       // ≈ 2.5 GB/s effective
            per_byte_hot_ps: 50.0,         // ≈ 20 GB/s copy speed
            llc_bytes: 8 << 20,
        }
    }
}

impl HostCostModel {
    /// Effective per-byte cost for a message of `bytes`.
    pub fn per_byte_ps(&self, bytes: u64) -> f64 {
        let lo = (self.llc_bytes / 32) as f64; // fully hot below this
        let hi = self.llc_bytes as f64 * 4.0; // fully cold above this
        let b = (bytes as f64).max(1.0);
        if b <= lo {
            return self.per_byte_hot_ps;
        }
        if b >= hi {
            return self.per_byte_cold_ps;
        }
        let x = (b / lo).ln() / (hi / lo).ln();
        self.per_byte_hot_ps + x * (self.per_byte_cold_ps - self.per_byte_hot_ps)
    }

    /// Cold-cache unpack time — the paper's baseline condition ("the
    /// message has just been copied from the NIC to main memory", no
    /// direct cache placement). Used by the host-unpack baseline.
    pub fn unpack_time(&self, bytes: u64, blocks: u64) -> Time {
        self.base + blocks * self.per_block + (bytes as f64 * self.per_byte_cold_ps).round() as Time
    }

    /// Unpack time when the unpack is part of a phase with a larger
    /// total `working_set` (e.g. the 63 back-to-back messages of an
    /// alltoall): the cache temperature is set by the phase, not the
    /// single message.
    pub fn unpack_time_ws(&self, bytes: u64, blocks: u64, working_set: u64) -> Time {
        self.base
            + blocks * self.per_block
            + (bytes as f64 * self.per_byte_ps(working_set.max(bytes))).round() as Time
    }

    /// Host-side cost of creating one checkpoint table entry and copying
    /// it to NIC memory (Fig. 18 amortization): segment snapshot + PCIe
    /// write of 612 B.
    pub fn checkpoint_create_time(&self) -> Time {
        nca_sim::ns(900)
    }
}

/// Convert per-packet segment statistics into a [`HandlerCost`] for a
/// *general* (MPITypes-based) handler.
pub fn general_handler_cost(
    p: &NicParams,
    cyc: &HandlerCycles,
    stats: &SegStats,
    ckpt_copy: bool,
) -> HandlerCost {
    let init = cyc.init + if ckpt_copy { cyc.init_ckpt_copy } else { 0 };
    HandlerCost {
        init: p.cycles(init),
        setup: p.cycles(cyc.setup + stats.catchup_blocks * cyc.block_catchup),
        processing: p.cycles(stats.blocks_emitted * cyc.block_general),
    }
}

/// Convert per-packet segment statistics into a [`HandlerCost`] for a
/// *specialized* handler. `search_depth` is the binary-search depth to
/// locate the first block (0 for vector shapes).
pub fn specialized_handler_cost(
    p: &NicParams,
    cyc: &HandlerCycles,
    blocks: u64,
    search_depth: u32,
) -> HandlerCost {
    HandlerCost {
        init: p.cycles(cyc.init),
        setup: p.cycles(search_depth as u64 * cyc.search_probe),
        processing: p.cycles(blocks * cyc.block_specialized),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params16() -> NicParams {
        NicParams::with_hpus(16)
    }

    #[test]
    fn fig12_specialized_magnitude() {
        // γ=16 specialized handler ≈ 0.35–0.45 µs.
        let p = params16();
        let cyc = HandlerCycles::default();
        let c = specialized_handler_cost(&p, &cyc, 16, 0);
        let total_us = c.total() as f64 / 1e6;
        assert!((0.3..=0.5).contains(&total_us), "got {total_us} µs");
    }

    #[test]
    fn fig12_rwcp_about_2x_specialized() {
        let p = params16();
        let cyc = HandlerCycles::default();
        let stats = SegStats {
            blocks_emitted: 16,
            ..Default::default()
        };
        let g = general_handler_cost(&p, &cyc, &stats, false);
        let s = specialized_handler_cost(&p, &cyc, 16, 0);
        let ratio = g.total() as f64 / s.total() as f64;
        assert!(
            (1.5..=3.0).contains(&ratio),
            "RW-CP/specialized ratio {ratio}"
        );
    }

    #[test]
    fn fig12_hpu_local_dominated_by_catchup() {
        // HPU-local at γ=16, P=16: catch-up = 15 packets × 16 blocks.
        let p = params16();
        let cyc = HandlerCycles::default();
        let stats = SegStats {
            blocks_emitted: 16,
            catchup_blocks: 15 * 16,
            ..Default::default()
        };
        let c = general_handler_cost(&p, &cyc, &stats, false);
        let total_us = c.total() as f64 / 1e6;
        assert!((8.0..=18.0).contains(&total_us), "got {total_us} µs");
        assert!(
            c.setup as f64 / c.total() as f64 > 0.8,
            "setup must dominate"
        );
    }

    #[test]
    fn fig12_rocp_init_is_checkpoint_copy() {
        let p = params16();
        let cyc = HandlerCycles::default();
        let stats = SegStats {
            blocks_emitted: 16,
            catchup_blocks: 64,
            ..Default::default()
        };
        let c = general_handler_cost(&p, &cyc, &stats, true);
        assert!(c.init > nca_sim::us(1), "checkpoint copy ≈ 1.5 µs");
    }

    #[test]
    fn host_model_block_sensitivity() {
        let h = HostCostModel::default();
        let msg = 4u64 << 20;
        let coarse = h.unpack_time(msg, msg / 2048);
        let fine = h.unpack_time(msg, msg / 4);
        assert!(
            fine as f64 > coarse as f64 * 1.5,
            "tiny blocks must slow the host unpack ({fine} vs {coarse})"
        );
        // 4 MiB with 2 KiB blocks ≈ 1.7 ms → ~20 Gbit/s (Fig. 8 host line).
        let gbit = nca_sim::units::throughput_gbit(msg, coarse);
        assert!(
            (12.0..=35.0).contains(&gbit),
            "host coarse throughput {gbit}"
        );
    }
}
