//! The two baselines the paper compares against.
//!
//! * **Host-based unpack** (`RDMA + CPU unpack`): the NIC lands the
//!   packed message in a staging buffer via the non-processing path; the
//!   CPU then runs an MPITypes-style unpack with cold caches. Fig. 8's
//!   "Host" line and the `T` baselines of Fig. 16.
//! * **Portals 4 iovec offload**: the NIC scatters directly using an
//!   input/output vector but can hold only `v = 32` scatter-gather
//!   entries (ConnectX-3 limit); every `v` consumed regions cost one
//!   500 ns PCIe read to refill. Assumes in-order arrival.

use nca_ddt::dataloop::compile_cached;
use nca_ddt::flatten::flatten;
use nca_ddt::types::Datatype;
use nca_sim::Time;
use nca_spin::params::NicParams;

use crate::costmodel::HostCostModel;

/// Paper's iovec NIC capacity (max scatter-gather entries of a Mellanox
/// ConnectX-3).
pub const IOVEC_NIC_ENTRIES: u64 = 32;

/// PCIe read latency for one iovec refill (paper: 500 ns, after
/// Neugebauer et al.).
pub const IOVEC_REFILL_LATENCY: Time = nca_sim::ns(500);

/// Outcome of a baseline receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineReport {
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Merged contiguous regions in the receive layout.
    pub regions: u64,
    /// Message processing time (first byte at NIC → last byte placed).
    pub processing_time: Time,
    /// Portion spent in the CPU unpack (host baseline only).
    pub unpack_time: Time,
    /// Bytes that must be moved to the NIC to support the method
    /// (iovec list for the iovec baseline; 0 for host unpack).
    pub nic_bytes: u64,
}

impl BaselineReport {
    /// Receive throughput over the processing time.
    pub fn throughput_gbit(&self) -> f64 {
        nca_sim::units::throughput_gbit(self.msg_bytes, self.processing_time)
    }
}

/// Time for the packed message to be fully staged in host memory via the
/// non-processing (RDMA) path, measured from the first byte at the NIC.
fn staging_time(p: &NicParams, msg_bytes: u64) -> Time {
    let npkt = msg_bytes.div_ceil(p.payload_size).max(1);
    let wire = p.line_rate.time_for(msg_bytes + npkt * p.pkt_header_bytes);
    // Last packet: passthrough parse + DMA injection + PCIe landing.
    wire + p.nic_passthrough + p.dma_service_time(p.payload_size.min(msg_bytes)) + p.pcie_latency
}

/// Host-based unpack baseline (paper Fig. 4 left, receiver side).
pub fn host_unpack(
    dt: &Datatype,
    count: u32,
    p: &NicParams,
    host: &HostCostModel,
) -> BaselineReport {
    let dl = compile_cached(dt, count);
    let staged = staging_time(p, dl.size);
    let unpack = host.unpack_time(dl.size, dl.blocks);
    BaselineReport {
        msg_bytes: dl.size,
        regions: dl.blocks,
        processing_time: staged + unpack,
        unpack_time: unpack,
        nic_bytes: 0,
    }
}

/// Portals 4 iovec offload baseline.
///
/// The NIC consumes packets in order, issuing one DMA write per region
/// fragment; after every [`IOVEC_NIC_ENTRIES`] regions it stalls for one
/// PCIe round-trip to fetch the next entries. The pipeline time is the
/// maximum of wire arrival and NIC consumption, plus tail latencies.
pub fn iovec_offload(dt: &Datatype, count: u32, p: &NicParams) -> BaselineReport {
    let iov = flatten(dt, count);
    let msg_bytes = iov.total_bytes();
    let regions = iov.entries.len() as u64;
    let npkt = msg_bytes.div_ceil(p.payload_size).max(1);
    let wire = p.line_rate.time_for(msg_bytes + npkt * p.pkt_header_bytes);

    // NIC-side consumption: per-region DMA issue + refill stalls.
    let refills = regions / IOVEC_NIC_ENTRIES;
    let mut dma_busy: Time = 0;
    for e in &iov.entries {
        dma_busy += p.dma_service_time(e.len);
    }
    let consume = dma_busy + refills * IOVEC_REFILL_LATENCY;

    let processing_time = p.nic_passthrough + wire.max(consume) + p.pcie_latency;
    BaselineReport {
        msg_bytes,
        regions,
        processing_time,
        unpack_time: 0,
        nic_bytes: iov.nic_bytes(),
    }
}

/// Pipelined host unpack: instead of waiting for the full message, the
/// CPU unpacks each packet's worth of stream as it lands in the staging
/// buffer, overlapping reception with unpacking (the optimization the
/// paper notes MPI can do when not forced through `MPI_Unpack`). Still
/// not zero-copy: every byte crosses the memory hierarchy twice.
pub fn host_pipelined_unpack(
    dt: &Datatype,
    count: u32,
    p: &NicParams,
    host: &HostCostModel,
) -> BaselineReport {
    let dl = compile_cached(dt, count);
    let msg = dl.size;
    let npkt = msg.div_ceil(p.payload_size).max(1);
    let blocks_per_pkt = (dl.blocks as f64 / npkt as f64).ceil() as u64;
    // Per-packet unpack cost (cold stream, no amortized base).
    let per_pkt = host
        .unpack_time(p.payload_size.min(msg), blocks_per_pkt)
        .saturating_sub(host.base)
        + host.base / npkt.max(1);
    // Packet i is staged at t_arr(i); the CPU chains unpacks.
    let t_pkt = p.t_pkt();
    let stage_latency = p.nic_passthrough + p.dma_service_time(p.payload_size) + p.pcie_latency;
    let mut cpu_free: Time = 0;
    for i in 0..npkt {
        let staged = (i + 1) * t_pkt + stage_latency;
        cpu_free = cpu_free.max(staged) + per_pkt;
    }
    BaselineReport {
        msg_bytes: msg,
        regions: dl.blocks,
        processing_time: cpu_free,
        unpack_time: npkt * per_pkt,
        nic_bytes: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_ddt::types::{elem, DatatypeExt};

    fn p16() -> NicParams {
        NicParams::with_hpus(16)
    }

    #[test]
    fn host_unpack_dominated_by_blocks_when_tiny() {
        let h = HostCostModel::default();
        let fine = Datatype::vector(1 << 20, 1, 2, &elem::int()); // 4 MiB of 4 B blocks
        let coarse = Datatype::vector(2048, 256, 512, &elem::double()); // 4 MiB of 2 KiB
        let rf = host_unpack(&fine, 1, &p16(), &h);
        let rc = host_unpack(&coarse, 1, &p16(), &h);
        assert_eq!(rf.msg_bytes, rc.msg_bytes);
        assert!(rf.processing_time > rc.processing_time);
        assert!(rf.unpack_time as f64 > 1.5 * rc.unpack_time as f64);
    }

    #[test]
    fn iovec_refills_hurt_many_regions() {
        let p = p16();
        let fine = Datatype::vector(1 << 16, 1, 2, &elem::int()); // 256 KiB, 65536 regions
        let coarse = Datatype::vector(128, 256, 512, &elem::double()); // 256 KiB, 128 regions
        let rf = iovec_offload(&fine, 1, &p);
        let rc = iovec_offload(&coarse, 1, &p);
        assert!(rf.processing_time > rc.processing_time * 2);
        // iovec list size is linear in regions
        assert_eq!(rf.nic_bytes, 16 * 65536);
        assert_eq!(rc.nic_bytes, 16 * 128);
    }

    #[test]
    fn contiguous_iovec_hits_line_rate() {
        let p = p16();
        let dt = Datatype::contiguous(1 << 20, &elem::int());
        let r = iovec_offload(&dt, 1, &p);
        let tp = r.throughput_gbit();
        assert!(tp > 150.0, "contiguous iovec ≈ line rate, got {tp}");
    }

    #[test]
    fn pipelined_host_beats_plain_host() {
        let h = HostCostModel::default();
        let p = p16();
        let dt = Datatype::vector(2048, 128, 256, &elem::double()); // 2 MiB
        let plain = host_unpack(&dt, 1, &p, &h);
        let piped = host_pipelined_unpack(&dt, 1, &p, &h);
        assert!(piped.processing_time < plain.processing_time);
        // but the CPU still does the same unpack work
        assert!(piped.unpack_time * 10 > plain.unpack_time * 8);
    }

    #[test]
    fn pipelined_host_still_loses_to_offload_on_coarse_types() {
        let h = HostCostModel::default();
        let p = p16();
        let dt = Datatype::vector(1024, 256, 512, &elem::double()); // 2 MiB, 2 KiB blocks
        let piped = host_pipelined_unpack(&dt, 1, &p, &h);
        // wire time alone is ~84 us; pipelined unpack adds ~0.4 ns/B.
        let wire = p.line_rate.time_for(dt.size);
        assert!(piped.processing_time > wire + dt.size * 300 / 1000);
    }

    #[test]
    fn host_throughput_in_expected_band() {
        // Fig. 8 host line: tens of Gbit/s for a 4 MiB vector message.
        let h = HostCostModel::default();
        let dt = Datatype::vector(8192, 64, 128, &elem::double()); // 4 MiB, 512 B blocks
        let r = host_unpack(&dt, 1, &p16(), &h);
        let tp = r.throughput_gbit();
        assert!((10.0..=40.0).contains(&tp), "host throughput {tp}");
    }
}
