//! The receiver-side DDT offload strategies (paper Sec. 3.2).
//!
//! * [`SpecializedProcessor`] — datatype-specific handlers (vector,
//!   indexed-block, indexed, nested vector) with O(1)-arithmetic or
//!   binary-search block location (Sec. 3.2.3).
//! * [`GeneralProcessor`] — MPITypes-based general handlers in the three
//!   write-conflict-free variants of Sec. 3.2.4: **HPU-local**, **RO-CP**
//!   (read-only checkpoints) and **RW-CP** (progressing checkpoints under
//!   blocked-RR scheduling).
//!
//! Both implement `nca_spin::MessageProcessor`: they *really* scatter the
//! packet bytes (so end-to-end tests can verify the receive buffer) and
//! report modelled costs per the calibrated [`crate::costmodel`].

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use nca_ddt::checkpoint::CheckpointTable;
use nca_ddt::dataloop::{compile_cached, Dataloop};
use nca_ddt::normalize::{classify, Shape};
use nca_ddt::segment::Segment;
use nca_ddt::types::Datatype;
use nca_sim::Time;
use nca_spin::handler::{HandlerOutput, MessageProcessor, PacketCtx, SchedPolicy};
use nca_spin::params::NicParams;
use nca_telemetry::Telemetry;

use crate::costmodel::{
    general_handler_cost, specialized_handler_cost, HandlerCycles, HostCostModel,
};
use crate::engine::{scatter_packet, scatter_packet_seek};
use crate::heuristic::{select_checkpoint_interval, CheckpointPlan};

/// Which general-handler variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeneralKind {
    /// Per-vHPU segment replicas, Δp = 1, P vHPUs; pays (P−1)·γ catch-up
    /// blocks per packet.
    HpuLocal,
    /// Read-only checkpoints: every handler copies the closest checkpoint
    /// and processes locally.
    RoCp,
    /// Progressing checkpoints: blocked-RR binds each Δr-sequence to the
    /// vHPU owning its checkpoint; no copy, no catch-up in order.
    RwCp,
}

/// Multiplicative hasher for the small-integer vHPU keys of the per-vHPU
/// segment maps. The map is touched once per packet on the handler hot
/// path; SipHash dominates the lookup there, and the keys are dense
/// sequence-derived ids with no adversarial source, so a single `xor` +
/// multiply (the fxhash recipe) is both sufficient and ~10x cheaper.
#[derive(Default)]
pub struct SmallKeyHasher(u64);

impl Hasher for SmallKeyHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x517c_c1b7_2722_0a95);
        }
    }
    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.0 = (self.0 ^ i).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// `HashMap` keyed by small trusted integers (vHPU ids).
pub type SmallKeyMap<V> = HashMap<u64, V, BuildHasherDefault<SmallKeyHasher>>;

/// Bound on the DMA-scratch stack a processor keeps: at most one vector
/// per physical HPU can be in flight, and the pipeline caps HPUs well
/// below this.
const MAX_SCRATCH: usize = 64;

/// Estimate of the per-packet general handler runtime at the message's
/// average γ — the `T_PH(γ)` the Δr heuristic needs.
pub fn estimate_t_ph(p: &NicParams, cyc: &HandlerCycles, dl: &Dataloop) -> Time {
    let npkt = dl.size.div_ceil(p.payload_size).max(1);
    let gamma = (dl.blocks as f64 / npkt as f64).ceil().max(1.0) as u64;
    p.cycles(cyc.init + cyc.setup + gamma * cyc.block_general)
}

/// The general (MPITypes-interpreting) processor.
pub struct GeneralProcessor {
    kind: GeneralKind,
    params: NicParams,
    cyc: HandlerCycles,
    host: HostCostModel,
    dl: Arc<Dataloop>,
    table: Option<CheckpointTable>,
    plan: Option<CheckpointPlan>,
    /// Per-vHPU working segments (HPU-local replicas / RW-CP owned
    /// checkpoints).
    segs: SmallKeyMap<Segment>,
    /// Recycled DMA-write vectors ([`MessageProcessor::recycle_dma`]).
    scratch: Vec<Vec<nca_spin::handler::DmaWrite>>,
    npkt: u64,
    /// Times an RW-CP checkpoint had to be reverted from its master copy
    /// (out-of-order arrivals).
    pub reverts: u64,
    tel: Telemetry,
}

impl GeneralProcessor {
    /// Build for `count` copies of `dt`. `epsilon` is the scheduling-
    /// overhead bound of the Δr heuristic (the paper uses 0.2).
    pub fn new(
        kind: GeneralKind,
        dt: &Datatype,
        count: u32,
        params: NicParams,
        epsilon: f64,
    ) -> Self {
        let dl = compile_cached(dt, count);
        let cyc = HandlerCycles::default();
        let npkt = dl.size.div_ceil(params.payload_size).max(1);
        let (table, plan) = match kind {
            GeneralKind::HpuLocal => (None, None),
            GeneralKind::RoCp | GeneralKind::RwCp => {
                let t_ph = estimate_t_ph(&params, &cyc, &dl);
                let plan = select_checkpoint_interval(&params, dl.size, t_ph, epsilon);
                let table = CheckpointTable::build(&dl, plan.delta_r.max(1))
                    .expect("valid checkpoint interval");
                (Some(table), Some(plan))
            }
        };
        GeneralProcessor {
            kind,
            params,
            cyc,
            host: HostCostModel::default(),
            dl,
            table,
            plan,
            segs: SmallKeyMap::default(),
            scratch: Vec::new(),
            npkt,
            reverts: 0,
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a trace sink. Records the checkpoint-table construction
    /// (a host-side "time 0" activity) immediately, then handler-phase
    /// timings, catch-up blocks and RW-CP reverts as packets arrive.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        if let Some(table) = &self.table {
            tel.counter("core", "checkpoints_created", 0, 0, table.len() as u64);
            for i in 0..table.len() as u64 {
                tel.instant("core", "checkpoint_create", i, 0);
            }
        }
        self.tel = tel;
        self
    }

    /// The Δr plan (RO-CP/RW-CP only).
    pub fn plan(&self) -> Option<&CheckpointPlan> {
        self.plan.as_ref()
    }

    fn record_phases(&self, ctx: &PacketCtx<'_>, out: &HandlerOutput) {
        if self.tel.is_enabled() {
            let c = &out.cost;
            self.tel
                .value("core", "t_init", ctx.vhpu, ctx.now, c.init as f64);
            self.tel
                .value("core", "t_setup", ctx.vhpu, ctx.now, c.setup as f64);
            self.tel.value(
                "core",
                "t_processing",
                ctx.vhpu,
                ctx.now,
                c.processing as f64,
            );
        }
    }
}

impl MessageProcessor for GeneralProcessor {
    fn policy(&self) -> SchedPolicy {
        match self.kind {
            GeneralKind::HpuLocal => SchedPolicy::BlockedRR {
                delta_p: 1,
                num_vhpus: self.params.hpus as u64,
            },
            GeneralKind::RoCp => SchedPolicy::Default,
            GeneralKind::RwCp => {
                let plan = self.plan.as_ref().expect("RW-CP has a plan");
                SchedPolicy::BlockedRR {
                    delta_p: plan.delta_p,
                    num_vhpus: self.npkt.div_ceil(plan.delta_p).max(1),
                }
            }
        }
    }

    fn nic_mem_bytes(&self) -> u64 {
        let descr = self.dl.nic_descr_bytes();
        match self.kind {
            GeneralKind::HpuLocal => {
                descr + self.params.hpus as u64 * nca_ddt::checkpoint::CHECKPOINT_NIC_BYTES
            }
            GeneralKind::RoCp | GeneralKind::RwCp => {
                descr + self.table.as_ref().map(|t| t.nic_bytes()).unwrap_or(0)
            }
        }
    }

    fn host_setup_time(&self) -> Time {
        match self.kind {
            GeneralKind::HpuLocal => {
                // Copy the dataloop descriptor to the NIC.
                self.params.pcie_bw.time_for(self.dl.nic_descr_bytes()) + self.params.pcie_latency
            }
            GeneralKind::RoCp | GeneralKind::RwCp => {
                let n = self.table.as_ref().map(|t| t.len() as u64).unwrap_or(0);
                self.params.pcie_bw.time_for(self.dl.nic_descr_bytes())
                    + self.params.pcie_latency
                    + n * self.host.checkpoint_create_time()
            }
        }
    }

    fn on_payload(&mut self, ctx: &mut PacketCtx<'_>) -> HandlerOutput {
        let first = ctx.stream_offset;
        let scratch = self.scratch.pop().unwrap_or_default();
        let direct = ctx.direct.as_mut().map(|d| (&mut *d.buf, d.origin));
        let out = match self.kind {
            GeneralKind::HpuLocal => {
                let dl = Arc::clone(&self.dl);
                let seg = self
                    .segs
                    .entry(ctx.vhpu)
                    .or_insert_with(|| Segment::new(dl));
                let (dma, stats) = scatter_packet(seg, first, ctx.payload, scratch, direct);
                self.tel.counter(
                    "core",
                    "catchup_blocks",
                    ctx.vhpu,
                    ctx.now,
                    stats.catchup_blocks,
                );
                HandlerOutput {
                    cost: general_handler_cost(&self.params, &self.cyc, &stats, false),
                    dma,
                }
            }
            GeneralKind::RoCp => {
                // Copy the closest checkpoint, process locally, discard.
                let table = self.table.as_ref().expect("RO-CP table");
                let mut seg = table.closest(first).materialize();
                let (dma, stats) = scatter_packet(&mut seg, first, ctx.payload, scratch, direct);
                self.tel.counter(
                    "core",
                    "catchup_blocks",
                    ctx.vhpu,
                    ctx.now,
                    stats.catchup_blocks,
                );
                HandlerOutput {
                    cost: general_handler_cost(&self.params, &self.cyc, &stats, true),
                    dma,
                }
            }
            GeneralKind::RwCp => {
                let table = self.table.as_ref().expect("RW-CP table");
                let mut reverted = false;
                let seg = match self.segs.entry(ctx.vhpu) {
                    std::collections::hash_map::Entry::Occupied(e) => {
                        let seg = e.into_mut();
                        if first < seg.position() {
                            // Out-of-order within the sequence: revert the
                            // progressed checkpoint from its master copy.
                            *seg = table.closest(first).materialize();
                            reverted = true;
                        }
                        seg
                    }
                    std::collections::hash_map::Entry::Vacant(v) => {
                        // First packet of the sequence: the vHPU takes
                        // ownership of its checkpoint (no copy needed).
                        v.insert(table.closest(first).materialize())
                    }
                };
                let (dma, stats) = scatter_packet(seg, first, ctx.payload, scratch, direct);
                if reverted {
                    self.reverts += 1;
                    self.tel
                        .counter("core", "checkpoint_reverts", ctx.vhpu, ctx.now, 1);
                    self.tel
                        .instant("core", "checkpoint_revert", ctx.vhpu, ctx.now);
                }
                self.tel.counter(
                    "core",
                    "catchup_blocks",
                    ctx.vhpu,
                    ctx.now,
                    stats.catchup_blocks,
                );
                HandlerOutput {
                    cost: general_handler_cost(&self.params, &self.cyc, &stats, reverted),
                    dma,
                }
            }
        };
        self.record_phases(ctx, &out);
        out
    }

    fn recycle_dma(&mut self, mut scratch: Vec<nca_spin::handler::DmaWrite>) {
        scratch.clear();
        if self.scratch.len() < MAX_SCRATCH {
            self.scratch.push(scratch);
        }
    }

    fn name(&self) -> &'static str {
        match self.kind {
            GeneralKind::HpuLocal => "HPU-local",
            GeneralKind::RoCp => "RO-CP",
            GeneralKind::RwCp => "RW-CP",
        }
    }
}

/// The specialized (datatype-specific) processor.
pub struct SpecializedProcessor {
    params: NicParams,
    cyc: HandlerCycles,
    dl: Arc<Dataloop>,
    seg: Segment,
    shape: Shape,
    nic_mem: u64,
    /// Recycled DMA-write vectors ([`MessageProcessor::recycle_dma`]).
    scratch: Vec<Vec<nca_spin::handler::DmaWrite>>,
    tel: Telemetry,
}

impl SpecializedProcessor {
    /// Build for `count` copies of `dt`. Works for any type (the offset/
    /// length lists degenerate to a full flatten for `Shape::General`,
    /// like a user-written custom handler would).
    pub fn new(dt: &Datatype, count: u32, params: NicParams) -> Self {
        let dl = compile_cached(dt, count);
        let shape = classify(dt);
        let nic_mem = Self::shape_nic_bytes(&shape, &dl);
        let seg = Segment::new(Arc::clone(&dl));
        SpecializedProcessor {
            params,
            cyc: HandlerCycles::default(),
            dl,
            seg,
            shape,
            nic_mem,
            scratch: Vec::new(),
            tel: Telemetry::disabled(),
        }
    }

    /// Attach a trace sink (handler-phase timings per packet).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// NIC state the specialized handler needs: O(1) for (nested)
    /// vectors, offset/length lists otherwise ("the specialized handler
    /// always requires the minimum amount of space").
    fn shape_nic_bytes(shape: &Shape, dl: &Dataloop) -> u64 {
        match shape {
            Shape::Contiguous { .. } => 16,
            Shape::Vector { .. } => 32,
            Shape::Vector2 { .. } => 56,
            Shape::IndexedBlock { count, .. } => 16 + 8 * count,
            Shape::Indexed { count } => 16 + 16 * count,
            // No true specialized handler: a custom handler would carry
            // the full flattened region list.
            Shape::General => 16 + 16 * dl.blocks,
        }
    }

    /// The classified shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    fn search_depth(&self) -> u32 {
        match &self.shape {
            Shape::Contiguous { .. } | Shape::Vector { .. } | Shape::Vector2 { .. } => 0,
            Shape::IndexedBlock { count, .. } => (*count as f64).log2().ceil() as u32,
            Shape::Indexed { count } => (*count as f64).log2().ceil() as u32,
            Shape::General => (self.dl.blocks.max(2) as f64).log2().ceil() as u32,
        }
    }
}

impl MessageProcessor for SpecializedProcessor {
    fn policy(&self) -> SchedPolicy {
        SchedPolicy::Default
    }

    fn nic_mem_bytes(&self) -> u64 {
        self.nic_mem
    }

    fn host_setup_time(&self) -> Time {
        self.params.pcie_bw.time_for(self.nic_mem) + self.params.pcie_latency
    }

    fn on_payload(&mut self, ctx: &mut PacketCtx<'_>) -> HandlerOutput {
        let scratch = self.scratch.pop().unwrap_or_default();
        let direct = ctx.direct.as_mut().map(|d| (&mut *d.buf, d.origin));
        let (dma, stats) = scatter_packet_seek(
            &mut self.seg,
            ctx.stream_offset,
            ctx.payload,
            scratch,
            direct,
        );
        let out = HandlerOutput {
            cost: specialized_handler_cost(
                &self.params,
                &self.cyc,
                stats.blocks_emitted,
                self.search_depth(),
            ),
            dma,
        };
        if self.tel.is_enabled() {
            let c = &out.cost;
            self.tel
                .value("core", "t_init", ctx.vhpu, ctx.now, c.init as f64);
            self.tel
                .value("core", "t_setup", ctx.vhpu, ctx.now, c.setup as f64);
            self.tel.value(
                "core",
                "t_processing",
                ctx.vhpu,
                ctx.now,
                c.processing as f64,
            );
        }
        out
    }

    fn recycle_dma(&mut self, mut scratch: Vec<nca_spin::handler::DmaWrite>) {
        scratch.clear();
        if self.scratch.len() < MAX_SCRATCH {
            self.scratch.push(scratch);
        }
    }

    fn name(&self) -> &'static str {
        "Specialized"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_ddt::types::{elem, DatatypeExt};
    use nca_spin::nic::{ReceiveSim, RunConfig};

    fn vec_dt(count: u32, blocklen: u32, stride: i64) -> Datatype {
        Datatype::vector(count, blocklen, stride, &elem::double())
    }

    fn packed_for(dt: &Datatype, count: u32) -> (Vec<u8>, Vec<u8>, i64, u64) {
        let (origin, span) = nca_ddt::pack::buffer_span(dt, count);
        let src: Vec<u8> = (0..span as usize).map(|i| (i % 251) as u8).collect();
        let packed = nca_ddt::pack::pack(dt, count, &src, origin).unwrap();
        let mut expect = vec![0u8; span as usize];
        nca_ddt::pack::unpack(dt, count, &packed, &mut expect, origin).unwrap();
        (packed, expect, origin, span)
    }

    fn run_end_to_end(
        proc_: Box<dyn MessageProcessor>,
        dt: &Datatype,
        count: u32,
        ooo: Option<u64>,
    ) {
        let (packed, expect, origin, span) = packed_for(dt, count);
        let cfg = RunConfig {
            params: NicParams::with_hpus(16),
            out_of_order: ooo,
            record_dma_history: false,
            portals: None,
            telemetry: Telemetry::disabled(),
            faults: nca_sim::FaultSpec::inert(),
            reliability: nca_spin::params::ReliabilityParams::default(),
            engine: nca_spin::nic::EngineMode::Auto,
        };
        let name = proc_.name();
        let report = ReceiveSim::run(proc_, packed, origin, span, &cfg);
        assert_eq!(
            report.host_buf, expect,
            "strategy {name} corrupted the receive buffer"
        );
        assert!(report.t_complete > report.t_first_byte);
    }

    #[test]
    fn all_strategies_unpack_correctly_in_order() {
        let dt = vec_dt(512, 16, 32); // 64 KiB of 128 B blocks
        let p = NicParams::with_hpus(16);
        run_end_to_end(
            Box::new(SpecializedProcessor::new(&dt, 1, p.clone())),
            &dt,
            1,
            None,
        );
        for kind in [GeneralKind::HpuLocal, GeneralKind::RoCp, GeneralKind::RwCp] {
            run_end_to_end(
                Box::new(GeneralProcessor::new(kind, &dt, 1, p.clone(), 0.2)),
                &dt,
                1,
                None,
            );
        }
    }

    #[test]
    fn all_strategies_unpack_correctly_out_of_order() {
        let dt = vec_dt(2048, 8, 16); // 128 KiB
        let p = NicParams::with_hpus(8);
        for seed in [3u64, 11] {
            run_end_to_end(
                Box::new(SpecializedProcessor::new(&dt, 1, p.clone())),
                &dt,
                1,
                Some(seed),
            );
            for kind in [GeneralKind::HpuLocal, GeneralKind::RoCp, GeneralKind::RwCp] {
                run_end_to_end(
                    Box::new(GeneralProcessor::new(kind, &dt, 1, p.clone(), 0.2)),
                    &dt,
                    1,
                    Some(seed),
                );
            }
        }
    }

    #[test]
    fn nested_type_general_strategies() {
        let inner = Datatype::vector(4, 2, 6, &elem::float());
        let dt = Datatype::vector(256, 1, 64, &inner);
        let p = NicParams::with_hpus(16);
        for kind in [GeneralKind::HpuLocal, GeneralKind::RoCp, GeneralKind::RwCp] {
            run_end_to_end(
                Box::new(GeneralProcessor::new(kind, &dt, 2, p.clone(), 0.2)),
                &dt,
                2,
                None,
            );
        }
    }

    #[test]
    fn specialized_faster_than_general_big_blocks() {
        let dt = vec_dt(2048, 256, 512); // 4 MiB, 2 KiB blocks
        let p = NicParams::with_hpus(16);
        let (packed, _, origin, span) = packed_for(&dt, 1);
        let cfg = RunConfig::new(p.clone());
        let spec = ReceiveSim::run(
            Box::new(SpecializedProcessor::new(&dt, 1, p.clone())),
            packed.clone(),
            origin,
            span,
            &cfg,
        );
        let hpul = ReceiveSim::run(
            Box::new(GeneralProcessor::new(
                GeneralKind::HpuLocal,
                &dt,
                1,
                p.clone(),
                0.2,
            )),
            packed.clone(),
            origin,
            span,
            &cfg,
        );
        let rocp = ReceiveSim::run(
            Box::new(GeneralProcessor::new(GeneralKind::RoCp, &dt, 1, p, 0.2)),
            packed,
            origin,
            span,
            &cfg,
        );
        assert!(spec.processing_time() <= hpul.processing_time());
        assert!(spec.processing_time() <= rocp.processing_time());
    }

    #[test]
    fn rwcp_policy_uses_plan() {
        let dt = vec_dt(4096, 16, 32); // 512 KiB
        let p = NicParams::with_hpus(16);
        let proc_ = GeneralProcessor::new(GeneralKind::RwCp, &dt, 1, p, 0.2);
        let plan = proc_.plan().unwrap();
        match proc_.policy() {
            SchedPolicy::BlockedRR { delta_p, num_vhpus } => {
                assert_eq!(delta_p, plan.delta_p);
                assert!(num_vhpus >= 1);
            }
            other => panic!("RW-CP must use blocked-RR, got {other:?}"),
        }
    }

    #[test]
    fn hpu_local_memory_scales_with_hpus() {
        let dt = vec_dt(4096, 16, 32);
        let small =
            GeneralProcessor::new(GeneralKind::HpuLocal, &dt, 1, NicParams::with_hpus(4), 0.2);
        let large =
            GeneralProcessor::new(GeneralKind::HpuLocal, &dt, 1, NicParams::with_hpus(32), 0.2);
        assert!(large.nic_mem_bytes() > small.nic_mem_bytes());
    }

    #[test]
    fn specialized_shape_detection() {
        let v = vec_dt(128, 4, 8);
        let p = SpecializedProcessor::new(&v, 1, NicParams::default());
        assert!(matches!(p.shape(), Shape::Vector { .. }));
        assert_eq!(p.nic_mem_bytes(), 32);

        let ib = Datatype::indexed_block(4, &[0, 9, 20, 31, 50], &elem::double()).unwrap();
        let p2 = SpecializedProcessor::new(&ib, 1, NicParams::default());
        assert!(matches!(p2.shape(), Shape::IndexedBlock { .. }));
        assert_eq!(p2.nic_mem_bytes(), 16 + 8 * 5);
    }
}
