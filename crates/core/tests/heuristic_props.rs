//! Property tests for the Δr heuristic and the offload manager.

use proptest::prelude::*;

use nca_core::api::{OffloadManager, PostOutcome, TypeAttr};
use nca_core::heuristic::select_checkpoint_interval;
use nca_ddt::checkpoint::CHECKPOINT_NIC_BYTES;
use nca_ddt::types::{elem, Datatype, DatatypeExt};
use nca_spin::params::NicParams;

proptest! {
    #[test]
    fn plan_invariants(
        msg_kib in 1u64..32_768,
        t_ph_ns in 100u64..100_000,
        hpus in 1usize..64,
        eps in 0.01f64..1.0,
    ) {
        let mut p = NicParams::with_hpus(hpus);
        p.nic_mem_capacity = 4 << 20;
        let msg = msg_kib << 10;
        let plan = select_checkpoint_interval(&p, msg, nca_sim::ns(t_ph_ns), eps);
        // Δr is a positive multiple of the payload size.
        prop_assert!(plan.delta_r > 0);
        prop_assert_eq!(plan.delta_r % p.payload_size, 0);
        prop_assert_eq!(plan.delta_p, plan.delta_r / p.payload_size);
        // checkpoint count covers the message
        prop_assert!(plan.num_checkpoints * plan.delta_r >= msg);
        prop_assert_eq!(plan.nic_bytes, plan.num_checkpoints * CHECKPOINT_NIC_BYTES);
        // memory constraint respected unless a single checkpoint is already too big
        if p.nic_mem_capacity >= CHECKPOINT_NIC_BYTES {
            prop_assert!(plan.nic_bytes <= p.nic_mem_capacity.max(CHECKPOINT_NIC_BYTES) * 2,
                "nic bytes {} vs capacity {}", plan.nic_bytes, p.nic_mem_capacity);
        }
    }

    #[test]
    fn looser_epsilon_never_needs_more_checkpoints(
        msg_kib in 64u64..16_384,
        t_ph_ns in 200u64..50_000,
    ) {
        let p = NicParams::with_hpus(16);
        let msg = msg_kib << 10;
        let tight = select_checkpoint_interval(&p, msg, nca_sim::ns(t_ph_ns), 0.05);
        let loose = select_checkpoint_interval(&p, msg, nca_sim::ns(t_ph_ns), 0.8);
        prop_assert!(loose.num_checkpoints <= tight.num_checkpoints);
    }

    #[test]
    fn offload_manager_never_overcommits(
        caps in 1u64..64, // capacity in KiB
        types in proptest::collection::vec(2u32..200, 1..12),
    ) {
        let mut p = NicParams::with_hpus(8);
        p.nic_mem_capacity = caps << 10;
        let cap = p.nic_mem_capacity;
        let mut mgr = OffloadManager::new(p);
        for (i, &blocks) in types.iter().enumerate() {
            let displs: Vec<i64> = (0..blocks as i64)
                .map(|k| k * 3 + (k * k + i as i64) % 2)
                .collect();
            let dt = Datatype::indexed_block(1, &displs, &elem::double()).expect("valid");
            let c = mgr.commit(&dt, TypeAttr::default());
            let out = mgr.post_receive(&c, 1);
            prop_assert!(mgr.nic_mem_used() <= cap, "overcommitted: {} > {}", mgr.nic_mem_used(), cap);
            if out == PostOutcome::FallbackHost {
                prop_assert!(!mgr.is_resident(&c));
            }
        }
    }
}
