//! Mergeable HDR-style histograms with logarithmic bucketing.
//!
//! The ring sink drops old events under pressure, so raw `Value`
//! samples of a hot metric (per-packet handler runtimes, DMA service
//! times) don't survive long runs. A [`LogHistogram`] fixes that: it
//! compresses any `u64` distribution into ~2k log-spaced buckets with a
//! bounded relative error, merges losslessly (bucket-wise addition),
//! and answers percentile queries — so a distribution can be carried as
//! a single [`crate::EventKind::Hist`] event however many samples fed
//! it.
//!
//! Layout: values below `2^SUB_BITS` get exact unit buckets; above
//! that, each power-of-two octave is split into `2^SUB_BITS` equal
//! sub-buckets, i.e. the classic HDR-histogram scheme with
//! `SUB_BITS` bits of precision (relative error ≤ `2^-SUB_BITS`,
//! ~3.1% at the default 5 bits).

use nca_sim::Time;

/// Sub-bucket precision in bits: each octave splits into
/// `2^SUB_BITS` buckets, bounding relative error by `2^-SUB_BITS`.
pub const SUB_BITS: u32 = 5;

const SUB: u64 = 1 << SUB_BITS; // sub-buckets per octave
const BUCKETS: usize = ((64 - SUB_BITS as usize) + 1) * SUB as usize;

/// Index of the bucket holding `v`. Monotone in `v`.
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros(); // >= SUB_BITS
        let offset = ((v >> (exp - SUB_BITS)) - SUB) as usize;
        (exp - SUB_BITS + 1) as usize * SUB as usize + offset
    }
}

/// Inclusive `(lower, upper)` value bounds of bucket `idx`.
fn bucket_bounds(idx: usize) -> (u64, u64) {
    if idx < SUB as usize {
        (idx as u64, idx as u64)
    } else {
        let exp = SUB_BITS - 1 + (idx / SUB as usize) as u32;
        let off = (idx % SUB as usize) as u64;
        let width = 1u64 << (exp - SUB_BITS);
        let lower = (SUB + off) << (exp - SUB_BITS);
        (lower, lower + (width - 1)) // grouping avoids overflow at the top bucket
    }
}

/// A mergeable log-bucketed histogram over `u64` values (picosecond
/// durations in practice, hence the [`Time`] convenience methods).
#[derive(Clone, PartialEq, Eq)]
pub struct LogHistogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for LogHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for LogHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogHistogram")
            .field("count", &self.count)
            .field("min", &self.min())
            .field("max", &self.max())
            .field("mean", &self.mean())
            .finish()
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LogHistogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Record one value.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.record_n(v, 1);
    }

    /// Record `n` occurrences of `v`.
    pub fn record_n(&mut self, v: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(v)] += n;
        self.count += n;
        self.sum += v as u128 * n as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold `other` into `self` (bucket-wise addition; lossless with
    /// respect to the bucketed representation).
    pub fn merge(&mut self, other: &LogHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of all recorded values.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest recorded value (exact), `None` when empty.
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded value (exact), `None` when empty.
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Exact arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive bounds `(lo, hi)` on the nearest-rank `q`-th
    /// percentile: the true k-th smallest sample, with
    /// `k = ceil(q/100 · count)` clamped to `[1, count]` (so, matching
    /// `nca_sim::stats::percentile`, `q ≤ 0` yields the minimum and
    /// `q ≥ 100` the maximum — both *exact*, since the extreme ranks
    /// are the tracked min/max rather than bucket bounds). `None` when
    /// empty or `q` is not finite.
    pub fn percentile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 || !q.is_finite() {
            return None;
        }
        let k = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let k = k.min(self.count);
        // The extreme ranks are known exactly: rank 1 is the tracked
        // min, rank `count` the tracked max. Answering from the bucket
        // would widen them to the bucket bounds for no reason.
        if k == 1 {
            return Some((self.min, self.min));
        }
        if k == self.count {
            return Some((self.max, self.max));
        }
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= k {
                let (lo, hi) = bucket_bounds(idx);
                return Some((lo.max(self.min), hi.min(self.max)));
            }
        }
        Some((self.min, self.max)) // unreachable: cum reaches count
    }

    /// Nearest-rank `q`-th percentile estimate (upper bound of the
    /// bucket holding the k-th sample, clamped to the observed range).
    pub fn percentile(&self, q: f64) -> Option<u64> {
        self.percentile_bounds(q).map(|(_, hi)| hi)
    }

    /// Nearest-rank quantile for `q` in `[0, 1]` (`0.999` = p999).
    /// Same clamping as [`percentile`](Self::percentile): `q ≤ 0`
    /// yields the exact minimum, `q ≥ 1` the exact maximum; `None`
    /// when empty or `q` is not finite.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.percentile(q * 100.0)
    }

    /// The p999 tail (99.9th percentile); `None` when empty.
    pub fn p999(&self) -> Option<u64> {
        self.percentile(99.9)
    }

    /// [`percentile`](Self::percentile) as a [`Time`], defaulting to 0
    /// when empty (convenient for report fields).
    pub fn percentile_ps(&self, q: f64) -> Time {
        self.percentile(q).unwrap_or(0)
    }

    /// Heap bytes held by the bucket array (the fixed cost one
    /// histogram adds to a streaming aggregate's memory accounting).
    pub fn heap_bytes(&self) -> usize {
        self.counts.capacity() * std::mem::size_of::<u64>()
    }

    /// Non-empty buckets as `(bucket_lower_bound, count)` pairs, in
    /// ascending value order (the sparse wire form used by reports).
    pub fn nonempty_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(idx, &c)| (bucket_bounds(idx).0, c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_get_exact_unit_buckets() {
        for v in 0..SUB {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v));
        }
    }

    #[test]
    fn bucket_index_is_monotone_and_bounds_are_contiguous() {
        // Walk the first few octaves exhaustively plus spot checks high up.
        let mut prev = 0usize;
        for v in 0..4096u64 {
            let idx = bucket_index(v);
            assert!(idx >= prev, "index must be monotone at v={v}");
            let (lo, hi) = bucket_bounds(idx);
            assert!(lo <= v && v <= hi, "v={v} outside bucket [{lo},{hi}]");
            prev = idx;
        }
        for v in [u64::MAX, u64::MAX / 3, 1 << 40, (1 << 40) + 12345] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            assert!(lo <= v && v <= hi);
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [100u64, 1_000, 123_456, 99_999_999, 1 << 50] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let err = (hi - lo) as f64 / lo as f64;
            assert!(err <= 1.0 / SUB as f64, "v={v}: err {err}");
        }
    }

    #[test]
    fn percentile_queries_on_known_data() {
        let mut h = LogHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // Values ≤ 100 sit within one octave of 32-wide sub-buckets:
        // every estimate must be within the bucket width of truth.
        for q in [10.0f64, 50.0, 90.0, 99.0, 100.0] {
            let truth = ((q / 100.0) * 100.0).ceil().max(1.0) as u64;
            let (lo, hi) = h.percentile_bounds(q).unwrap();
            assert!(
                lo <= truth && truth <= hi,
                "q={q}: truth {truth} not in [{lo},{hi}]"
            );
        }
        assert_eq!(h.percentile(100.0), Some(100));
    }

    #[test]
    fn empty_histogram_answers_none() {
        let h = LogHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(50.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.p999(), None);
        assert_eq!(h.mean(), 0.0);
        assert!(h.nonempty_buckets().is_empty());
    }

    #[test]
    fn quantile_boundaries_are_exact_and_match_stats_percentile() {
        // Unit buckets (< 2^SUB_BITS) are exact, so every nearest-rank
        // answer must equal the sorted-sample convention of
        // `nca_sim::stats::percentile` bit-for-bit.
        let xs: Vec<u64> = (0..SUB).flat_map(|v| [v, v, v]).collect();
        let mut h = LogHistogram::new();
        for &x in &xs {
            h.record(x);
        }
        let xs_f: Vec<f64> = xs.iter().map(|&v| v as f64).collect();
        for q in [0.0, 0.1, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let reference = nca_sim::stats::percentile(&xs_f, q).unwrap() as u64;
            assert_eq!(h.percentile(q), Some(reference), "q={q}");
            assert_eq!(h.quantile(q / 100.0), h.percentile(q), "q={q}");
        }
        // Out-of-range clamps to the exact extremes, like stats does.
        assert_eq!(h.quantile(-0.5), h.min());
        assert_eq!(h.quantile(7.0), h.max());
    }

    #[test]
    fn extreme_ranks_answer_exact_min_max_not_bucket_bounds() {
        // 1_000_000 sits in a wide bucket; the extreme ranks must still
        // come back exact from the tracked min/max.
        let mut h = LogHistogram::new();
        h.record(999_983);
        h.record(1_000_003);
        assert_eq!(h.percentile_bounds(0.0), Some((999_983, 999_983)));
        assert_eq!(h.percentile_bounds(100.0), Some((1_000_003, 1_000_003)));
        assert_eq!(h.p999(), Some(1_000_003));
    }

    #[test]
    fn non_finite_quantiles_answer_none() {
        let mut h = LogHistogram::new();
        h.record(1);
        for q in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(h.percentile(q), None);
            assert_eq!(h.quantile(q), None);
            assert_eq!(h.percentile_bounds(q), None);
        }
    }

    #[test]
    fn p999_distinguishes_the_extreme_tail() {
        let mut h = LogHistogram::new();
        h.record_n(100, 9_990);
        h.record_n(1 << 20, 10);
        let p99 = h.percentile(99.0).unwrap();
        let p999 = h.p999().unwrap();
        assert!(p99 < 200, "99% of samples are 100: p99={p99}");
        assert!(p999 >= 1 << 20, "the last 0.1% must surface: p999={p999}");
    }

    #[test]
    fn merge_equals_recording_everything_into_one() {
        let xs: Vec<u64> = (0..500).map(|i| i * i % 10_007).collect();
        let mut all = LogHistogram::new();
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        for (i, &x) in xs.iter().enumerate() {
            all.record(x);
            if i % 2 == 0 {
                a.record(x)
            } else {
                b.record(x)
            }
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all);
    }

    #[test]
    fn sparse_buckets_round_trip_counts() {
        let mut h = LogHistogram::new();
        h.record_n(7, 3);
        h.record_n(1_000_000, 2);
        let buckets = h.nonempty_buckets();
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0], (7, 3));
        let total: u64 = buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, h.count());
    }
}
