//! Adapter between [`nca_sim::SimProbe`] and a [`Telemetry`] handle.
//!
//! `nca-sim` cannot depend on this crate (this crate uses its `Time`
//! and `stats`), so the engine exposes a probe trait and this adapter
//! closes the loop: install it with `Sim::set_probe` and the event
//! loop's dispatch count and heap depth land in the trace.

use nca_sim::{SimProbe, Time};

use crate::Telemetry;

/// Records, per executed simulation event, a `events_dispatched`
/// counter increment and a `heap_depth` gauge sample under the given
/// component name.
pub struct SimTelemetryProbe {
    telemetry: Telemetry,
    component: &'static str,
}

impl SimTelemetryProbe {
    /// An adapter feeding `telemetry`, labelled `component`.
    pub fn new(telemetry: Telemetry, component: &'static str) -> Self {
        SimTelemetryProbe {
            telemetry,
            component,
        }
    }
}

impl SimProbe for SimTelemetryProbe {
    fn event_dispatched(&self, now: Time, _executed: u64, pending: usize) {
        self.telemetry
            .counter(self.component, "events_dispatched", 0, now, 1);
        self.telemetry
            .gauge(self.component, "heap_depth", 0, now, pending as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate;
    use nca_sim::Sim;

    #[test]
    fn probe_traces_the_event_loop() {
        let (tel, sink) = Telemetry::ring(1024);
        let mut sim: Sim<u32> = Sim::new();
        sim.set_probe(Box::new(SimTelemetryProbe::new(tel, "sim")));
        for t in [10u64, 20, 30] {
            sim.schedule(t, |w, _| *w += 1);
        }
        let mut world = 0u32;
        sim.run(&mut world);
        assert_eq!(world, 3);
        let evs = sink.events();
        assert_eq!(
            aggregate::counter_total(&evs, "sim", "events_dispatched"),
            3
        );
        let depths = aggregate::gauge_series(&evs, "sim", "heap_depth");
        // Heap depth after each pop: 2, 1, 0.
        assert_eq!(depths, vec![(10, 2.0), (20, 1.0), (30, 0.0)]);
    }
}
