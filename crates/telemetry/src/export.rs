//! Trace exporters: Chrome/Perfetto `trace_event` JSON and CSV.
//!
//! The JSON exporter emits the "JSON array format" both `chrome://tracing`
//! and [ui.perfetto.dev](https://ui.perfetto.dev) load directly:
//!
//! * each unique `(scope, component)` pair becomes a process (`pid`),
//!   named via `process_name` metadata events,
//! * tracks become thread ids (`tid`),
//! * spans are `ph:"X"` complete events, instants `ph:"i"`, and
//!   counter/gauge/value samples `ph:"C"` counter tracks (counters are
//!   exported as running totals so the counter track shows the
//!   cumulative count over time),
//! * timestamps are microseconds (`ts`), converted from the simulated
//!   picosecond clock.
//!
//! Everything is hand-rendered: the workspace builds offline, so no
//! serde. Names come from instrumentation call sites but are escaped
//! anyway.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::streaming::StreamAggregate;
use crate::{EventKind, Time, TraceEvent};

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn ts_us(t: Time) -> f64 {
    t as f64 / 1e6
}

/// Render `events` as Chrome `trace_event` JSON (array format).
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    chrome_trace_json_with_aggregates(events, &[])
}

/// [`chrome_trace_json`] plus `ph:"C"` counter tracks rendered from
/// streaming aggregates: one `<name>_busy_frac` track per busy series
/// (span overlap per bucket, as a fraction of the bucket) and one
/// `<name>_peak` track per gauge-peak series. `aggs` pairs each
/// aggregate with the scope its samples should appear under (use the
/// strategy label, or `""`). Raw events can be empty — a pure
/// streaming capture still yields a loadable trace.
pub fn chrome_trace_json_with_aggregates(
    events: &[TraceEvent],
    aggs: &[(&str, &StreamAggregate)],
) -> String {
    // Stable pid per (scope, component), in first-appearance order.
    let mut pids: HashMap<(&str, &str), u32> = HashMap::new();
    let mut processes: Vec<(&str, &str)> = Vec::new();
    for ev in events {
        pids.entry((ev.scope, ev.component)).or_insert_with(|| {
            processes.push((ev.scope, ev.component));
            processes.len() as u32
        });
    }
    for (scope, agg) in aggs {
        let series_comps = agg
            .busy_series_iter()
            .map(|((c, _, _), _)| c)
            .chain(agg.gauge_peak_iter().map(|((c, _, _), _)| c));
        for comp in series_comps {
            pids.entry((scope, comp)).or_insert_with(|| {
                processes.push((scope, comp));
                processes.len() as u32
            });
        }
    }

    let mut out = String::from("[");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, line: String| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push('\n');
        out.push_str(&line);
    };

    for (i, (scope, component)) in processes.iter().enumerate() {
        let pname = if scope.is_empty() {
            (*component).to_string()
        } else {
            format!("{scope}/{component}")
        };
        push(
            &mut out,
            &mut first,
            format!(
                r#"{{"ph":"M","pid":{},"name":"process_name","args":{{"name":"{}"}}}}"#,
                i + 1,
                esc(&pname)
            ),
        );
    }

    // Counter tracks show cumulative totals.
    let mut totals: HashMap<(&str, &str, &str, u64), u64> = HashMap::new();
    for ev in events {
        let pid = pids[&(ev.scope, ev.component)];
        let name = esc(ev.name);
        let line = match &ev.kind {
            EventKind::Span { end } => format!(
                r#"{{"ph":"X","pid":{pid},"tid":{},"ts":{},"dur":{},"name":"{name}","cat":"{}"}}"#,
                ev.track,
                ts_us(ev.time),
                ts_us(end.saturating_sub(ev.time)),
                esc(ev.component)
            ),
            EventKind::Instant => format!(
                r#"{{"ph":"i","pid":{pid},"tid":{},"ts":{},"name":"{name}","s":"t"}}"#,
                ev.track,
                ts_us(ev.time)
            ),
            EventKind::Counter { delta } => {
                let total = totals
                    .entry((ev.scope, ev.component, ev.name, ev.track))
                    .and_modify(|t| *t += delta)
                    .or_insert(*delta);
                format!(
                    r#"{{"ph":"C","pid":{pid},"tid":{},"ts":{},"name":"{name}","args":{{"{name}":{}}}}}"#,
                    ev.track,
                    ts_us(ev.time),
                    total
                )
            }
            EventKind::Gauge { value } | EventKind::Value { value } => format!(
                r#"{{"ph":"C","pid":{pid},"tid":{},"ts":{},"name":"{name}","args":{{"{name}":{}}}}}"#,
                ev.track,
                ts_us(ev.time),
                value
            ),
            // A distribution snapshot renders as one summary counter
            // sample so Perfetto shows the percentiles on a track.
            EventKind::Hist { hist } => format!(
                r#"{{"ph":"C","pid":{pid},"tid":{},"ts":{},"name":"{name}","args":{{"count":{},"p50":{},"p90":{},"p99":{}}}}}"#,
                ev.track,
                ts_us(ev.time),
                hist.count(),
                hist.percentile_ps(50.0),
                hist.percentile_ps(90.0),
                hist.percentile_ps(99.0)
            ),
        };
        push(&mut out, &mut first, line);
    }

    // Streaming time series: one counter sample per bucket.
    for (scope, agg) in aggs {
        let bp = agg.bucket_ps();
        for ((comp, name, track), series) in agg.busy_series_iter() {
            let pid = pids[&(*scope, comp)];
            let tname = format!("{}_busy_frac", esc(name));
            for (b, &busy) in series.iter().enumerate() {
                let frac = busy as f64 / bp as f64;
                push(
                    &mut out,
                    &mut first,
                    format!(
                        r#"{{"ph":"C","pid":{pid},"tid":{track},"ts":{},"name":"{tname}","args":{{"{tname}":{frac}}}}}"#,
                        ts_us(b as Time * bp)
                    ),
                );
            }
        }
        for ((comp, name, track), series) in agg.gauge_peak_iter() {
            let pid = pids[&(*scope, comp)];
            let tname = format!("{}_peak", esc(name));
            for (b, &peak) in series.iter().enumerate() {
                if !peak.is_finite() {
                    continue; // bucket without a sample
                }
                push(
                    &mut out,
                    &mut first,
                    format!(
                        r#"{{"ph":"C","pid":{pid},"tid":{track},"ts":{},"name":"{tname}","args":{{"{tname}":{peak}}}}}"#,
                        ts_us(b as Time * bp)
                    ),
                );
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Render `events` as CSV (`time_ps,scope,component,name,track,kind,value,end_ps`).
pub fn csv(events: &[TraceEvent]) -> String {
    let mut out = String::from("time_ps,scope,component,name,track,kind,value,end_ps\n");
    for ev in events {
        let (kind, value, end) = match &ev.kind {
            EventKind::Counter { delta } => ("counter", *delta as f64, String::new()),
            EventKind::Gauge { value } => ("gauge", *value, String::new()),
            EventKind::Value { value } => ("value", *value, String::new()),
            EventKind::Span { end } => ("span", 0.0, end.to_string()),
            EventKind::Instant => ("instant", 0.0, String::new()),
            // Only the sample count survives the flat CSV form; the
            // full distribution lives in the JSON run report.
            EventKind::Hist { hist } => ("hist", hist.count() as f64, String::new()),
        };
        let _ = writeln!(
            out,
            "{},{},{},{},{},{},{},{}",
            ev.time, ev.scope, ev.component, ev.name, ev.track, kind, value, end
        );
    }
    out
}

/// An owned row parsed back from [`csv`] output (for round-trip tests
/// and offline analysis scripts).
#[derive(Debug, Clone, PartialEq)]
pub struct CsvRow {
    /// Timestamp (ps).
    pub time: Time,
    /// Scope column.
    pub scope: String,
    /// Component column.
    pub component: String,
    /// Name column.
    pub name: String,
    /// Track column.
    pub track: u64,
    /// Kind column (`counter`/`gauge`/`value`/`span`/`instant`).
    pub kind: String,
    /// Value column (delta for counters, 0 for spans/instants).
    pub value: f64,
    /// Span end (ps), if the row is a span.
    pub end: Option<Time>,
}

/// Parse [`csv`] output back into rows. Returns `None` on malformed
/// input (wrong column count or unparsable numbers).
pub fn csv_parse(text: &str) -> Option<Vec<CsvRow>> {
    let mut rows = Vec::new();
    for line in text.lines().skip(1) {
        if line.is_empty() {
            continue;
        }
        let cols: Vec<&str> = line.split(',').collect();
        if cols.len() != 8 {
            return None;
        }
        rows.push(CsvRow {
            time: cols[0].parse().ok()?,
            scope: cols[1].to_string(),
            component: cols[2].to_string(),
            name: cols[3].to_string(),
            track: cols[4].parse().ok()?,
            kind: cols[5].to_string(),
            value: cols[6].parse().ok()?,
            end: if cols[7].is_empty() {
                None
            } else {
                Some(cols[7].parse().ok()?)
            },
        });
    }
    Some(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                scope: "RW-CP",
                component: "spin",
                name: "handler",
                track: 3,
                time: 1_000_000,
                kind: EventKind::Span { end: 2_500_000 },
            },
            TraceEvent {
                scope: "RW-CP",
                component: "spin",
                name: "dma_queue",
                track: 0,
                time: 1_200_000,
                kind: EventKind::Gauge { value: 4.0 },
            },
            TraceEvent {
                scope: "RW-CP",
                component: "core",
                name: "checkpoint_revert",
                track: 1,
                time: 2_000_000,
                kind: EventKind::Instant,
            },
            TraceEvent {
                scope: "RW-CP",
                component: "sim",
                name: "events",
                track: 0,
                time: 500_000,
                kind: EventKind::Counter { delta: 2 },
            },
            TraceEvent {
                scope: "RW-CP",
                component: "sim",
                name: "events",
                track: 0,
                time: 900_000,
                kind: EventKind::Counter { delta: 3 },
            },
            TraceEvent {
                scope: "RW-CP",
                component: "spin",
                name: "handler_ps",
                track: 0,
                time: 3_000_000,
                kind: EventKind::Hist {
                    hist: std::sync::Arc::new({
                        let mut h = crate::hist::LogHistogram::new();
                        h.record_n(100, 9);
                        h.record(1_000_000);
                        h
                    }),
                },
            },
        ]
    }

    #[test]
    fn chrome_json_has_processes_spans_counters_instants() {
        let json = chrome_trace_json(&sample_events());
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains(r#""name":"process_name""#));
        assert!(json.contains(r#""name":"RW-CP/spin""#));
        assert!(json.contains(r#""ph":"X""#), "span events present");
        assert!(json.contains(r#""ph":"C""#), "counter samples present");
        assert!(json.contains(r#""ph":"i""#), "instant events present");
        // Span: ts 1 µs, dur 1.5 µs.
        assert!(
            json.contains(r#""ts":1,"dur":1.5"#),
            "ps→µs conversion: {json}"
        );
        // Counter totals accumulate: 2 then 5.
        assert!(json.contains(r#"{"events":2}"#));
        assert!(json.contains(r#"{"events":5}"#));
        // Balanced braces (cheap well-formedness check; no serde offline).
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn json_escapes_special_characters() {
        let evs = vec![TraceEvent {
            scope: "",
            component: "x",
            name: "weird\"name\\with\nstuff",
            track: 0,
            time: 0,
            kind: EventKind::Instant,
        }];
        let json = chrome_trace_json(&evs);
        assert!(json.contains(r#"weird\"name\\with\nstuff"#));
    }

    #[test]
    fn csv_round_trips() {
        let events = sample_events();
        let text = csv(&events);
        let rows = csv_parse(&text).expect("parsable");
        assert_eq!(rows.len(), events.len());
        for (row, ev) in rows.iter().zip(&events) {
            assert_eq!(row.time, ev.time);
            assert_eq!(row.scope, ev.scope);
            assert_eq!(row.component, ev.component);
            assert_eq!(row.name, ev.name);
            assert_eq!(row.track, ev.track);
            match &ev.kind {
                EventKind::Counter { delta } => {
                    assert_eq!(row.kind, "counter");
                    assert_eq!(row.value, *delta as f64);
                }
                EventKind::Gauge { value } => {
                    assert_eq!(row.kind, "gauge");
                    assert_eq!(row.value, *value);
                }
                EventKind::Value { value } => {
                    assert_eq!(row.kind, "value");
                    assert_eq!(row.value, *value);
                }
                EventKind::Span { end } => {
                    assert_eq!(row.kind, "span");
                    assert_eq!(row.end, Some(*end));
                }
                EventKind::Instant => assert_eq!(row.kind, "instant"),
                EventKind::Hist { hist } => {
                    assert_eq!(row.kind, "hist");
                    assert_eq!(row.value, hist.count() as f64);
                }
            }
        }
    }

    #[test]
    fn chrome_json_renders_histogram_percentiles() {
        let json = chrome_trace_json(&sample_events());
        // p50 is the upper bound of the bucket holding 100 (≤3.1% off).
        assert!(
            json.contains(r#""count":10,"p50":101,"#),
            "histogram summary exported: {json}"
        );
    }

    #[test]
    fn streaming_aggregates_render_counter_tracks() {
        let mut agg = StreamAggregate::new(1_000_000);
        agg.fold(&TraceEvent {
            scope: "",
            component: "spin",
            name: "handler",
            track: 2,
            time: 500_000,
            kind: EventKind::Span { end: 1_500_000 },
        });
        agg.fold(&TraceEvent {
            scope: "",
            component: "spin",
            name: "dma_queue",
            track: 0,
            time: 100_000,
            kind: EventKind::Gauge { value: 3.0 },
        });
        let json = chrome_trace_json_with_aggregates(&[], &[("RW-CP", &agg)]);
        assert!(json.contains(r#""name":"RW-CP/spin""#), "{json}");
        assert!(json.contains("handler_busy_frac"), "{json}");
        assert!(json.contains("dma_queue_peak"), "{json}");
        // The [0.5 µs, 1.5 µs) span half-fills both buckets.
        assert!(json.contains(r#"{"handler_busy_frac":0.5}"#), "{json}");
        let depth = json.chars().fold(0i64, |d, c| match c {
            '{' => d + 1,
            '}' => d - 1,
            _ => d,
        });
        assert_eq!(depth, 0);
    }

    #[test]
    fn csv_parse_rejects_malformed_input() {
        assert_eq!(csv_parse("header\n1,2,3\n"), None);
        assert_eq!(csv_parse("h\nnot_a_number,,c,n,0,instant,0,\n"), None);
    }
}
