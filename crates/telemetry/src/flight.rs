//! Flight recorder: stitch a run's raw spans into an attributed
//! latency breakdown.
//!
//! The receive pipeline emits overlapping spans on many tracks (wire
//! serialization, inbound copies, per-vHPU queue waits and handler
//! executions, per-channel DMA transfers). [`attribute`] sweeps them
//! into a single exhaustive partition of the end-to-end window
//! `[t_start, t_end]`: every instant is charged to exactly one
//! [`Stage`], the highest-priority activity in flight at that time
//! (compute beats data movement beats scheduling beats the network).
//! By construction the per-stage totals sum to *exactly* the window
//! length, which is what makes the run-report "attribution adds up"
//! invariant testable.
//!
//! Handler spans are subdivided into init/setup/processing using the
//! `t_init`/`t_setup` phase observations the strategies emit at the
//! span's start time on the same vHPU track; a handler span without
//! phase data counts wholly as [`Stage::HandlerProc`].

use std::collections::HashMap;

use crate::{EventKind, Time, TraceEvent};

/// Attribution categories, listed in sweep priority order: when
/// several activities overlap, the earliest variant wins the instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Handler init phase (per-message state load).
    HandlerInit,
    /// Handler setup phase (checkpoint create / restore / catch-up).
    HandlerSetup,
    /// Handler payload processing (block scatter).
    HandlerProc,
    /// DMA channel busy (PCIe write in flight).
    Dma,
    /// Completion drain (final event write landing in host memory).
    Drain,
    /// Scheduler dispatch overhead.
    Dispatch,
    /// Packet sat in a vHPU run queue.
    QueueWait,
    /// Inbound engine (parse + NIC-memory payload copy).
    Inbound,
    /// Wire serialization of packets.
    Wire,
    /// Nothing traced in flight (gaps in the window).
    Idle,
}

impl Stage {
    /// All stages, priority order first to last ([`Stage::Idle`] is the
    /// fallback and must stay last).
    pub const ALL: [Stage; 10] = [
        Stage::HandlerInit,
        Stage::HandlerSetup,
        Stage::HandlerProc,
        Stage::Dma,
        Stage::Drain,
        Stage::Dispatch,
        Stage::QueueWait,
        Stage::Inbound,
        Stage::Wire,
        Stage::Idle,
    ];

    /// Stable snake_case label (JSON report key).
    pub fn label(self) -> &'static str {
        match self {
            Stage::HandlerInit => "handler_init",
            Stage::HandlerSetup => "handler_setup",
            Stage::HandlerProc => "handler_proc",
            Stage::Dma => "dma",
            Stage::Drain => "drain",
            Stage::Dispatch => "dispatch",
            Stage::QueueWait => "queue_wait",
            Stage::Inbound => "inbound",
            Stage::Wire => "wire",
            Stage::Idle => "idle",
        }
    }

    fn index(self) -> usize {
        Stage::ALL.iter().position(|&s| s == self).expect("in ALL")
    }
}

/// The attributed breakdown of one window: per-stage totals that tile
/// `[t_start, t_end]` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribution {
    /// Window start (ps), typically the message's first byte at the NIC.
    pub t_start: Time,
    /// Window end (ps), typically the completion landing.
    pub t_end: Time,
    totals: [Time; Stage::ALL.len()],
}

impl Attribution {
    /// Time charged to `stage` (ps).
    pub fn total(&self, stage: Stage) -> Time {
        self.totals[stage.index()]
    }

    /// Window length (ps).
    pub fn end_to_end(&self) -> Time {
        self.t_end - self.t_start
    }

    /// Sum of all stage totals; equals [`end_to_end`](Self::end_to_end)
    /// by construction.
    pub fn sum(&self) -> Time {
        self.totals.iter().sum()
    }

    /// `(stage, total)` pairs in priority order.
    pub fn entries(&self) -> impl Iterator<Item = (Stage, Time)> + '_ {
        Stage::ALL.iter().map(|&s| (s, self.total(s)))
    }
}

/// Map a span event to its attribution stage (handler spans are
/// subdivided separately).
fn span_stage(ev: &TraceEvent) -> Option<Stage> {
    if ev.component != "spin" {
        return None;
    }
    Some(match ev.name {
        "wire" => Stage::Wire,
        "inbound" => Stage::Inbound,
        "queue_wait" => Stage::QueueWait,
        "sched" => Stage::Dispatch,
        "handler" => Stage::HandlerProc,
        "dma_chan" => Stage::Dma,
        "dma_drain" => Stage::Drain,
        _ => return None,
    })
}

/// Attribute the window `[t_start, t_end]` across `events` (pre-filter
/// by scope when several runs share a sink). Every instant of the
/// window lands in exactly one stage, so the totals always sum to
/// `t_end - t_start`.
pub fn attribute(events: &[TraceEvent], t_start: Time, t_end: Time) -> Attribution {
    // Handler phase observations, keyed by (vHPU track, span start).
    let mut phases: HashMap<(u64, Time), (Time, Time)> = HashMap::new();
    for ev in events {
        if ev.component != "core" {
            continue;
        }
        if let EventKind::Value { value } = ev.kind {
            let slot = phases.entry((ev.track, ev.time)).or_insert((0, 0));
            match ev.name {
                "t_init" => slot.0 = value.round() as Time,
                "t_setup" => slot.1 = value.round() as Time,
                _ => {}
            }
        }
    }

    let mut intervals: Vec<(Time, Time, Stage)> = Vec::new();
    for ev in events {
        let EventKind::Span { end } = ev.kind else {
            continue;
        };
        let Some(stage) = span_stage(ev) else {
            continue;
        };
        if stage == Stage::HandlerProc {
            if let Some(&(init, setup)) = phases.get(&(ev.track, ev.time)) {
                let a = (ev.time + init).min(end);
                let b = (a + setup).min(end);
                intervals.push((ev.time, a, Stage::HandlerInit));
                intervals.push((a, b, Stage::HandlerSetup));
                intervals.push((b, end, Stage::HandlerProc));
                continue;
            }
        }
        intervals.push((ev.time, end, stage));
    }

    // Boundary sweep: at each instant the highest-priority active
    // stage wins; stretches with nothing active are Idle.
    let mut bounds: Vec<(Time, usize, i64)> = Vec::new();
    for (s, e, stage) in intervals {
        let (s, e) = (s.max(t_start), e.min(t_end));
        if s < e {
            bounds.push((s, stage.index(), 1));
            bounds.push((e, stage.index(), -1));
        }
    }
    bounds.sort_unstable();

    let mut totals = [0 as Time; Stage::ALL.len()];
    let mut active = [0i64; Stage::ALL.len()];
    let mut cursor = t_start;
    let mut i = 0;
    while i < bounds.len() {
        let t = bounds[i].0;
        if t > cursor {
            let stage = Stage::ALL
                .iter()
                .copied()
                .find(|s| active[s.index()] > 0)
                .unwrap_or(Stage::Idle);
            totals[stage.index()] += t - cursor;
            cursor = t;
        }
        while i < bounds.len() && bounds[i].0 == t {
            active[bounds[i].1] += bounds[i].2;
            i += 1;
        }
    }
    if cursor < t_end {
        totals[Stage::Idle.index()] += t_end - cursor;
    }

    Attribution {
        t_start,
        t_end,
        totals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &'static str, track: u64, start: Time, end: Time) -> TraceEvent {
        TraceEvent {
            scope: "",
            component: "spin",
            name,
            track,
            time: start,
            kind: EventKind::Span { end },
        }
    }

    fn phase(name: &'static str, track: u64, time: Time, v: f64) -> TraceEvent {
        TraceEvent {
            scope: "",
            component: "core",
            name,
            track,
            time,
            kind: EventKind::Value { value: v },
        }
    }

    #[test]
    fn empty_trace_is_all_idle_and_sums_exactly() {
        let a = attribute(&[], 100, 400);
        assert_eq!(a.total(Stage::Idle), 300);
        assert_eq!(a.sum(), a.end_to_end());
    }

    #[test]
    fn disjoint_stages_get_their_own_time_and_gaps_are_idle() {
        let evs = vec![
            span("wire", 0, 0, 10),
            span("inbound", 0, 10, 20),
            span("queue_wait", 1, 20, 30),
            span("handler", 1, 30, 50),
            span("dma_chan", 0, 50, 70),
        ];
        let a = attribute(&evs, 0, 80);
        assert_eq!(a.total(Stage::Wire), 10);
        assert_eq!(a.total(Stage::Inbound), 10);
        assert_eq!(a.total(Stage::QueueWait), 10);
        assert_eq!(a.total(Stage::HandlerProc), 20);
        assert_eq!(a.total(Stage::Dma), 20);
        assert_eq!(a.total(Stage::Idle), 10);
        assert_eq!(a.sum(), 80);
    }

    #[test]
    fn overlaps_resolve_by_priority() {
        // Handler and DMA overlap on [5,10): compute wins the overlap.
        let evs = vec![span("handler", 1, 0, 10), span("dma_chan", 0, 5, 15)];
        let a = attribute(&evs, 0, 15);
        assert_eq!(a.total(Stage::HandlerProc), 10);
        assert_eq!(a.total(Stage::Dma), 5);
        assert_eq!(a.sum(), 15);
    }

    #[test]
    fn handler_spans_subdivide_via_phase_values() {
        let evs = vec![
            span("handler", 2, 100, 200),
            phase("t_init", 2, 100, 30.0),
            phase("t_setup", 2, 100, 20.0),
        ];
        let a = attribute(&evs, 100, 200);
        assert_eq!(a.total(Stage::HandlerInit), 30);
        assert_eq!(a.total(Stage::HandlerSetup), 20);
        assert_eq!(a.total(Stage::HandlerProc), 50);
        assert_eq!(a.sum(), 100);
    }

    #[test]
    fn intervals_clamp_to_the_window() {
        let evs = vec![span("wire", 0, 0, 100)];
        let a = attribute(&evs, 40, 60);
        assert_eq!(a.total(Stage::Wire), 20);
        assert_eq!(a.sum(), 20);
    }
}
