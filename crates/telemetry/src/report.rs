//! Machine-readable run reports: the JSON artifact one strategy sweep
//! emits (`ncmt_cli --report-out`), plus a parser and a thresholded
//! baseline diff (`ncmt_cli report-diff`).
//!
//! This module is deliberately generic — it knows stage labels,
//! histograms, and JSON, but nothing about the NIC model. The glue
//! that fills a [`RunReportDoc`] from an experiment lives in
//! `nca-core::report`, keeping the dependency direction
//! `core → telemetry`.
//!
//! Everything is hand-rendered/hand-parsed: the workspace builds
//! offline, so no serde. The schema is documented in EXPERIMENTS.md;
//! bump [`RunReportDoc::VERSION`] on breaking changes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::flight::Attribution;
use crate::hist::LogHistogram;
use crate::streaming::StreamAggregate;
use crate::Time;

/// Summary form of a [`LogHistogram`] as serialized into a report.
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (exact).
    pub min: u64,
    /// Largest sample (exact).
    pub max: u64,
    /// Exact mean.
    pub mean: f64,
    /// Median estimate (≤3.1% relative error).
    pub p50: u64,
    /// 90th percentile estimate.
    pub p90: u64,
    /// 99th percentile estimate.
    pub p99: u64,
    /// 99.9th percentile estimate (the tail the traffic engine chases).
    pub p999: u64,
    /// Sparse `(bucket_lower_bound, count)` pairs.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSummary {
    /// Summarize `h`.
    pub fn of(h: &LogHistogram) -> Self {
        HistSummary {
            count: h.count(),
            min: h.min().unwrap_or(0),
            max: h.max().unwrap_or(0),
            mean: h.mean(),
            p50: h.percentile_ps(50.0),
            p90: h.percentile_ps(90.0),
            p99: h.percentile_ps(99.0),
            p999: h.percentile_ps(99.9),
            buckets: h.nonempty_buckets(),
        }
    }
}

/// Model-vs-measured validation block: what the analytic cost model
/// predicted for this run against what the trace observed.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelValidation {
    /// Planned checkpoint restart distance Δr (packets).
    pub delta_r: u64,
    /// Planned checkpoint interval Δp (packets).
    pub delta_p: u64,
    /// Planned number of checkpoints.
    pub num_checkpoints: u64,
    /// NIC memory the checkpoint plan claims (bytes).
    pub ckpt_nic_bytes: u64,
    /// The ε scheduling-overhead budget factor the plan was built for.
    pub epsilon: f64,
    /// The planner already knew ε could not be met (NIC-memory bound).
    pub planned_epsilon_violated: bool,
    /// Predicted per-packet handler time T_PH (ps).
    pub t_ph_predicted_ps: u64,
    /// Measured mean payload-handler runtime (ps).
    pub t_ph_measured_ps: f64,
    /// Absolute ε budget in time: `ε · ⌈n_pkt/P⌉ · T_PH_predicted` (ps).
    pub sched_budget_ps: u64,
    /// Observed worst-case scheduling overhead: the longest time any
    /// packet waited in a vHPU queue (ps).
    pub sched_overhead_ps: u64,
    /// Whether the observed overhead respected the ε bound (and the
    /// plan thought it would).
    pub epsilon_respected: bool,
}

/// Fault-injection + reliable-delivery outcome of one strategy run.
/// `None`/`null` when the run was configured lossless (inert faults):
/// the lossless pipeline carries no reliability state at all.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Total packet transmissions (first attempts + retransmissions).
    pub transmissions: u64,
    /// Timer-driven retransmissions.
    pub retransmissions: u64,
    /// Packets the injector dropped.
    pub drops_injected: u64,
    /// Packets the injector duplicated.
    pub dups_injected: u64,
    /// Duplicate copies the receiver suppressed.
    pub dups_suppressed: u64,
    /// Packets the injector corrupted.
    pub corrupts_injected: u64,
    /// Corrupted copies the checksum check rejected.
    pub corrupts_rejected: u64,
    /// Acknowledgements that reached the sender.
    pub acks_received: u64,
    /// Packets recovered over the host-fallback channel after
    /// retry-budget exhaustion.
    pub host_fallback_packets: u64,
    /// The run degraded to contiguous landing + host unpack because the
    /// strategy's state did not fit in NIC memory.
    pub nic_mem_fallback: bool,
    /// Every packet was delivered to the processor exactly once.
    pub delivered_exactly_once: bool,
    /// RW-CP checkpoint reverts the out-of-order/fault recovery took.
    pub checkpoint_reverts: u64,
    /// HPU-local / RO-CP catch-up replay blocks executed.
    pub catchup_blocks: u64,
}

/// Utilization block computed by the streaming reducers: where the
/// simulated hardware spent the run. Unlike [`StrategyReport::attribution`]
/// (which tiles the end-to-end window once), this is *per resource* —
/// one busy fraction per vHPU and per DMA channel — so skew across
/// HPUs/channels is visible, and it comes from bounded-memory folds
/// rather than retained events.
#[derive(Debug, Clone, PartialEq)]
pub struct UtilizationReport {
    /// Time-series bucket width the fractions were folded at (ps).
    pub bucket_ps: Time,
    /// Handler-busy fraction of the end-to-end window, one entry per
    /// vHPU in track order.
    pub hpu_busy_frac: Vec<f64>,
    /// Peak DMA queue occupancy observed by the `dma_queue` gauge.
    pub peak_queue_depth: f64,
    /// DMA-channel busy fraction of the end-to-end window, one entry
    /// per channel in track order.
    pub dma_chan_occupancy: Vec<f64>,
}

impl UtilizationReport {
    /// Compute the block from a streaming aggregate. Busy fractions are
    /// `busy_total / end_to_end` for the `handler` (per-vHPU) and
    /// `dma_chan` (per-channel) span series under `component`; the peak
    /// queue depth is the `dma_queue` gauge high-water mark. The busy
    /// vector covers at least `min_hpu_tracks` entries so idle vHPUs
    /// still show up as zeros.
    pub fn from_aggregate(
        agg: &StreamAggregate,
        component: &str,
        end_to_end: Time,
        min_hpu_tracks: u64,
    ) -> UtilizationReport {
        let frac = |busy: Time| {
            if end_to_end > 0 {
                busy as f64 / end_to_end as f64
            } else {
                0.0
            }
        };
        let mut hpu_tracks = min_hpu_tracks;
        for t in agg.busy_tracks(component, "handler") {
            hpu_tracks = hpu_tracks.max(t + 1);
        }
        let hpu_busy_frac = (0..hpu_tracks)
            .map(|t| frac(agg.busy_total(component, "handler", t)))
            .collect();
        let chans = agg
            .busy_tracks(component, "dma_chan")
            .iter()
            .map(|&t| t + 1)
            .max()
            .unwrap_or(0);
        let dma_chan_occupancy = (0..chans)
            .map(|t| frac(agg.busy_total(component, "dma_chan", t)))
            .collect();
        UtilizationReport {
            bucket_ps: agg.bucket_ps(),
            hpu_busy_frac,
            peak_queue_depth: agg.gauge_hwm(component, "dma_queue").unwrap_or(0.0),
            dma_chan_occupancy,
        }
    }
}

/// One strategy's measured results within a report.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyReport {
    /// Strategy label (`"RW-CP"`, …).
    pub name: String,
    /// Message processing time, first byte → completion (ps).
    pub end_to_end_ps: u64,
    /// One-time host preparation (ps).
    pub host_setup_ps: u64,
    /// Receive throughput over the processing time (Gbit/s).
    pub throughput_gbit: f64,
    /// NIC memory the strategy occupied (bytes).
    pub nic_mem_bytes: u64,
    /// High-water mark of traced NIC-memory usage (bytes).
    pub nic_mem_hwm_bytes: u64,
    /// DMA writes issued.
    pub dma_writes: u64,
    /// Bytes DMA-written.
    pub dma_bytes: u64,
    /// Maximum DMA queue occupancy.
    pub dma_max_queue: u64,
    /// Attributed time per stage label, tiling the window.
    pub attribution: Vec<(&'static str, Time)>,
    /// Total handler-busy time across vHPUs (ps).
    pub hpu_busy_ps: u64,
    /// `hpu_busy / (hpus · end_to_end)`.
    pub hpu_utilization: f64,
    /// Latency distributions by metric name.
    pub histograms: BTreeMap<String, HistSummary>,
    /// Streaming-aggregation utilization block (`None` only for
    /// pre-streaming producers; every current writer fills it).
    pub utilization: Option<UtilizationReport>,
    /// Model-vs-measured block (checkpointed strategies only).
    pub model: Option<ModelValidation>,
    /// Fault/reliability outcome (lossy runs only).
    pub faults: Option<FaultSummary>,
    /// The eager DMA engine was explicitly requested but telemetry
    /// capture forced the event-driven engine (see
    /// `nca_spin::nic::EngineMode`).
    pub eager_fallback: bool,
}

impl StrategyReport {
    /// Fill the attribution fields from a sweep result.
    pub fn set_attribution(&mut self, a: &Attribution) {
        self.attribution = a.entries().map(|(s, t)| (s.label(), t)).collect();
    }

    /// Sum of the attributed stage times (ps).
    pub fn attribution_sum(&self) -> Time {
        self.attribution.iter().map(|&(_, t)| t).sum()
    }
}

/// Workload/pipeline configuration stamped on a report.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportConfig {
    /// Datatype signature string.
    pub datatype: String,
    /// Message size (bytes).
    pub msg_bytes: u64,
    /// Packets per message.
    pub npkt: u64,
    /// Blocks per packet γ.
    pub gamma: f64,
    /// Physical HPUs.
    pub hpus: u64,
    /// Packet payload size (bytes).
    pub payload_size: u64,
    /// ε scheduling-overhead budget factor.
    pub epsilon: f64,
    /// Out-of-order shuffle seed, if any.
    pub out_of_order: Option<u64>,
}

/// The top-level report artifact. (Named `…Doc` to avoid colliding
/// with the simulator's in-memory `nca_spin::nic::RunReport`.)
#[derive(Debug, Clone, PartialEq)]
pub struct RunReportDoc {
    /// Schema version ([`RunReportDoc::VERSION`]).
    pub version: u64,
    /// Events evicted from the `--trace-out` ring sink during capture
    /// (0 when capture was off or the ring never overflowed). Nonzero
    /// means the exported trace is a *suffix* of the run, not the run.
    pub trace_dropped_events: u64,
    /// Workload configuration.
    pub config: ReportConfig,
    /// One entry per strategy run.
    pub strategies: Vec<StrategyReport>,
}

impl RunReportDoc {
    /// Current schema version.
    pub const VERSION: u64 = 1;

    /// Artifact type tag (`"kind"` key).
    pub const KIND: &'static str = "ncmt-run-report";
}

// ---------------------------------------------------------------- JSON out

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string() // NaN/inf are not JSON; reports treat them as absent
    }
}

impl RunReportDoc {
    /// Render the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"kind\": \"{}\",", Self::KIND);
        let _ = writeln!(o, "  \"version\": {},", self.version);
        let _ = writeln!(
            o,
            "  \"trace_dropped_events\": {},",
            self.trace_dropped_events
        );
        let c = &self.config;
        let _ = writeln!(o, "  \"config\": {{");
        let _ = writeln!(o, "    \"datatype\": \"{}\",", esc(&c.datatype));
        let _ = writeln!(o, "    \"msg_bytes\": {},", c.msg_bytes);
        let _ = writeln!(o, "    \"npkt\": {},", c.npkt);
        let _ = writeln!(o, "    \"gamma\": {},", fmt_f64(c.gamma));
        let _ = writeln!(o, "    \"hpus\": {},", c.hpus);
        let _ = writeln!(o, "    \"payload_size\": {},", c.payload_size);
        let _ = writeln!(o, "    \"epsilon\": {},", fmt_f64(c.epsilon));
        match c.out_of_order {
            Some(seed) => {
                let _ = writeln!(o, "    \"out_of_order\": {seed}");
            }
            None => {
                let _ = writeln!(o, "    \"out_of_order\": null");
            }
        }
        let _ = writeln!(o, "  }},");
        let _ = writeln!(o, "  \"strategies\": [");
        for (i, s) in self.strategies.iter().enumerate() {
            let comma = if i + 1 < self.strategies.len() {
                ","
            } else {
                ""
            };
            o.push_str(&strategy_json(s, "    "));
            let _ = writeln!(o, "{comma}");
        }
        let _ = writeln!(o, "  ]");
        o.push_str("}\n");
        o
    }
}

fn strategy_json(s: &StrategyReport, ind: &str) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "{ind}{{");
    let _ = writeln!(o, "{ind}  \"name\": \"{}\",", esc(&s.name));
    let _ = writeln!(o, "{ind}  \"end_to_end_ps\": {},", s.end_to_end_ps);
    let _ = writeln!(o, "{ind}  \"host_setup_ps\": {},", s.host_setup_ps);
    let _ = writeln!(
        o,
        "{ind}  \"throughput_gbit\": {},",
        fmt_f64(s.throughput_gbit)
    );
    let _ = writeln!(o, "{ind}  \"nic_mem_bytes\": {},", s.nic_mem_bytes);
    let _ = writeln!(o, "{ind}  \"nic_mem_hwm_bytes\": {},", s.nic_mem_hwm_bytes);
    let _ = writeln!(o, "{ind}  \"dma_writes\": {},", s.dma_writes);
    let _ = writeln!(o, "{ind}  \"dma_bytes\": {},", s.dma_bytes);
    let _ = writeln!(o, "{ind}  \"dma_max_queue\": {},", s.dma_max_queue);
    let _ = writeln!(o, "{ind}  \"eager_fallback\": {},", s.eager_fallback);
    let _ = writeln!(o, "{ind}  \"attribution\": {{");
    for (i, (label, t)) in s.attribution.iter().enumerate() {
        let comma = if i + 1 < s.attribution.len() { "," } else { "" };
        let _ = writeln!(o, "{ind}    \"{label}_ps\": {t}{comma}");
    }
    let _ = writeln!(o, "{ind}  }},");
    let _ = writeln!(o, "{ind}  \"attribution_sum_ps\": {},", s.attribution_sum());
    let _ = writeln!(o, "{ind}  \"hpu_busy_ps\": {},", s.hpu_busy_ps);
    let _ = writeln!(
        o,
        "{ind}  \"hpu_utilization\": {},",
        fmt_f64(s.hpu_utilization)
    );
    let _ = writeln!(o, "{ind}  \"histograms\": {{");
    for (i, (name, h)) in s.histograms.iter().enumerate() {
        let comma = if i + 1 < s.histograms.len() { "," } else { "" };
        let _ = writeln!(o, "{ind}    \"{}\": {{", esc(name));
        o.push_str(&hist_summary_members(h, &format!("{ind}      ")));
        let _ = writeln!(o, "{ind}    }}{comma}");
    }
    let _ = writeln!(o, "{ind}  }},");
    match &s.utilization {
        None => {
            let _ = writeln!(o, "{ind}  \"utilization\": null,");
        }
        Some(u) => {
            let _ = writeln!(o, "{ind}  \"utilization\": {{");
            let _ = writeln!(o, "{ind}    \"bucket_ps\": {},", u.bucket_ps);
            let fracs: Vec<String> = u.hpu_busy_frac.iter().map(|&f| fmt_f64(f)).collect();
            let _ = writeln!(o, "{ind}    \"hpu_busy_frac\": [{}],", fracs.join(","));
            let _ = writeln!(
                o,
                "{ind}    \"peak_queue_depth\": {},",
                fmt_f64(u.peak_queue_depth)
            );
            let chans: Vec<String> = u.dma_chan_occupancy.iter().map(|&f| fmt_f64(f)).collect();
            let _ = writeln!(o, "{ind}    \"dma_chan_occupancy\": [{}]", chans.join(","));
            let _ = writeln!(o, "{ind}  }},");
        }
    }
    match &s.faults {
        None => {
            let _ = writeln!(o, "{ind}  \"faults\": null,");
        }
        Some(f) => {
            let _ = writeln!(o, "{ind}  \"faults\": {},", fault_summary_json(f, ind));
        }
    }
    match &s.model {
        None => {
            let _ = write!(o, "{ind}  \"model\": null");
        }
        Some(m) => {
            let _ = writeln!(o, "{ind}  \"model\": {{");
            let _ = writeln!(o, "{ind}    \"delta_r\": {},", m.delta_r);
            let _ = writeln!(o, "{ind}    \"delta_p\": {},", m.delta_p);
            let _ = writeln!(o, "{ind}    \"num_checkpoints\": {},", m.num_checkpoints);
            let _ = writeln!(o, "{ind}    \"ckpt_nic_bytes\": {},", m.ckpt_nic_bytes);
            let _ = writeln!(o, "{ind}    \"epsilon\": {},", fmt_f64(m.epsilon));
            let _ = writeln!(
                o,
                "{ind}    \"planned_epsilon_violated\": {},",
                m.planned_epsilon_violated
            );
            let _ = writeln!(
                o,
                "{ind}    \"t_ph_predicted_ps\": {},",
                m.t_ph_predicted_ps
            );
            let _ = writeln!(
                o,
                "{ind}    \"t_ph_measured_ps\": {},",
                fmt_f64(m.t_ph_measured_ps)
            );
            let _ = writeln!(o, "{ind}    \"sched_budget_ps\": {},", m.sched_budget_ps);
            let _ = writeln!(
                o,
                "{ind}    \"sched_overhead_ps\": {},",
                m.sched_overhead_ps
            );
            let _ = writeln!(o, "{ind}    \"epsilon_respected\": {}", m.epsilon_respected);
            let _ = write!(o, "{ind}  }}");
        }
    }
    let _ = writeln!(o);
    let _ = write!(o, "{ind}}}");
    o
}

/// Render the members of a [`HistSummary`] object, one per line at
/// indentation `ind` (the caller writes the braces).
fn hist_summary_members(h: &HistSummary, ind: &str) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "{ind}\"count\": {},", h.count);
    let _ = writeln!(o, "{ind}\"min\": {},", h.min);
    let _ = writeln!(o, "{ind}\"max\": {},", h.max);
    let _ = writeln!(o, "{ind}\"mean\": {},", fmt_f64(h.mean));
    let _ = writeln!(o, "{ind}\"p50\": {},", h.p50);
    let _ = writeln!(o, "{ind}\"p90\": {},", h.p90);
    let _ = writeln!(o, "{ind}\"p99\": {},", h.p99);
    let _ = writeln!(o, "{ind}\"p999\": {},", h.p999);
    let buckets: Vec<String> = h
        .buckets
        .iter()
        .map(|&(lo, c)| format!("[{lo},{c}]"))
        .collect();
    let _ = writeln!(o, "{ind}\"buckets\": [{}]", buckets.join(","));
    o
}

/// Render a [`FaultSummary`] as a JSON object. `ind` is the indentation
/// of the *containing* line; inner members indent two further spaces.
fn fault_summary_json(f: &FaultSummary, ind: &str) -> String {
    let mut o = String::new();
    let _ = writeln!(o, "{{");
    let _ = writeln!(o, "{ind}    \"transmissions\": {},", f.transmissions);
    let _ = writeln!(o, "{ind}    \"retransmissions\": {},", f.retransmissions);
    let _ = writeln!(o, "{ind}    \"drops_injected\": {},", f.drops_injected);
    let _ = writeln!(o, "{ind}    \"dups_injected\": {},", f.dups_injected);
    let _ = writeln!(o, "{ind}    \"dups_suppressed\": {},", f.dups_suppressed);
    let _ = writeln!(
        o,
        "{ind}    \"corrupts_injected\": {},",
        f.corrupts_injected
    );
    let _ = writeln!(
        o,
        "{ind}    \"corrupts_rejected\": {},",
        f.corrupts_rejected
    );
    let _ = writeln!(o, "{ind}    \"acks_received\": {},", f.acks_received);
    let _ = writeln!(
        o,
        "{ind}    \"host_fallback_packets\": {},",
        f.host_fallback_packets
    );
    let _ = writeln!(o, "{ind}    \"nic_mem_fallback\": {},", f.nic_mem_fallback);
    let _ = writeln!(
        o,
        "{ind}    \"delivered_exactly_once\": {},",
        f.delivered_exactly_once
    );
    let _ = writeln!(
        o,
        "{ind}    \"checkpoint_reverts\": {},",
        f.checkpoint_reverts
    );
    let _ = writeln!(o, "{ind}    \"catchup_blocks\": {}", f.catchup_blocks);
    let _ = write!(o, "{ind}  }}");
    o
}

// ------------------------------------------------------------- fault sweep

/// One cell of a fault-sweep matrix: one strategy run at one
/// (seed, fault-scale) point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Fault-schedule seed of this run.
    pub seed: u64,
    /// Scale factor applied to the base fault rates (0.0 = lossless).
    pub scale: f64,
    /// Strategy label.
    pub strategy: String,
    /// The receive buffer matched the reference unpack byte-for-byte.
    pub byte_exact: bool,
    /// Message processing time (ps).
    pub end_to_end_ps: u64,
    /// Reliability counters of the run.
    pub faults: FaultSummary,
}

/// Artifact of `ncmt_cli fault-sweep`: a seed × fault-rate matrix with
/// delivered-exactly-once statistics per strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepDoc {
    /// Schema version ([`FaultSweepDoc::VERSION`]).
    pub version: u64,
    /// Base per-packet drop probability (scale 1.0).
    pub drop: f64,
    /// Base per-packet duplication probability.
    pub duplicate: f64,
    /// Base per-packet corruption probability.
    pub corrupt: f64,
    /// Reordering-window width (ns).
    pub reorder_ns: u64,
    /// Every (seed, scale, strategy) run.
    pub cells: Vec<SweepCell>,
}

impl FaultSweepDoc {
    /// Current schema version.
    pub const VERSION: u64 = 1;

    /// Artifact type tag (`"kind"` key).
    pub const KIND: &'static str = "ncmt-fault-sweep";

    /// Whether every cell delivered a byte-exact buffer exactly once.
    pub fn all_byte_exact(&self) -> bool {
        self.cells
            .iter()
            .all(|c| c.byte_exact && c.faults.delivered_exactly_once)
    }

    /// Render as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"kind\": \"{}\",", Self::KIND);
        let _ = writeln!(o, "  \"version\": {},", self.version);
        let _ = writeln!(o, "  \"drop\": {},", fmt_f64(self.drop));
        let _ = writeln!(o, "  \"duplicate\": {},", fmt_f64(self.duplicate));
        let _ = writeln!(o, "  \"corrupt\": {},", fmt_f64(self.corrupt));
        let _ = writeln!(o, "  \"reorder_ns\": {},", self.reorder_ns);
        let _ = writeln!(o, "  \"all_byte_exact\": {},", self.all_byte_exact());
        let _ = writeln!(o, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(o, "    {{");
            let _ = writeln!(o, "      \"seed\": {},", c.seed);
            let _ = writeln!(o, "      \"scale\": {},", fmt_f64(c.scale));
            let _ = writeln!(o, "      \"strategy\": \"{}\",", esc(&c.strategy));
            let _ = writeln!(o, "      \"byte_exact\": {},", c.byte_exact);
            let _ = writeln!(o, "      \"end_to_end_ps\": {},", c.end_to_end_ps);
            let _ = writeln!(
                o,
                "      \"faults\": {}",
                fault_summary_json(&c.faults, "    ")
            );
            let _ = writeln!(o, "    }}{comma}");
        }
        let _ = writeln!(o, "  ]");
        o.push_str("}\n");
        o
    }
}

// ------------------------------------------------------------ traffic doc

/// One tenant's outcome within a [`TrafficCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantTrafficReport {
    /// Tenant label (`"t0"`, …).
    pub tenant: String,
    /// Messages the arrival process offered inside the horizon.
    pub offered: u64,
    /// Offers admitted into the NIC (first attempt or after retry).
    pub admitted: u64,
    /// Admitted messages that completed inside the drain window.
    pub completed: u64,
    /// Admission rejections (each backed-off attempt counts once).
    pub dropped: u64,
    /// Re-offered attempts after an admission rejection.
    pub retried: u64,
    /// Messages abandoned after exhausting the retry budget.
    pub lost: u64,
    /// Completed payload over the active window (Gbit/s).
    pub goodput_gbit: f64,
    /// Offer→completion latency distribution (ps), including admission
    /// backoff delay.
    pub latency: HistSummary,
}

/// One (app × discipline × offered-load) point of a traffic sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficCell {
    /// Application workload label (`"MILC/b"`, …).
    pub app: String,
    /// Queue-discipline label (`"blocked-rr"` / `"cfcfs"` / `"dfcfs"`).
    pub discipline: String,
    /// Offered load as a fraction of line rate.
    pub offered_load: f64,
    /// Every completed message unpacked byte-exactly.
    pub byte_exact: bool,
    /// Streaming-aggregation utilization block for the whole cell
    /// (all tenants share the NIC).
    pub utilization: Option<UtilizationReport>,
    /// Per-tenant accounting, in tenant order.
    pub tenants: Vec<TenantTrafficReport>,
}

/// Artifact of `ncmt_cli traffic`: per-tenant tail-latency and
/// drop/goodput accounting over an offered-load × discipline × app grid.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficDoc {
    /// Schema version ([`TrafficDoc::VERSION`]).
    pub version: u64,
    /// Master schedule seed.
    pub seed: u64,
    /// Physical HPUs.
    pub hpus: u64,
    /// Strategy label all tenants ran.
    pub strategy: String,
    /// Arrival-process label (`"poisson"` / `"lognormal"` / `"mixed"`).
    pub arrival: String,
    /// Open-loop generation horizon (ps).
    pub horizon_ps: u64,
    /// Every grid point.
    pub cells: Vec<TrafficCell>,
}

impl TrafficDoc {
    /// Current schema version.
    pub const VERSION: u64 = 1;

    /// Artifact type tag (`"kind"` key).
    pub const KIND: &'static str = "ncmt-traffic";

    /// Whether every cell stayed byte-exact.
    pub fn all_byte_exact(&self) -> bool {
        self.cells.iter().all(|c| c.byte_exact)
    }

    /// Render as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"kind\": \"{}\",", Self::KIND);
        let _ = writeln!(o, "  \"version\": {},", self.version);
        let _ = writeln!(o, "  \"seed\": {},", self.seed);
        let _ = writeln!(o, "  \"hpus\": {},", self.hpus);
        let _ = writeln!(o, "  \"strategy\": \"{}\",", esc(&self.strategy));
        let _ = writeln!(o, "  \"arrival\": \"{}\",", esc(&self.arrival));
        let _ = writeln!(o, "  \"horizon_ps\": {},", self.horizon_ps);
        let _ = writeln!(o, "  \"all_byte_exact\": {},", self.all_byte_exact());
        let _ = writeln!(o, "  \"cells\": [");
        for (i, c) in self.cells.iter().enumerate() {
            let comma = if i + 1 < self.cells.len() { "," } else { "" };
            let _ = writeln!(o, "    {{");
            let _ = writeln!(o, "      \"app\": \"{}\",", esc(&c.app));
            let _ = writeln!(o, "      \"discipline\": \"{}\",", esc(&c.discipline));
            let _ = writeln!(o, "      \"offered_load\": {},", fmt_f64(c.offered_load));
            let _ = writeln!(o, "      \"byte_exact\": {},", c.byte_exact);
            match &c.utilization {
                None => {
                    let _ = writeln!(o, "      \"utilization\": null,");
                }
                Some(u) => {
                    let _ = writeln!(o, "      \"utilization\": {{");
                    let _ = writeln!(o, "        \"bucket_ps\": {},", u.bucket_ps);
                    let fracs: Vec<String> = u.hpu_busy_frac.iter().map(|&f| fmt_f64(f)).collect();
                    let _ = writeln!(o, "        \"hpu_busy_frac\": [{}],", fracs.join(","));
                    let _ = writeln!(
                        o,
                        "        \"peak_queue_depth\": {},",
                        fmt_f64(u.peak_queue_depth)
                    );
                    let chans: Vec<String> =
                        u.dma_chan_occupancy.iter().map(|&f| fmt_f64(f)).collect();
                    let _ = writeln!(o, "        \"dma_chan_occupancy\": [{}]", chans.join(","));
                    let _ = writeln!(o, "      }},");
                }
            }
            let _ = writeln!(o, "      \"tenants\": [");
            for (j, t) in c.tenants.iter().enumerate() {
                let tcomma = if j + 1 < c.tenants.len() { "," } else { "" };
                let _ = writeln!(o, "        {{");
                let _ = writeln!(o, "          \"tenant\": \"{}\",", esc(&t.tenant));
                let _ = writeln!(o, "          \"offered\": {},", t.offered);
                let _ = writeln!(o, "          \"admitted\": {},", t.admitted);
                let _ = writeln!(o, "          \"completed\": {},", t.completed);
                let _ = writeln!(o, "          \"dropped\": {},", t.dropped);
                let _ = writeln!(o, "          \"retried\": {},", t.retried);
                let _ = writeln!(o, "          \"lost\": {},", t.lost);
                let _ = writeln!(
                    o,
                    "          \"goodput_gbit\": {},",
                    fmt_f64(t.goodput_gbit)
                );
                let _ = writeln!(o, "          \"latency\": {{");
                o.push_str(&hist_summary_members(&t.latency, "            "));
                let _ = writeln!(o, "          }}");
                let _ = writeln!(o, "        }}{tcomma}");
            }
            let _ = writeln!(o, "      ]");
            let _ = writeln!(o, "    }}{comma}");
        }
        let _ = writeln!(o, "  ]");
        o.push_str("}\n");
        o
    }
}

// ------------------------------------------------------------ profile doc

/// One phase's accumulated host time within a [`ProfileWorker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfilePhase {
    /// Stable phase label (`"event_queue"`, `"handler"`, …).
    pub phase: String,
    /// Wall-clock nanoseconds attributed to the phase (innermost wins:
    /// a nested phase pauses its parent).
    pub ns: u64,
    /// Times the phase was entered.
    pub count: u64,
}

/// One worker thread's phase breakdown. Worker 0 includes the
/// coordinating (main) thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileWorker {
    /// Pool worker index.
    pub worker: u64,
    /// Phase totals, in the profiler's canonical phase order.
    pub phases: Vec<ProfilePhase>,
}

/// Artifact of `ncmt_cli profile`: the simulator self-profiler's
/// attribution of host wall-clock to simulator phases, per worker.
/// Because phases nest innermost-wins, the per-phase totals are
/// disjoint and `attributed + other` tiles `wall_ns` exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileDoc {
    /// Schema version ([`ProfileDoc::VERSION`]).
    pub version: u64,
    /// Human-readable label of what was profiled.
    pub command: String,
    /// Wall-clock of the profiled region (ns).
    pub wall_ns: u64,
    /// Per-worker phase breakdowns.
    pub workers: Vec<ProfileWorker>,
}

impl ProfileDoc {
    /// Current schema version.
    pub const VERSION: u64 = 1;

    /// Artifact type tag (`"kind"` key).
    pub const KIND: &'static str = "ncmt-profile";

    /// Phase totals summed across workers, preserving first-appearance
    /// phase order.
    pub fn totals(&self) -> Vec<ProfilePhase> {
        let mut out: Vec<ProfilePhase> = Vec::new();
        for w in &self.workers {
            for p in &w.phases {
                match out.iter_mut().find(|t| t.phase == p.phase) {
                    Some(t) => {
                        t.ns += p.ns;
                        t.count += p.count;
                    }
                    None => out.push(p.clone()),
                }
            }
        }
        out
    }

    /// Total nanoseconds attributed to any phase.
    pub fn attributed_ns(&self) -> u64 {
        self.totals().iter().map(|p| p.ns).sum()
    }

    /// Unattributed remainder of the wall clock (clamped at zero: timer
    /// granularity can make attribution nominally exceed the wall).
    pub fn other_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.attributed_ns())
    }

    /// Render as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        fn phase_members(o: &mut String, phases: &[ProfilePhase], ind: &str) {
            for (i, p) in phases.iter().enumerate() {
                let comma = if i + 1 < phases.len() { "," } else { "" };
                let _ = writeln!(
                    o,
                    "{ind}\"{}\": {{\"ns\": {}, \"count\": {}}}{comma}",
                    esc(&p.phase),
                    p.ns,
                    p.count
                );
            }
        }
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"kind\": \"{}\",", Self::KIND);
        let _ = writeln!(o, "  \"version\": {},", self.version);
        let _ = writeln!(o, "  \"command\": \"{}\",", esc(&self.command));
        let _ = writeln!(o, "  \"wall_ns\": {},", self.wall_ns);
        let _ = writeln!(o, "  \"attributed_ns\": {},", self.attributed_ns());
        let _ = writeln!(o, "  \"other_ns\": {},", self.other_ns());
        let _ = writeln!(o, "  \"totals\": {{");
        phase_members(&mut o, &self.totals(), "    ");
        let _ = writeln!(o, "  }},");
        let _ = writeln!(o, "  \"workers\": [");
        for (i, w) in self.workers.iter().enumerate() {
            let comma = if i + 1 < self.workers.len() { "," } else { "" };
            let _ = writeln!(o, "    {{");
            let _ = writeln!(o, "      \"worker\": {},", w.worker);
            let _ = writeln!(o, "      \"phases\": {{");
            phase_members(&mut o, &w.phases, "        ");
            let _ = writeln!(o, "      }}");
            let _ = writeln!(o, "    }}{comma}");
        }
        let _ = writeln!(o, "  ]");
        o.push_str("}\n");
        o
    }
}

// ---------------------------------------------------------------- JSON in

/// A parsed JSON value (minimal recursive-descent parser; enough for
/// report files — no serde offline).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (f64; report integers stay exact below 2^53).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parse `text`; `Err` carries a byte offset and message.
    pub fn parse(text: &str) -> Result<Json, String> {
        let b = text.as_bytes();
        let mut pos = 0;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member by key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Walk a dotted path of object keys (`"model.sched_overhead_ps"`).
    pub fn path(&self, path: &str) -> Option<&Json> {
        let mut cur = self;
        for key in path.split('.') {
            cur = cur.get(key)?;
        }
        Some(cur)
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array, if this is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos)?;
                members.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') if b[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if b[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if b[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => {
            let start = *pos;
            while *pos < b.len()
                && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
            {
                *pos += 1;
            }
            let s = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
            s.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number '{s}' at byte {start}"))
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
                *pos += 1;
            }
            c => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let s = &b[*pos..];
                let ch_len = match c {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = s
                    .get(..ch_len)
                    .ok_or_else(|| "truncated UTF-8 in string".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
    Err("unterminated string".to_string())
}

// ---------------------------------------------------------------- diff

/// Default relative regression threshold for [`diff_reports`] (5%).
pub const DEFAULT_THRESHOLD: f64 = 0.05;

/// Per-strategy metrics compared by [`diff_reports`]; all are
/// "higher is worse". Dotted paths resolve inside each strategy object.
pub const DIFF_METRICS: &[&str] = &[
    "end_to_end_ps",
    "host_setup_ps",
    "attribution.queue_wait_ps",
    "model.sched_overhead_ps",
    "histograms.handler_ps.p99",
    "histograms.queue_wait_ps.p99",
];

/// One compared metric.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Strategy name.
    pub strategy: String,
    /// Metric path.
    pub metric: String,
    /// Baseline value.
    pub base: f64,
    /// Candidate value.
    pub new: f64,
    /// Relative change `(new - base) / base` (infinite when base is 0
    /// and new is not).
    pub delta_frac: f64,
    /// Whether the change exceeds the threshold in the bad direction.
    pub regressed: bool,
}

/// Result of comparing two parsed reports.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffReport {
    /// Threshold the rows were judged against.
    pub threshold: f64,
    /// All compared metrics.
    pub rows: Vec<DiffRow>,
}

impl DiffReport {
    /// Number of regressed rows.
    pub fn regressions(&self) -> usize {
        self.rows.iter().filter(|r| r.regressed).count()
    }

    /// Human-readable table (one line per row, regressions flagged).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let delta = if r.delta_frac.is_infinite() {
                "new".to_string()
            } else {
                format!("{:+.2}%", r.delta_frac * 100.0)
            };
            let flag = if r.regressed { "  REGRESSED" } else { "" };
            let _ = writeln!(
                out,
                "{:<12} {:<32} {:>14.0} -> {:>14.0}  {}{}",
                r.strategy, r.metric, r.base, r.new, delta, flag
            );
        }
        let _ = writeln!(
            out,
            "{} metrics compared, {} regression(s) over {:.1}% threshold",
            self.rows.len(),
            self.regressions(),
            self.threshold * 100.0
        );
        out
    }
}

/// Compare two parsed report documents. Strategies are matched by
/// name; metrics present in only one side are skipped. `Err` when
/// either document lacks the report structure.
pub fn diff_reports(base: &Json, new: &Json, threshold: f64) -> Result<DiffReport, String> {
    for (label, doc) in [("baseline", base), ("candidate", new)] {
        match doc.get("kind").and_then(Json::as_str) {
            Some(k) if k == RunReportDoc::KIND => {}
            _ => return Err(format!("{label} is not a {} document", RunReportDoc::KIND)),
        }
    }
    let base_strats = base
        .get("strategies")
        .and_then(Json::as_arr)
        .ok_or("baseline has no strategies array")?;
    let new_strats = new
        .get("strategies")
        .and_then(Json::as_arr)
        .ok_or("candidate has no strategies array")?;

    let mut rows = Vec::new();
    for bs in base_strats {
        let Some(name) = bs.get("name").and_then(Json::as_str) else {
            continue;
        };
        let Some(ns) = new_strats
            .iter()
            .find(|s| s.get("name").and_then(Json::as_str) == Some(name))
        else {
            continue;
        };
        for &metric in DIFF_METRICS {
            let (Some(b), Some(n)) = (
                bs.path(metric).and_then(Json::as_f64),
                ns.path(metric).and_then(Json::as_f64),
            ) else {
                continue;
            };
            let delta_frac = if b > 0.0 {
                (n - b) / b
            } else if n > 0.0 {
                f64::INFINITY
            } else {
                0.0
            };
            rows.push(DiffRow {
                strategy: name.to_string(),
                metric: metric.to_string(),
                base: b,
                new: n,
                delta_frac,
                regressed: delta_frac > threshold,
            });
        }
    }
    Ok(DiffReport { threshold, rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc(e2e: u64) -> RunReportDoc {
        let mut h = LogHistogram::new();
        h.record_n(100, 50);
        h.record(5_000);
        let mut histograms = BTreeMap::new();
        histograms.insert("handler_ps".to_string(), HistSummary::of(&h));
        RunReportDoc {
            version: RunReportDoc::VERSION,
            trace_dropped_events: 0,
            config: ReportConfig {
                datatype: "vec(512,16,32,f64)".to_string(),
                msg_bytes: 65536,
                npkt: 32,
                gamma: 16.0,
                hpus: 16,
                payload_size: 2048,
                epsilon: 0.2,
                out_of_order: None,
            },
            strategies: vec![StrategyReport {
                name: "RW-CP".to_string(),
                end_to_end_ps: e2e,
                host_setup_ps: 1_000,
                throughput_gbit: 150.0,
                nic_mem_bytes: 4096,
                nic_mem_hwm_bytes: 4096,
                dma_writes: 512,
                dma_bytes: 65536,
                dma_max_queue: 9,
                attribution: vec![("handler_proc", e2e / 2), ("idle", e2e / 2)],
                hpu_busy_ps: e2e / 2,
                hpu_utilization: 0.03,
                histograms,
                utilization: Some(UtilizationReport {
                    bucket_ps: 1_000_000,
                    hpu_busy_frac: vec![0.5, 0.25],
                    peak_queue_depth: 9.0,
                    dma_chan_occupancy: vec![0.75],
                }),
                model: Some(ModelValidation {
                    delta_r: 3,
                    delta_p: 4,
                    num_checkpoints: 8,
                    ckpt_nic_bytes: 2048,
                    epsilon: 0.2,
                    planned_epsilon_violated: false,
                    t_ph_predicted_ps: 90_000,
                    t_ph_measured_ps: 92_000.0,
                    sched_budget_ps: 36_000,
                    sched_overhead_ps: 20_000,
                    epsilon_respected: true,
                }),
                faults: Some(FaultSummary {
                    transmissions: 40,
                    retransmissions: 8,
                    drops_injected: 5,
                    dups_injected: 2,
                    dups_suppressed: 2,
                    corrupts_injected: 1,
                    corrupts_rejected: 1,
                    acks_received: 32,
                    host_fallback_packets: 0,
                    nic_mem_fallback: false,
                    delivered_exactly_once: true,
                    checkpoint_reverts: 3,
                    catchup_blocks: 0,
                }),
                eager_fallback: false,
            }],
        }
    }

    #[test]
    fn report_json_round_trips_through_the_parser() {
        let doc = sample_doc(1_000_000);
        let json = doc.to_json();
        let v = Json::parse(&json).expect("own output must parse");
        assert_eq!(
            v.get("kind").and_then(Json::as_str),
            Some(RunReportDoc::KIND)
        );
        assert_eq!(
            v.path("config.msg_bytes").and_then(Json::as_f64),
            Some(65536.0)
        );
        let strat = &v.get("strategies").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(strat.get("name").and_then(Json::as_str), Some("RW-CP"));
        assert_eq!(
            strat
                .path("attribution.handler_proc_ps")
                .and_then(Json::as_f64),
            Some(500_000.0)
        );
        assert_eq!(
            strat.path("model.sched_overhead_ps").and_then(Json::as_f64),
            Some(20_000.0)
        );
        assert_eq!(
            strat
                .path("histograms.handler_ps.count")
                .and_then(Json::as_f64),
            Some(51.0)
        );
        assert_eq!(
            strat.path("model.epsilon_respected"),
            Some(&Json::Bool(true))
        );
        assert_eq!(
            strat.path("faults.retransmissions").and_then(Json::as_f64),
            Some(8.0)
        );
        assert_eq!(
            strat.path("faults.delivered_exactly_once"),
            Some(&Json::Bool(true))
        );
        assert_eq!(
            v.get("trace_dropped_events").and_then(Json::as_f64),
            Some(0.0)
        );
        assert_eq!(
            strat
                .path("utilization.peak_queue_depth")
                .and_then(Json::as_f64),
            Some(9.0)
        );
        let fracs = strat
            .path("utilization.hpu_busy_frac")
            .and_then(Json::as_arr)
            .unwrap();
        assert_eq!(fracs[0].as_f64(), Some(0.5));
        assert_eq!(fracs[1].as_f64(), Some(0.25));
    }

    #[test]
    fn profile_doc_round_trips_and_tiles_the_wall() {
        let doc = ProfileDoc {
            version: ProfileDoc::VERSION,
            command: "vector --count 512".to_string(),
            wall_ns: 1_000_000,
            workers: vec![
                ProfileWorker {
                    worker: 0,
                    phases: vec![
                        ProfilePhase {
                            phase: "event_queue".to_string(),
                            ns: 100_000,
                            count: 512,
                        },
                        ProfilePhase {
                            phase: "handler".to_string(),
                            ns: 600_000,
                            count: 512,
                        },
                    ],
                },
                ProfileWorker {
                    worker: 1,
                    phases: vec![ProfilePhase {
                        phase: "handler".to_string(),
                        ns: 200_000,
                        count: 128,
                    }],
                },
            ],
        };
        assert_eq!(doc.attributed_ns(), 900_000);
        assert_eq!(doc.other_ns(), 100_000);
        let totals = doc.totals();
        assert_eq!(totals.len(), 2);
        assert_eq!(totals[1].phase, "handler");
        assert_eq!(totals[1].ns, 800_000);
        assert_eq!(totals[1].count, 640);
        let v = Json::parse(&doc.to_json()).expect("own output must parse");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some(ProfileDoc::KIND));
        assert_eq!(
            v.path("totals.handler.ns").and_then(Json::as_f64),
            Some(800_000.0)
        );
        assert_eq!(v.get("other_ns").and_then(Json::as_f64), Some(100_000.0));
        let w = &v.get("workers").and_then(Json::as_arr).unwrap()[1];
        assert_eq!(
            w.path("phases.handler.count").and_then(Json::as_f64),
            Some(128.0)
        );
        // attributed + other tiles the wall exactly.
        let attributed = v.get("attributed_ns").and_then(Json::as_f64).unwrap();
        let other = v.get("other_ns").and_then(Json::as_f64).unwrap();
        let wall = v.get("wall_ns").and_then(Json::as_f64).unwrap();
        assert_eq!(attributed + other, wall);
    }

    #[test]
    fn profile_doc_other_ns_clamps_overattribution() {
        let doc = ProfileDoc {
            version: ProfileDoc::VERSION,
            command: "x".to_string(),
            wall_ns: 100,
            workers: vec![ProfileWorker {
                worker: 0,
                phases: vec![ProfilePhase {
                    phase: "handler".to_string(),
                    ns: 150,
                    count: 1,
                }],
            }],
        };
        assert_eq!(doc.other_ns(), 0);
    }

    #[test]
    fn fault_sweep_doc_round_trips_through_the_parser() {
        let doc = FaultSweepDoc {
            version: FaultSweepDoc::VERSION,
            drop: 0.05,
            duplicate: 0.02,
            corrupt: 0.01,
            reorder_ns: 2000,
            cells: vec![SweepCell {
                seed: 7,
                scale: 1.0,
                strategy: "RW-CP".to_string(),
                byte_exact: true,
                end_to_end_ps: 123_456,
                faults: FaultSummary {
                    transmissions: 35,
                    delivered_exactly_once: true,
                    ..FaultSummary::default()
                },
            }],
        };
        let v = Json::parse(&doc.to_json()).expect("own output must parse");
        assert_eq!(
            v.get("kind").and_then(Json::as_str),
            Some(FaultSweepDoc::KIND)
        );
        assert_eq!(v.get("all_byte_exact"), Some(&Json::Bool(true)));
        let cell = &v.get("cells").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(
            cell.path("faults.transmissions").and_then(Json::as_f64),
            Some(35.0)
        );
    }

    #[test]
    fn traffic_doc_round_trips_through_the_parser() {
        let mut h = LogHistogram::new();
        h.record_n(2_000_000, 995);
        h.record_n(40_000_000, 5);
        let doc = TrafficDoc {
            version: TrafficDoc::VERSION,
            seed: 11,
            hpus: 16,
            strategy: "RW-CP".to_string(),
            arrival: "poisson".to_string(),
            horizon_ps: 1_000_000_000,
            cells: vec![TrafficCell {
                app: "MILC/b".to_string(),
                discipline: "cfcfs".to_string(),
                offered_load: 0.9,
                byte_exact: true,
                utilization: Some(UtilizationReport {
                    bucket_ps: 1_000_000,
                    hpu_busy_frac: vec![0.9, 0.8],
                    peak_queue_depth: 4.0,
                    dma_chan_occupancy: vec![0.6, 0.5],
                }),
                tenants: vec![TenantTrafficReport {
                    tenant: "t0".to_string(),
                    offered: 1000,
                    admitted: 950,
                    completed: 910,
                    dropped: 60,
                    retried: 55,
                    lost: 5,
                    goodput_gbit: 88.5,
                    latency: HistSummary::of(&h),
                }],
            }],
        };
        let v = Json::parse(&doc.to_json()).expect("own output must parse");
        assert_eq!(v.get("kind").and_then(Json::as_str), Some(TrafficDoc::KIND));
        assert_eq!(v.get("all_byte_exact"), Some(&Json::Bool(true)));
        let cell = &v.get("cells").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(cell.get("discipline").and_then(Json::as_str), Some("cfcfs"));
        let t = &cell.get("tenants").and_then(Json::as_arr).unwrap()[0];
        assert_eq!(t.path("latency.count").and_then(Json::as_f64), Some(1000.0));
        let p99 = t.path("latency.p99").and_then(Json::as_f64).unwrap();
        let p999 = t.path("latency.p999").and_then(Json::as_f64).unwrap();
        assert!(p999 > p99, "the 1% tail must surface in p999");
        assert_eq!(t.get("dropped").and_then(Json::as_f64), Some(60.0));
        assert_eq!(
            cell.path("utilization.bucket_ps").and_then(Json::as_f64),
            Some(1_000_000.0)
        );
    }

    #[test]
    fn parser_handles_escapes_nulls_and_rejects_garbage() {
        let v = Json::parse(r#"{"a": "x\n\"y\"", "b": null, "c": [1, -2.5e1]}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x\n\"y\""));
        assert_eq!(v.get("b"), Some(&Json::Null));
        assert_eq!(
            v.path("c").and_then(Json::as_arr).unwrap()[1].as_f64(),
            Some(-25.0)
        );
        assert!(Json::parse("{\"a\": }").is_err());
        assert!(Json::parse("[1, 2").is_err());
        assert!(Json::parse("{} trailing").is_err());
    }

    #[test]
    fn diff_is_clean_for_identical_reports() {
        let json = sample_doc(1_000_000).to_json();
        let a = Json::parse(&json).unwrap();
        let d = diff_reports(&a, &a, DEFAULT_THRESHOLD).unwrap();
        assert!(!d.rows.is_empty());
        assert_eq!(d.regressions(), 0);
    }

    #[test]
    fn diff_flags_a_seeded_regression_over_threshold() {
        let a = Json::parse(&sample_doc(1_000_000).to_json()).unwrap();
        let b = Json::parse(&sample_doc(1_200_000).to_json()).unwrap();
        let d = diff_reports(&a, &b, 0.05).unwrap();
        assert!(
            d.rows
                .iter()
                .any(|r| r.metric == "end_to_end_ps" && r.regressed),
            "{:?}",
            d.rows
        );
        // Improvements are never "regressions".
        let rev = diff_reports(&b, &a, 0.05).unwrap();
        assert_eq!(rev.regressions(), 0);
        // A generous threshold accepts the change.
        assert_eq!(diff_reports(&a, &b, 0.5).unwrap().regressions(), 0);
    }

    #[test]
    fn diff_rejects_non_report_documents() {
        let a = Json::parse(&sample_doc(1).to_json()).unwrap();
        let junk = Json::parse("{\"kind\": \"other\"}").unwrap();
        assert!(diff_reports(&a, &junk, 0.05).is_err());
        assert!(diff_reports(&junk, &a, 0.05).is_err());
    }
}
