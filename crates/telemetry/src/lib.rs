//! # nca-telemetry — tracing & metrics for the simulation stack
//!
//! Every figure in the paper is an *observability artifact* of the NIC
//! model: DMA-queue occupancy over time (Fig. 15), handler-runtime
//! breakdowns (Fig. 12), memory-traffic volumes (Fig. 17). This crate
//! gives the whole workspace one uniform way to emit and consume such
//! signals, mirroring the per-HPU/per-queue counters real sPIN
//! implementations (PsPIN, FPsPIN) expose in hardware.
//!
//! Design:
//!
//! * A [`TraceEvent`] is one typed record — counter increment, gauge
//!   sample, value observation (histogram input), span, or instant —
//!   keyed by `(scope, component, name, track)` and stamped with the
//!   simulated [`Time`] in picoseconds.
//! * [`Recorder`] is the sink interface; [`ring::RingRecorder`] is the
//!   bundled bounded in-memory sink.
//! * [`Telemetry`] is the cheap, clonable handle instrumented code
//!   holds. A disabled handle (`Telemetry::disabled()`, also
//!   `Default`) carries no recorder: every record call is one `Option`
//!   branch and constructs nothing.
//! * [`export`] renders captured events as Chrome/Perfetto
//!   `trace_event` JSON or CSV; [`aggregate`] rolls them up
//!   (per-component totals, histogram summaries, time-bucketed series)
//!   on top of `nca_sim::stats`.
//! * [`probe::SimTelemetryProbe`] adapts a handle to
//!   [`nca_sim::SimProbe`] so the event loop itself (dispatch count,
//!   heap depth) can be traced without `nca-sim` depending on this
//!   crate.

pub mod aggregate;
pub mod export;
pub mod flight;
pub mod hist;
pub mod probe;
pub mod report;
pub mod ring;
pub mod streaming;

use std::sync::Arc;

pub use nca_sim::Time;
pub use ring::{merge_ring_events, RingRecorder};
pub use streaming::{NullRecorder, StreamAggregate, StreamingRecorder, TeeRecorder};

/// What a [`TraceEvent`] carries beyond its key and timestamp.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// Monotonic count increment (e.g. packets arrived, reverts).
    Counter {
        /// Amount added at this timestamp.
        delta: u64,
    },
    /// Sampled level (e.g. DMA-queue depth, NIC memory in use).
    Gauge {
        /// The level at this timestamp.
        value: f64,
    },
    /// One observation of a distribution (histogram input, e.g. a
    /// handler phase runtime).
    Value {
        /// The observed value.
        value: f64,
    },
    /// A duration: the event's `time` is the start.
    Span {
        /// End of the span (ps); `end >= time`.
        end: Time,
    },
    /// A point event (e.g. a checkpoint revert).
    Instant,
    /// A whole distribution snapshot: a merged [`hist::LogHistogram`]
    /// emitted once per run so percentiles survive ring-buffer
    /// eviction of the raw `Value` samples. Shared via `Arc` so the
    /// event stays cheap to clone.
    Hist {
        /// The merged histogram.
        hist: Arc<hist::LogHistogram>,
    },
}

/// One telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Run-level namespace (e.g. the strategy label when several runs
    /// share one sink); empty when unscoped.
    pub scope: &'static str,
    /// Emitting subsystem (`"sim"`, `"spin"`, `"core"`, …).
    pub component: &'static str,
    /// Metric/event name within the component.
    pub name: &'static str,
    /// Lane within the component: vHPU id, DMA channel, … (0 if N/A).
    pub track: u64,
    /// Simulated timestamp in picoseconds (span start for spans).
    pub time: Time,
    /// The payload.
    pub kind: EventKind,
}

/// A telemetry sink. Implementations must be cheap: recording happens
/// inside the simulation's hot loops.
pub trait Recorder: Send + Sync {
    /// Consume one event.
    fn record(&self, ev: TraceEvent);
}

/// The handle instrumented code holds. Cloning is a refcount bump; a
/// disabled handle records nothing and costs one branch per call site.
#[derive(Clone, Default)]
pub struct Telemetry {
    recorder: Option<Arc<dyn Recorder>>,
    scope: &'static str,
}

impl Telemetry {
    /// A handle that records nothing (the zero-cost default).
    pub fn disabled() -> Self {
        Telemetry::default()
    }

    /// A handle feeding `recorder`.
    pub fn with_recorder(recorder: Arc<dyn Recorder>) -> Self {
        Telemetry {
            recorder: Some(recorder),
            scope: "",
        }
    }

    /// A handle backed by a fresh bounded ring sink; returns the sink
    /// too so the caller can drain/export events afterwards.
    pub fn ring(capacity: usize) -> (Self, Arc<RingRecorder>) {
        let sink = Arc::new(RingRecorder::new(capacity));
        (Telemetry::with_recorder(sink.clone()), sink)
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.recorder.is_some()
    }

    /// A handle to the same sink whose events carry `scope` (used to
    /// separate e.g. per-strategy runs sharing one trace).
    pub fn scoped(&self, scope: &'static str) -> Telemetry {
        Telemetry {
            recorder: self.recorder.clone(),
            scope,
        }
    }

    /// The scope this handle stamps on events (empty when unscoped).
    pub fn scope(&self) -> &'static str {
        self.scope
    }

    #[inline]
    fn emit(
        &self,
        component: &'static str,
        name: &'static str,
        track: u64,
        time: Time,
        kind: EventKind,
    ) {
        if let Some(r) = &self.recorder {
            // Self-profiler: emission + sink work is its own phase, so
            // the cost of telemetry never pollutes the phase it fires
            // from (no-op unless `nca-sim/self-profile` is active).
            let _phase = nca_sim::profile::enter(nca_sim::profile::Phase::Telemetry);
            r.record(TraceEvent {
                scope: self.scope,
                component,
                name,
                track,
                time,
                kind,
            });
        }
    }

    /// Add `delta` to a monotonic counter.
    #[inline]
    pub fn counter(
        &self,
        component: &'static str,
        name: &'static str,
        track: u64,
        time: Time,
        delta: u64,
    ) {
        self.emit(component, name, track, time, EventKind::Counter { delta });
    }

    /// Sample a level.
    #[inline]
    pub fn gauge(
        &self,
        component: &'static str,
        name: &'static str,
        track: u64,
        time: Time,
        value: f64,
    ) {
        self.emit(component, name, track, time, EventKind::Gauge { value });
    }

    /// Observe one value of a distribution.
    #[inline]
    pub fn value(
        &self,
        component: &'static str,
        name: &'static str,
        track: u64,
        time: Time,
        value: f64,
    ) {
        self.emit(component, name, track, time, EventKind::Value { value });
    }

    /// Record a `[start, end]` span (e.g. a handler execution).
    #[inline]
    pub fn span(
        &self,
        component: &'static str,
        name: &'static str,
        track: u64,
        start: Time,
        end: Time,
    ) {
        debug_assert!(end >= start, "span ends before it starts");
        self.emit(component, name, track, start, EventKind::Span { end });
    }

    /// Record a point event.
    #[inline]
    pub fn instant(&self, component: &'static str, name: &'static str, track: u64, time: Time) {
        self.emit(component, name, track, time, EventKind::Instant);
    }

    /// Record a distribution snapshot (cloned into the event; no-op on
    /// a disabled handle, so callers can emit unconditionally).
    pub fn histogram(
        &self,
        component: &'static str,
        name: &'static str,
        track: u64,
        time: Time,
        hist: &hist::LogHistogram,
    ) {
        if self.recorder.is_some() {
            self.emit(
                component,
                name,
                track,
                time,
                EventKind::Hist {
                    hist: Arc::new(hist.clone()),
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing_and_reports_so() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        // No sink: these must be no-ops, not panics.
        t.counter("spin", "packets", 0, 10, 1);
        t.span("spin", "handler", 3, 0, 50);
    }

    #[test]
    fn ring_handle_captures_typed_events() {
        let (t, sink) = Telemetry::ring(64);
        assert!(t.is_enabled());
        t.counter("sim", "events", 0, 5, 2);
        t.gauge("spin", "dma_queue", 1, 7, 3.0);
        t.instant("core", "revert", 2, 9);
        t.span("spin", "handler", 4, 10, 30);
        let evs = sink.events();
        assert_eq!(evs.len(), 4);
        assert_eq!(evs[0].kind, EventKind::Counter { delta: 2 });
        assert_eq!(evs[1].component, "spin");
        assert_eq!(evs[3].kind, EventKind::Span { end: 30 });
    }

    #[test]
    fn histogram_snapshots_are_recorded_and_shared_cheaply() {
        let (t, sink) = Telemetry::ring(8);
        let mut h = hist::LogHistogram::new();
        h.record(10);
        h.record(1000);
        t.histogram("spin", "handler_ps", 0, 99, &h);
        let evs = sink.events();
        assert_eq!(evs.len(), 1);
        match &evs[0].kind {
            EventKind::Hist { hist } => {
                assert_eq!(hist.count(), 2);
                assert_eq!(hist.max(), Some(1000));
            }
            other => panic!("expected Hist, got {other:?}"),
        }
        // Disabled handles skip even the clone.
        Telemetry::disabled().histogram("spin", "handler_ps", 0, 0, &h);
    }

    #[test]
    fn scoped_handles_share_the_sink() {
        let (t, sink) = Telemetry::ring(8);
        t.scoped("RW-CP").instant("core", "revert", 0, 1);
        t.scoped("RO-CP").instant("core", "revert", 0, 2);
        let evs = sink.events();
        assert_eq!(evs[0].scope, "RW-CP");
        assert_eq!(evs[1].scope, "RO-CP");
    }
}
