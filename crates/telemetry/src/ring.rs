//! The bundled bounded in-memory sink.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::{Recorder, TraceEvent};

/// A ring-buffered [`Recorder`]: keeps the most recent `capacity`
/// events, counting (but not storing) anything older that overflowed.
/// Interior mutability via a `Mutex` keeps `Recorder::record(&self)`
/// usable from `Send + Sync` contexts (the concurrent multi-message
/// pipeline runs worlds on scoped threads).
pub struct RingRecorder {
    inner: Mutex<Ring>,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            inner: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1 << 16)),
                capacity,
                dropped: 0,
            }),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let g = self.inner.lock().expect("ring poisoned");
        g.events.iter().cloned().collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring poisoned").dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring poisoned").events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all retained events (the drop counter keeps its value).
    pub fn clear(&self) {
        self.inner.lock().expect("ring poisoned").events.clear();
    }
}

/// Deterministically merge per-job event captures after a parallel
/// sweep barrier.
///
/// Each entry is one job's `(events, dropped)` pair (from its private
/// [`RingRecorder`]), **in the order the jobs would have run
/// serially**. Independent jobs emit nothing concurrently into a shared
/// sink, so concatenating the captures in that order reproduces exactly
/// the stream one shared ring would have recorded from the serial loop;
/// the `capacity` bound is then applied to the merged stream (oldest
/// events evicted and counted), matching serial eviction. The result is
/// therefore byte-identical to the serial capture at any worker count —
/// the contract the golden-gate report diff relies on.
///
/// Returns the merged stream plus the total dropped count (per-job
/// drops + merge-time evictions).
pub fn merge_ring_events(
    per_job: Vec<(Vec<TraceEvent>, u64)>,
    capacity: usize,
) -> (Vec<TraceEvent>, u64) {
    let capacity = capacity.max(1);
    let mut dropped = 0u64;
    let mut all = Vec::new();
    for (events, job_dropped) in per_job {
        dropped += job_dropped;
        all.extend(events);
    }
    let evict = all.len().saturating_sub(capacity);
    all.drain(..evict);
    (all, dropped + evict as u64)
}

impl Recorder for RingRecorder {
    fn record(&self, ev: TraceEvent) {
        let mut g = self.inner.lock().expect("ring poisoned");
        if g.events.len() == g.capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(time: u64) -> TraceEvent {
        TraceEvent {
            scope: "",
            component: "t",
            name: "n",
            track: 0,
            time,
            kind: EventKind::Instant,
        }
    }

    #[test]
    fn keeps_most_recent_when_full() {
        let r = RingRecorder::new(3);
        for t in 0..10 {
            r.record(ev(t));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].time, 7);
        assert_eq!(evs[2].time, 9);
        assert_eq!(r.dropped(), 7);
    }

    /// The merge contract: per-job rings concatenated in job order +
    /// merged-stream eviction == one shared serial ring.
    #[test]
    fn merge_equals_serial_shared_ring() {
        let capacity = 5;
        // Serial reference: one shared ring sees jobs back to back.
        let shared = RingRecorder::new(capacity);
        // Parallel: each "job" records into its own (amply sized) ring.
        let jobs: Vec<Vec<u64>> = vec![vec![0, 1, 2], vec![3, 4], vec![5, 6, 7, 8]];
        let mut per_job = Vec::new();
        for times in &jobs {
            let own = RingRecorder::new(capacity);
            for &t in times {
                shared.record(ev(t));
                own.record(ev(t));
            }
            per_job.push((own.events(), own.dropped()));
        }
        let (merged, dropped) = merge_ring_events(per_job, capacity);
        assert_eq!(merged, shared.events());
        assert_eq!(dropped, shared.dropped());
        assert_eq!(dropped, 4, "9 events through capacity 5");
    }

    /// A job whose own ring overflowed still contributes its drop count.
    #[test]
    fn merge_accumulates_per_job_drops() {
        let own = RingRecorder::new(2);
        for t in 0..5 {
            own.record(ev(t));
        }
        let (merged, dropped) = merge_ring_events(vec![(own.events(), own.dropped())], 10);
        assert_eq!(merged.len(), 2);
        assert_eq!(dropped, 3);
    }

    #[test]
    fn clear_retains_drop_count() {
        let r = RingRecorder::new(2);
        for t in 0..4 {
            r.record(ev(t));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
    }
}
