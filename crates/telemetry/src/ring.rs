//! The bundled bounded in-memory sink.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::{Recorder, TraceEvent};

/// A ring-buffered [`Recorder`]: keeps the most recent `capacity`
/// events, counting (but not storing) anything older that overflowed.
/// Interior mutability via a `Mutex` keeps `Recorder::record(&self)`
/// usable from `Send + Sync` contexts (the concurrent multi-message
/// pipeline runs worlds on scoped threads).
pub struct RingRecorder {
    inner: Mutex<Ring>,
}

struct Ring {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingRecorder {
    /// A ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            inner: Mutex::new(Ring {
                events: VecDeque::with_capacity(capacity.min(1 << 16)),
                capacity,
                dropped: 0,
            }),
        }
    }

    /// Snapshot of the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        let g = self.inner.lock().expect("ring poisoned");
        g.events.iter().cloned().collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring poisoned").dropped
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring poisoned").events.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop all retained events (the drop counter keeps its value).
    pub fn clear(&self) {
        self.inner.lock().expect("ring poisoned").events.clear();
    }
}

impl Recorder for RingRecorder {
    fn record(&self, ev: TraceEvent) {
        let mut g = self.inner.lock().expect("ring poisoned");
        if g.events.len() == g.capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(time: u64) -> TraceEvent {
        TraceEvent {
            scope: "",
            component: "t",
            name: "n",
            track: 0,
            time,
            kind: EventKind::Instant,
        }
    }

    #[test]
    fn keeps_most_recent_when_full() {
        let r = RingRecorder::new(3);
        for t in 0..10 {
            r.record(ev(t));
        }
        let evs = r.events();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].time, 7);
        assert_eq!(evs[2].time, 9);
        assert_eq!(r.dropped(), 7);
    }

    #[test]
    fn clear_retains_drop_count() {
        let r = RingRecorder::new(2);
        for t in 0..4 {
            r.record(ev(t));
        }
        r.clear();
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 2);
    }
}
