//! Streaming, bounded-memory aggregation of [`TraceEvent`]s.
//!
//! The ring sink retains every event, so a million-message traffic run
//! either blows memory or silently drops the head of the stream. A
//! [`StreamAggregate`] instead *folds* each event into incremental
//! reducers at emission time — counter sums, gauge last/high-water
//! marks, span count+total, instant counts, merged [`LogHistogram`]s,
//! and time-bucketed busy/occupancy series at a configurable sim-time
//! resolution — and retains nothing else. Memory is
//! O(metrics × tracks × buckets) regardless of how many events flow
//! through.
//!
//! Equivalence contract (CI-enforced, see the proptests in
//! `tests/streaming_equiv.rs`): for any event sequence, folding
//! incrementally and calling [`StreamAggregate::rollups`] yields a
//! result **byte-identical** to retaining the events and calling
//! [`aggregate::rollup`] on them. Sharded runs keep the contract too:
//! one aggregate per job, merged with [`StreamAggregate::merge`] in
//! serial job order, equals folding the merged stream (the same
//! job-order convention as [`crate::merge_ring_events`]).
//!
//! The one reducer that is not O(1) per metric is the `Value` reducer:
//! [`aggregate::rollup`] computes nearest-rank percentiles over the raw
//! observations, so byte-identical equivalence forces us to retain
//! them. Hot paths emit `Hist`/`Span`/`Counter` events, never per-packet
//! `Value`s, so this stays small; [`StreamAggregate::approx_bytes`]
//! accounts for it either way.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use nca_sim::stats;

use crate::aggregate::{ComponentRollup, ValueSummary};
use crate::hist::LogHistogram;
use crate::{EventKind, Recorder, Time, TraceEvent};

/// Gauge reducer state: last sample and high-water mark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeAgg {
    /// Most recent sample.
    pub last: f64,
    /// Largest sample since construction or the last
    /// [`StreamAggregate::reset_gauge_hwm`].
    pub hwm: f64,
}

/// Per-component reducer state (mirrors [`ComponentRollup`] plus the
/// gauge reducers `rollup` ignores).
#[derive(Debug, Clone, Default)]
struct CompAgg {
    counters: BTreeMap<&'static str, u64>,
    values: BTreeMap<&'static str, Vec<f64>>,
    spans: BTreeMap<&'static str, (usize, Time)>,
    instants: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, LogHistogram>,
    gauges: BTreeMap<(&'static str, u64), GaugeAgg>,
}

/// Key of one time series: `(component, name, track)`.
pub type SeriesKey = (&'static str, &'static str, u64);

/// Incremental fold of a trace-event stream; see the module docs for
/// the equivalence contract with [`aggregate::rollup`].
#[derive(Debug, Clone)]
pub struct StreamAggregate {
    bucket_ps: Time,
    comps: BTreeMap<&'static str, CompAgg>,
    /// Busy picoseconds per time bucket, per span series.
    busy: BTreeMap<SeriesKey, Vec<Time>>,
    /// Per-bucket maximum, per gauge series.
    gauge_peak: BTreeMap<SeriesKey, Vec<f64>>,
}

impl StreamAggregate {
    /// An empty aggregate bucketing its time series at `bucket_ps`
    /// picoseconds per bucket (must be positive).
    pub fn new(bucket_ps: Time) -> Self {
        assert!(bucket_ps > 0, "bucket width must be positive");
        StreamAggregate {
            bucket_ps,
            comps: BTreeMap::new(),
            busy: BTreeMap::new(),
            gauge_peak: BTreeMap::new(),
        }
    }

    /// The time-series bucket width (ps).
    pub fn bucket_ps(&self) -> Time {
        self.bucket_ps
    }

    /// Fold one event into the reducers.
    pub fn fold(&mut self, ev: &TraceEvent) {
        let comp = self.comps.entry(ev.component).or_default();
        match &ev.kind {
            EventKind::Counter { delta } => {
                *comp.counters.entry(ev.name).or_insert(0) += delta;
            }
            EventKind::Value { value } => {
                comp.values.entry(ev.name).or_default().push(*value);
            }
            EventKind::Span { end } => {
                let e = comp.spans.entry(ev.name).or_insert((0, 0));
                e.0 += 1;
                e.1 += end.saturating_sub(ev.time);
                if *end > ev.time {
                    let series = self
                        .busy
                        .entry((ev.component, ev.name, ev.track))
                        .or_default();
                    fold_span(series, self.bucket_ps, ev.time, *end);
                }
            }
            EventKind::Instant => {
                *comp.instants.entry(ev.name).or_insert(0) += 1;
            }
            EventKind::Hist { hist } => {
                comp.hists.entry(ev.name).or_default().merge(hist);
            }
            EventKind::Gauge { value } => {
                let g = comp.gauges.entry((ev.name, ev.track)).or_insert(GaugeAgg {
                    last: *value,
                    hwm: f64::NEG_INFINITY,
                });
                g.last = *value;
                g.hwm = g.hwm.max(*value);
                let series = self
                    .gauge_peak
                    .entry((ev.component, ev.name, ev.track))
                    .or_default();
                let b = (ev.time / self.bucket_ps) as usize;
                if series.len() <= b {
                    series.resize(b + 1, f64::NEG_INFINITY);
                }
                series[b] = series[b].max(*value);
            }
        }
    }

    /// Fold `other` into `self`.
    ///
    /// Shards must be merged **in the order their events would have
    /// been emitted serially** (job order, the [`crate::merge_ring_events`]
    /// convention): counters/spans/instants/hists are commutative, but
    /// the retained `Value` observations and gauge `last` samples are
    /// order-sensitive.
    pub fn merge(&mut self, other: &StreamAggregate) {
        assert_eq!(
            self.bucket_ps, other.bucket_ps,
            "cannot merge aggregates with different bucket widths"
        );
        for (name, o) in &other.comps {
            let c = self.comps.entry(name).or_default();
            for (k, v) in &o.counters {
                *c.counters.entry(k).or_insert(0) += v;
            }
            for (k, v) in &o.values {
                c.values.entry(k).or_default().extend_from_slice(v);
            }
            for (k, &(n, total)) in &o.spans {
                let e = c.spans.entry(k).or_insert((0, 0));
                e.0 += n;
                e.1 += total;
            }
            for (k, v) in &o.instants {
                *c.instants.entry(k).or_insert(0) += v;
            }
            for (k, h) in &o.hists {
                c.hists.entry(k).or_default().merge(h);
            }
            for (k, g) in &o.gauges {
                let e = c.gauges.entry(*k).or_insert(GaugeAgg {
                    last: g.last,
                    hwm: f64::NEG_INFINITY,
                });
                e.last = g.last; // `other` is later in serial order
                e.hwm = e.hwm.max(g.hwm);
            }
        }
        for (k, v) in &other.busy {
            let series = self.busy.entry(*k).or_default();
            if series.len() < v.len() {
                series.resize(v.len(), 0);
            }
            for (a, b) in series.iter_mut().zip(v) {
                *a += b;
            }
        }
        for (k, v) in &other.gauge_peak {
            let series = self.gauge_peak.entry(*k).or_default();
            if series.len() < v.len() {
                series.resize(v.len(), f64::NEG_INFINITY);
            }
            for (a, b) in series.iter_mut().zip(v) {
                *a = a.max(*b);
            }
        }
    }

    /// The rollup this stream reduces to — byte-identical to
    /// [`aggregate::rollup`] over the same (merged) event sequence.
    pub fn rollups(&self) -> BTreeMap<String, ComponentRollup> {
        let mut out = BTreeMap::new();
        for (name, c) in &self.comps {
            let mut r = ComponentRollup::default();
            for (k, &v) in &c.counters {
                r.counters.insert(k.to_string(), v);
            }
            for (k, xs) in &c.values {
                let ps = stats::percentiles(xs, &[50.0, 95.0]).expect("non-empty");
                r.values.insert(
                    k.to_string(),
                    ValueSummary {
                        count: xs.len(),
                        mean: stats::mean(xs),
                        p50: ps[0],
                        p95: ps[1],
                        max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                    },
                );
            }
            for (k, &v) in &c.spans {
                r.spans.insert(k.to_string(), v);
            }
            for (k, &v) in &c.instants {
                r.instants.insert(k.to_string(), v);
            }
            for (k, h) in &c.hists {
                r.hists.insert(k.to_string(), h.clone());
            }
            out.insert(name.to_string(), r);
        }
        out
    }

    /// Total of one counter (all tracks); 0 when absent.
    pub fn counter_total(&self, component: &str, name: &str) -> u64 {
        self.comps
            .get(component)
            .and_then(|c| c.counters.get(name))
            .copied()
            .unwrap_or(0)
    }

    /// The merged histogram of one metric, `None` when absent.
    pub fn merged_hist(&self, component: &str, name: &str) -> Option<&LogHistogram> {
        self.comps.get(component).and_then(|c| c.hists.get(name))
    }

    /// `(count, total_ps)` of one span metric, `None` when absent.
    pub fn span_total(&self, component: &str, name: &str) -> Option<(usize, Time)> {
        self.comps
            .get(component)
            .and_then(|c| c.spans.get(name))
            .copied()
    }

    /// High-water mark of one gauge across all tracks since the last
    /// [`reset_gauge_hwm`](Self::reset_gauge_hwm); `None` when no
    /// sample arrived since.
    pub fn gauge_hwm(&self, component: &str, name: &str) -> Option<f64> {
        let c = self.comps.get(component)?;
        let hwm = c
            .gauges
            .iter()
            .filter(|((n, _), _)| *n == name)
            .map(|(_, g)| g.hwm)
            .fold(f64::NEG_INFINITY, f64::max);
        hwm.is_finite().then_some(hwm)
    }

    /// Most recent sample of one gauge track.
    pub fn gauge_last(&self, component: &str, name: &str, track: u64) -> Option<f64> {
        self.comps
            .get(component)
            .and_then(|c| {
                c.gauges
                    .iter()
                    .find(|((n, t), _)| *n == name && *t == track)
            })
            .map(|(_, g)| g.last)
    }

    /// Reset every gauge high-water mark (keeps the last samples).
    /// Called between pool jobs so a job's HWM (e.g.
    /// `nic_mem_hwm_bytes`) is not contaminated by a previous job that
    /// ran on the same worker and sink.
    pub fn reset_gauge_hwm(&mut self) {
        for c in self.comps.values_mut() {
            for g in c.gauges.values_mut() {
                g.hwm = f64::NEG_INFINITY;
            }
        }
    }

    /// Busy picoseconds per time bucket of one span series (e.g. the
    /// per-vHPU `handler` occupancy). Empty when the series is absent.
    pub fn busy_series(&self, component: &str, name: &str, track: u64) -> &[Time] {
        self.busy
            .iter()
            .find(|((c, n, t), _)| *c == component && *n == name && *t == track)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// Busy *fraction* per time bucket of one span series: busy ps over
    /// the bucket width (can exceed 1.0 if spans of one track overlap).
    pub fn busy_fraction(&self, component: &str, name: &str, track: u64) -> Vec<f64> {
        self.busy_series(component, name, track)
            .iter()
            .map(|&b| b as f64 / self.bucket_ps as f64)
            .collect()
    }

    /// Total busy picoseconds of one span series across all buckets.
    pub fn busy_total(&self, component: &str, name: &str, track: u64) -> Time {
        self.busy_series(component, name, track).iter().sum()
    }

    /// The tracks a span series was recorded on, ascending.
    pub fn busy_tracks(&self, component: &str, name: &str) -> Vec<u64> {
        self.busy
            .keys()
            .filter(|(c, n, _)| *c == component && *n == name)
            .map(|&(_, _, t)| t)
            .collect()
    }

    /// Per-bucket maximum of one gauge series; `NEG_INFINITY` marks
    /// buckets without a sample. Empty when the series is absent.
    pub fn gauge_peak_series(&self, component: &str, name: &str, track: u64) -> &[f64] {
        self.gauge_peak
            .iter()
            .find(|((c, n, t), _)| *c == component && *n == name && *t == track)
            .map(|(_, v)| v.as_slice())
            .unwrap_or(&[])
    }

    /// All busy series as `(key, busy_ps_per_bucket)` in key order
    /// (Perfetto counter-track export walks this).
    pub fn busy_series_iter(&self) -> impl Iterator<Item = (SeriesKey, &[Time])> {
        self.busy.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// All gauge-peak series as `(key, max_per_bucket)` in key order.
    pub fn gauge_peak_iter(&self) -> impl Iterator<Item = (SeriesKey, &[f64])> {
        self.gauge_peak.iter().map(|(k, v)| (*k, v.as_slice()))
    }

    /// Approximate heap footprint of the reducer state in bytes — the
    /// number the bounded-memory acceptance gate checks. Map-entry
    /// bookkeeping is estimated at a flat 64 bytes per entry.
    pub fn approx_bytes(&self) -> usize {
        const ENTRY: usize = 64;
        let mut bytes = std::mem::size_of::<Self>();
        for c in self.comps.values() {
            bytes += ENTRY;
            bytes += c.counters.len() * (ENTRY + 8);
            bytes += c.spans.len() * (ENTRY + 24);
            bytes += c.instants.len() * (ENTRY + 8);
            bytes += c.gauges.len() * (ENTRY + 16);
            for v in c.values.values() {
                bytes += ENTRY + v.capacity() * 8;
            }
            for h in c.hists.values() {
                bytes += ENTRY + h.heap_bytes();
            }
        }
        for v in self.busy.values() {
            bytes += ENTRY + v.capacity() * 8;
        }
        for v in self.gauge_peak.values() {
            bytes += ENTRY + v.capacity() * 8;
        }
        bytes
    }
}

/// Distribute the busy time of span `[start, end)` over the buckets it
/// overlaps.
fn fold_span(series: &mut Vec<Time>, bucket_ps: Time, start: Time, end: Time) {
    debug_assert!(end > start);
    let b0 = (start / bucket_ps) as usize;
    let b1 = ((end - 1) / bucket_ps) as usize;
    if series.len() <= b1 {
        series.resize(b1 + 1, 0);
    }
    for (b, slot) in series.iter_mut().enumerate().take(b1 + 1).skip(b0) {
        let lo = b as Time * bucket_ps;
        let hi = lo + bucket_ps;
        *slot += end.min(hi) - start.max(lo);
    }
}

/// A [`Recorder`] folding events into a [`StreamAggregate`] at
/// emission: the bounded-memory alternative to [`crate::RingRecorder`].
pub struct StreamingRecorder {
    inner: Mutex<StreamAggregate>,
}

impl StreamingRecorder {
    /// A recorder bucketing time series at `bucket_ps`.
    pub fn new(bucket_ps: Time) -> Self {
        StreamingRecorder {
            inner: Mutex::new(StreamAggregate::new(bucket_ps)),
        }
    }

    /// Mark a pool-job boundary: resets gauge high-water marks so the
    /// next job's HWMs start fresh even when the sink is reused across
    /// jobs on one worker (see
    /// [`StreamAggregate::reset_gauge_hwm`]).
    pub fn begin_job(&self) {
        self.lock().reset_gauge_hwm();
    }

    /// Clone of the current aggregate.
    pub fn snapshot(&self) -> StreamAggregate {
        self.lock().clone()
    }

    /// Take the aggregate out, leaving a fresh one (same bucket width).
    pub fn take(&self) -> StreamAggregate {
        let mut g = self.lock();
        let bucket_ps = g.bucket_ps;
        std::mem::replace(&mut g, StreamAggregate::new(bucket_ps))
    }

    /// Approximate heap footprint of the aggregate (see
    /// [`StreamAggregate::approx_bytes`]).
    pub fn approx_bytes(&self) -> usize {
        self.lock().approx_bytes()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, StreamAggregate> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl Recorder for StreamingRecorder {
    fn record(&self, ev: TraceEvent) {
        self.lock().fold(&ev);
    }
}

/// A [`Recorder`] that discards every event. Emission cost is identical
/// to any real sink, so benchmarking against it isolates what a sink
/// does per event from what constructing and dispatching the event
/// costs.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn record(&self, _ev: TraceEvent) {}
}

/// A [`Recorder`] fanning every event out to two sinks — typically a
/// [`crate::RingRecorder`] (for trace export / flight attribution) and
/// a [`StreamingRecorder`] (for bounded-memory aggregation).
pub struct TeeRecorder {
    a: Arc<dyn Recorder>,
    b: Arc<dyn Recorder>,
}

impl TeeRecorder {
    /// Fan out to `a` then `b` (per event, in that order).
    pub fn new(a: Arc<dyn Recorder>, b: Arc<dyn Recorder>) -> Self {
        TeeRecorder { a, b }
    }
}

impl Recorder for TeeRecorder {
    fn record(&self, ev: TraceEvent) {
        self.a.record(ev.clone());
        self.b.record(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate;

    fn ev(
        component: &'static str,
        name: &'static str,
        track: u64,
        time: Time,
        kind: EventKind,
    ) -> TraceEvent {
        TraceEvent {
            scope: "",
            component,
            name,
            track,
            time,
            kind,
        }
    }

    fn sample_stream() -> Vec<TraceEvent> {
        let mut h = LogHistogram::new();
        h.record(10);
        h.record(5000);
        vec![
            ev(
                "spin",
                "packets_arrived",
                0,
                5,
                EventKind::Counter { delta: 1 },
            ),
            ev("spin", "handler", 2, 10, EventKind::Span { end: 250 }),
            ev("spin", "dma_queue", 0, 15, EventKind::Gauge { value: 2.0 }),
            ev("spin", "handler", 1, 120, EventKind::Span { end: 380 }),
            ev("spin", "dma_queue", 0, 130, EventKind::Gauge { value: 5.0 }),
            ev("core", "lat", 0, 140, EventKind::Value { value: 7.5 }),
            ev("core", "lat", 0, 150, EventKind::Value { value: 2.5 }),
            ev("spin", "dispatch", 3, 160, EventKind::Instant),
            ev(
                "spin",
                "packets_arrived",
                0,
                170,
                EventKind::Counter { delta: 3 },
            ),
            ev("spin", "dma_queue", 0, 180, EventKind::Gauge { value: 1.0 }),
            ev(
                "spin",
                "handler_ps",
                0,
                200,
                EventKind::Hist { hist: Arc::new(h) },
            ),
            ev("spin", "handler", 2, 210, EventKind::Span { end: 210 }),
        ]
    }

    #[test]
    fn rollups_match_retained_rollup_exactly() {
        let evs = sample_stream();
        let mut agg = StreamAggregate::new(100);
        for e in &evs {
            agg.fold(e);
        }
        assert_eq!(agg.rollups(), aggregate::rollup(&evs));
    }

    #[test]
    fn sharded_merge_matches_serial_fold() {
        let evs = sample_stream();
        for split in 0..=evs.len() {
            let mut serial = StreamAggregate::new(100);
            for e in &evs {
                serial.fold(e);
            }
            let mut a = StreamAggregate::new(100);
            let mut b = StreamAggregate::new(100);
            for e in &evs[..split] {
                a.fold(e);
            }
            for e in &evs[split..] {
                b.fold(e);
            }
            a.merge(&b);
            assert_eq!(a.rollups(), serial.rollups(), "split at {split}");
            assert_eq!(
                a.busy_series("spin", "handler", 2),
                serial.busy_series("spin", "handler", 2)
            );
            assert_eq!(
                a.gauge_peak_series("spin", "dma_queue", 0),
                serial.gauge_peak_series("spin", "dma_queue", 0)
            );
        }
    }

    #[test]
    fn span_busy_tiles_across_buckets() {
        let mut agg = StreamAggregate::new(100);
        // [10, 250) overlaps buckets 0 ([10,100) = 90), 1 (100), 2 (50).
        agg.fold(&ev("spin", "handler", 2, 10, EventKind::Span { end: 250 }));
        assert_eq!(agg.busy_series("spin", "handler", 2), &[90, 100, 50]);
        assert_eq!(agg.busy_total("spin", "handler", 2), 240);
        let frac = agg.busy_fraction("spin", "handler", 2);
        assert_eq!(frac, vec![0.9, 1.0, 0.5]);
        // Zero-length spans contribute count but no busy time.
        agg.fold(&ev("spin", "handler", 2, 300, EventKind::Span { end: 300 }));
        assert_eq!(agg.busy_total("spin", "handler", 2), 240);
        assert_eq!(agg.span_total("spin", "handler"), Some((2, 240)));
    }

    #[test]
    fn gauge_peak_is_per_bucket_max() {
        let mut agg = StreamAggregate::new(100);
        for (t, v) in [(10, 2.0), (20, 7.0), (30, 3.0), (250, 1.0)] {
            agg.fold(&ev(
                "spin",
                "dma_queue",
                0,
                t,
                EventKind::Gauge { value: v },
            ));
        }
        let s = agg.gauge_peak_series("spin", "dma_queue", 0);
        assert_eq!(s[0], 7.0);
        assert_eq!(s[2], 1.0);
        assert!(s[1] == f64::NEG_INFINITY, "no sample in bucket 1");
        assert_eq!(agg.gauge_hwm("spin", "dma_queue"), Some(7.0));
        assert_eq!(agg.gauge_last("spin", "dma_queue", 0), Some(1.0));
    }

    #[test]
    fn reset_gauge_hwm_clears_contamination() {
        let mut agg = StreamAggregate::new(100);
        agg.fold(&ev(
            "spin",
            "nic_mem_bytes",
            0,
            10,
            EventKind::Gauge { value: 900.0 },
        ));
        assert_eq!(agg.gauge_hwm("spin", "nic_mem_bytes"), Some(900.0));
        agg.reset_gauge_hwm();
        assert_eq!(agg.gauge_hwm("spin", "nic_mem_bytes"), None);
        agg.fold(&ev(
            "spin",
            "nic_mem_bytes",
            0,
            20,
            EventKind::Gauge { value: 40.0 },
        ));
        assert_eq!(
            agg.gauge_hwm("spin", "nic_mem_bytes"),
            Some(40.0),
            "HWM must restart after the job boundary, not remember 900"
        );
    }

    #[test]
    fn streaming_recorder_folds_and_begin_job_resets() {
        let rec = Arc::new(StreamingRecorder::new(100));
        let tel = crate::Telemetry::with_recorder(rec.clone());
        tel.gauge("spin", "nic_mem_bytes", 0, 5, 1000.0);
        tel.counter("spin", "packets_arrived", 0, 6, 2);
        assert_eq!(
            rec.snapshot().gauge_hwm("spin", "nic_mem_bytes"),
            Some(1000.0)
        );
        rec.begin_job();
        tel.gauge("spin", "nic_mem_bytes", 0, 7, 10.0);
        let agg = rec.snapshot();
        assert_eq!(agg.gauge_hwm("spin", "nic_mem_bytes"), Some(10.0));
        assert_eq!(agg.counter_total("spin", "packets_arrived"), 2);
        assert!(rec.approx_bytes() > 0);
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let ring = Arc::new(crate::RingRecorder::new(16));
        let stream = Arc::new(StreamingRecorder::new(100));
        let tee = TeeRecorder::new(ring.clone(), stream.clone());
        let tel = crate::Telemetry::with_recorder(Arc::new(tee));
        tel.counter("spin", "packets_arrived", 0, 1, 5);
        assert_eq!(ring.len(), 1);
        assert_eq!(
            stream.snapshot().counter_total("spin", "packets_arrived"),
            5
        );
    }

    #[test]
    fn memory_stays_bounded_under_a_flood() {
        let mut agg = StreamAggregate::new(1_000_000);
        for i in 0..200_000u64 {
            let t = i * 50;
            agg.fold(&ev(
                "spin",
                "handler",
                i % 16,
                t,
                EventKind::Span { end: t + 40 },
            ));
            agg.fold(&ev(
                "spin",
                "dma_queue",
                0,
                t,
                EventKind::Gauge {
                    value: (i % 7) as f64,
                },
            ));
            agg.fold(&ev(
                "spin",
                "packets_arrived",
                0,
                t,
                EventKind::Counter { delta: 1 },
            ));
        }
        // 200k events × 3 kinds folded; state is O(tracks × buckets).
        assert!(
            agg.approx_bytes() < 1 << 20,
            "flood must not grow the aggregate: {} bytes",
            agg.approx_bytes()
        );
        assert_eq!(agg.counter_total("spin", "packets_arrived"), 200_000);
    }

    #[test]
    #[should_panic(expected = "different bucket widths")]
    fn merging_mismatched_buckets_panics() {
        let mut a = StreamAggregate::new(100);
        a.merge(&StreamAggregate::new(200));
    }
}
