//! Aggregation helpers over captured [`TraceEvent`]s: per-component
//! rollups and time-bucketed series, built on `nca_sim::stats`.

use std::collections::BTreeMap;

use nca_sim::stats;

use crate::hist::LogHistogram;
use crate::{EventKind, Time, TraceEvent};

/// Five-number-style summary of the `Value` observations of one metric.
#[derive(Debug, Clone, PartialEq)]
pub struct ValueSummary {
    /// Number of observations.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (nearest rank).
    pub p50: f64,
    /// 95th percentile (nearest rank).
    pub p95: f64,
    /// Maximum.
    pub max: f64,
}

/// Everything one component emitted, rolled up.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ComponentRollup {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Value-metric summaries by name.
    pub values: BTreeMap<String, ValueSummary>,
    /// Span count and total duration (ps) by name.
    pub spans: BTreeMap<String, (usize, Time)>,
    /// Instant counts by name.
    pub instants: BTreeMap<String, u64>,
    /// Merged histogram snapshots by name (all `Hist` events of the
    /// same name fold into one distribution).
    pub hists: BTreeMap<String, LogHistogram>,
}

/// Roll up `events` per component (scopes are merged; filter first if
/// per-scope rollups are wanted).
pub fn rollup(events: &[TraceEvent]) -> BTreeMap<String, ComponentRollup> {
    let mut out: BTreeMap<String, ComponentRollup> = BTreeMap::new();
    let mut raw_values: BTreeMap<(String, String), Vec<f64>> = BTreeMap::new();
    for ev in events {
        let comp = out.entry(ev.component.to_string()).or_default();
        match &ev.kind {
            EventKind::Counter { delta } => {
                *comp.counters.entry(ev.name.to_string()).or_insert(0) += delta;
            }
            EventKind::Value { value } => {
                raw_values
                    .entry((ev.component.to_string(), ev.name.to_string()))
                    .or_default()
                    .push(*value);
            }
            EventKind::Span { end } => {
                let e = comp.spans.entry(ev.name.to_string()).or_insert((0, 0));
                e.0 += 1;
                e.1 += end.saturating_sub(ev.time);
            }
            EventKind::Instant => {
                *comp.instants.entry(ev.name.to_string()).or_insert(0) += 1;
            }
            EventKind::Hist { hist } => {
                comp.hists
                    .entry(ev.name.to_string())
                    .or_default()
                    .merge(hist);
            }
            EventKind::Gauge { .. } => {} // levels don't aggregate additively
        }
    }
    for ((component, name), xs) in raw_values {
        let ps = stats::percentiles(&xs, &[50.0, 95.0]).expect("non-empty");
        let summary = ValueSummary {
            count: xs.len(),
            mean: stats::mean(&xs),
            p50: ps[0],
            p95: ps[1],
            max: xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        };
        out.entry(component)
            .or_default()
            .values
            .insert(name, summary);
    }
    out
}

/// Total of one counter across `events` (all scopes/tracks).
pub fn counter_total(events: &[TraceEvent], component: &str, name: &str) -> u64 {
    events
        .iter()
        .filter(|ev| ev.component == component && ev.name == name)
        .map(|ev| match ev.kind {
            EventKind::Counter { delta } => delta,
            _ => 0,
        })
        .sum::<u64>()
}

/// The merged histogram of one metric across `events` (all tracks),
/// `None` when no `Hist` event matches.
pub fn merged_hist(events: &[TraceEvent], component: &str, name: &str) -> Option<LogHistogram> {
    let mut out: Option<LogHistogram> = None;
    for ev in events {
        if ev.component == component && ev.name == name {
            if let EventKind::Hist { hist } = &ev.kind {
                out.get_or_insert_with(LogHistogram::new).merge(hist);
            }
        }
    }
    out
}

/// Sum a counter's deltas into fixed-width time buckets.
///
/// Returns `(bucket_start_ps, sum_of_deltas)` for every bucket from 0 to
/// the last event, including empty ones, so series of the same span and
/// width line up. The series total always equals
/// [`counter_total`] for the same selection (property-tested).
pub fn bucket_counter_series(
    events: &[TraceEvent],
    component: &str,
    name: &str,
    bucket_ps: Time,
) -> Vec<(Time, u64)> {
    assert!(bucket_ps > 0, "bucket width must be positive");
    let deltas: Vec<(Time, u64)> = events
        .iter()
        .filter(|ev| ev.component == component && ev.name == name)
        .filter_map(|ev| match ev.kind {
            EventKind::Counter { delta } => Some((ev.time, delta)),
            _ => None,
        })
        .collect();
    let Some(t_max) = deltas.iter().map(|&(t, _)| t).max() else {
        return Vec::new();
    };
    let n = (t_max / bucket_ps + 1) as usize;
    let mut buckets = vec![0u64; n];
    for (t, d) in deltas {
        buckets[(t / bucket_ps) as usize] += d;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(i, sum)| (i as Time * bucket_ps, sum))
        .collect()
}

/// The time series of one gauge: every `(time, value)` sample, in
/// recording order (e.g. the DMA-queue occupancy of Fig. 15).
pub fn gauge_series(events: &[TraceEvent], component: &str, name: &str) -> Vec<(Time, f64)> {
    events
        .iter()
        .filter(|ev| ev.component == component && ev.name == name)
        .filter_map(|ev| match ev.kind {
            EventKind::Gauge { value } => Some((ev.time, value)),
            _ => None,
        })
        .collect()
}

/// Keep only events carrying `scope` (see [`crate::Telemetry::scoped`]).
pub fn filter_scope<'a>(events: &'a [TraceEvent], scope: &str) -> Vec<&'a TraceEvent> {
    events.iter().filter(|ev| ev.scope == scope).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(name: &'static str, time: Time, delta: u64) -> TraceEvent {
        TraceEvent {
            scope: "",
            component: "c",
            name,
            track: 0,
            time,
            kind: EventKind::Counter { delta },
        }
    }

    fn value(name: &'static str, v: f64) -> TraceEvent {
        TraceEvent {
            scope: "",
            component: "c",
            name,
            track: 0,
            time: 0,
            kind: EventKind::Value { value: v },
        }
    }

    #[test]
    fn rollup_sums_counters_and_summarizes_values() {
        let evs = vec![
            counter("pkts", 10, 1),
            counter("pkts", 20, 2),
            counter("drops", 30, 1),
            value("lat", 10.0),
            value("lat", 30.0),
            TraceEvent {
                scope: "",
                component: "c",
                name: "h",
                track: 1,
                time: 5,
                kind: EventKind::Span { end: 25 },
            },
            TraceEvent {
                scope: "",
                component: "c",
                name: "h",
                track: 2,
                time: 10,
                kind: EventKind::Span { end: 20 },
            },
            TraceEvent {
                scope: "",
                component: "c",
                name: "boom",
                track: 0,
                time: 9,
                kind: EventKind::Instant,
            },
        ];
        let r = rollup(&evs);
        let c = &r["c"];
        assert_eq!(c.counters["pkts"], 3);
        assert_eq!(c.counters["drops"], 1);
        let lat = &c.values["lat"];
        assert_eq!(lat.count, 2);
        assert_eq!(lat.mean, 20.0);
        assert_eq!(lat.max, 30.0);
        assert_eq!(c.spans["h"], (2, 30));
        assert_eq!(c.instants["boom"], 1);
    }

    #[test]
    fn bucket_series_totals_match_counter_total() {
        let evs = vec![
            counter("pkts", 0, 1),
            counter("pkts", 99, 2),
            counter("pkts", 100, 4),
            counter("pkts", 350, 8),
        ];
        let series = bucket_counter_series(&evs, "c", "pkts", 100);
        assert_eq!(series, vec![(0, 3), (100, 4), (200, 0), (300, 8)]);
        let total: u64 = series.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, counter_total(&evs, "c", "pkts"));
    }

    #[test]
    fn bucket_series_of_nothing_is_empty() {
        assert!(bucket_counter_series(&[], "c", "pkts", 10).is_empty());
    }

    #[test]
    fn gauge_series_preserves_order() {
        let evs = vec![
            TraceEvent {
                scope: "",
                component: "c",
                name: "q",
                track: 0,
                time: 5,
                kind: EventKind::Gauge { value: 1.0 },
            },
            TraceEvent {
                scope: "",
                component: "c",
                name: "q",
                track: 0,
                time: 9,
                kind: EventKind::Gauge { value: 2.0 },
            },
            counter("q", 7, 1), // different kind, same name: excluded
        ];
        assert_eq!(gauge_series(&evs, "c", "q"), vec![(5, 1.0), (9, 2.0)]);
    }
}
