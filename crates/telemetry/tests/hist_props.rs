//! Property: merging histograms loses nothing a percentile query can
//! see — for any split of a sample set into two histograms, the merged
//! histogram's percentile *bounds* bracket the exact nearest-rank
//! percentile of the concatenated raw samples.

use nca_telemetry::hist::LogHistogram;
use proptest::prelude::*;

fn hist_of(xs: &[u64]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for &x in xs {
        h.record(x);
    }
    h
}

proptest! {
    #[test]
    fn merged_percentiles_bracket_concatenated_samples(
        a in proptest::collection::vec(0u64..1_000_000_000, 1..150),
        b in proptest::collection::vec(0u64..1_000_000_000, 1..150),
        q in 1u64..=100,
    ) {
        let mut merged = hist_of(&a);
        merged.merge(&hist_of(&b));

        let mut all: Vec<u64> = a.iter().chain(&b).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(merged.count(), all.len() as u64);

        // Exact nearest-rank percentile of the raw concatenation.
        let q = q as f64;
        let k = ((q / 100.0) * all.len() as f64).ceil().max(1.0) as usize;
        let truth = all[k.min(all.len()) - 1];

        let (lo, hi) = merged.percentile_bounds(q).expect("non-empty");
        prop_assert!(
            lo <= truth && truth <= hi,
            "q={}: exact percentile {} outside merged bounds [{}, {}]",
            q, truth, lo, hi
        );
        // And the point estimate is the upper bound, clamped to range.
        prop_assert_eq!(merged.percentile(q), Some(hi));
    }

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..1_000_000, 0..100),
        b in proptest::collection::vec(0u64..1_000_000, 0..100),
    ) {
        let (ha, hb) = (hist_of(&a), hist_of(&b));
        let mut ab = ha.clone();
        ab.merge(&hb);
        let mut ba = hb.clone();
        ba.merge(&ha);
        prop_assert_eq!(ab, ba);
    }
}
