//! Property: time-bucketed counter series conserve mass — the sum over
//! all buckets equals the raw counter total, for any event stream and
//! any bucket width.

use nca_telemetry::aggregate::{bucket_counter_series, counter_total};
use nca_telemetry::{EventKind, TraceEvent};
use proptest::prelude::*;

fn counter_events(samples: &[(u64, u64)]) -> Vec<TraceEvent> {
    samples
        .iter()
        .map(|&(time, delta)| TraceEvent {
            scope: "",
            component: "c",
            name: "pkts",
            track: 0,
            time,
            kind: EventKind::Counter { delta },
        })
        .collect()
}

proptest! {
    #[test]
    fn bucket_totals_equal_raw_counter_sums(
        samples in proptest::collection::vec((0u64..1_000_000, 0u64..1000), 1..200),
        bucket in 1u64..100_000,
    ) {
        let events = counter_events(&samples);
        let series = bucket_counter_series(&events, "c", "pkts", bucket);
        let bucketed: u64 = series.iter().map(|&(_, s)| s).sum();
        prop_assert_eq!(bucketed, counter_total(&events, "c", "pkts"));
        // Bucket starts are aligned and strictly increasing.
        for w in series.windows(2) {
            prop_assert_eq!(w[1].0 - w[0].0, bucket);
        }
        for &(start, _) in &series {
            prop_assert_eq!(start % bucket, 0);
        }
    }

    #[test]
    fn bucketing_is_insensitive_to_event_order(
        samples in proptest::collection::vec((0u64..10_000, 0u64..100), 1..50),
        bucket in 1u64..1_000,
    ) {
        let forward = counter_events(&samples);
        let mut reversed = samples.clone();
        reversed.reverse();
        let backward = counter_events(&reversed);
        prop_assert_eq!(
            bucket_counter_series(&forward, "c", "pkts", bucket),
            bucket_counter_series(&backward, "c", "pkts", bucket)
        );
    }
}
