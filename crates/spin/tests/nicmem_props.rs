//! Property tests for the NIC memory allocator's free-list invariants:
//! random alloc/free interleavings must keep the free list sorted,
//! disjoint and fully coalesced, and the byte accounting must balance
//! (`used() + free bytes == capacity`, no underflow).

use proptest::prelude::*;

use nca_spin::nicmem::NicMemory;

const CAPACITY: u64 = 1024;

#[derive(Debug, Clone)]
enum Op {
    /// Allocate this many bytes (may legitimately fail when full or
    /// fragmented).
    Alloc(u64),
    /// Free the live allocation at this index (mod live count).
    Free(usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..200).prop_map(Op::Alloc),
            (0usize..64).prop_map(Op::Free),
        ],
        1..120,
    )
}

/// All allocator invariants, checked after every step.
fn check_invariants(m: &NicMemory) {
    let free = m.free_ranges();
    let free_total: u64 = free.iter().map(|&(_, l)| l).sum();
    assert!(m.used() <= m.capacity(), "used exceeds capacity");
    assert_eq!(
        m.used() + free_total,
        m.capacity(),
        "accounting must balance: used {} + free {free_total} != {}",
        m.used(),
        m.capacity()
    );
    for w in free.windows(2) {
        let ((s1, l1), (s2, _)) = (w[0], w[1]);
        assert!(s1 + l1 <= s2, "free ranges overlap: {w:?}");
        assert!(
            s1 + l1 < s2,
            "adjacent free ranges must have been coalesced: {w:?}"
        );
    }
    for &(s, l) in free {
        assert!(l > 0, "empty free range retained");
        assert!(s + l <= m.capacity(), "free range outside capacity");
    }
}

/// Directed coverage of every coalescing direction: merge with the
/// successor only, the predecessor only, and both at once.
#[test]
fn both_coalesce_directions_merge() {
    let mut m = NicMemory::new(CAPACITY);
    let a = m.alloc(100).unwrap();
    let b = m.alloc(100).unwrap();
    let c = m.alloc(100).unwrap();
    let _rest = m.alloc(CAPACITY - 300).unwrap();

    m.free(c); // frees [200, 300): no neighbor yet
    check_invariants(&m);
    m.free(a); // frees [0, 100): no neighbor yet
    assert_eq!(m.free_ranges(), &[(0, 100), (200, 100)]);
    m.free(b); // [100, 200) touches both: must fuse into one range
    check_invariants(&m);
    assert_eq!(m.free_ranges(), &[(0, 300)]);

    // Successor-only and predecessor-only merges.
    let a = m.alloc(100).unwrap();
    let b = m.alloc(100).unwrap();
    let c = m.alloc(100).unwrap();
    m.free(b);
    m.free(a); // [0,100) merges forward into [100,200)
    check_invariants(&m);
    assert_eq!(m.free_ranges(), &[(0, 200)]);
    m.free(c); // [200,300) merges backward into [0,200)
    check_invariants(&m);
    assert_eq!(m.free_ranges(), &[(0, 300)]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn free_list_invariants_hold(ops in arb_ops()) {
        let mut m = NicMemory::new(CAPACITY);
        let mut live = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Some(id) = m.alloc(len) {
                        if len > 0 {
                            live.push(id);
                        }
                    }
                }
                Op::Free(idx) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(idx % live.len());
                        m.free(id);
                    }
                }
            }
            check_invariants(&m);
        }
    }

    /// Freeing everything always coalesces back to one full-capacity
    /// range, no matter the interleaving.
    #[test]
    fn full_drain_coalesces_to_one_range(ops in arb_ops()) {
        let mut m = NicMemory::new(CAPACITY);
        let mut live = Vec::new();
        for op in ops {
            match op {
                Op::Alloc(len) => {
                    if let Some(id) = m.alloc(len) {
                        if len > 0 {
                            live.push(id);
                        }
                    }
                }
                Op::Free(idx) => {
                    if !live.is_empty() {
                        let id = live.swap_remove(idx % live.len());
                        m.free(id);
                    }
                }
            }
        }
        for id in live {
            m.free(id);
        }
        check_invariants(&m);
        prop_assert_eq!(m.used(), 0);
        prop_assert_eq!(m.free_ranges(), &[(0, CAPACITY)][..]);
    }

    /// Double-free of an id is a no-op: accounting never underflows and
    /// the free list never gains an overlapping range.
    #[test]
    fn double_free_is_inert(lens in proptest::collection::vec(1u64..200, 1..8)) {
        let mut m = NicMemory::new(CAPACITY);
        let ids: Vec<_> = lens.iter().filter_map(|&l| m.alloc(l)).collect();
        for &id in &ids {
            m.free(id);
            m.free(id); // second free of the same id must do nothing
            check_invariants(&m);
        }
        prop_assert_eq!(m.used(), 0);
        prop_assert_eq!(m.free_ranges(), &[(0, CAPACITY)][..]);
    }
}
