//! Property tests: concurrent multi-message receives stay byte-exact
//! under random sizes, start times and HPU counts.

use proptest::prelude::*;

use nca_spin::builtin::ContigProcessor;
use nca_spin::multi::{run_concurrent, MessageSpec};
use nca_spin::params::NicParams;

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| ((i * 7 + seed as usize) % 251) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn concurrent_messages_byte_exact(
        sizes in proptest::collection::vec(1usize..100_000, 1..6),
        starts in proptest::collection::vec(0u64..100, 1..6),
        hpus in 1usize..32,
    ) {
        let params = NicParams::with_hpus(hpus);
        let handler = params.spin_min_handler();
        let n = sizes.len().min(starts.len());
        let specs: Vec<MessageSpec> = (0..n)
            .map(|i| MessageSpec {
                packed: pattern(sizes[i], i as u8).into(),
                proc: Box::new(ContigProcessor::new(0, handler)),
                host_origin: 0,
                host_span: sizes[i] as u64,
                start_time: starts[i] * 1000,
            })
            .collect();
        let reports = run_concurrent(specs, &params);
        prop_assert_eq!(reports.len(), n);
        for (i, r) in reports.iter().enumerate() {
            prop_assert_eq!(&r.host_buf, &pattern(sizes[i], i as u8));
            prop_assert!(r.t_complete > r.t_first_byte);
        }
    }

    #[test]
    fn completion_never_before_wire_time(
        size in 2048usize..500_000,
        hpus in 1usize..32,
    ) {
        let params = NicParams::with_hpus(hpus);
        let handler = params.spin_min_handler();
        let specs = vec![MessageSpec {
            packed: pattern(size, 3).into(),
            proc: Box::new(ContigProcessor::new(0, handler)),
            host_origin: 0,
            host_span: size as u64,
            start_time: 0,
        }];
        let r = &run_concurrent(specs, &params)[0];
        let wire = params.line_rate.time_for(size as u64);
        prop_assert!(r.processing_time() >= wire);
    }
}
