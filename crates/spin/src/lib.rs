//! # nca-spin — the sPIN NIC model
//!
//! An event-driven model of a 200 Gbit/s sPIN-capable NIC (paper Fig. 1):
//! inbound engine, Portals 4 matching, Handler Processing Units with
//! virtual-HPU scheduling (default and blocked round-robin policies,
//! Sec. 3.2.1, plus pluggable cFCFS/dFCFS disciplines in [`sched`]),
//! NIC memory, and a DMA/PCIe engine with occupancy tracking. Handlers *really execute* — packet bytes are scattered into
//! the simulated receive buffer — while their simulated runtime comes
//! from the strategy's cost model (see `nca-core`).
//!
//! Entry point: [`nic::ReceiveSim::run`]. Sender-side strategies
//! (streaming puts, outbound sPIN) are modelled in [`outbound`].

pub mod builtin;
pub mod handler;
pub mod multi;
pub mod nic;
pub mod nicmem;
pub mod outbound;
pub mod params;
pub mod sched;
pub mod sender;

pub use handler::{DmaWrite, HandlerCost, HandlerOutput, MessageProcessor, PacketCtx, SchedPolicy};
pub use multi::{run_concurrent, run_concurrent_traced, MessageReport, MessageSpec};
pub use nic::{MsgPath, PortalsSetup, ReceiveSim, RunConfig, RunReport};
pub use nicmem::NicMemory;
pub use params::NicParams;
pub use sched::{Dispatch, QueueDiscipline, Scheduler};
