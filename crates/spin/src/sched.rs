//! Pluggable HPU queueing disciplines.
//!
//! The receive pipelines (single-message [`crate::nic`], concurrent
//! [`crate::multi`], and the open-loop traffic engine) all funnel ready
//! handlers through one scheduler that multiplexes work onto the
//! physical HPUs. Historically that scheduler was hard-wired to the
//! paper's blocked round-robin semantics; under multi-tenant load the
//! choice of discipline dominates tail latency, so it is now pluggable:
//!
//! * [`QueueDiscipline::BlockedRR`] — the original semantics, bit-exact:
//!   per-key FIFOs, a key occupies at most one HPU at a time, keys are
//!   served in arrival order with busy keys rotated to the back.
//! * [`QueueDiscipline::CFcfs`] — centralized FCFS: one global FIFO of
//!   ready handlers, dispatched to any idle HPU in strict arrival
//!   order. No per-key serialization, no head-of-line blocking across
//!   keys — the M/G/k ideal.
//! * [`QueueDiscipline::DFcfs`] — distributed FCFS: every physical HPU
//!   owns a private FIFO; arrivals are steered to an HPU by the
//!   caller's hint (an RSS-style indirection-table lookup in the
//!   traffic engine). Cache-friendly and synchronization-free on real
//!   hardware, but hash imbalance shows up directly in the tail.
//!
//! The scheduler is generic over the queue key `K` — the single-message
//! pipeline keys by vHPU id, the concurrent pipelines by
//! `(message, vHPU)`.

use std::collections::{HashMap, HashSet, VecDeque};

/// Which queueing discipline the scheduler runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Blocked round-robin over keys (paper Sec. 3.2.1); the default.
    BlockedRR,
    /// Centralized FCFS: one FIFO, any idle HPU.
    CFcfs,
    /// Distributed FCFS: per-HPU FIFOs steered by the enqueue hint.
    DFcfs,
}

impl QueueDiscipline {
    /// All disciplines, in report order.
    pub const ALL: [QueueDiscipline; 3] = [
        QueueDiscipline::BlockedRR,
        QueueDiscipline::CFcfs,
        QueueDiscipline::DFcfs,
    ];

    /// Stable label used in CLI flags and report artifacts.
    pub fn label(&self) -> &'static str {
        match self {
            QueueDiscipline::BlockedRR => "blocked-rr",
            QueueDiscipline::CFcfs => "cfcfs",
            QueueDiscipline::DFcfs => "dfcfs",
        }
    }

    /// Parse a CLI label (`blocked-rr` / `cfcfs` / `dfcfs`).
    pub fn parse(s: &str) -> Option<QueueDiscipline> {
        Self::ALL.into_iter().find(|d| d.label() == s)
    }
}

/// One dispatch decision: which key's packet runs, and on which HPU
/// slot. `hpu` is a real HPU index under [`QueueDiscipline::DFcfs`];
/// the other disciplines treat HPUs as anonymous and return 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dispatch<K> {
    /// The queue key the work item was enqueued under.
    pub key: K,
    /// The opaque work item (a packet index in the pipelines).
    pub pkt: usize,
    /// The physical HPU serving it (meaningful for dFCFS only).
    pub hpu: usize,
}

enum Inner<K> {
    /// The original blocked-RR state machine, verbatim: per-key FIFOs,
    /// a busy set, and a lazily-deduplicated runnable deque.
    BlockedRR {
        free_hpus: usize,
        queues: HashMap<K, VecDeque<usize>>,
        busy: HashSet<K>,
        runnable: VecDeque<K>,
    },
    CFcfs {
        free_hpus: usize,
        fifo: VecDeque<(K, usize)>,
    },
    DFcfs {
        queues: Vec<VecDeque<(K, usize)>>,
        hpu_busy: Vec<bool>,
    },
}

/// A discipline-parameterized HPU scheduler. Deterministic: dispatch
/// order is a pure function of the enqueue/done call sequence.
pub struct Scheduler<K> {
    inner: Inner<K>,
}

impl<K: Copy + Eq + std::hash::Hash> Scheduler<K> {
    /// A scheduler over `hpus` physical HPUs.
    pub fn new(discipline: QueueDiscipline, hpus: usize) -> Self {
        let inner = match discipline {
            QueueDiscipline::BlockedRR => Inner::BlockedRR {
                free_hpus: hpus,
                queues: HashMap::new(),
                busy: HashSet::new(),
                runnable: VecDeque::new(),
            },
            QueueDiscipline::CFcfs => Inner::CFcfs {
                free_hpus: hpus,
                fifo: VecDeque::new(),
            },
            QueueDiscipline::DFcfs => Inner::DFcfs {
                queues: vec![VecDeque::new(); hpus.max(1)],
                hpu_busy: vec![false; hpus.max(1)],
            },
        };
        Scheduler { inner }
    }

    /// Enqueue one ready work item. `hpu_hint` steers dFCFS (taken
    /// modulo the HPU count); the other disciplines ignore it.
    pub fn enqueue(&mut self, key: K, pkt: usize, hpu_hint: usize) {
        match &mut self.inner {
            Inner::BlockedRR {
                queues, runnable, ..
            } => {
                queues.entry(key).or_default().push_back(pkt);
                runnable.push_back(key);
            }
            Inner::CFcfs { fifo, .. } => fifo.push_back((key, pkt)),
            Inner::DFcfs { queues, .. } => {
                let n = queues.len();
                queues[hpu_hint % n].push_back((key, pkt));
            }
        }
    }

    /// Pick the next work item to dispatch, if any HPU that may serve
    /// one is free.
    pub fn next_dispatch(&mut self) -> Option<Dispatch<K>> {
        match &mut self.inner {
            Inner::BlockedRR {
                free_hpus,
                queues,
                busy,
                runnable,
            } => {
                if *free_hpus == 0 {
                    return None;
                }
                let mut rotated = 0;
                while let Some(key) = runnable.pop_front() {
                    let has_work = queues.get(&key).map(|q| !q.is_empty()).unwrap_or(false);
                    if !has_work {
                        continue; // stale entry
                    }
                    if busy.contains(&key) {
                        // Key already running a handler: rotate to the back.
                        runnable.push_back(key);
                        rotated += 1;
                        if rotated > runnable.len() {
                            return None; // all pending keys are busy
                        }
                        continue;
                    }
                    let pkt = queues
                        .get_mut(&key)
                        .expect("queue exists")
                        .pop_front()
                        .expect("work");
                    busy.insert(key);
                    *free_hpus -= 1;
                    return Some(Dispatch { key, pkt, hpu: 0 });
                }
                None
            }
            Inner::CFcfs { free_hpus, fifo } => {
                if *free_hpus == 0 {
                    return None;
                }
                let (key, pkt) = fifo.pop_front()?;
                *free_hpus -= 1;
                Some(Dispatch { key, pkt, hpu: 0 })
            }
            Inner::DFcfs { queues, hpu_busy } => {
                for hpu in 0..queues.len() {
                    if hpu_busy[hpu] {
                        continue;
                    }
                    if let Some((key, pkt)) = queues[hpu].pop_front() {
                        hpu_busy[hpu] = true;
                        return Some(Dispatch { key, pkt, hpu });
                    }
                }
                None
            }
        }
    }

    /// Return the resources a finished dispatch held. Pass back the
    /// `key` and `hpu` of the [`Dispatch`] that started the handler.
    pub fn done(&mut self, key: K, hpu: usize) {
        match &mut self.inner {
            Inner::BlockedRR {
                free_hpus,
                queues,
                busy,
                runnable,
            } => {
                *free_hpus += 1;
                busy.remove(&key);
                if queues.get(&key).map(|q| !q.is_empty()).unwrap_or(false) {
                    runnable.push_back(key);
                }
            }
            Inner::CFcfs { free_hpus, .. } => *free_hpus += 1,
            Inner::DFcfs { hpu_busy, .. } => hpu_busy[hpu] = false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<K: Copy + Eq + std::hash::Hash>(s: &mut Scheduler<K>) -> Vec<Dispatch<K>> {
        let mut out = Vec::new();
        while let Some(d) = s.next_dispatch() {
            out.push(d);
        }
        out
    }

    #[test]
    fn labels_round_trip() {
        for d in QueueDiscipline::ALL {
            assert_eq!(QueueDiscipline::parse(d.label()), Some(d));
        }
        assert_eq!(QueueDiscipline::parse("fifo"), None);
    }

    #[test]
    fn blocked_rr_serializes_within_a_key_and_rotates_across() {
        let mut s: Scheduler<u64> = Scheduler::new(QueueDiscipline::BlockedRR, 2);
        s.enqueue(0, 10, 0);
        s.enqueue(0, 11, 0);
        s.enqueue(1, 20, 0);
        // Key 0 gets one HPU, key 1 the other; key 0's second packet
        // must wait for the first to finish even though an HPU is free.
        let first = drain(&mut s);
        assert_eq!(
            first.iter().map(|d| (d.key, d.pkt)).collect::<Vec<_>>(),
            vec![(0, 10), (1, 20)]
        );
        s.done(1, 0);
        assert!(s.next_dispatch().is_none(), "key 0 still busy");
        s.done(0, 0);
        let d = s.next_dispatch().expect("key 0 freed");
        assert_eq!((d.key, d.pkt), (0, 11));
    }

    #[test]
    fn cfcfs_dispatches_in_strict_arrival_order_to_any_hpu() {
        let mut s: Scheduler<u64> = Scheduler::new(QueueDiscipline::CFcfs, 2);
        s.enqueue(0, 10, 0);
        s.enqueue(0, 11, 0);
        s.enqueue(1, 20, 0);
        // Two HPUs: both of key 0's packets run concurrently (no per-key
        // blocking), key 1 waits only for a free HPU.
        let first = drain(&mut s);
        assert_eq!(
            first.iter().map(|d| (d.key, d.pkt)).collect::<Vec<_>>(),
            vec![(0, 10), (0, 11)]
        );
        s.done(0, 0);
        assert_eq!(s.next_dispatch().map(|d| d.pkt), Some(20));
    }

    #[test]
    fn dfcfs_steers_by_hint_and_blocks_per_hpu() {
        let mut s: Scheduler<u64> = Scheduler::new(QueueDiscipline::DFcfs, 2);
        s.enqueue(0, 10, 0);
        s.enqueue(1, 20, 0); // hashes onto the same HPU: queued behind 10
        s.enqueue(2, 30, 1);
        let first = drain(&mut s);
        assert_eq!(
            first.iter().map(|d| (d.pkt, d.hpu)).collect::<Vec<_>>(),
            vec![(10, 0), (30, 1)]
        );
        // HPU 1 finishing does not free HPU 0's queue.
        s.done(2, 1);
        assert!(s.next_dispatch().is_none());
        s.done(0, 0);
        assert_eq!(s.next_dispatch().map(|d| d.pkt), Some(20));
    }

    #[test]
    fn dfcfs_hint_wraps_modulo_hpus() {
        let mut s: Scheduler<u64> = Scheduler::new(QueueDiscipline::DFcfs, 4);
        s.enqueue(0, 1, 7); // 7 % 4 = 3
        let d = s.next_dispatch().expect("work");
        assert_eq!(d.hpu, 3);
    }
}
