//! Sender-side strategies (paper Sec. 3.1 / Fig. 4).
//!
//! Three ways to send non-contiguous data, modelled as pipelines:
//!
//! * **Pack + send** — the CPU packs the whole message into a staging
//!   buffer, then the NIC streams it at line rate. CPU busy for the full
//!   pack; no overlap.
//! * **Streaming puts** — the CPU walks the datatype identifying
//!   contiguous regions and feeds them to the NIC via
//!   `PtlSPutStart`/`PtlSPutStream`; region identification overlaps with
//!   transmission (the slower of the two rates governs), but the CPU
//!   stays busy for the whole walk.
//! * **Outbound sPIN (`PtlProcessPut`)** — handlers on the NIC gather the
//!   regions themselves; the CPU only issues the (short) control-plane
//!   command. Throughput is bounded by handler gather rate across HPUs
//!   and the line rate.

use nca_sim::Time;

use crate::params::NicParams;

/// Outcome of a modelled send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendReport {
    /// Time until the last byte has been injected into the network.
    pub inject_time: Time,
    /// Time the host CPU was busy with the transfer.
    pub cpu_busy: Time,
}

impl SendReport {
    /// Trace the modelled send on `track`: CPU-busy and injection
    /// spans from t=0 plus an injection-done instant, on the
    /// `"outbound"` component (so sender strategies appear next to the
    /// receive pipeline in the same Perfetto view).
    pub fn record(&self, tel: &nca_telemetry::Telemetry, track: u64) {
        tel.span("outbound", "cpu_busy", track, 0, self.cpu_busy);
        tel.span("outbound", "inject", track, 0, self.inject_time);
        tel.instant("outbound", "inject_done", track, self.inject_time);
    }
}

/// Cost model inputs for the sender datatype walk.
#[derive(Debug, Clone, Copy)]
pub struct SendWorkload {
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Number of contiguous regions in the datatype.
    pub regions: u64,
    /// CPU cost to identify + copy one region into the staging buffer
    /// (pack), ps.
    pub cpu_pack_per_region: Time,
    /// CPU cost to identify one region and issue a streaming-put call, ps.
    pub cpu_stream_per_region: Time,
    /// NIC handler cost to gather one region (outbound sPIN), ps.
    pub nic_gather_per_region: Time,
}

/// CPU packs, then NIC sends (Fig. 4 left).
pub fn pack_and_send(p: &NicParams, w: &SendWorkload) -> SendReport {
    let pack = w.regions * w.cpu_pack_per_region + p.line_rate.time_for(0);
    let copy_bw_time = nca_sim::units::Bandwidth::gib_per_s(10.0).time_for(w.msg_bytes);
    let cpu = pack + copy_bw_time;
    let wire = wire_time(p, w.msg_bytes);
    SendReport {
        inject_time: cpu + wire,
        cpu_busy: cpu,
    }
}

/// Streaming puts: region identification pipelined with transmission
/// (Fig. 4 middle, sender side).
pub fn streaming_put_send(p: &NicParams, w: &SendWorkload) -> SendReport {
    let cpu = w.regions * w.cpu_stream_per_region;
    let wire = wire_time(p, w.msg_bytes);
    // Pipeline: the slower stage dominates; one region of skew as fill.
    let skew = w.cpu_stream_per_region;
    SendReport {
        inject_time: skew + cpu.max(wire),
        cpu_busy: cpu,
    }
}

/// Outbound sPIN: handlers gather; CPU only posts the command
/// (Fig. 4 right).
pub fn process_put_send(p: &NicParams, w: &SendWorkload) -> SendReport {
    let cpu = p.sched_dispatch; // control-plane only
    let npkt = w.msg_bytes.div_ceil(p.payload_size).max(1);
    let regions_per_pkt = w.regions.div_ceil(npkt);
    let handler = p.spin_min_handler() + regions_per_pkt * w.nic_gather_per_region;
    // npkt handlers over `hpus` HPUs, pipelined against the wire.
    let gather = npkt.div_ceil(p.hpus as u64) * handler;
    let wire = wire_time(p, w.msg_bytes);
    SendReport {
        inject_time: p.sched_dispatch + handler + gather.max(wire),
        cpu_busy: cpu,
    }
}

fn wire_time(p: &NicParams, msg_bytes: u64) -> Time {
    let npkt = msg_bytes.div_ceil(p.payload_size).max(1);
    p.line_rate.time_for(msg_bytes + npkt * p.pkt_header_bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn workload(msg: u64, regions: u64) -> SendWorkload {
        SendWorkload {
            msg_bytes: msg,
            regions,
            cpu_pack_per_region: nca_sim::ns(60),
            cpu_stream_per_region: nca_sim::ns(40),
            nic_gather_per_region: nca_sim::ns(25),
        }
    }

    #[test]
    fn streaming_overlaps_pack_does_not() {
        let p = NicParams::default();
        let w = workload(4 << 20, 32_768);
        let pack = pack_and_send(&p, &w);
        let stream = streaming_put_send(&p, &w);
        assert!(
            stream.inject_time < pack.inject_time,
            "streaming puts must beat pack+send: {} vs {}",
            stream.inject_time,
            pack.inject_time
        );
    }

    #[test]
    fn process_put_frees_the_cpu() {
        let p = NicParams::default();
        let w = workload(4 << 20, 32_768);
        let stream = streaming_put_send(&p, &w);
        let spin = process_put_send(&p, &w);
        assert!(
            spin.cpu_busy * 100 < stream.cpu_busy,
            "CPU must be (almost) free"
        );
        // With enough HPUs, injection stays comparable or better.
        assert!(spin.inject_time <= stream.inject_time * 2);
    }

    #[test]
    fn send_report_record_emits_outbound_spans() {
        let p = NicParams::default();
        let w = workload(1 << 20, 1024);
        let (tel, sink) = nca_telemetry::Telemetry::ring(256);
        streaming_put_send(&p, &w).record(&tel, 7);
        let evs = sink.events();
        let names: Vec<&str> = evs.iter().map(|e| e.name).collect();
        assert_eq!(names, ["cpu_busy", "inject", "inject_done"]);
        assert!(evs
            .iter()
            .all(|e| e.component == "outbound" && e.track == 7));
    }

    #[test]
    fn wire_time_floor_for_large_blocks() {
        let p = NicParams::default();
        // Contiguous-ish message: one region; all strategies near line rate.
        let w = workload(4 << 20, 1);
        let wire = wire_time(&p, w.msg_bytes);
        for r in [
            pack_and_send(&p, &w),
            streaming_put_send(&p, &w),
            process_put_send(&p, &w),
        ] {
            assert!(r.inject_time >= wire);
        }
    }
}
