//! NIC model parameters.
//!
//! Every constant is anchored to a number the paper states explicitly
//! (Sec. 5.1 simulation setup, Fig. 2 latency breakdown, Sec. 4 design
//! targets); see the field docs for the anchor.

use nca_sim::units::Bandwidth;
use nca_sim::Time;

use crate::sched::QueueDiscipline;

/// All timing/size parameters of the simulated sPIN NIC.
#[derive(Debug, Clone)]
pub struct NicParams {
    /// Link rate. Paper: "models a 200 Gib/s NIC".
    pub line_rate: Bandwidth,
    /// Per-packet payload. Paper: "configure the network simulator to
    /// send 2 KiB of payload data".
    pub payload_size: u64,
    /// Link-level packet header bytes (framing + Portals header;
    /// Portals 4 spec-sized assumption).
    pub pkt_header_bytes: u64,
    /// One-way network latency (first byte in). Fig. 2: 745 ns network
    /// component.
    pub net_latency: Time,
    /// NIC passthrough latency on the non-processing (RDMA) path.
    /// Fig. 2: 119 ns NIC component.
    pub nic_passthrough: Time,
    /// Scheduler dispatch latency: HER generation + vHPU→HPU assignment.
    /// Together with the minimal handler runtime this reproduces Fig. 2's
    /// 24.4% sPIN latency overhead for a 1-byte put (NIC component grows
    /// 119 ns → ~395 ns = passthrough + dispatch + minimal handler).
    pub sched_dispatch: Time,
    /// PCIe write completion latency (host side). Fig. 2: 266 ns PCIe
    /// component.
    pub pcie_latency: Time,
    /// Effective PCIe data bandwidth. Sec. 5.1: x32 PCIe Gen4 with
    /// 128b/130b encoding → ≈63 GB/s.
    pub pcie_bw: Bandwidth,
    /// Fixed per-DMA-write engine/TLP overhead; makes many tiny writes
    /// expensive (the paper's γ=512 pathology: "512 DMA writes of
    /// 4 bytes ... inefficient utilization of the PCIe bus").
    pub dma_write_overhead: Time,
    /// Parallel DMA engines sharing the PCIe link. Two channels keep
    /// γ=16 write streams at line rate (Fig. 14: the PCIe request
    /// buffer stays bounded, "PCIe was not a bottleneck") while tiny
    /// 4 B writes still lose to host unpack (Fig. 8 crossover).
    pub dma_channels: usize,
    /// Number of Handler Processing Units. Sec. 5.1: 32 Cortex-A15
    /// (Fig. 8 uses 16).
    pub hpus: usize,
    /// HPU clock. Sec. 5.1: 800 MHz.
    pub hpu_clock_mhz: u64,
    /// NIC memory bandwidth. Sec. 5.1: 50 GiB/s, `2 × hpus` channels.
    pub nic_mem_bw: Bandwidth,
    /// NIC memory capacity available to DDT state (checkpoints,
    /// dataloops, offset lists). Sec. 4: ≥6 MiB recommended; we default
    /// to 4 MiB for the accounting experiments.
    pub nic_mem_capacity: u64,
    /// Packet buffer capacity in bytes (for the checkpoint-interval
    /// heuristic's third constraint, and the traffic engine's admission
    /// limit on in-flight message payload).
    pub pkt_buffer_bytes: u64,
    /// HPU queueing discipline of the scheduler. [`QueueDiscipline::BlockedRR`]
    /// reproduces the paper's scheduler bit-exactly and is the default;
    /// the alternatives exist for the multi-tenant traffic experiments.
    pub discipline: QueueDiscipline,
}

impl Default for NicParams {
    fn default() -> Self {
        NicParams {
            line_rate: Bandwidth::gbit_per_s(200.0),
            payload_size: 2048,
            pkt_header_bytes: 64,
            net_latency: nca_sim::ns(745),
            nic_passthrough: nca_sim::ns(119),
            sched_dispatch: nca_sim::ns(50),
            pcie_latency: nca_sim::ns(266),
            pcie_bw: Bandwidth::gib_per_s(58.6), // 63 GB/s ≈ 58.6 GiB/s
            dma_write_overhead: nca_sim::ns(6),
            dma_channels: 2,
            hpus: 32,
            hpu_clock_mhz: 800,
            nic_mem_bw: Bandwidth::gib_per_s(50.0),
            nic_mem_capacity: 4 << 20,
            pkt_buffer_bytes: 512 << 10,
            discipline: QueueDiscipline::BlockedRR,
        }
    }
}

impl NicParams {
    /// The Fig. 8 / microbenchmark configuration (16 HPUs).
    pub fn with_hpus(hpus: usize) -> Self {
        NicParams {
            hpus,
            ..Default::default()
        }
    }

    /// Picoseconds per HPU cycle.
    pub fn cycle_ps(&self) -> Time {
        1_000_000 / self.hpu_clock_mhz
    }

    /// Convert HPU cycles to simulated time.
    pub fn cycles(&self, n: u64) -> Time {
        n * self.cycle_ps()
    }

    /// Wire serialization time of one packet carrying `payload` bytes.
    pub fn pkt_wire_time(&self, payload: u64) -> Time {
        self.line_rate.time_for(payload + self.pkt_header_bytes)
    }

    /// Effective packet arrival interval (the paper's `T_pkt`) for
    /// full-payload packets at line rate.
    pub fn t_pkt(&self) -> Time {
        self.pkt_wire_time(self.payload_size)
    }

    /// Time to copy a packet payload into NIC memory (one of the
    /// `2 × hpus` channels at 50 GiB/s serves the copy).
    pub fn nicmem_copy_time(&self, bytes: u64) -> Time {
        self.nic_mem_bw.time_for(bytes)
    }

    /// Service time of one DMA write of `bytes` at the PCIe engine.
    pub fn dma_service_time(&self, bytes: u64) -> Time {
        self.dma_write_overhead + self.pcie_bw.time_for(bytes)
    }

    /// Minimal handler occupancy (launch + one DMA command issue) — the
    /// calibration residual that closes Fig. 2's 1-byte-put budget:
    /// 119 (passthrough) + 50 (dispatch) + 226 (this) ≈ 395 ns sPIN NIC
    /// component.
    pub fn spin_min_handler(&self) -> Time {
        nca_sim::ns(226)
    }
}

/// Reliable-delivery protocol parameters (sender retransmission state
/// machine + receiver acknowledgements). Only consulted when the run's
/// [`nca_sim::FaultSpec`] is not inert: on a lossless network the
/// pipeline behaves exactly as if this machinery did not exist.
#[derive(Debug, Clone)]
pub struct ReliabilityParams {
    /// Base retransmission timeout (ps). Must exceed one data-direction
    /// latency + processing + one ack-direction latency, or every packet
    /// retransmits spuriously.
    pub rto: Time,
    /// Exponential backoff: attempt `a` waits `rto << min(a, backoff_cap)`.
    pub backoff_cap: u32,
    /// Absolute ceiling on the backed-off timeout (ps), applied after
    /// the shift. Keeps deep retry chains from waiting geometrically
    /// long once the network is congested rather than dead. Values
    /// below `rto` are treated as `rto`.
    pub rto_max: Time,
    /// Maximum uniform jitter added on top of each backoff deadline
    /// (ps); 0 disables. The jitter is drawn deterministically from the
    /// fault-schedule seed, so runs stay replayable while synchronized
    /// retransmit storms (all timers of a drop burst firing in the same
    /// picosecond) cannot form.
    pub rto_jitter: Time,
    /// Retransmissions allowed per packet before the sender gives up and
    /// the receiver recovers the fragment via host fallback.
    pub max_retries: u32,
    /// One-way latency of the acknowledgement path (receiver → sender).
    pub ack_latency: Time,
    /// Latency of recovering one packet over the reliable host-fallback
    /// channel (host-assisted re-fetch after retry-budget exhaustion).
    pub fallback_latency: Time,
}

impl Default for ReliabilityParams {
    fn default() -> Self {
        ReliabilityParams {
            // ~3× the 745 ns one-way latency round trip plus pipeline
            // slack: spurious retransmits are rare but drops recover in
            // a few µs.
            rto: nca_sim::us(5),
            backoff_cap: 6,
            // 5 µs << 6 = 320 µs would dominate the fallback channel;
            // cap the wait at 80 µs and spread timers over a 1 µs window.
            rto_max: nca_sim::us(80),
            rto_jitter: nca_sim::us(1),
            max_retries: 8,
            ack_latency: nca_sim::ns(745),
            fallback_latency: nca_sim::us(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_defaults_cover_a_round_trip() {
        let p = NicParams::default();
        let r = ReliabilityParams::default();
        assert!(r.rto > p.net_latency + r.ack_latency);
        assert!(r.max_retries >= 1);
        assert!(r.fallback_latency > r.rto);
        assert!(r.rto_max >= r.rto, "cap must not undercut the base RTO");
        assert!(r.rto_jitter < r.rto, "jitter must stay a perturbation");
    }

    #[test]
    fn defaults_match_paper_anchors() {
        let p = NicParams::default();
        assert_eq!(p.payload_size, 2048);
        assert_eq!(p.hpus, 32);
        assert_eq!(p.cycle_ps(), 1250); // 800 MHz
                                        // 2112 wire bytes at 40 ps/B = 84.48 ns
        assert_eq!(p.t_pkt(), 2112 * 40);
    }

    #[test]
    fn fig2_latency_budget() {
        let p = NicParams::default();
        let rdma = p.net_latency + p.nic_passthrough + p.pcie_latency;
        let spin = p.net_latency
            + p.nic_passthrough
            + p.sched_dispatch
            + p.spin_min_handler()
            + p.pcie_latency;
        let overhead = spin as f64 / rdma as f64 - 1.0;
        // Paper: ~24.4% added latency for a 1-byte put.
        assert!((overhead - 0.244).abs() < 0.01, "got {overhead}");
    }

    #[test]
    fn dma_small_writes_dominated_by_overhead() {
        let p = NicParams::default();
        let small = p.dma_service_time(4);
        let big = p.dma_service_time(2048);
        assert!(small >= nca_sim::ns(5));
        assert!(big < 128 * small, "large writes must amortize overhead");
    }
}
