//! Concurrent multi-message receive simulation.
//!
//! The single-message pipeline ([`crate::nic::ReceiveSim`]) answers the
//! paper's microbenchmark questions; a real NIC, however, serves many
//! in-flight messages whose packets interleave on the link and whose
//! handlers compete for the same HPUs, NIC memory and DMA engine. This
//! module simulates that: each message carries its own
//! [`MessageProcessor`], matching is per-header, vHPUs are namespaced
//! per message, and the completion of each message is signalled by its
//! own event-generating DMA write.
//!
//! Link model: messages become eligible at their `start_time`; the
//! shared ingress link serializes packets of all eligible messages
//! round-robin at line rate (an idealized fair switch).

use std::collections::HashMap;

use nca_portals::packet::{packetize_wire, Packet};
use nca_sim::{Sim, Time, TrackedFifo, WireBuf};
use nca_telemetry::Telemetry;

use crate::handler::{DmaWrite, HandlerCost, MessageProcessor, PacketCtx};
use crate::params::NicParams;
use crate::sched::Scheduler;

/// One message to receive.
pub struct MessageSpec {
    /// Packed message bytes (shared wire buffer; `Vec<u8>` converts via
    /// `.into()` at the cost of one copy).
    pub packed: WireBuf,
    /// The processing strategy.
    pub proc: Box<dyn MessageProcessor>,
    /// Receive-buffer offset of index 0.
    pub host_origin: i64,
    /// Receive-buffer span.
    pub host_span: u64,
    /// Time the sender starts injecting.
    pub start_time: Time,
}

/// Per-message outcome.
pub struct MessageReport {
    /// Strategy name.
    pub strategy: &'static str,
    /// Message bytes.
    pub msg_bytes: u64,
    /// First byte of this message at the NIC.
    pub t_first_byte: Time,
    /// Completion-event time.
    pub t_complete: Time,
    /// Final receive buffer.
    pub host_buf: Vec<u8>,
    /// Per-handler costs.
    pub handler_costs: Vec<HandlerCost>,
}

impl MessageReport {
    /// Message processing time.
    pub fn processing_time(&self) -> Time {
        self.t_complete - self.t_first_byte
    }
}

struct MsgState {
    packets: Vec<Packet>,
    packed: WireBuf,
    proc: Box<dyn MessageProcessor>,
    host_buf: Vec<u8>,
    host_origin: i64,
    pending_payload: u64,
    completion_dispatched: bool,
    t_first_byte: Time,
    t_complete: Option<Time>,
    handler_costs: Vec<HandlerCost>,
}

/// Mix the message index into a well-spread dFCFS steering hint.
/// (splitmix64 finalizer; identity for blocked-RR/cFCFS which ignore
/// the hint.)
fn steer_hint(m: usize, vhpu: u64) -> usize {
    let mut z = (m as u64) ^ (vhpu.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as usize
}

struct MultiWorld {
    params: NicParams,
    msgs: Vec<MsgState>,
    sched: Scheduler<(usize, u64)>,
    dma_queue: TrackedFifo<(usize, DmaWrite)>,
    dma_chan_busy: Vec<bool>,
    tel: Telemetry,
    /// (msg, pkt idx) → vHPU-queue entry time (only when traced).
    enq_time: HashMap<(usize, usize), Time>,
}

impl MultiWorld {
    fn packet_arrival(&mut self, sim: &mut Sim<MultiWorld>, m: usize, idx: usize) {
        let len = self.msgs[m].packets[idx].len;
        self.tel
            .counter("spin", "packets_arrived", m as u64, sim.now(), 1);
        let inbound = self.params.nic_passthrough + self.params.nicmem_copy_time(len);
        self.tel
            .span("spin", "inbound", m as u64, sim.now(), sim.now() + inbound);
        sim.schedule_in(inbound, move |w, s| w.her_ready(s, m, idx));
    }

    fn her_ready(&mut self, sim: &mut Sim<MultiWorld>, m: usize, idx: usize) {
        let seq = self.msgs[m].packets[idx].seq;
        let vhpu = self.msgs[m].proc.policy().vhpu_of(seq);
        if self.tel.is_enabled() {
            self.enq_time.insert((m, idx), sim.now());
        }
        self.sched.enqueue((m, vhpu), idx, steer_hint(m, vhpu));
        self.try_dispatch(sim);
    }

    fn try_dispatch(&mut self, sim: &mut Sim<MultiWorld>) {
        while let Some(d) = self.sched.next_dispatch() {
            let (key, idx, hpu) = (d.key, d.pkt, d.hpu);
            let dispatch = self.params.sched_dispatch;
            let now = sim.now();
            if let Some(enq) = self.enq_time.remove(&(key.0, idx)) {
                if now > enq {
                    self.tel.span("spin", "queue_wait", key.1, enq, now);
                }
            }
            self.tel.span("spin", "sched", key.1, now, now + dispatch);
            sim.schedule_in(dispatch, move |w, s| w.run_handler(s, key, idx, hpu));
        }
    }

    fn run_handler(
        &mut self,
        sim: &mut Sim<MultiWorld>,
        key: (usize, u64),
        idx: usize,
        hpu: usize,
    ) {
        let (m, vhpu) = key;
        let st = &mut self.msgs[m];
        let hdr = st.packets[idx].hdr;
        let mut ctx = PacketCtx {
            payload: &st.packets[idx].payload,
            stream_offset: hdr.offset,
            seq: hdr.seq,
            npkt: st.packets.len() as u64,
            vhpu,
            now: sim.now(),
            direct: None,
        };
        let out = st.proc.on_payload(&mut ctx);
        st.handler_costs.push(out.cost);
        let runtime = out.cost.total();
        self.tel
            .span("spin", "handler", vhpu, sim.now(), sim.now() + runtime);
        sim.schedule_in(runtime, move |w, s| w.handler_done(s, key, hpu, out.dma));
    }

    fn handler_done(
        &mut self,
        sim: &mut Sim<MultiWorld>,
        key: (usize, u64),
        hpu: usize,
        dma: Vec<DmaWrite>,
    ) {
        let (m, _) = key;
        for w in dma {
            self.enqueue_dma(sim, m, w);
        }
        self.sched.done(key, hpu);
        self.msgs[m].pending_payload -= 1;
        if self.msgs[m].pending_payload == 0 && !self.msgs[m].completion_dispatched {
            self.msgs[m].completion_dispatched = true;
            let dispatch = self.params.sched_dispatch;
            sim.schedule_in(dispatch, move |w, s| {
                let out = w.msgs[m].proc.on_completion();
                let runtime = out.cost.total();
                s.schedule_in(runtime, move |w2, s2| {
                    for wr in out.dma {
                        w2.enqueue_dma(s2, m, wr);
                    }
                });
            });
        }
        self.try_dispatch(sim);
    }

    fn enqueue_dma(&mut self, sim: &mut Sim<MultiWorld>, m: usize, w: DmaWrite) {
        self.dma_queue.push(sim.now(), (m, w));
        self.kick_dma(sim);
    }

    fn kick_dma(&mut self, sim: &mut Sim<MultiWorld>) {
        while let Some(chan) = self.dma_chan_busy.iter().position(|&b| !b) {
            if let Some((_, front)) = self.dma_queue.front() {
                // Event writes must not overtake in-flight data writes.
                if front.event && self.dma_chan_busy.iter().any(|&b| b) {
                    return;
                }
            }
            let Some((m, w)) = self.dma_queue.pop(sim.now()) else {
                return;
            };
            self.dma_chan_busy[chan] = true;
            let service = self.params.dma_service_time(w.len);
            let landing = self.params.pcie_latency;
            self.tel.span(
                "spin",
                "dma_chan",
                chan as u64,
                sim.now(),
                sim.now() + service,
            );
            sim.schedule_in(service, move |world, s| {
                world.dma_chan_busy[chan] = false;
                s.schedule_in(landing, move |w2, s2| {
                    let t = s2.now();
                    w2.dma_landed(t, m, &w);
                });
                world.kick_dma(s);
            });
        }
    }

    fn dma_landed(&mut self, t: Time, m: usize, w: &DmaWrite) {
        let st = &mut self.msgs[m];
        if !w.data.is_empty() {
            let start = (w.host_off - st.host_origin) as usize;
            st.host_buf[start..start + w.data.len()].copy_from_slice(&w.data);
        }
        if w.event {
            st.t_complete = Some(t);
            self.tel.instant("spin", "message_complete", m as u64, t);
        }
    }
}

/// Round-robin link serialization: packets of all eligible messages
/// share the ingress at line rate. Returns `(arrival_time, msg, pkt)`.
fn schedule_arrivals(
    params: &NicParams,
    msgs: &[MsgState],
    starts: &[Time],
) -> Vec<(Time, usize, usize)> {
    let mut cursors: Vec<usize> = vec![0; msgs.len()];
    // (eligible_time, msg) priority: earliest start first, round-robin on ties.
    let mut link_free: Time = 0;
    let mut out = Vec::new();
    let total: usize = msgs.iter().map(|m| m.packets.len()).sum();
    let mut rr = 0usize;
    while out.len() < total {
        // Pick the message that can occupy the link earliest
        // (max(link_free, start)), round-robin among ties so concurrent
        // messages interleave fairly and the link never idles while an
        // eligible message has packets.
        let mut pick: Option<(usize, Time)> = None;
        for k in 0..msgs.len() {
            let m = (rr + k) % msgs.len();
            if cursors[m] >= msgs[m].packets.len() {
                continue;
            }
            let ready = link_free.max(starts[m]);
            match pick {
                None => pick = Some((m, ready)),
                Some((_, best)) if ready < best => pick = Some((m, ready)),
                _ => {}
            }
        }
        let (m, _) = pick.expect("total counted");
        let pkt = &msgs[m].packets[cursors[m]];
        let begin = link_free.max(starts[m]);
        let end = begin + params.pkt_wire_time(pkt.len);
        link_free = end;
        out.push((end + params.net_latency, m, cursors[m]));
        cursors[m] += 1;
        rr = m + 1;
    }
    out
}

/// Run several concurrent receives sharing one NIC.
pub fn run_concurrent(specs: Vec<MessageSpec>, params: &NicParams) -> Vec<MessageReport> {
    run_concurrent_traced(specs, params, Telemetry::disabled())
}

/// [`run_concurrent`] with a trace sink: emits the same event families
/// as the single-message pipeline (wire/inbound spans on per-message
/// tracks, queue-wait/dispatch/handler spans on vHPU tracks, DMA busy
/// intervals on per-channel tracks, completion instants).
pub fn run_concurrent_traced(
    specs: Vec<MessageSpec>,
    params: &NicParams,
    tel: Telemetry,
) -> Vec<MessageReport> {
    let mut starts = Vec::with_capacity(specs.len());
    let mut msgs: Vec<MsgState> = Vec::with_capacity(specs.len());
    for (i, spec) in specs.into_iter().enumerate() {
        let packets = packetize_wire(i as u64, &spec.packed, params.payload_size);
        starts.push(spec.start_time);
        msgs.push(MsgState {
            pending_payload: packets.len() as u64,
            packets,
            packed: spec.packed,
            proc: spec.proc,
            host_buf: vec![0u8; spec.host_span as usize],
            host_origin: spec.host_origin,
            completion_dispatched: false,
            t_first_byte: 0,
            t_complete: None,
            handler_costs: Vec::new(),
        });
    }
    let arrivals = schedule_arrivals(params, &msgs, &starts);
    for &(t, m, pkt) in &arrivals {
        if pkt == 0 {
            msgs[m].t_first_byte = t - params.pkt_wire_time(msgs[m].packets[0].len);
        }
        // Wire serialization span: the arrival time is one network
        // latency after the packet left the shared link.
        if tel.is_enabled() {
            let end = t - params.net_latency;
            let wire = params.pkt_wire_time(msgs[m].packets[pkt].len);
            tel.span("spin", "wire", m as u64, end.saturating_sub(wire), end);
        }
    }
    let mut world = MultiWorld {
        params: params.clone(),
        msgs,
        sched: Scheduler::new(params.discipline, params.hpus),
        dma_queue: TrackedFifo::new(false),
        dma_chan_busy: vec![false; params.dma_channels.max(1)],
        tel,
        enq_time: HashMap::new(),
    };
    let mut sim: Sim<MultiWorld> = Sim::new();
    for (t, m, pkt) in arrivals {
        sim.schedule(t, move |w, s| w.packet_arrival(s, m, pkt));
    }
    sim.run(&mut world);
    world
        .msgs
        .into_iter()
        .map(|st| MessageReport {
            strategy: st.proc.name(),
            msg_bytes: st.packed.len() as u64,
            t_first_byte: st.t_first_byte,
            t_complete: st.t_complete.unwrap_or(0),
            host_buf: st.host_buf,
            handler_costs: st.handler_costs,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::ContigProcessor;

    fn pattern(len: usize, seed: u8) -> Vec<u8> {
        (0..len)
            .map(|i| ((i + seed as usize) % 251) as u8)
            .collect()
    }

    fn spec(len: usize, seed: u8, start: Time, handler: Time) -> MessageSpec {
        MessageSpec {
            packed: pattern(len, seed).into(),
            proc: Box::new(ContigProcessor::new(0, handler)),
            host_origin: 0,
            host_span: len as u64,
            start_time: start,
        }
    }

    #[test]
    fn two_concurrent_messages_land_byte_exact() {
        let p = NicParams::with_hpus(8);
        let h = p.spin_min_handler();
        let reports = run_concurrent(vec![spec(64 << 10, 1, 0, h), spec(64 << 10, 2, 0, h)], &p);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].host_buf, pattern(64 << 10, 1));
        assert_eq!(reports[1].host_buf, pattern(64 << 10, 2));
        assert!(reports.iter().all(|r| r.t_complete > 0));
    }

    #[test]
    fn concurrent_messages_share_the_link() {
        // Two messages on one link take about twice as long as one.
        let p = NicParams::with_hpus(16);
        let h = p.spin_min_handler();
        let alone = run_concurrent(vec![spec(256 << 10, 1, 0, h)], &p);
        let both = run_concurrent(vec![spec(256 << 10, 1, 0, h), spec(256 << 10, 2, 0, h)], &p);
        let t1 = alone[0].t_complete;
        let t2 = both
            .iter()
            .map(|r| r.t_complete)
            .max()
            .expect("two reports");
        assert!(t2 as f64 > 1.7 * t1 as f64, "link sharing: {t2} vs {t1}");
        assert!(
            (t2 as f64) < 2.6 * t1 as f64,
            "no pathological serialization"
        );
    }

    #[test]
    fn hpu_contention_slows_handler_bound_messages() {
        // With 1 HPU and slow handlers, two messages serialize on the HPU.
        let mut p = NicParams::with_hpus(1);
        p.hpus = 1;
        let slow = nca_sim::us(2);
        let alone = run_concurrent(vec![spec(32 << 10, 1, 0, slow)], &p);
        let both = run_concurrent(
            vec![spec(32 << 10, 1, 0, slow), spec(32 << 10, 2, 0, slow)],
            &p,
        );
        let t1 = alone[0].t_complete - alone[0].t_first_byte;
        let t2 = both.iter().map(|r| r.t_complete).max().expect("max") - both[0].t_first_byte;
        assert!(t2 as f64 > 1.8 * t1 as f64, "HPU contention: {t2} vs {t1}");
    }

    #[test]
    fn staggered_start_orders_completions() {
        let p = NicParams::with_hpus(8);
        let h = p.spin_min_handler();
        let reports = run_concurrent(
            vec![
                spec(32 << 10, 1, 0, h),
                spec(32 << 10, 2, nca_sim::us(500), h),
            ],
            &p,
        );
        assert!(reports[0].t_complete < reports[1].t_complete);
        assert!(reports[1].t_first_byte >= nca_sim::us(500));
    }

    #[test]
    fn traced_run_emits_lifecycle_spans_with_disjoint_channel_tracks() {
        let p = NicParams::with_hpus(4);
        let h = p.spin_min_handler();
        let (tel, sink) = Telemetry::ring(1 << 16);
        let reports = run_concurrent_traced(
            vec![spec(32 << 10, 1, 0, h), spec(32 << 10, 2, 0, h)],
            &p,
            tel,
        );
        assert_eq!(reports.len(), 2);
        let evs = sink.events();
        let roll = nca_telemetry::aggregate::rollup(&evs);
        let spin = &roll["spin"];
        assert!(spin.counters["packets_arrived"] > 0);
        for name in ["wire", "inbound", "handler", "dma_chan"] {
            assert!(spin.spans.contains_key(name), "missing {name} spans");
        }
        assert_eq!(spin.instants["message_complete"], 2);
        // Per-channel DMA spans never overlap on their own track.
        for chan in 0..p.dma_channels as u64 {
            let mut spans: Vec<(Time, Time)> = evs
                .iter()
                .filter(|e| e.name == "dma_chan" && e.track == chan)
                .filter_map(|e| match e.kind {
                    nca_telemetry::EventKind::Span { end } => Some((e.time, end)),
                    _ => None,
                })
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(w[1].0 >= w[0].1, "channel {chan} spans overlap: {w:?}");
            }
        }
    }

    #[test]
    fn many_small_messages_all_complete() {
        let p = NicParams::with_hpus(4);
        let h = p.spin_min_handler();
        let specs: Vec<MessageSpec> = (0..20)
            .map(|i| spec(4096, i as u8, (i as u64) * nca_sim::us(1), h))
            .collect();
        let reports = run_concurrent(specs, &p);
        assert_eq!(reports.len(), 20);
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.host_buf, pattern(4096, i as u8), "message {i}");
            assert!(r.t_complete > r.t_first_byte);
        }
    }
}
