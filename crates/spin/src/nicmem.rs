//! NIC memory allocator.
//!
//! The offloaded DDT state (dataloop descriptors, checkpoint tables,
//! offset lists) lives in NIC memory; posting a receive must allocate
//! space and may fail, in which case the MPI layer falls back to host
//! unpack or evicts another datatype (Sec. 3.2.6). A simple first-fit
//! free-list allocator is enough for the simulation: what matters is
//! capacity accounting and allocation failure.

use std::collections::HashMap;

/// Allocation handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AllocId(u64);

/// First-fit free-list allocator over a fixed capacity.
#[derive(Debug)]
pub struct NicMemory {
    capacity: u64,
    /// Sorted, non-adjacent free ranges `(start, len)`.
    free: Vec<(u64, u64)>,
    live: HashMap<AllocId, (u64, u64)>,
    next_id: u64,
    peak_used: u64,
}

impl NicMemory {
    /// Create an allocator over `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        NicMemory {
            capacity,
            free: vec![(0, capacity)],
            live: HashMap::new(),
            next_id: 0,
            peak_used: 0,
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.live.values().map(|&(_, l)| l).sum()
    }

    /// Highest concurrent usage observed.
    pub fn peak_used(&self) -> u64 {
        self.peak_used
    }

    /// The free list: sorted, disjoint, non-adjacent `(start, len)`
    /// ranges (adjacent frees are coalesced eagerly). Exposed for the
    /// allocator invariant tests.
    pub fn free_ranges(&self) -> &[(u64, u64)] {
        &self.free
    }

    /// Allocate `len` bytes; `None` if no free range fits.
    pub fn alloc(&mut self, len: u64) -> Option<AllocId> {
        if len == 0 {
            let id = AllocId(self.next_id);
            self.next_id += 1;
            self.live.insert(id, (0, 0));
            return Some(id);
        }
        let slot = self.free.iter().position(|&(_, flen)| flen >= len)?;
        let (start, flen) = self.free[slot];
        if flen == len {
            self.free.remove(slot);
        } else {
            self.free[slot] = (start + len, flen - len);
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.live.insert(id, (start, len));
        self.peak_used = self.peak_used.max(self.used());
        Some(id)
    }

    /// Free an allocation; coalesces adjacent free ranges.
    pub fn free(&mut self, id: AllocId) {
        let Some((start, len)) = self.live.remove(&id) else {
            return;
        };
        if len == 0 {
            return;
        }
        let pos = self.free.partition_point(|&(s, _)| s < start);
        self.free.insert(pos, (start, len));
        // Coalesce with successor then predecessor.
        if pos + 1 < self.free.len() && self.free[pos].0 + self.free[pos].1 == self.free[pos + 1].0
        {
            self.free[pos].1 += self.free[pos + 1].1;
            self.free.remove(pos + 1);
        }
        if pos > 0 && self.free[pos - 1].0 + self.free[pos - 1].1 == self.free[pos].0 {
            self.free[pos - 1].1 += self.free[pos].1;
            self.free.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_free_roundtrip() {
        let mut m = NicMemory::new(1024);
        let a = m.alloc(512).unwrap();
        let b = m.alloc(512).unwrap();
        assert!(m.alloc(1).is_none(), "full");
        assert_eq!(m.used(), 1024);
        m.free(a);
        assert_eq!(m.used(), 512);
        let c = m.alloc(256).unwrap();
        m.free(b);
        m.free(c);
        assert_eq!(m.used(), 0);
        // coalesced back to one range
        assert!(m.alloc(1024).is_some());
    }

    #[test]
    fn fragmentation_can_fail_fit() {
        let mut m = NicMemory::new(300);
        let a = m.alloc(100).unwrap();
        let _b = m.alloc(100).unwrap();
        let c = m.alloc(100).unwrap();
        m.free(a);
        m.free(c);
        // 200 free but split 100+100
        assert!(m.alloc(150).is_none());
        assert!(m.alloc(100).is_some());
    }

    #[test]
    fn peak_tracking() {
        let mut m = NicMemory::new(1000);
        let a = m.alloc(600).unwrap();
        m.free(a);
        let _ = m.alloc(100);
        assert_eq!(m.peak_used(), 600);
    }

    #[test]
    fn zero_sized_alloc_is_fine() {
        let mut m = NicMemory::new(16);
        let z = m.alloc(0).unwrap();
        assert_eq!(m.used(), 0);
        m.free(z);
    }
}
