//! Handler ABI: the contract between the NIC pipeline and the datatype
//! processing strategies (which live in `nca-core`).
//!
//! Handlers are **really executed**: a payload handler receives the
//! actual packet bytes and returns the DMA writes that scatter them into
//! host memory. Its *simulated cost* is reported alongside, split into
//! the paper's three phases (Fig. 12): `init` (handler start + argument
//! preparation, e.g. RO-CP's checkpoint copy), `setup` (datatype
//! processing function startup incl. catch-up), and `processing`
//! (per-block work).

use nca_sim::{PktView, Time};

/// One DMA write toward host memory (`PltHandlerDMAToHostNB`).
#[derive(Debug, Clone)]
pub struct DmaWrite {
    /// Destination offset in the receive buffer (relative to the
    /// datatype origin; may be negative for types with negative lb).
    pub host_off: i64,
    /// The bytes to write (empty for the completion signal). A view into
    /// the shared wire buffer — handlers scatter by re-slicing the
    /// packet's payload, never by copying it.
    pub data: PktView,
    /// Write length in bytes — what the DMA timing model charges. Equals
    /// `data.len()` for view-carrying writes; length-only writes (bytes
    /// already landed by a direct scatter, see [`PacketCtx::direct`])
    /// have empty `data` but a nonzero `len`.
    pub len: u64,
    /// Whether completion generates a full event (the paper's handlers
    /// pass `NO_EVENT` for all but the final zero-byte write).
    pub event: bool,
}

impl DmaWrite {
    /// A data write without completion event.
    pub fn data(host_off: i64, data: impl Into<PktView>) -> Self {
        let data = data.into();
        DmaWrite {
            host_off,
            len: data.len() as u64,
            data,
            event: false,
        }
    }

    /// A write whose bytes were already scattered directly into the
    /// receive buffer: carries only the length the timing model needs.
    pub fn len_only(host_off: i64, len: u64) -> Self {
        DmaWrite {
            host_off,
            data: PktView::empty(),
            len,
            event: false,
        }
    }

    /// The final zero-byte write with event generation.
    pub fn completion_signal() -> Self {
        DmaWrite {
            host_off: 0,
            data: PktView::empty(),
            len: 0,
            event: true,
        }
    }
}

/// Handler runtime split into the paper's phases (all in simulated ps).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HandlerCost {
    /// `T_init`: handler start + argument preparation (checkpoint copy
    /// for RO-CP).
    pub init: Time,
    /// `T_setup`: datatype-processing startup, including catch-up.
    pub setup: Time,
    /// `γ · T_block`: per-contiguous-region processing.
    pub processing: Time,
}

impl HandlerCost {
    /// Total handler occupancy of an HPU.
    pub fn total(&self) -> Time {
        self.init + self.setup + self.processing
    }

    /// Accumulate another cost (for aggregate reporting).
    pub fn add(&mut self, o: &HandlerCost) {
        self.init += o.init;
        self.setup += o.setup;
        self.processing += o.processing;
    }
}

/// What a handler invocation produced.
#[derive(Debug, Default)]
pub struct HandlerOutput {
    /// Simulated cost.
    pub cost: HandlerCost,
    /// DMA writes to enqueue (in order).
    pub dma: Vec<DmaWrite>,
}

/// Direct-scatter destination: the pipeline's host receive buffer.
///
/// When the DMA engine resolves service times eagerly (telemetry off, no
/// occupancy series — every benchmark hot loop), the landed bytes are
/// observable only at the end of the run, so handlers may copy payload
/// bytes into the receive buffer *immediately* and emit length-only DMA
/// writes for the timing model. That skips one wire-buffer view per
/// contiguous block plus a second pass over the data at landing time.
pub struct DirectDst<'a> {
    /// The receive buffer.
    pub buf: &'a mut [u8],
    /// Buffer offset of `buf[0]` (the datatype origin; `host_off -
    /// origin` indexes the slice).
    pub origin: i64,
}

/// Per-packet context handed to the payload handler.
pub struct PacketCtx<'a> {
    /// The packet payload: a view into the shared wire buffer. Derefs to
    /// `&[u8]`; handlers that scatter ranges of it into host memory use
    /// [`PktView::subview`] so DMA writes share the buffer too.
    pub payload: &'a PktView,
    /// Offset of `payload[0]` in the packed message stream.
    pub stream_offset: u64,
    /// Packet sequence number within the message.
    pub seq: u64,
    /// Total packets in the message.
    pub npkt: u64,
    /// The vHPU this handler runs on (strategies keep per-vHPU state).
    pub vhpu: u64,
    /// Simulated time the handler starts (ps), so strategies can stamp
    /// their own telemetry without a side channel to the engine.
    pub now: Time,
    /// `Some` when the engine wants bytes scattered directly (see
    /// [`DirectDst`]); `None` demands view-carrying DMA writes.
    pub direct: Option<DirectDst<'a>>,
}

/// Packet scheduling policy (paper Sec. 3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Default sPIN scheduling: every ready handler may run on any idle
    /// HPU (header-before-payload, completion-last dependencies are
    /// enforced by the pipeline).
    Default,
    /// Blocked round-robin: sequences of `delta_p` consecutive packets
    /// are bound to one virtual HPU; a vHPU executes at most one handler
    /// at a time and is multiplexed onto physical HPUs.
    BlockedRR {
        /// Packets per sequence (Δp).
        delta_p: u64,
        /// Number of virtual HPUs.
        num_vhpus: u64,
    },
}

impl SchedPolicy {
    /// Map a packet sequence number to its vHPU id. Under the default
    /// policy every packet gets a fresh vHPU (unbounded parallelism,
    /// limited only by physical HPUs).
    pub fn vhpu_of(&self, seq: u64) -> u64 {
        match *self {
            SchedPolicy::Default => seq,
            SchedPolicy::BlockedRR { delta_p, num_vhpus } => (seq / delta_p) % num_vhpus,
        }
    }
}

/// A receiver-side message processing strategy (implemented by
/// `nca-core`: specialized handlers, HPU-local, RO-CP, RW-CP, …).
pub trait MessageProcessor {
    /// Scheduling policy this strategy requires.
    fn policy(&self) -> SchedPolicy;

    /// NIC memory footprint (descriptors + checkpoints + lists) for
    /// accounting and admission.
    fn nic_mem_bytes(&self) -> u64;

    /// Host-side preparation time before the message can be received
    /// (e.g. creating checkpoints and copying state to the NIC). Charged
    /// once; Fig. 15 shows it as "host overhead", Fig. 18 amortizes it.
    fn host_setup_time(&self) -> Time {
        0
    }

    /// Process one payload-bearing packet. The context is `&mut` so the
    /// handler can scatter through [`PacketCtx::direct`].
    fn on_payload(&mut self, ctx: &mut PacketCtx<'_>) -> HandlerOutput;

    /// The completion handler: runs after every payload handler of the
    /// message finished; must end with an event-generating DMA write.
    fn on_completion(&mut self) -> HandlerOutput {
        HandlerOutput {
            cost: HandlerCost::default(),
            dma: vec![DmaWrite::completion_signal()],
        }
    }

    /// The pipeline hands back the (drained) DMA scratch vector after the
    /// writes of [`MessageProcessor::on_payload`] are enqueued, so
    /// strategies can reuse its capacity for the next packet instead of
    /// allocating a fresh vector per handler invocation. The default
    /// drops it.
    fn recycle_dma(&mut self, _scratch: Vec<DmaWrite>) {}

    /// Short name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_vhpu_mapping() {
        let p = SchedPolicy::BlockedRR {
            delta_p: 4,
            num_vhpus: 3,
        };
        // packets 0..3 -> vhpu 0, 4..7 -> vhpu 1, 8..11 -> vhpu 2, 12..15 -> vhpu 0
        assert_eq!(p.vhpu_of(0), 0);
        assert_eq!(p.vhpu_of(3), 0);
        assert_eq!(p.vhpu_of(4), 1);
        assert_eq!(p.vhpu_of(11), 2);
        assert_eq!(p.vhpu_of(12), 0);
        let d = SchedPolicy::Default;
        assert_eq!(d.vhpu_of(17), 17);
    }

    #[test]
    fn cost_totals() {
        let mut a = HandlerCost {
            init: 10,
            setup: 20,
            processing: 30,
        };
        assert_eq!(a.total(), 60);
        a.add(&HandlerCost {
            init: 1,
            setup: 2,
            processing: 3,
        });
        assert_eq!(a.total(), 66);
    }
}
