//! The event-driven sPIN NIC receive pipeline.
//!
//! [`ReceiveSim`] drives one message through the full model:
//!
//! ```text
//! network (serialization + latency, optional reordering)
//!   → inbound engine (parse, matching on the header packet,
//!     payload copy into NIC memory)
//!   → scheduler (vHPU assignment per policy, dispatch to idle HPUs)
//!   → handler execution (the strategy: real byte scatter + modelled cost)
//!   → DMA/PCIe engine (FIFO, per-write overhead + bandwidth, occupancy
//!     tracked for Figs. 14/15)
//!   → host memory (actual bytes land in the receive buffer)
//! ```
//!
//! The *message processing time* reported is the paper's definition:
//! from the first byte of the message arriving at the NIC to the last
//! byte landing in the receive buffer (signalled by the completion
//! handler's event-generating zero-byte DMA).

use std::collections::{HashMap, VecDeque};

use nca_portals::event::{EventKind, EventQueue, FullEvent};
use nca_portals::matching::{MatchOutcome, MatchingUnit};
use nca_portals::packet::{packetize_wire, stamp_checksums, Packet};
use nca_sim::{DeliveredCopy, FaultInjector, FaultSpec, Sim, Time, TrackedFifo, WireBuf};
use nca_telemetry::{hist::LogHistogram, probe::SimTelemetryProbe, Telemetry};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::handler::{DirectDst, DmaWrite, HandlerCost, MessageProcessor, PacketCtx};
use crate::params::{NicParams, ReliabilityParams};
use crate::sched::Scheduler;

/// Portals 4 state for a matched receive: the posted lists plus the
/// match bits the incoming message carries.
#[derive(Debug, Clone, Default)]
pub struct PortalsSetup {
    /// Pre-populated matching unit (priority + overflow lists).
    pub matching: MatchingUnit,
    /// Match bits of the incoming message's header packet.
    pub match_bits: u64,
}

/// Which data path the matching walk selected for the message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgPath {
    /// Matched an ME with an execution context: sPIN handler processing.
    Spin,
    /// Matched a plain ME: non-processing (RDMA) path, contiguous landing.
    NonProcessing,
    /// Matched only on the overflow list: unexpected message, contiguous
    /// landing + `PutOverflow` event (host unpacks later, Sec. 3.2.6).
    Unexpected,
    /// No match anywhere: the message is discarded.
    Discarded,
}

/// Which DMA/handler engine a run uses (PR 8's eager batched-DMA mode
/// vs the fully event-driven engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Pick automatically: eager whenever nothing needs per-event DMA
    /// timing (no telemetry capture, no DMA-history recording),
    /// event-driven otherwise. This is the historical behaviour.
    #[default]
    Auto,
    /// Always the event-driven engine.
    Event,
    /// Request the eager engine. When telemetry capture or DMA-history
    /// recording needs per-event times the run silently *cannot* honour
    /// the request: it falls back to the event engine, warns once on
    /// stderr, and sets [`RunReport::eager_fallback`].
    Eager,
}

impl EngineMode {
    /// Every mode, declaration order.
    pub const ALL: [EngineMode; 3] = [EngineMode::Auto, EngineMode::Event, EngineMode::Eager];

    /// Stable label used in scenario files and reports.
    pub fn label(&self) -> &'static str {
        match self {
            EngineMode::Auto => "auto",
            EngineMode::Event => "event",
            EngineMode::Eager => "eager",
        }
    }

    /// Parse a scenario/CLI label.
    pub fn parse(s: &str) -> Option<EngineMode> {
        match s {
            "auto" => Some(EngineMode::Auto),
            "event" => Some(EngineMode::Event),
            "eager" => Some(EngineMode::Eager),
            _ => None,
        }
    }
}

/// Configuration of one simulated receive.
pub struct RunConfig {
    /// NIC parameters.
    pub params: NicParams,
    /// `Some(seed)` shuffles payload-packet arrival order (header stays
    /// first, completion stays last) to exercise out-of-order handling.
    pub out_of_order: Option<u64>,
    /// Record the full DMA-queue occupancy time series (Fig. 15).
    pub record_dma_history: bool,
    /// Portals matching state. `None` models an implicit
    /// execution-context-attached ME (every packet goes to sPIN).
    pub portals: Option<PortalsSetup>,
    /// Trace sink for the run. Disabled by default: every record call
    /// is then a single branch.
    pub telemetry: Telemetry,
    /// Network fault model. When inert (the default), the run takes the
    /// exact lossless code path — no sequence tracking, no acks, no
    /// timers — so fault-free results are bit-identical to a build
    /// without the fault layer.
    pub faults: FaultSpec,
    /// Retransmission/ack protocol parameters (consulted only when
    /// `faults` is not inert).
    pub reliability: ReliabilityParams,
    /// DMA/handler engine selection ([`EngineMode::Auto`] by default).
    pub engine: EngineMode,
}

impl RunConfig {
    /// In-order run with default parameters and an implicit sPIN ME.
    pub fn new(params: NicParams) -> Self {
        RunConfig {
            params,
            out_of_order: None,
            record_dma_history: false,
            portals: None,
            telemetry: Telemetry::disabled(),
            faults: FaultSpec::inert(),
            reliability: ReliabilityParams::default(),
            engine: EngineMode::Auto,
        }
    }
}

/// Reliable-delivery outcome of one run: what the fault layer injected
/// and how the protocol recovered. All-zero (with
/// `delivered_exactly_once: true`) for lossless runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Wire transmissions (first attempts + retransmissions).
    pub transmissions: u64,
    /// Sender retransmissions triggered by timeout.
    pub retransmissions: u64,
    /// Transmissions the fault layer dropped.
    pub drops_injected: u64,
    /// Transmissions the fault layer duplicated.
    pub dups_injected: u64,
    /// Arrivals discarded by receiver duplicate suppression.
    pub dups_suppressed: u64,
    /// Delivered copies the fault layer corrupted in flight.
    pub corrupts_injected: u64,
    /// Arrivals rejected by the per-packet checksum.
    pub corrupts_rejected: u64,
    /// Acknowledgements that reached the sender.
    pub acks_received: u64,
    /// Packets recovered over the reliable host-fallback channel after
    /// retry-budget exhaustion.
    pub host_fallback_packets: u64,
    /// The whole message was degraded to contiguous landing + host
    /// unpack because the strategy did not fit NIC memory (set by the
    /// runner's admission control, not by this pipeline).
    pub nic_mem_fallback: bool,
    /// Every packet was accepted exactly once (dedup discarded the rest)
    /// and none is missing.
    pub delivered_exactly_once: bool,
}

/// Sender-side retransmission state for one packet.
struct TxState {
    acked: bool,
    attempt: u32,
    fallback: bool,
}

/// Reliable-delivery state (present only when faults are active).
struct RelState {
    injector: FaultInjector,
    rparams: ReliabilityParams,
    tx: Vec<TxState>,
    received: Vec<bool>,
    stats: ReliabilityStats,
}

/// Everything a run produced.
pub struct RunReport {
    /// Strategy name.
    pub strategy: &'static str,
    /// Message size in bytes.
    pub msg_bytes: u64,
    /// Packets in the message.
    pub npkt: u64,
    /// First byte at the NIC (ps).
    pub t_first_byte: Time,
    /// Completion event time (last byte in receive buffer, ps).
    pub t_complete: Time,
    /// The receive buffer after the run (index 0 ↔ `host_origin`).
    /// A pooled buffer (derefs to `Vec<u8>`): dropping the report returns
    /// the storage to the worker's arena for the next run.
    pub host_buf: nca_sim::PooledBuf,
    /// Host-buffer offset of index 0.
    pub host_origin: i64,
    /// Total DMA writes issued (data writes + completion signal).
    pub dma_writes: u64,
    /// Total bytes DMA-written.
    pub dma_bytes: u64,
    /// Maximum DMA queue occupancy.
    pub dma_max_queue: usize,
    /// DMA queue occupancy series (if recorded).
    pub dma_history: Vec<(Time, usize)>,
    /// Per-handler cost samples (payload handlers, dispatch order).
    pub handler_costs: Vec<HandlerCost>,
    /// NIC memory the strategy occupied.
    pub nic_mem_bytes: u64,
    /// NIC-memory high-water mark: the strategy's static footprint plus
    /// the peak payload bytes resident in NIC memory at once (charged
    /// when the inbound engine lands a packet, released when its handler
    /// completes).
    pub nic_mem_hwm_bytes: u64,
    /// One-time host preparation (checkpoint creation/copy).
    pub host_setup_time: Time,
    /// Data path the matching walk selected.
    pub path: MsgPath,
    /// Full events posted during the run (Put / PutOverflow / DMA).
    pub events: Vec<FullEvent>,
    /// Fault-injection and reliable-delivery outcome.
    pub rel: ReliabilityStats,
    /// The eager engine was explicitly requested
    /// ([`EngineMode::Eager`]) but telemetry capture / DMA-history
    /// recording forced the event-driven engine instead.
    pub eager_fallback: bool,
}

impl RunReport {
    /// Message processing time (paper definition).
    pub fn processing_time(&self) -> Time {
        self.t_complete - self.t_first_byte
    }

    /// Receive throughput in Gbit/s over the processing time.
    pub fn throughput_gbit(&self) -> f64 {
        nca_sim::units::throughput_gbit(self.msg_bytes, self.processing_time())
    }

    /// Aggregate handler cost (sums of the three phases).
    pub fn handler_cost_sum(&self) -> HandlerCost {
        let mut acc = HandlerCost::default();
        for c in &self.handler_costs {
            acc.add(c);
        }
        acc
    }

    /// Mean payload-handler runtime (ps).
    pub fn mean_handler_time(&self) -> f64 {
        if self.handler_costs.is_empty() {
            return 0.0;
        }
        self.handler_costs
            .iter()
            .map(|c| c.total() as f64)
            .sum::<f64>()
            / self.handler_costs.len() as f64
    }
}

struct DmaEngine {
    queue: TrackedFifo<DmaWrite>,
    /// Per-channel busy flags (index = channel, i.e. the trace track).
    chan_busy: Vec<bool>,
    /// The write each busy channel is currently servicing. Parking the
    /// write here (instead of capturing it in a closure) lets the
    /// service-done event be a plain allocation-free function call.
    chan_slot: Vec<Option<DmaWrite>>,
    /// Batched mode: with telemetry off and no occupancy time series
    /// requested, the multi-channel FIFO service discipline is computed
    /// algebraically at enqueue time — service start is `max(now, earliest
    /// channel availability)` (all channels for the ordered completion
    /// write) — and the bytes land immediately, so the engine emits no
    /// simulator events at all. Timing is exact: landing time is service
    /// completion plus the constant PCIe latency either way.
    eager: bool,
    /// Eager mode: per-channel service-completion times.
    free_at: Vec<Time>,
    /// Eager mode: service-start (= queue-leave) times not yet folded
    /// into the occupancy model. Service starts are provably
    /// nondecreasing (arrivals are FIFO at nondecreasing times and the
    /// earliest-free-channel bound never moves backwards), so a deque
    /// suffices — no heap.
    starts: VecDeque<Time>,
    /// Eager mode: modelled queue occupancy and its high-water mark
    /// (`dma_max_queue` must match the event-driven engine).
    occ: usize,
    max_occ: usize,
    writes: u64,
    bytes: u64,
}

impl DmaEngine {
    fn busy_count(&self) -> usize {
        self.chan_busy.iter().filter(|&&b| b).count()
    }

    fn free_channel(&self) -> Option<usize> {
        self.chan_busy.iter().position(|&b| !b)
    }
}

/// Parked `handler_done` arguments: `(vhpu, packet index, hpu, writes)`.
type DoneArgs = (u64, usize, usize, Vec<DmaWrite>);

struct World {
    params: NicParams,
    packets: Vec<Packet>,
    packed: WireBuf,
    proc: Box<dyn MessageProcessor>,
    sched: Scheduler<u64>,
    dma: DmaEngine,
    host_buf: nca_sim::PooledBuf,
    host_origin: i64,
    pending_payload: u64,
    completion_dispatched: bool,
    t_complete: Option<Time>,
    handler_costs: Vec<HandlerCost>,
    matching: Option<MatchingUnit>,
    match_bits: u64,
    path: MsgPath,
    events: EventQueue,
    arrived: u64,
    tel: Telemetry,
    /// Packet idx → time it entered its vHPU queue (flight-recorder
    /// bookkeeping; only populated when telemetry is enabled).
    enq_time: HashMap<usize, Time>,
    /// Parked arguments of in-flight `handler_done` events: the slot
    /// index rides in the event's scalar payload, so the per-packet
    /// completion event needs no boxed closure. Slots are recycled
    /// through a free list.
    done_slots: Vec<Option<DoneArgs>>,
    done_free: Vec<u32>,
    /// Latency distributions accumulated over the run and emitted as
    /// single `Hist` events at the end (they survive ring eviction).
    hist_handler: LogHistogram,
    hist_queue_wait: LogHistogram,
    hist_dma: LogHistogram,
    /// The strategy's static NIC-memory footprint.
    nic_mem: u64,
    /// Payload bytes currently resident in NIC memory (landed by the
    /// inbound engine, not yet consumed by a handler).
    resident_payload: u64,
    /// Peak of `resident_payload` over the run.
    resident_hwm: u64,
    /// Reliable-delivery state; `None` on a lossless network.
    rel: Option<RelState>,
}

impl World {
    /// One wire transmission attempt of packet `idx` with nominal
    /// arrival time `arrival` (serialization already accounted). The
    /// fault injector renders the deterministic verdict; every delivered
    /// copy becomes an arrival event and a retransmission timer guards
    /// the attempt.
    fn transmit(&mut self, sim: &mut Sim<World>, idx: usize, attempt: u32, arrival: Time) {
        let (msg_id, seq) = (self.packets[idx].msg_id, self.packets[idx].seq);
        let rel = self.rel.as_mut().expect("transmit requires fault mode");
        rel.stats.transmissions += 1;
        let verdict = rel.injector.judge(msg_id, seq, attempt);
        let now = sim.now();
        if verdict.dropped {
            rel.stats.drops_injected += 1;
            self.tel.counter("spin", "fault_drop", 0, now, 1);
        }
        if verdict.duplicated {
            rel.stats.dups_injected += 1;
            self.tel.counter("spin", "fault_dup", 0, now, 1);
        }
        if verdict.corrupted {
            rel.stats.corrupts_injected += 1;
            self.tel.counter("spin", "fault_corrupt", 0, now, 1);
        }
        let rel = self.rel.as_ref().expect("fault mode");
        for copy in verdict.copies {
            sim.schedule(arrival + copy.extra_delay, move |w, s| {
                w.packet_rx(s, idx, Some(copy));
            });
        }
        // Exponential backoff, capped absolutely at rto_max, with a
        // seeded uniform jitter so the timers of a correlated drop
        // burst spread out instead of firing in lockstep (retransmit
        // storms under open-loop overload). The jitter draw is a pure
        // function of (seed, msg, seq, attempt): replays are identical.
        let shift = attempt.min(rel.rparams.backoff_cap);
        let backoff = (rel.rparams.rto << shift).min(rel.rparams.rto_max.max(rel.rparams.rto));
        let jitter = rel
            .injector
            .jitter(msg_id, seq, attempt, rel.rparams.rto_jitter);
        let deadline = arrival + backoff + jitter;
        sim.schedule(deadline, move |w, s| w.retry_timeout(s, idx, attempt));
    }

    /// Retransmission timer for `attempt` of packet `idx` fired.
    fn retry_timeout(&mut self, sim: &mut Sim<World>, idx: usize, attempt: u32) {
        let params_net = self.params.net_latency;
        let wire = self.params.pkt_wire_time(self.packets[idx].len);
        let rel = self.rel.as_mut().expect("fault mode");
        let tx = &mut rel.tx[idx];
        if tx.acked || tx.fallback || tx.attempt != attempt {
            return; // delivered, degraded, or a newer attempt owns the timer
        }
        if attempt >= rel.rparams.max_retries {
            // Retry budget exhausted: recover the fragment over the
            // reliable host channel instead of wedging the receive.
            tx.fallback = true;
            rel.stats.host_fallback_packets += 1;
            let at = sim.now() + rel.rparams.fallback_latency;
            self.tel.counter("spin", "host_fallback", 0, sim.now(), 1);
            sim.schedule(at, move |w, s| w.packet_rx(s, idx, None));
            return;
        }
        tx.attempt = attempt + 1;
        rel.stats.retransmissions += 1;
        self.tel.counter("spin", "retransmission", 0, sim.now(), 1);
        let arrival = sim.now() + params_net + wire;
        self.tel
            .span("spin", "wire", 0, sim.now(), sim.now() + wire);
        self.transmit(sim, idx, attempt + 1, arrival);
    }

    /// A copy of packet `idx` reached the NIC. `copy: None` means the
    /// reliable host-fallback channel delivered it (never faulty).
    fn packet_rx(&mut self, sim: &mut Sim<World>, idx: usize, copy: Option<DeliveredCopy>) {
        let hdr = self.packets[idx].hdr;
        let now = sim.now();
        // Corruption detection: recompute the checksum over the bytes as
        // they arrived. The fault layer materializes corrupted copies
        // copy-on-write, so the shared wire buffer is never mutated. A
        // single-byte flip always breaks FNV-1a, so a corrupted copy
        // never reaches the pipeline.
        if let Some(c) = copy {
            if c.corrupt && hdr.len > 0 {
                let bytes = c.materialize(&self.packets[idx].payload);
                if !hdr.verify_payload(&bytes) {
                    let rel = self.rel.as_mut().expect("fault mode");
                    rel.stats.corrupts_rejected += 1;
                    self.tel.counter("spin", "corrupt_rejected", 0, now, 1);
                    return; // discarded; the sender's timer recovers it
                }
                debug_assert!(false, "single-byte flip must break the checksum");
            }
        }
        let rel = self.rel.as_mut().expect("fault mode");
        if rel.received[idx] {
            rel.stats.dups_suppressed += 1;
            self.tel.counter("spin", "dup_suppressed", 0, now, 1);
            return;
        }
        rel.received[idx] = true;
        // Acknowledge so the sender cancels the retransmission timer.
        let ack_at = now + rel.rparams.ack_latency;
        sim.schedule(ack_at, move |w, _| {
            let rel = w.rel.as_mut().expect("fault mode");
            if !rel.tx[idx].acked {
                rel.tx[idx].acked = true;
                rel.stats.acks_received += 1;
            }
        });
        self.packet_arrival(sim, idx);
    }

    fn packet_arrival(&mut self, sim: &mut Sim<World>, idx: usize) {
        let hdr = self.packets[idx].hdr;
        self.arrived += 1;
        self.tel.counter("spin", "packets_arrived", 0, sim.now(), 1);
        // The header packet triggers the Portals matching walk and fixes
        // the message's data path (the pinned ME serves the rest).
        if hdr.kind.is_header() {
            if let Some(mu) = self.matching.as_mut() {
                let (outcome, me) = mu.match_header(hdr.msg_id, self.match_bits);
                self.path = match (outcome, me.and_then(|m| m.exec_ctx)) {
                    (MatchOutcome::Priority, Some(_)) => MsgPath::Spin,
                    (MatchOutcome::Priority, None) => MsgPath::NonProcessing,
                    (MatchOutcome::Overflow, _) => MsgPath::Unexpected,
                    (MatchOutcome::Discard, _) => MsgPath::Discarded,
                };
            }
        }
        if hdr.kind.is_completion() {
            if let Some(mu) = self.matching.as_mut() {
                mu.complete(hdr.msg_id);
            }
        }
        match self.path {
            MsgPath::Spin => {
                // Inbound engine: copy payload into NIC memory, then HER.
                let inbound = self.params.nic_passthrough + self.params.nicmem_copy_time(hdr.len);
                self.tel
                    .span("spin", "inbound", 0, sim.now(), sim.now() + inbound);
                sim.schedule_call_in(inbound, ev_her_ready, idx as u64, 0);
            }
            MsgPath::NonProcessing | MsgPath::Unexpected => {
                // RDMA landing: one contiguous DMA write per packet at its
                // stream offset; no HPU involvement. The write reuses the
                // packet's payload view — no bytes are copied.
                let passthrough = self.params.nic_passthrough;
                let last = self.arrived == self.packets.len() as u64;
                let overflow = self.path == MsgPath::Unexpected;
                sim.schedule_in(passthrough, move |w, s| {
                    let payload = w.packets[idx].payload.clone();
                    w.enqueue_dma(
                        s,
                        DmaWrite::data(w.host_origin + hdr.offset as i64, payload),
                    );
                    if last {
                        w.events.post(FullEvent {
                            kind: if overflow {
                                EventKind::PutOverflow
                            } else {
                                EventKind::Put
                            },
                            msg_id: hdr.msg_id,
                            size: w.packed.len() as u64,
                            time: s.now(),
                        });
                        w.enqueue_dma(s, DmaWrite::completion_signal());
                    }
                });
            }
            MsgPath::Discarded => {
                // Dropped: no data movement, no events. The run ends when
                // the last packet has been parsed.
                if self.arrived == self.packets.len() as u64 {
                    self.t_complete = Some(sim.now() + self.params.nic_passthrough);
                }
            }
        }
    }

    fn her_ready(&mut self, sim: &mut Sim<World>, idx: usize) {
        // The inbound engine has landed this payload in NIC memory:
        // charge it against the NIC-memory budget until its handler
        // consumes it.
        self.resident_payload += self.packets[idx].len;
        if self.resident_payload > self.resident_hwm {
            self.resident_hwm = self.resident_payload;
        }
        self.tel.gauge(
            "spin",
            "nic_mem_bytes",
            0,
            sim.now(),
            (self.nic_mem + self.resident_payload) as f64,
        );
        let seq = self.packets[idx].seq;
        let vhpu = self.proc.policy().vhpu_of(seq);
        if self.tel.is_enabled() {
            self.enq_time.insert(idx, sim.now());
        }
        // The vHPU id doubles as the dFCFS steering hint: the single-
        // message pipeline has no flow table, so vHPUs map straight
        // onto physical HPUs.
        self.sched.enqueue(vhpu, idx, vhpu as usize);
        self.try_dispatch(sim);
    }

    fn try_dispatch(&mut self, sim: &mut Sim<World>) {
        while let Some(d) = self.sched.next_dispatch() {
            let (vhpu, idx, hpu) = (d.key, d.pkt, d.hpu);
            let dispatch = self.params.sched_dispatch;
            let now = sim.now();
            // Only populated when telemetry is on; skip the hash when
            // provably empty.
            if !self.enq_time.is_empty() {
                if let Some(enq) = self.enq_time.remove(&idx) {
                    self.hist_queue_wait.record(now - enq);
                    if now > enq {
                        self.tel.span("spin", "queue_wait", vhpu, enq, now);
                    }
                }
            }
            self.tel.instant("spin", "dispatch", vhpu, now);
            self.tel.span("spin", "sched", vhpu, now, now + dispatch);
            sim.schedule_call_in(
                dispatch,
                ev_run_handler,
                vhpu,
                ((idx as u64) << 32) | hpu as u64,
            );
        }
    }

    fn run_handler(&mut self, sim: &mut Sim<World>, vhpu: u64, idx: usize, hpu: usize) {
        let hdr = self.packets[idx].hdr;
        // In the eager-DMA regime the handler scatters payload bytes
        // straight into the receive buffer (length-only DMA writes);
        // the event-driven engine needs view-carrying writes so the
        // bytes land at their simulated DMA times.
        let direct = if self.dma.eager {
            Some(DirectDst {
                buf: &mut self.host_buf[..],
                origin: self.host_origin,
            })
        } else {
            None
        };
        let mut ctx = PacketCtx {
            payload: &self.packets[idx].payload,
            stream_offset: hdr.offset,
            seq: hdr.seq,
            npkt: self.packets.len() as u64,
            vhpu,
            now: sim.now(),
            direct,
        };
        let out = self.proc.on_payload(&mut ctx);
        self.handler_costs.push(out.cost);
        let runtime = out.cost.total();
        if self.tel.is_enabled() {
            self.hist_handler.record(runtime);
        }
        self.tel
            .span("spin", "handler", vhpu, sim.now(), sim.now() + runtime);
        let args = (vhpu, idx, hpu, out.dma);
        let slot = match self.done_free.pop() {
            Some(i) => {
                self.done_slots[i as usize] = Some(args);
                i
            }
            None => {
                self.done_slots.push(Some(args));
                (self.done_slots.len() - 1) as u32
            }
        };
        sim.schedule_call_in(runtime, ev_handler_done, slot as u64, 0);
    }

    fn handler_done(
        &mut self,
        sim: &mut Sim<World>,
        vhpu: u64,
        idx: usize,
        hpu: usize,
        mut dma: Vec<DmaWrite>,
    ) {
        // The handler consumed the packet: its payload leaves NIC memory.
        self.resident_payload -= self.packets[idx].len;
        self.tel.gauge(
            "spin",
            "nic_mem_bytes",
            0,
            sim.now(),
            (self.nic_mem + self.resident_payload) as f64,
        );
        if self.dma.eager {
            self.eager_dma_batch(sim.now(), &mut dma);
            dma.clear();
        } else {
            for w in dma.drain(..) {
                self.enqueue_dma(sim, w);
            }
        }
        // Hand the emptied scratch vector back to the strategy so the
        // next handler invocation reuses its capacity.
        self.proc.recycle_dma(dma);
        self.sched.done(vhpu, hpu);
        self.pending_payload -= 1;
        if self.pending_payload == 0 && !self.completion_dispatched {
            self.completion_dispatched = true;
            let dispatch = self.params.sched_dispatch;
            sim.schedule_in(dispatch, |w, s| {
                let out = w.proc.on_completion();
                let runtime = out.cost.total();
                s.schedule_in(runtime, move |w2, s2| {
                    for wr in out.dma {
                        w2.enqueue_dma(s2, wr);
                    }
                });
            });
        }
        self.try_dispatch(sim);
    }

    fn enqueue_dma(&mut self, sim: &mut Sim<World>, w: DmaWrite) {
        if self.dma.eager {
            self.eager_dma(sim.now(), &w);
            return;
        }
        self.dma.queue.push(sim.now(), w);
        // Sampled at exactly the FIFO's own history points (occupancy
        // after the push/pop) so a trace-driven Fig. 15 reproduces
        // `dma_history` sample for sample.
        self.tel.gauge(
            "spin",
            "dma_queue",
            0,
            sim.now(),
            self.dma.queue.len() as f64,
        );
        self.kick_dma(sim);
    }

    /// Eager DMA service: resolve the write's service window now instead
    /// of round-tripping through per-write simulator events. Arrivals are
    /// FIFO at nondecreasing sim times, so "the write starts on the
    /// earliest-free channel, no earlier than now" reproduces the
    /// event-driven engine's multi-server schedule exactly; the ordered
    /// completion write instead waits for every channel to drain (the
    /// `kick_dma` Portals-ordering guard). The occupancy model replays
    /// queue-leave (service-start) times against push times so
    /// `dma_max_queue` matches the event-driven engine.
    fn eager_dma(&mut self, now: Time, w: &DmaWrite) {
        let land = self.eager_schedule(now, w);
        self.dma_landed(land, w);
    }

    /// Batched variant for a handler's whole write list: one profiled
    /// pass copies all landed bytes, with no per-write event machinery.
    fn eager_dma_batch(&mut self, now: Time, writes: &mut Vec<DmaWrite>) {
        let _phase = nca_sim::profile::enter(nca_sim::profile::Phase::DmaCopy);
        for w in writes.drain(..) {
            let land = self.eager_schedule(now, &w);
            if !w.data.is_empty() {
                let start = (w.host_off - self.host_origin) as usize;
                nca_ddt::kernels::copy_block(&mut self.host_buf, start, &w.data, 0, w.data.len());
            }
            if w.event {
                self.t_complete = Some(land);
                self.tel.instant("spin", "message_complete", 0, land);
            }
        }
    }

    /// Resolve one write's service window against the channel states;
    /// shared core of the eager paths. Returns the landing time.
    #[inline]
    fn eager_schedule(&mut self, now: Time, w: &DmaWrite) -> Time {
        let d = &mut self.dma;
        // Writes whose service started by `now` have left the queue —
        // the event engine's `kick_dma` pops them before this push.
        while d.starts.front().is_some_and(|&t| t <= now) {
            d.starts.pop_front();
            d.occ -= 1;
        }
        d.occ += 1;
        d.max_occ = d.max_occ.max(d.occ);
        let chan = if w.event {
            // Completion: all channels idle first.
            (0..d.free_at.len()).max_by_key(|&i| d.free_at[i]).unwrap()
        } else {
            (0..d.free_at.len()).min_by_key(|&i| d.free_at[i]).unwrap()
        };
        let service = self.params.dma_service_time(w.len);
        let start = now.max(d.free_at[chan]);
        d.free_at[chan] = start + service;
        debug_assert!(d.starts.back().is_none_or(|&b| b <= start));
        d.starts.push_back(start);
        d.writes += 1;
        d.bytes += w.len;
        start + service + self.params.pcie_latency
    }

    fn kick_dma(&mut self, sim: &mut Sim<World>) {
        while let Some(chan) = self.dma.free_channel() {
            // The event-generating completion write must land after all
            // data writes: dispatch it only once every channel is idle
            // and it is alone in the queue (Portals ordering guarantee).
            if let Some(front) = self.dma.queue.front() {
                if front.event && self.dma.busy_count() > 0 {
                    return;
                }
            }
            let Some(w) = self.dma.queue.pop(sim.now()) else {
                return;
            };
            self.tel.gauge(
                "spin",
                "dma_queue",
                0,
                sim.now(),
                self.dma.queue.len() as f64,
            );
            self.dma.chan_busy[chan] = true;
            let service = self.params.dma_service_time(w.len);
            if self.tel.is_enabled() {
                self.hist_dma.record(service);
                // Busy-interval span on the channel's own track (the
                // Perfetto PCIe-utilization view).
                self.tel.span(
                    "spin",
                    "dma_chan",
                    chan as u64,
                    sim.now(),
                    sim.now() + service,
                );
            }
            self.dma.chan_slot[chan] = Some(w);
            sim.schedule_call_in(service, ev_dma_service_done, chan as u64, 0);
        }
    }

    /// A channel finished putting its write on the wire. The write lands
    /// in host memory one PCIe latency later.
    fn dma_service_done(&mut self, sim: &mut Sim<World>, chan: usize) {
        let w = self.dma.chan_slot[chan]
            .take()
            .expect("service-done on idle channel");
        self.dma.chan_busy[chan] = false;
        self.dma.writes += 1;
        self.dma.bytes += w.len;
        let landing = self.params.pcie_latency;
        if self.tel.is_enabled() {
            // Telemetry path: keep the landing as its own event so the
            // per-event probe stream and span timeline stay identical to
            // the reference pipeline.
            if w.event {
                // The completion drain: everything is on the wire, the
                // run now waits for the final PCIe landing.
                self.tel.span(
                    "spin",
                    "dma_drain",
                    chan as u64,
                    sim.now(),
                    sim.now() + landing,
                );
            }
            sim.schedule_in(landing, move |w2, s2| {
                let t = s2.now();
                w2.dma_landed(t, &w);
            });
        } else {
            // Fast path: land the bytes now. Every write's landing time
            // is its service-done time plus a constant, so landing order
            // equals service order and the final buffer is byte-identical;
            // the completion timestamp still accounts the PCIe latency.
            let t_land = sim.now() + landing;
            self.dma_landed(t_land, &w);
        }
        self.kick_dma(sim);
    }

    fn dma_landed(&mut self, t: Time, w: &DmaWrite) {
        if !w.data.is_empty() {
            let _phase = nca_sim::profile::enter(nca_sim::profile::Phase::DmaCopy);
            let start = (w.host_off - self.host_origin) as usize;
            self.host_buf[start..start + w.data.len()].copy_from_slice(&w.data);
        }
        if w.event {
            // Completion event: the message is fully in the receive buffer.
            self.t_complete = Some(t);
            self.tel.instant("spin", "message_complete", 0, t);
        }
    }
}

// Allocation-free event bodies for the per-packet hot path (scheduled via
// `Sim::schedule_call`): a function pointer plus two scalars instead of a
// boxed closure per event.

fn ev_packet_arrival(w: &mut World, s: &mut Sim<World>, idx: u64, _b: u64) {
    w.packet_arrival(s, idx as usize);
}

fn ev_her_ready(w: &mut World, s: &mut Sim<World>, idx: u64, _b: u64) {
    w.her_ready(s, idx as usize);
}

fn ev_run_handler(w: &mut World, s: &mut Sim<World>, vhpu: u64, idx_hpu: u64) {
    w.run_handler(
        s,
        vhpu,
        (idx_hpu >> 32) as usize,
        (idx_hpu & 0xFFFF_FFFF) as usize,
    );
}

fn ev_dma_service_done(w: &mut World, s: &mut Sim<World>, chan: u64, _b: u64) {
    w.dma_service_done(s, chan as usize);
}

fn ev_handler_done(w: &mut World, s: &mut Sim<World>, slot: u64, _b: u64) {
    let (vhpu, idx, hpu, dma) = w.done_slots[slot as usize].take().expect("armed done slot");
    w.done_free.push(slot as u32);
    w.handler_done(s, vhpu, idx, hpu, dma);
}

/// The receive-pipeline runner.
pub struct ReceiveSim;

impl ReceiveSim {
    /// Simulate receiving `packed` (the packed message bytes, anything
    /// convertible into a shared [`WireBuf`] — a `Vec<u8>` costs one
    /// copy at conversion, a `WireBuf` clone costs a refcount bump)
    /// processed by `proc`, landing in a receive buffer spanning
    /// `[host_origin, host_origin + host_span)`.
    pub fn run(
        proc: Box<dyn MessageProcessor>,
        packed: impl Into<WireBuf>,
        host_origin: i64,
        host_span: u64,
        cfg: &RunConfig,
    ) -> RunReport {
        let packed: WireBuf = packed.into();
        let params = cfg.params.clone();
        let faulty = !cfg.faults.is_inert();
        assert!(
            !faulty || cfg.portals.is_none(),
            "fault injection requires an implicit sPIN ME: the matching walk \
             assumes the header packet arrives first, which a lossy network \
             cannot guarantee"
        );
        let mut packets = packetize_wire(0, &packed, params.payload_size);
        if faulty {
            // Checksums only matter when the network can corrupt bytes;
            // the lossless path skips the per-byte FNV pass entirely.
            stamp_checksums(&mut packets);
        }
        let packets = packets;
        let npkt = packets.len() as u64;

        // Network arrival schedule: serialization at line rate after the
        // one-way latency; optionally shuffle which payload packet
        // occupies which serialization slot.
        let mut order: Vec<usize> = (0..packets.len()).collect();
        if let Some(seed) = cfg.out_of_order {
            if packets.len() > 3 {
                let mut rng = StdRng::seed_from_u64(seed);
                order[1..packets.len() - 1].shuffle(&mut rng);
            }
        }

        let strategy_name = proc.name();
        let nic_mem = proc.nic_mem_bytes();
        let host_setup = proc.host_setup_time();

        // The eager engine resolves DMA service windows arithmetically,
        // so it cannot emit per-event DMA timing: telemetry capture and
        // DMA-history recording force the event-driven engine.
        let needs_events = cfg.telemetry.is_enabled() || cfg.record_dma_history;
        let eager_fallback = cfg.engine == EngineMode::Eager && needs_events;
        if eager_fallback {
            static WARN_ONCE: std::sync::Once = std::sync::Once::new();
            WARN_ONCE.call_once(|| {
                eprintln!(
                    "warning: eager DMA engine requested, but telemetry capture or \
                     DMA-history recording needs per-event timing; falling back to the \
                     event-driven engine (recorded as eager_fallback in the run report)"
                );
            });
        }
        let eager = match cfg.engine {
            EngineMode::Event => false,
            EngineMode::Auto | EngineMode::Eager => !needs_events,
        };

        let mut world = World {
            params: params.clone(),
            packets,
            packed,
            proc,
            sched: Scheduler::new(params.discipline, params.hpus),
            dma: DmaEngine {
                queue: TrackedFifo::new(cfg.record_dma_history),
                chan_busy: vec![false; params.dma_channels.max(1)],
                chan_slot: (0..params.dma_channels.max(1)).map(|_| None).collect(),
                eager,
                free_at: vec![0; params.dma_channels.max(1)],
                starts: VecDeque::new(),
                occ: 0,
                max_occ: 0,
                writes: 0,
                bytes: 0,
            },
            host_buf: nca_sim::arena::take_zeroed(host_span as usize),
            host_origin,
            pending_payload: npkt,
            completion_dispatched: false,
            t_complete: None,
            handler_costs: Vec::with_capacity(npkt as usize),
            matching: cfg.portals.as_ref().map(|p| p.matching.clone()),
            match_bits: cfg.portals.as_ref().map(|p| p.match_bits).unwrap_or(0),
            path: MsgPath::Spin,
            events: EventQueue::new(),
            arrived: 0,
            tel: cfg.telemetry.clone(),
            enq_time: HashMap::new(),
            done_slots: Vec::new(),
            done_free: Vec::new(),
            hist_handler: LogHistogram::new(),
            hist_queue_wait: LogHistogram::new(),
            hist_dma: LogHistogram::new(),
            nic_mem,
            resident_payload: 0,
            resident_hwm: 0,
            rel: faulty.then(|| RelState {
                injector: FaultInjector::new(cfg.faults),
                rparams: cfg.reliability.clone(),
                tx: (0..npkt)
                    .map(|_| TxState {
                        acked: false,
                        attempt: 0,
                        fallback: false,
                    })
                    .collect(),
                received: vec![false; npkt as usize],
                stats: ReliabilityStats::default(),
            }),
        };

        let mut sim: Sim<World> = Sim::new();
        if cfg.telemetry.is_enabled() {
            sim.set_probe(Box::new(SimTelemetryProbe::new(
                cfg.telemetry.clone(),
                "sim",
            )));
            // One-shot allocation sample: the strategy's NIC-memory
            // footprint is fixed for the lifetime of the receive.
            world
                .tel
                .gauge("spin", "nic_mem_bytes", 0, 0, nic_mem as f64);
        }
        let t_first_byte = params.net_latency;
        let mut t = t_first_byte;
        if faulty {
            // Reliable mode: each serialization slot is a *transmission*
            // through the fault layer; the retransmission protocol and
            // receiver dedup guarantee exactly-once processing.
            let mut slots = Vec::with_capacity(order.len());
            for &pkt_idx in &order {
                let wire = params.pkt_wire_time(world.packets[pkt_idx].len);
                world.tel.span("spin", "wire", 0, t, t + wire);
                t += wire;
                slots.push((pkt_idx, t));
            }
            for (pkt_idx, at) in slots {
                world.transmit(&mut sim, pkt_idx, 0, at);
            }
        } else {
            for &pkt_idx in &order {
                let wire = params.pkt_wire_time(world.packets[pkt_idx].len);
                world.tel.span("spin", "wire", 0, t, t + wire);
                t += wire;
                sim.schedule_call(t, ev_packet_arrival, pkt_idx as u64, 0);
            }
        }
        sim.run(&mut world);

        let t_complete = world.t_complete.unwrap_or_else(|| sim.now());
        // Emit the accumulated distributions as single mergeable events
        // so percentiles survive however much the ring evicted.
        if world.tel.is_enabled() {
            world
                .tel
                .histogram("spin", "handler_ps", 0, t_complete, &world.hist_handler);
            world.tel.histogram(
                "spin",
                "queue_wait_ps",
                0,
                t_complete,
                &world.hist_queue_wait,
            );
            world
                .tel
                .histogram("spin", "dma_service_ps", 0, t_complete, &world.hist_dma);
        }
        let rel = match world.rel.take() {
            Some(r) => ReliabilityStats {
                delivered_exactly_once: r.received.iter().all(|&x| x),
                ..r.stats
            },
            None => ReliabilityStats {
                delivered_exactly_once: true,
                ..ReliabilityStats::default()
            },
        };
        RunReport {
            strategy: strategy_name,
            msg_bytes: world.packed.len() as u64,
            npkt,
            t_first_byte,
            t_complete,
            host_buf: world.host_buf,
            host_origin,
            dma_writes: world.dma.writes,
            dma_bytes: world.dma.bytes,
            dma_max_queue: world.dma.queue.max_occupancy().max(world.dma.max_occ),
            dma_history: world.dma.queue.take_history(),
            handler_costs: world.handler_costs,
            nic_mem_bytes: nic_mem,
            nic_mem_hwm_bytes: nic_mem + world.resident_hwm,
            host_setup_time: host_setup,
            path: world.path,
            events: world.events.into_all(),
            rel,
            eager_fallback,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::ContigProcessor;
    use nca_portals::event::EventKind;
    use nca_portals::matching::MatchEntry;

    fn me(bits: u64, exec_ctx: Option<u32>) -> MatchEntry {
        MatchEntry {
            id: 0,
            match_bits: bits,
            ignore_bits: 0,
            start: 0,
            length: 1 << 20,
            exec_ctx,
            use_once: false,
        }
    }

    fn msg(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i % 251) as u8).collect()
    }

    fn run_with(portals: Option<PortalsSetup>, n: usize) -> RunReport {
        let params = NicParams::with_hpus(4);
        let handler = params.spin_min_handler();
        let proc_ = Box::new(ContigProcessor::new(0, handler));
        let cfg = RunConfig {
            params,
            out_of_order: None,
            record_dma_history: false,
            portals,
            telemetry: Telemetry::disabled(),
            faults: FaultSpec::inert(),
            reliability: ReliabilityParams::default(),
            engine: EngineMode::Auto,
        };
        ReceiveSim::run(proc_, msg(n), 0, n as u64, &cfg)
    }

    #[test]
    fn explicit_eager_request_under_telemetry_falls_back_and_flags_it() {
        let params = NicParams::with_hpus(4);
        let handler = params.spin_min_handler();
        let (tel, _sink) = Telemetry::ring(1 << 16);
        let mut cfg = RunConfig::new(params.clone());
        cfg.engine = EngineMode::Eager;
        cfg.telemetry = tel;
        let proc_ = Box::new(ContigProcessor::new(0, handler));
        let r = ReceiveSim::run(proc_, msg(8192), 0, 8192, &cfg);
        assert!(r.eager_fallback, "telemetry must force the event engine");

        // Without capture the request is honoured: no fallback, and the
        // result is observationally identical either way (pinned more
        // broadly in tests/dma_engine_equiv.rs).
        let mut cfg2 = RunConfig::new(params);
        cfg2.engine = EngineMode::Eager;
        let proc2 = Box::new(ContigProcessor::new(0, handler));
        let r2 = ReceiveSim::run(proc2, msg(8192), 0, 8192, &cfg2);
        assert!(!r2.eager_fallback);
        assert_eq!(r2.t_complete, r.t_complete);
        assert_eq!(r2.host_buf, r.host_buf);
    }

    #[test]
    fn engine_mode_labels_round_trip() {
        for m in [EngineMode::Auto, EngineMode::Event, EngineMode::Eager] {
            assert_eq!(EngineMode::parse(m.label()), Some(m));
        }
        assert_eq!(EngineMode::parse("lazy"), None);
    }

    #[test]
    fn matched_priority_with_exec_ctx_takes_spin_path() {
        let mut mu = MatchingUnit::new();
        mu.append_priority(me(0xCAFE, Some(1)));
        let r = run_with(
            Some(PortalsSetup {
                matching: mu,
                match_bits: 0xCAFE,
            }),
            8192,
        );
        assert_eq!(r.path, MsgPath::Spin);
        assert_eq!(r.host_buf, msg(8192));
        assert!(!r.handler_costs.is_empty(), "handlers must have run");
    }

    #[test]
    fn matched_plain_me_takes_non_processing_path() {
        let mut mu = MatchingUnit::new();
        mu.append_priority(me(0xCAFE, None));
        let r = run_with(
            Some(PortalsSetup {
                matching: mu,
                match_bits: 0xCAFE,
            }),
            8192,
        );
        assert_eq!(r.path, MsgPath::NonProcessing);
        assert_eq!(r.host_buf, msg(8192), "RDMA path must still land the bytes");
        assert!(r.handler_costs.is_empty(), "no handlers on the RDMA path");
        assert!(r.events.iter().any(|e| e.kind == EventKind::Put));
    }

    #[test]
    fn overflow_match_is_unexpected_with_event() {
        let mut mu = MatchingUnit::new();
        mu.append_priority(me(0x1111, Some(1))); // does not match
        mu.append_overflow(MatchEntry {
            ignore_bits: !0,
            ..me(0, None)
        }); // wildcard
        let r = run_with(
            Some(PortalsSetup {
                matching: mu,
                match_bits: 0xCAFE,
            }),
            8192,
        );
        assert_eq!(r.path, MsgPath::Unexpected);
        assert_eq!(
            r.host_buf,
            msg(8192),
            "overflow buffer receives the packed bytes"
        );
        assert!(r.events.iter().any(|e| e.kind == EventKind::PutOverflow));
    }

    #[test]
    fn no_match_discards_the_message() {
        let mut mu = MatchingUnit::new();
        mu.append_priority(me(0x1111, Some(1)));
        let r = run_with(
            Some(PortalsSetup {
                matching: mu,
                match_bits: 0xCAFE,
            }),
            8192,
        );
        assert_eq!(r.path, MsgPath::Discarded);
        assert_eq!(r.dma_bytes, 0, "discarded messages move no data");
        assert!(r.host_buf.iter().all(|&b| b == 0));
        assert!(r.events.is_empty());
    }

    #[test]
    fn spin_path_faster_processing_visibility_than_unexpected_plus_unpack() {
        // The unexpected path only lands packed bytes; the MPI layer
        // still has to unpack on the host. The sPIN path delivers
        // unpacked data at completion time directly.
        let mut mu_spin = MatchingUnit::new();
        mu_spin.append_priority(me(7, Some(1)));
        let spin = run_with(
            Some(PortalsSetup {
                matching: mu_spin,
                match_bits: 7,
            }),
            65536,
        );
        let mut mu_over = MatchingUnit::new();
        mu_over.append_overflow(MatchEntry {
            ignore_bits: !0,
            ..me(0, None)
        });
        let over = run_with(
            Some(PortalsSetup {
                matching: mu_over,
                match_bits: 7,
            }),
            65536,
        );
        // Both deliver; the overflow landing itself is comparable, but it
        // represents *packed* data (host unpack still pending).
        assert_eq!(spin.path, MsgPath::Spin);
        assert_eq!(over.path, MsgPath::Unexpected);
        assert!(spin.t_complete > 0 && over.t_complete > 0);
    }
}
