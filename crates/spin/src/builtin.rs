//! Built-in message processors.
//!
//! [`ContigProcessor`] models the *non-processing* landing of a message:
//! each packet becomes one DMA write at its stream offset (contiguous
//! receive). It is both the RDMA staging step of the host-based unpack
//! baseline and a convenient test strategy.

use crate::handler::{
    DmaWrite, HandlerCost, HandlerOutput, MessageProcessor, PacketCtx, SchedPolicy,
};
use nca_sim::Time;

/// Contiguous landing: payload `p` at stream offset `o` is written to
/// host offset `base + o`. Handler cost is the minimal sPIN envelope.
pub struct ContigProcessor {
    /// Host offset of stream byte 0.
    pub base: i64,
    /// Fixed handler cost (defaults to the Fig. 2 minimal handler).
    pub handler_time: Time,
}

impl ContigProcessor {
    /// Create with the minimal-handler cost from `params`.
    pub fn new(base: i64, handler_time: Time) -> Self {
        ContigProcessor { base, handler_time }
    }
}

impl MessageProcessor for ContigProcessor {
    fn policy(&self) -> SchedPolicy {
        SchedPolicy::Default
    }

    fn nic_mem_bytes(&self) -> u64 {
        0
    }

    fn on_payload(&mut self, ctx: &mut PacketCtx<'_>) -> HandlerOutput {
        let host_off = self.base + ctx.stream_offset as i64;
        let w = match &mut ctx.direct {
            Some(d) => {
                // One whole-payload block: copy it now, length-only write.
                let start = (host_off - d.origin) as usize;
                let len = ctx.payload.len();
                d.buf[start..start + len].copy_from_slice(ctx.payload);
                DmaWrite::len_only(host_off, len as u64)
            }
            None => DmaWrite::data(host_off, ctx.payload.clone()),
        };
        HandlerOutput {
            cost: HandlerCost {
                init: self.handler_time,
                setup: 0,
                processing: 0,
            },
            dma: vec![w],
        }
    }

    fn name(&self) -> &'static str {
        "contig"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nic::{ReceiveSim, RunConfig};
    use crate::params::NicParams;

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn contiguous_receive_lands_bytes_correctly() {
        let msg = pattern(10_000);
        let params = NicParams::with_hpus(4);
        let proc = Box::new(ContigProcessor::new(0, params.spin_min_handler()));
        let cfg = RunConfig::new(params);
        let report = ReceiveSim::run(proc, msg.clone(), 0, 10_000, &cfg);
        assert_eq!(report.host_buf, msg);
        assert_eq!(report.npkt, 5);
        // 5 payload writes + 1 completion signal
        assert_eq!(report.dma_writes, 6);
        assert_eq!(report.dma_bytes, 10_000);
        assert!(report.t_complete > report.t_first_byte);
    }

    #[test]
    fn out_of_order_delivery_still_lands_correctly() {
        let msg = pattern(64 * 2048);
        let params = NicParams::with_hpus(8);
        let handler = params.spin_min_handler();
        for seed in [1u64, 7, 42] {
            let proc = Box::new(ContigProcessor::new(0, handler));
            let cfg = RunConfig {
                params: params.clone(),
                out_of_order: Some(seed),
                record_dma_history: false,
                portals: None,
                telemetry: nca_telemetry::Telemetry::disabled(),
                faults: nca_sim::FaultSpec::inert(),
                reliability: crate::params::ReliabilityParams::default(),
                engine: crate::nic::EngineMode::Auto,
            };
            let report = ReceiveSim::run(proc, msg.clone(), 0, msg.len() as u64, &cfg);
            assert_eq!(report.host_buf, msg, "seed {seed}");
        }
    }

    #[test]
    fn throughput_bounded_by_line_rate() {
        let msg = vec![7u8; 4 << 20];
        let params = NicParams::with_hpus(16);
        let proc = Box::new(ContigProcessor::new(0, params.spin_min_handler()));
        let report = ReceiveSim::run(
            proc,
            msg.clone(),
            0,
            msg.len() as u64,
            &RunConfig::new(params),
        );
        let tp = report.throughput_gbit();
        assert!(tp <= 200.0, "cannot beat line rate, got {tp}");
        assert!(
            tp > 150.0,
            "contiguous receive should be near line rate, got {tp}"
        );
    }

    #[test]
    fn single_hpu_serializes_handlers() {
        // With 1 HPU and a handler slower than the packet arrival rate,
        // total time is dominated by npkt * handler_time.
        let npkt = 32u64;
        let msg = vec![1u8; (npkt * 2048) as usize];
        let mut params = NicParams::with_hpus(1);
        params.hpus = 1;
        let slow = nca_sim::us(1);
        let proc = Box::new(ContigProcessor::new(0, slow));
        let report = ReceiveSim::run(
            proc,
            msg.clone(),
            0,
            msg.len() as u64,
            &RunConfig::new(params),
        );
        let t = report.processing_time();
        assert!(
            t >= npkt * slow,
            "1 HPU must serialize: {} < {}",
            t,
            npkt * slow
        );
        // With 16 HPUs the same run is much faster.
        let params16 = NicParams::with_hpus(16);
        let proc16 = Box::new(ContigProcessor::new(0, slow));
        let fast = ReceiveSim::run(
            proc16,
            msg.clone(),
            0,
            msg.len() as u64,
            &RunConfig::new(params16),
        );
        assert!(
            fast.processing_time() * 4 < t,
            "16 HPUs should be >4x faster"
        );
    }
}
