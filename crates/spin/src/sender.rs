//! Event-driven sender-side simulation (paper Sec. 3.1 / Fig. 4).
//!
//! The closed-form models in [`crate::outbound`] give quick estimates;
//! this module simulates the sender pipelines event by event, with real
//! gather (bytes actually assembled into the packed stream, verified by
//! tests against a reference pack):
//!
//! * **Pack + send** — the CPU walks the iovec copying each region into
//!   a staging buffer, then the NIC streams the staging buffer.
//! * **Streaming puts** — the CPU issues `PtlSPutStart`/`PtlSPutStream`
//!   per region; the NIC emits a packet whenever a payload's worth of
//!   regions is buffered, overlapping with the CPU walk.
//! * **Outbound sPIN** (`PtlProcessPut`) — the outbound engine creates
//!   one HER per would-be packet; gather handlers on the HPUs read the
//!   regions from host memory and inject the packet.

use std::collections::VecDeque;

use nca_ddt::flatten::Iovec;
use nca_sim::{Sim, Time, WireBuf};

use crate::params::NicParams;

/// Sender-side per-operation costs.
#[derive(Debug, Clone, Copy)]
pub struct SenderCosts {
    /// CPU: identify + memcpy one region into the staging buffer (pack).
    pub cpu_pack_per_region: Time,
    /// CPU: identify one region and issue a streaming-put call.
    pub cpu_stream_per_region: Time,
    /// CPU: per-byte staging copy cost (pack path).
    pub cpu_copy_per_byte_ps: f64,
    /// HPU: gather one region (outbound sPIN handler).
    pub nic_gather_per_region: Time,
}

impl Default for SenderCosts {
    fn default() -> Self {
        SenderCosts {
            cpu_pack_per_region: nca_sim::ns(60),
            cpu_stream_per_region: nca_sim::ns(40),
            cpu_copy_per_byte_ps: 100.0, // ~10 GB/s warm staging copy
            nic_gather_per_region: nca_sim::ns(25),
        }
    }
}

/// Outcome of one simulated send.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SendSimReport {
    /// Time the last byte left the NIC.
    pub inject_done: Time,
    /// Total CPU busy time.
    pub cpu_busy: Time,
    /// The packed stream as assembled on the wire (for verification).
    /// Shared from here on: receivers and retransmission paths view it,
    /// they never copy it.
    pub wire_bytes: WireBuf,
    /// Packets injected.
    pub packets: u64,
}

/// Gather the iovec regions of `src` into packed order (reference and
/// actual data movement of all three pipelines). This is the single
/// copy of the send path: the returned [`WireBuf`] is shared by wire
/// byte count, fault layer and receiver without further copies.
fn gather(iov: &Iovec, src: &[u8], origin: i64) -> WireBuf {
    let mut out = Vec::with_capacity(iov.total_bytes() as usize);
    for e in &iov.entries {
        let s = (e.offset - origin) as usize;
        out.extend_from_slice(&src[s..s + e.len as usize]);
    }
    out.into()
}

/// Pack + send: CPU packs everything, then the NIC streams.
pub fn simulate_pack_send(
    p: &NicParams,
    costs: &SenderCosts,
    iov: &Iovec,
    src: &[u8],
    origin: i64,
) -> SendSimReport {
    let packed = gather(iov, src, origin);
    let bytes = packed.len() as u64;
    let cpu = iov.entries.len() as u64 * costs.cpu_pack_per_region
        + (bytes as f64 * costs.cpu_copy_per_byte_ps).round() as Time;
    let npkt = bytes.div_ceil(p.payload_size).max(1);
    let wire = p.line_rate.time_for(bytes + npkt * p.pkt_header_bytes);
    SendSimReport {
        inject_done: cpu + wire,
        cpu_busy: cpu,
        wire_bytes: packed,
        packets: npkt,
    }
}

struct StreamWorld {
    params: NicParams,
    buffered: u64,
    emitted: u64,
    total: u64,
    link_free: Time,
    closed: bool,
    inject_done: Time,
    packets: u64,
}

impl StreamWorld {
    fn try_emit(&mut self, sim: &mut Sim<StreamWorld>) {
        loop {
            let remaining = self.total - self.emitted;
            let want = self.params.payload_size.min(remaining);
            if want == 0 {
                return;
            }
            let enough = self.buffered >= self.params.payload_size
                || (self.closed && self.buffered == remaining && remaining > 0);
            if !enough {
                return;
            }
            let len = want.min(self.buffered);
            let begin = self.link_free.max(sim.now());
            let end = begin + self.params.pkt_wire_time(len);
            self.link_free = end;
            self.buffered -= len;
            self.emitted += len;
            self.packets += 1;
            self.inject_done = end;
        }
    }
}

/// Streaming puts: the CPU feeds regions over time; the NIC overlaps
/// packet injection.
pub fn simulate_streaming_put(
    p: &NicParams,
    costs: &SenderCosts,
    iov: &Iovec,
    src: &[u8],
    origin: i64,
) -> SendSimReport {
    let packed = gather(iov, src, origin);
    let total = packed.len() as u64;
    let mut world = StreamWorld {
        params: p.clone(),
        buffered: 0,
        emitted: 0,
        total,
        link_free: 0,
        closed: false,
        inject_done: 0,
        packets: 0,
    };
    let mut sim: Sim<StreamWorld> = Sim::new();
    // CPU walk: one region identified every cpu_stream_per_region.
    let mut t: Time = 0;
    let n = iov.entries.len();
    for (i, e) in iov.entries.iter().enumerate() {
        t += costs.cpu_stream_per_region;
        let len = e.len;
        let last = i == n - 1;
        sim.schedule(t, move |w, s| {
            w.buffered += len;
            if last {
                w.closed = true;
            }
            w.try_emit(s);
        });
    }
    let cpu_busy = t;
    sim.run(&mut world);
    SendSimReport {
        inject_done: world.inject_done,
        cpu_busy,
        wire_bytes: packed,
        packets: world.packets,
    }
}

/// Outbound sPIN: `PtlProcessPut` generates one HER per packet; gather
/// handlers run on the HPUs and inject.
pub fn simulate_process_put(
    p: &NicParams,
    costs: &SenderCosts,
    iov: &Iovec,
    src: &[u8],
    origin: i64,
) -> SendSimReport {
    let packed = gather(iov, src, origin);
    let total = packed.len() as u64;
    let npkt = total.div_ceil(p.payload_size).max(1);

    // Regions per packet: walk the iovec against packet boundaries.
    let mut regions_per_pkt = vec![0u64; npkt as usize];
    let mut pos = 0u64;
    for e in &iov.entries {
        let first = pos / p.payload_size;
        let last = (pos + e.len - 1) / p.payload_size;
        for k in first..=last.min(npkt - 1) {
            regions_per_pkt[k as usize] += 1;
        }
        pos += e.len;
    }

    // HPU pool simulation: handlers gather packets in order; the link
    // serializes injections.
    let mut hpu_free: Vec<Time> = vec![0; p.hpus];
    let mut pending: VecDeque<usize> = (0..npkt as usize).collect();
    let mut link_free: Time = p.sched_dispatch; // control-plane command
    let mut inject_done: Time = 0;
    while let Some(k) = pending.pop_front() {
        // earliest-free HPU runs the gather handler for packet k
        let (idx, &free) = hpu_free
            .iter()
            .enumerate()
            .min_by_key(|&(_, &t)| t)
            .expect("at least one HPU");
        let start = free.max(p.sched_dispatch);
        let runtime = p.spin_min_handler() + regions_per_pkt[k] * costs.nic_gather_per_region;
        let done = start + runtime;
        hpu_free[idx] = done;
        let len = p.payload_size.min(total - k as u64 * p.payload_size);
        let begin = link_free.max(done);
        link_free = begin + p.pkt_wire_time(len);
        inject_done = link_free;
    }
    SendSimReport {
        inject_done,
        cpu_busy: p.sched_dispatch,
        wire_bytes: packed,
        packets: npkt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_ddt::flatten::flatten;
    use nca_ddt::pack::buffer_span;
    use nca_ddt::types::{elem, Datatype, DatatypeExt};

    fn setup(count: u32, blocklen: u32, stride: i64) -> (Iovec, Vec<u8>, i64, Vec<u8>) {
        let dt = Datatype::vector(count, blocklen, stride, &elem::double());
        let (origin, span) = buffer_span(&dt, 1);
        let src: Vec<u8> = (0..span as usize).map(|i| (i % 251) as u8).collect();
        let iov = flatten(&dt, 1);
        let reference = nca_ddt::pack::pack(&dt, 1, &src, origin).expect("packable");
        (iov, src, origin, reference)
    }

    #[test]
    fn all_pipelines_assemble_identical_wire_bytes() {
        let p = NicParams::default();
        let c = SenderCosts::default();
        let (iov, src, origin, reference) = setup(512, 16, 32);
        for r in [
            simulate_pack_send(&p, &c, &iov, &src, origin),
            simulate_streaming_put(&p, &c, &iov, &src, origin),
            simulate_process_put(&p, &c, &iov, &src, origin),
        ] {
            assert_eq!(r.wire_bytes, reference);
            assert_eq!(r.packets, reference.len().div_ceil(2048) as u64);
        }
    }

    #[test]
    fn streaming_beats_pack_and_spin_frees_cpu() {
        let p = NicParams::default();
        let c = SenderCosts::default();
        let (iov, src, origin, _) = setup(16384, 4, 8); // 512 KiB, 32 B regions
        let pack = simulate_pack_send(&p, &c, &iov, &src, origin);
        let stream = simulate_streaming_put(&p, &c, &iov, &src, origin);
        let spin = simulate_process_put(&p, &c, &iov, &src, origin);
        assert!(
            stream.inject_done < pack.inject_done,
            "{} vs {}",
            stream.inject_done,
            pack.inject_done
        );
        assert!(spin.cpu_busy * 1000 < pack.cpu_busy);
        assert!(spin.inject_done <= stream.inject_done);
    }

    #[test]
    fn streaming_put_overlap_bounded_by_slower_stage() {
        let p = NicParams::default();
        let c = SenderCosts::default();
        let (iov, src, origin, reference) = setup(2048, 256, 512); // 4 MiB, 2 KiB regions
        let r = simulate_streaming_put(&p, &c, &iov, &src, origin);
        let wire_floor = p.line_rate.time_for(reference.len() as u64);
        let cpu_floor = iov.entries.len() as u64 * c.cpu_stream_per_region;
        let floor = wire_floor.max(cpu_floor);
        assert!(
            r.inject_done >= floor,
            "pipeline cannot beat its slowest stage"
        );
        assert!(
            r.inject_done < floor + floor / 2 + nca_sim::us(10),
            "pipeline must overlap: {} vs floor {}",
            r.inject_done,
            floor
        );
    }

    #[test]
    fn process_put_scales_with_hpus() {
        let c = SenderCosts::default();
        let (iov, src, origin, _) = setup(16384, 16, 32); // tiny regions -> handler heavy
        let slow = simulate_process_put(&NicParams::with_hpus(2), &c, &iov, &src, origin);
        let fast = simulate_process_put(&NicParams::with_hpus(32), &c, &iov, &src, origin);
        assert!(fast.inject_done < slow.inject_done);
    }
}
