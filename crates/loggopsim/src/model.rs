//! LogGOPS network parameters.

use nca_sim::Time;

/// The LogGOPS parameter set (Hoefler, Schneider, Lumsdaine —
/// LogGOPSim), specialized to the next-generation network the paper
/// models: 200 Gbit/s links, ~745 ns wire latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogGopsParams {
    /// Wire latency (ps).
    pub l: Time,
    /// CPU overhead per message (send or receive posting), ps.
    pub o: Time,
    /// Inter-message gap at the NIC (ps).
    pub g: Time,
    /// Gap per byte (ps/B) — the inverse bandwidth.
    pub g_per_byte: u64,
}

impl Default for LogGopsParams {
    fn default() -> Self {
        LogGopsParams {
            l: nca_sim::ns(745),
            o: nca_sim::ns(255),
            g: nca_sim::ns(50),
            g_per_byte: 40, // 25 GB/s = 200 Gbit/s
        }
    }
}

impl LogGopsParams {
    /// Serialization time of a message of `bytes`.
    pub fn gap_time(&self, bytes: u64) -> Time {
        self.g + self.g_per_byte * bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rate_gap() {
        let p = LogGopsParams::default();
        // 1 MiB at 25 GB/s ≈ 41.9 µs
        let t = p.gap_time(1 << 20) - p.g;
        assert_eq!(t, (1u64 << 20) * 40);
    }
}
