//! GOAL-style schedules and their deterministic simulation.
//!
//! A [`Schedule`] holds one operation list per rank; operations execute
//! sequentially within a rank (GOAL dependencies degenerate to program
//! order for the traces we generate, which is exactly how the FFT2D
//! trace of the paper is structured). The simulator advances ranks in
//! a fixpoint loop: a rank blocks on `Recv` until the matching message's
//! arrival time is known, which requires the sender to have progressed.

use std::collections::HashMap;

use nca_sim::Time;

use crate::model::LogGopsParams;

/// One operation in a rank's program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Local computation of the given duration.
    Calc(Time),
    /// Send `bytes` to `to` with `tag`.
    Send {
        /// Destination rank.
        to: u32,
        /// Message size.
        bytes: u64,
        /// Match tag.
        tag: u32,
    },
    /// Receive from `from` with `tag`; `unpack` is charged after arrival
    /// (the datatype-processing cost — zero when offloaded processing
    /// fully overlaps the transfer).
    Recv {
        /// Source rank.
        from: u32,
        /// Match tag.
        tag: u32,
        /// Post-arrival unpack cost.
        unpack: Time,
    },
}

/// Per-rank operation lists.
#[derive(Debug, Clone, Default)]
pub struct Schedule {
    /// `ops[rank]` = that rank's program.
    pub ops: Vec<Vec<Op>>,
}

impl Schedule {
    /// Create a schedule for `ranks` ranks.
    pub fn new(ranks: u32) -> Self {
        Schedule {
            ops: vec![Vec::new(); ranks as usize],
        }
    }

    /// Append an op to a rank's program.
    pub fn push(&mut self, rank: u32, op: Op) {
        self.ops[rank as usize].push(op);
    }
}

/// Outcome of a simulation run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// Per-rank completion times.
    pub finish: Vec<Time>,
    /// Makespan (max finish time).
    pub makespan: Time,
    /// Total messages delivered.
    pub messages: u64,
}

/// Simulate a schedule under LogGOPS. Panics on deadlock (a receive
/// whose sender can never progress), which for generated traces is a
/// trace-generator bug.
pub fn simulate(p: &LogGopsParams, sched: &Schedule) -> SimOutcome {
    let n = sched.ops.len();
    let mut pc = vec![0usize; n];
    let mut time: Vec<Time> = vec![0; n];
    // NIC injection availability per rank (gap g/G enforcement).
    let mut nic_free: Vec<Time> = vec![0; n];
    // (dst, src, tag) → arrival times in send order.
    let mut arrivals: HashMap<(u32, u32, u32), std::collections::VecDeque<Time>> = HashMap::new();
    let mut messages = 0u64;

    loop {
        let mut progress = false;
        for r in 0..n {
            while pc[r] < sched.ops[r].len() {
                match sched.ops[r][pc[r]] {
                    Op::Calc(d) => {
                        time[r] += d;
                    }
                    Op::Send { to, bytes, tag } => {
                        // CPU overhead o, then the NIC serializes after g/G.
                        let cpu_done = time[r] + p.o;
                        let inject_start = cpu_done.max(nic_free[r]);
                        let inject_end = inject_start + p.gap_time(bytes);
                        nic_free[r] = inject_end;
                        time[r] = cpu_done; // CPU free after o (NIC offloads)
                        let arrival = inject_end + p.l;
                        arrivals
                            .entry((to, r as u32, tag))
                            .or_default()
                            .push_back(arrival);
                        messages += 1;
                    }
                    Op::Recv { from, tag, unpack } => {
                        let key = (r as u32, from, tag);
                        match arrivals.get_mut(&key).and_then(|q| q.pop_front()) {
                            Some(arrival) => {
                                time[r] = time[r].max(arrival) + p.o + unpack;
                            }
                            None => break, // blocked: retry next pass
                        }
                    }
                }
                pc[r] += 1;
                progress = true;
            }
        }
        if pc.iter().enumerate().all(|(r, &c)| c == sched.ops[r].len()) {
            break;
        }
        assert!(progress, "deadlock in GOAL schedule");
    }
    let makespan = *time.iter().max().expect("nonempty schedule");
    SimOutcome {
        finish: time,
        makespan,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> LogGopsParams {
        LogGopsParams::default()
    }

    #[test]
    fn calc_only_is_sum() {
        let mut s = Schedule::new(1);
        s.push(0, Op::Calc(100));
        s.push(0, Op::Calc(250));
        let out = simulate(&p(), &s);
        assert_eq!(out.makespan, 350);
    }

    #[test]
    fn ping_latency_formula() {
        let mut s = Schedule::new(2);
        s.push(
            0,
            Op::Send {
                to: 1,
                bytes: 8,
                tag: 0,
            },
        );
        s.push(
            1,
            Op::Recv {
                from: 0,
                tag: 0,
                unpack: 0,
            },
        );
        let out = simulate(&p(), &s);
        let pp = p();
        // o + gap(8) + L + o
        let expect = pp.o + pp.gap_time(8) + pp.l + pp.o;
        assert_eq!(out.finish[1], expect);
        assert_eq!(out.messages, 1);
    }

    #[test]
    fn unpack_cost_delays_receiver_only() {
        let mut a = Schedule::new(2);
        a.push(
            0,
            Op::Send {
                to: 1,
                bytes: 1 << 20,
                tag: 0,
            },
        );
        a.push(
            1,
            Op::Recv {
                from: 0,
                tag: 0,
                unpack: 0,
            },
        );
        let mut b = a.clone();
        b.ops[1][0] = Op::Recv {
            from: 0,
            tag: 0,
            unpack: nca_sim::us(500),
        };
        let oa = simulate(&p(), &a);
        let ob = simulate(&p(), &b);
        assert_eq!(ob.finish[1] - oa.finish[1], nca_sim::us(500));
        assert_eq!(ob.finish[0], oa.finish[0]);
    }

    #[test]
    fn sends_serialize_at_the_nic() {
        let mut s = Schedule::new(3);
        s.push(
            0,
            Op::Send {
                to: 1,
                bytes: 1 << 20,
                tag: 0,
            },
        );
        s.push(
            0,
            Op::Send {
                to: 2,
                bytes: 1 << 20,
                tag: 0,
            },
        );
        s.push(
            1,
            Op::Recv {
                from: 0,
                tag: 0,
                unpack: 0,
            },
        );
        s.push(
            2,
            Op::Recv {
                from: 0,
                tag: 0,
                unpack: 0,
            },
        );
        let out = simulate(&p(), &s);
        // Second message arrives one full gap after the first.
        let gap = p().gap_time(1 << 20);
        assert!(out.finish[2] >= out.finish[1] + gap - p().o);
    }

    #[test]
    fn out_of_order_posted_recvs_match_by_tag() {
        let mut s = Schedule::new(2);
        s.push(
            0,
            Op::Send {
                to: 1,
                bytes: 64,
                tag: 7,
            },
        );
        s.push(
            0,
            Op::Send {
                to: 1,
                bytes: 64,
                tag: 9,
            },
        );
        s.push(
            1,
            Op::Recv {
                from: 0,
                tag: 9,
                unpack: 0,
            },
        );
        s.push(
            1,
            Op::Recv {
                from: 0,
                tag: 7,
                unpack: 0,
            },
        );
        let out = simulate(&p(), &s);
        assert_eq!(out.messages, 2);
        assert!(out.makespan > 0);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_detected() {
        let mut s = Schedule::new(2);
        s.push(
            0,
            Op::Recv {
                from: 1,
                tag: 0,
                unpack: 0,
            },
        );
        s.push(
            1,
            Op::Recv {
                from: 0,
                tag: 0,
                unpack: 0,
            },
        );
        simulate(&p(), &s);
    }
}
