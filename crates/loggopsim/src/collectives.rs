//! Collective-operation schedule generators (GOAL-style), in the spirit
//! of the LogGOPSim tool chain the paper uses: the FFT2D trace is an
//! alltoall; these generators let the simulator express the other
//! patterns HPC applications build on, and give the tests independent
//! latency formulas to validate the simulator against.

use nca_sim::Time;

use crate::goal::{Op, Schedule};

/// Append a linear (spread) alltoall: every rank sends to every other,
/// staggered to avoid hot-spotting; `unpack` is charged per receive.
pub fn alltoall_linear(sched: &mut Schedule, ranks: u32, bytes: u64, tag: u32, unpack: Time) {
    for r in 0..ranks {
        for off in 1..ranks {
            let q = (r + off) % ranks;
            sched.push(r, Op::Send { to: q, bytes, tag });
        }
        for off in 1..ranks {
            let q = (r + ranks - off) % ranks;
            sched.push(
                r,
                Op::Recv {
                    from: q,
                    tag,
                    unpack,
                },
            );
        }
    }
}

/// Append a pairwise-exchange alltoall (P−1 rounds of disjoint pairs via
/// XOR partner for power-of-two P): bounded buffer pressure, synchronous
/// rounds.
pub fn alltoall_pairwise(
    sched: &mut Schedule,
    ranks: u32,
    bytes: u64,
    base_tag: u32,
    unpack: Time,
) {
    assert!(
        ranks.is_power_of_two(),
        "pairwise exchange needs power-of-two ranks"
    );
    for round in 1..ranks {
        for r in 0..ranks {
            let partner = r ^ round;
            sched.push(
                r,
                Op::Send {
                    to: partner,
                    bytes,
                    tag: base_tag + round,
                },
            );
            sched.push(
                r,
                Op::Recv {
                    from: partner,
                    tag: base_tag + round,
                    unpack,
                },
            );
        }
    }
}

/// Append a binomial-tree broadcast from rank 0.
pub fn bcast_binomial(sched: &mut Schedule, ranks: u32, bytes: u64, tag: u32) {
    // Round k: ranks < 2^k that have the data send to r + 2^k.
    let mut step = 1u32;
    while step < ranks {
        for r in 0..step.min(ranks) {
            let dst = r + step;
            if dst < ranks {
                sched.push(
                    r,
                    Op::Send {
                        to: dst,
                        bytes,
                        tag: tag + step,
                    },
                );
                sched.push(
                    dst,
                    Op::Recv {
                        from: r,
                        tag: tag + step,
                        unpack: 0,
                    },
                );
            }
        }
        step *= 2;
    }
}

/// Append a ring allreduce (2·(P−1) steps of `bytes / P` chunks, the
/// bandwidth-optimal schedule); `compute` is the per-chunk reduction
/// cost charged at each receive of the reduce-scatter phase.
pub fn allreduce_ring(sched: &mut Schedule, ranks: u32, bytes: u64, tag: u32, compute: Time) {
    if ranks < 2 {
        return;
    }
    let chunk = bytes.div_ceil(ranks as u64).max(1);
    // reduce-scatter: P-1 rounds
    for round in 0..ranks - 1 {
        for r in 0..ranks {
            let next = (r + 1) % ranks;
            let prev = (r + ranks - 1) % ranks;
            sched.push(
                r,
                Op::Send {
                    to: next,
                    bytes: chunk,
                    tag: tag + round,
                },
            );
            sched.push(
                r,
                Op::Recv {
                    from: prev,
                    tag: tag + round,
                    unpack: compute,
                },
            );
        }
    }
    // allgather: P-1 rounds
    for round in 0..ranks - 1 {
        for r in 0..ranks {
            let next = (r + 1) % ranks;
            let prev = (r + ranks - 1) % ranks;
            sched.push(
                r,
                Op::Send {
                    to: next,
                    bytes: chunk,
                    tag: tag + 1000 + round,
                },
            );
            sched.push(
                r,
                Op::Recv {
                    from: prev,
                    tag: tag + 1000 + round,
                    unpack: 0,
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::simulate;
    use crate::model::LogGopsParams;

    fn p() -> LogGopsParams {
        LogGopsParams::default()
    }

    #[test]
    fn linear_alltoall_message_count() {
        let ranks = 8u32;
        let mut s = Schedule::new(ranks);
        alltoall_linear(&mut s, ranks, 4096, 0, 0);
        let out = simulate(&p(), &s);
        assert_eq!(out.messages, u64::from(ranks) * u64::from(ranks - 1));
    }

    #[test]
    fn pairwise_equals_linear_volume_but_bounded_rounds() {
        let ranks = 8u32;
        let mut a = Schedule::new(ranks);
        alltoall_linear(&mut a, ranks, 16384, 0, 0);
        let mut b = Schedule::new(ranks);
        alltoall_pairwise(&mut b, ranks, 16384, 0, 0);
        let oa = simulate(&p(), &a);
        let ob = simulate(&p(), &b);
        assert_eq!(oa.messages, ob.messages);
        // pairwise adds synchronization: never faster than ~linear/2,
        // never slower than ~3x (sanity envelope).
        assert!(ob.makespan * 2 >= oa.makespan);
        assert!(ob.makespan <= oa.makespan * 3);
    }

    #[test]
    fn bcast_binomial_is_logarithmic() {
        let pp = p();
        let bytes = 1u64 << 20;
        let mut t_prev = 0;
        for ranks in [2u32, 4, 16, 64] {
            let mut s = Schedule::new(ranks);
            bcast_binomial(&mut s, ranks, bytes, 0);
            let out = simulate(&pp, &s);
            assert_eq!(out.messages, u64::from(ranks) - 1);
            // makespan grows ~log2(P) * per-hop time
            assert!(out.makespan >= t_prev, "monotone in P");
            t_prev = out.makespan;
        }
        // 64 ranks = 6 rounds: makespan must be far below linear send
        let mut lin = Schedule::new(64);
        for dst in 1..64u32 {
            lin.push(
                0,
                Op::Send {
                    to: dst,
                    bytes,
                    tag: dst,
                },
            );
            lin.push(
                dst,
                Op::Recv {
                    from: 0,
                    tag: dst,
                    unpack: 0,
                },
            );
        }
        let linear = simulate(&pp, &lin).makespan;
        assert!(t_prev < linear / 4, "binomial {t_prev} vs linear {linear}");
    }

    #[test]
    fn ring_allreduce_bandwidth_term() {
        let pp = p();
        let ranks = 8u32;
        let bytes = 8u64 << 20;
        let mut s = Schedule::new(ranks);
        allreduce_ring(&mut s, ranks, bytes, 0, 0);
        let out = simulate(&pp, &s);
        // Bandwidth-optimal: ~2*(P-1)/P * bytes per link.
        let ideal = 2 * (ranks as u64 - 1) * bytes.div_ceil(ranks as u64) * pp.g_per_byte;
        assert!(out.makespan >= ideal, "cannot beat the bandwidth bound");
        assert!(out.makespan < ideal * 2, "ring should be near the bound");
        assert_eq!(out.messages, 2 * u64::from(ranks) * u64::from(ranks - 1));
    }

    #[test]
    fn unpack_cost_scales_alltoall_makespan() {
        let ranks = 8u32;
        let mut cheap = Schedule::new(ranks);
        alltoall_linear(&mut cheap, ranks, 65536, 0, 0);
        let mut costly = Schedule::new(ranks);
        alltoall_linear(&mut costly, ranks, 65536, 0, nca_sim::us(100));
        let a = simulate(&p(), &cheap).makespan;
        let b = simulate(&p(), &costly).makespan;
        // Unpack serializes on the receiver; part of it overlaps the
        // arrival waits the cheap run spends idle, so expect at least
        // 5 of the 7 unpacks to show up in the makespan.
        assert!(
            b >= a + 5 * nca_sim::us(100),
            "unpack must serialize on receives: {a} -> {b}"
        );
    }
}
