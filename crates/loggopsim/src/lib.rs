//! # nca-loggopsim — a LogGOPS application-scale simulator
//!
//! The paper evaluates FFT2D strong scaling (Fig. 19) by generating a
//! GOAL trace and running it in LogGOPSim configured for next-generation
//! networks, with per-message unpack costs taken from the NIC-level
//! simulation. This crate reimplements that methodology:
//!
//! * [`model`] — the LogGOPS parameter set (L, o, g, G; O and S are not
//!   exercised by the zero-copy FFT trace).
//! * [`goal`] — GOAL-style per-rank operation schedules (send / recv /
//!   calc with sequential dependencies) and a deterministic fixpoint
//!   simulator over them.
//! * [`fft2d`] — the FFT2D trace generator (1D-FFT compute, alltoall
//!   transpose encoded as MPI datatypes, unpack on recv) and the
//!   strong-scaling experiment of Fig. 19.

pub mod collectives;
pub mod fft2d;
pub mod goal;
pub mod model;

pub use fft2d::{fft2d_runtime, Fft2dConfig, Fft2dResult};
pub use goal::{simulate, Op, Schedule};
pub use model::LogGopsParams;
