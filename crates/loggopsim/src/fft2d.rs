//! FFT2D strong scaling (paper Sec. 5.4, Fig. 19).
//!
//! The application partitions an n×n complex matrix by rows over P
//! ranks, runs row-wise 1D FFTs, transposes via `MPI_Alltoall` with the
//! transpose encoded as MPI datatypes (Hoefler & Gottlieb), runs the
//! second FFT pass, and transposes back. The receive datatype from each
//! peer is a `vector(n/P, n/P, n)` of complex doubles; its unpack cost
//! is either paid by the host CPU (baseline) or hidden in the NIC by
//! RW-CP (only the pipeline-drain residual remains).

use nca_core::costmodel::{HandlerCycles, HostCostModel};
use nca_core::heuristic::select_checkpoint_interval;
use nca_sim::Time;
use nca_spin::params::NicParams;

use crate::goal::{simulate, Op, Schedule};
use crate::model::LogGopsParams;

/// Configuration of the strong-scaling experiment.
#[derive(Debug, Clone)]
pub struct Fft2dConfig {
    /// Matrix dimension (the paper uses n = 20480).
    pub n: u64,
    /// Per-rank sustained FFT compute rate in Gflop/s.
    pub flop_rate_gflops: f64,
    /// Network parameters.
    pub net: LogGopsParams,
    /// NIC parameters (for the RW-CP processing model).
    pub nic: NicParams,
}

impl Default for Fft2dConfig {
    fn default() -> Self {
        Fft2dConfig {
            n: 20480,
            flop_rate_gflops: 4.0,
            net: LogGopsParams::default(),
            nic: NicParams::default(),
        }
    }
}

/// Result for one (P, unpack-mode) point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fft2dResult {
    /// Ranks.
    pub ranks: u32,
    /// Application makespan (ps).
    pub runtime: Time,
    /// Messages exchanged.
    pub messages: u64,
    /// Per-message unpack cost charged at each receive (ps).
    pub unpack_per_msg: Time,
}

/// Flops of one radix-2-style 1D FFT of length n (5·n·log₂ n).
fn fft_flops(n: u64) -> f64 {
    5.0 * n as f64 * (n as f64).log2()
}

/// Per-message RW-CP residual: the message-processing-time model of
/// Sec. 3.2.4 (T_pkt fill + blocked-RR scheduling dependency + handler
/// drain), minus the wire time that the LogGOPS transfer already
/// accounts for.
fn rwcp_residual(nic: &NicParams, msg_bytes: u64, blocks: u64) -> Time {
    let cyc = HandlerCycles::default();
    let k = nic.payload_size;
    let npkt = msg_bytes.div_ceil(k).max(1);
    let gamma = (blocks as f64 / npkt as f64).max(1.0).ceil() as u64;
    let t_ph = nic.cycles(cyc.init + cyc.setup + gamma * cyc.block_general);
    let plan = select_checkpoint_interval(nic, msg_bytes, t_ph, 0.2);
    let p = nic.hpus as u64;
    let t_pkt = nic.t_pkt();
    // HPU-saturation fill: one new vHPU becomes schedulable every Δp
    // packets; it cannot exceed the message's own packet count.
    let fill = (plan.delta_p * (p - 1)).min(npkt.saturating_sub(1));
    let tc = t_pkt + fill * t_pkt + npkt.div_ceil(p) * t_ph;
    let wire = npkt * t_pkt;
    tc.saturating_sub(wire.min(tc)) + nic.pcie_latency
}

/// Host unpack cost of one peer's message (cold caches — each message
/// was just DMA'd from the NIC, and the alltoall working set far
/// exceeds the LLC).
fn host_unpack_per_msg(n: u64, ranks: u32) -> Time {
    let rows = n / ranks as u64;
    let bytes = rows * rows * 16;
    HostCostModel::default().unpack_time(bytes, rows)
}

/// Build and simulate the FFT2D trace for `ranks` ranks;
/// `offloaded = true` uses RW-CP NIC unpacking, else host unpack.
pub fn fft2d_runtime(cfg: &Fft2dConfig, ranks: u32, offloaded: bool) -> Fft2dResult {
    let n = cfg.n;
    let rows = n / ranks as u64;
    let msg_bytes = rows * rows * 16; // complex f64
    let unpack = if offloaded {
        rwcp_residual(&cfg.nic, msg_bytes, rows)
    } else {
        host_unpack_per_msg(n, ranks)
    };
    let fft_phase =
        (rows as f64 * fft_flops(n) / cfg.flop_rate_gflops / 1e9 * 1e12).round() as Time;

    let mut sched = Schedule::new(ranks);
    for phase in 0..2u32 {
        for r in 0..ranks {
            sched.push(r, Op::Calc(fft_phase));
            for off in 1..ranks {
                let q = (r + off) % ranks;
                sched.push(
                    r,
                    Op::Send {
                        to: q,
                        bytes: msg_bytes,
                        tag: phase,
                    },
                );
            }
            for off in 1..ranks {
                let q = (r + ranks - off) % ranks;
                sched.push(
                    r,
                    Op::Recv {
                        from: q,
                        tag: phase,
                        unpack,
                    },
                );
            }
        }
    }
    let out = simulate(&cfg.net, &sched);
    Fft2dResult {
        ranks,
        runtime: out.makespan,
        messages: out.messages,
        unpack_per_msg: unpack,
    }
}

/// The Fig. 19 sweep: runtimes and speedups for P ∈ {64…1024}.
pub fn strong_scaling(cfg: &Fft2dConfig, ps: &[u32]) -> Vec<(u32, Fft2dResult, Fft2dResult, f64)> {
    ps.iter()
        .map(|&p| {
            let host = fft2d_runtime(cfg, p, false);
            let rwcp = fft2d_runtime(cfg, p, true);
            let speedup = (host.runtime as f64 / rwcp.runtime as f64 - 1.0) * 100.0;
            (p, host, rwcp, speedup)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Fft2dConfig {
        Fft2dConfig {
            n: 4096,
            ..Default::default()
        }
    }

    #[test]
    fn offload_is_never_slower() {
        let cfg = small();
        for p in [8u32, 16, 32] {
            let host = fft2d_runtime(&cfg, p, false);
            let rwcp = fft2d_runtime(&cfg, p, true);
            assert!(rwcp.runtime <= host.runtime, "P={p}");
            assert_eq!(host.messages, u64::from(p) * u64::from(p - 1) * 2);
        }
    }

    #[test]
    fn speedup_shrinks_with_scale() {
        // Fig. 19: the unpack share (and thus the offload benefit)
        // shrinks as P grows.
        // The decline comes from the per-message RW-CP residual floor
        // (pipeline drain + PCIe latency), which stops mattering only
        // when messages are large — so compare a wide P range.
        let cfg = small();
        let sweep = strong_scaling(&cfg, &[8, 64, 256]);
        let speedups: Vec<f64> = sweep.iter().map(|&(_, _, _, s)| s).collect();
        assert!(speedups[0] > speedups[2], "{speedups:?}");
    }

    #[test]
    fn runtime_strong_scales() {
        let cfg = small();
        let r8 = fft2d_runtime(&cfg, 8, false).runtime;
        let r32 = fft2d_runtime(&cfg, 32, false).runtime;
        assert!(r32 < r8, "more ranks must be faster");
    }

    #[test]
    fn paper_scale_speedup_band() {
        // The paper reports up to ~26% at P = 64 for n = 20480. Running
        // the full trace at P=64 is cheap (64·63·2 messages).
        let cfg = Fft2dConfig::default();
        let host = fft2d_runtime(&cfg, 64, false);
        let rwcp = fft2d_runtime(&cfg, 64, true);
        let speedup = (host.runtime as f64 / rwcp.runtime as f64 - 1.0) * 100.0;
        assert!(
            (15.0..=40.0).contains(&speedup),
            "P=64 speedup {speedup}% (paper ≈26%)"
        );
        // Runtime magnitude: hundreds of ms.
        let ms = host.runtime as f64 / 1e9;
        assert!((150.0..=700.0).contains(&ms), "host runtime {ms} ms");
    }
}
