//! A small multi-level cache hierarchy (L1 → L2 → LLC → DRAM).
//!
//! The Fig. 17 traffic accounting only needs the LLC, but the host
//! unpack *time* model's hot/cold split is grounded in where the
//! working set lives; this hierarchy lets tests validate that grounding
//! (inclusive levels, misses propagate downward, DRAM traffic equals
//! the last level's miss traffic).

use crate::cache::{Cache, CacheConfig};

/// An inclusive multi-level hierarchy.
#[derive(Debug)]
pub struct Hierarchy {
    levels: Vec<Cache>,
}

/// Per-level hit counts of one hierarchy access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyHit {
    /// Index of the level that hit (0 = L1); `levels.len()` = DRAM.
    pub level: usize,
}

impl Hierarchy {
    /// The paper's host machine (i7-4770): 32 KiB L1d (8-way), 256 KiB
    /// L2 (8-way), 8 MiB LLC (16-way), 64 B lines.
    pub fn i7_4770() -> Hierarchy {
        Hierarchy::new(vec![
            CacheConfig {
                capacity: 32 << 10,
                line_size: 64,
                ways: 8,
            },
            CacheConfig {
                capacity: 256 << 10,
                line_size: 64,
                ways: 8,
            },
            CacheConfig::i7_4770_llc(),
        ])
    }

    /// Build from per-level configs (L1 first).
    pub fn new(configs: Vec<CacheConfig>) -> Hierarchy {
        assert!(!configs.is_empty(), "need at least one level");
        Hierarchy {
            levels: configs.into_iter().map(Cache::new).collect(),
        }
    }

    /// Number of cache levels.
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Access an address; the fill propagates into every level above the
    /// hit (inclusive). Returns which level satisfied the access.
    pub fn access(&mut self, addr: u64, write: bool) -> HierarchyHit {
        for (i, level) in self.levels.iter_mut().enumerate() {
            if level.access(addr, write) {
                return HierarchyHit { level: i };
            }
        }
        HierarchyHit {
            level: self.levels.len(),
        }
    }

    /// Access a byte range at line granularity.
    pub fn access_range(&mut self, addr: u64, len: u64, write: bool) {
        if len == 0 {
            return;
        }
        let line = self.levels[0].config().line_size;
        let first = addr / line;
        let last = (addr + len - 1) / line;
        for l in first..=last {
            self.access(l * line, write);
        }
    }

    /// Statistics for one level.
    pub fn level_stats(&self, level: usize) -> crate::cache::CacheStats {
        self.levels[level].stats
    }

    /// DRAM traffic = last level's miss+writeback volume (after
    /// flushing resident dirty lines).
    pub fn dram_traffic_bytes(&mut self) -> u64 {
        let last = self.levels.len() - 1;
        self.levels[last].flush();
        let line = self.levels[last].config().line_size;
        self.levels[last].stats.dram_traffic_bytes(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(vec![
            CacheConfig {
                capacity: 512,
                line_size: 64,
                ways: 2,
            },
            CacheConfig {
                capacity: 2048,
                line_size: 64,
                ways: 4,
            },
        ])
    }

    #[test]
    fn l1_hit_after_fill() {
        let mut h = tiny();
        assert_eq!(h.access(0, false).level, 2, "cold: DRAM");
        assert_eq!(h.access(0, false).level, 0, "warm: L1");
    }

    #[test]
    fn l1_eviction_falls_back_to_l2() {
        let mut h = tiny();
        // Fill far beyond L1 (512 B) but within L2 (2 KiB).
        for i in 0..32u64 {
            h.access(i * 64, false);
        }
        // Address 0 was evicted from L1 but must still be in L2.
        let hit = h.access(0, false);
        assert_eq!(hit.level, 1, "expected L2 hit, got {hit:?}");
    }

    #[test]
    fn working_set_larger_than_all_levels_misses_to_dram() {
        let mut h = tiny();
        for round in 0..2 {
            for i in 0..64u64 {
                let hit = h.access(i * 64, false);
                if round == 0 {
                    assert_eq!(hit.level, 2);
                }
            }
        }
        // 4 KiB working set, 2 KiB L2: second round still misses mostly.
        let l2 = h.level_stats(1);
        assert!(l2.misses > 64, "L2 must keep missing: {:?}", l2);
    }

    #[test]
    fn i7_shape() {
        let h = Hierarchy::i7_4770();
        assert_eq!(h.depth(), 3);
    }

    #[test]
    fn dram_traffic_counts_last_level_only() {
        let mut h = tiny();
        h.access_range(0, 4096, true);
        let dram = h.dram_traffic_bytes();
        // 64 lines fetched + dirty writebacks (all 4 KiB written).
        assert!(dram >= 4096 * 2, "fetch + writeback, got {dram}");
    }

    #[test]
    fn small_working_set_stops_touching_dram() {
        let mut h = Hierarchy::i7_4770();
        // 16 KiB fits in L1+L2: repeated unpack rounds hit caches.
        for _ in 0..4 {
            h.access_range(0, 16 << 10, true);
        }
        let llc = h.level_stats(2);
        // Only the first round's 256 lines missed to DRAM.
        assert_eq!(llc.misses, 256);
    }
}
