//! # nca-memsim — host memory-hierarchy simulation
//!
//! The paper's Fig. 17 compares the **data volume moved to/from main
//! memory** by NIC-offloaded unpacking (exactly the message size) against
//! host-based unpacking (message size + all last-level-cache miss traffic
//! incurred while the CPU unpacks). Reproducing that requires an actual
//! LLC model: this crate provides a set-associative write-back
//! write-allocate cache ([`cache::Cache`]) and an unpack access-pattern
//! replayer ([`traffic::unpack_traffic`]) that measures the DRAM traffic
//! of a cold-cache `MPIT_Type_memcpy`-style unpack.

pub mod cache;
pub mod hierarchy;
pub mod traffic;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use hierarchy::Hierarchy;
pub use traffic::{unpack_traffic, TrafficReport};
