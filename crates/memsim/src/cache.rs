//! Set-associative, write-back, write-allocate cache with true-LRU
//! replacement — modelled after the last-level cache of the paper's host
//! baseline machine (i7-4770: 8 MiB, 16-way, 64 B lines).

/// Cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity: u64,
    /// Line size in bytes (power of two).
    pub line_size: u64,
    /// Associativity (ways per set).
    pub ways: u32,
}

impl CacheConfig {
    /// The paper's host LLC: Intel i7-4770, 8 MiB, 16-way, 64 B lines.
    pub fn i7_4770_llc() -> CacheConfig {
        CacheConfig {
            capacity: 8 << 20,
            line_size: 64,
            ways: 16,
        }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.capacity / (self.line_size * self.ways as u64)
    }
}

/// Access counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses (line granularity).
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Misses (each fetches one line from DRAM).
    pub misses: u64,
    /// Dirty evictions (each writes one line back to DRAM).
    pub writebacks: u64,
}

impl CacheStats {
    /// Bytes exchanged with DRAM: line fills + dirty writebacks.
    pub fn dram_traffic_bytes(&self, line_size: u64) -> u64 {
        (self.misses + self.writebacks) * line_size
    }

    /// Miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// LRU timestamp (monotone counter).
    used: u64,
}

/// The cache model. Addresses are plain `u64` byte addresses.
#[derive(Debug)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Line>>,
    clock: u64,
    /// Running statistics.
    pub stats: CacheStats,
}

impl Cache {
    /// Create an empty (cold) cache.
    pub fn new(cfg: CacheConfig) -> Cache {
        assert!(
            cfg.line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        let nsets = cfg.sets();
        assert!(nsets > 0, "config yields zero sets");
        let empty = Line {
            tag: 0,
            valid: false,
            dirty: false,
            used: 0,
        };
        Cache {
            cfg,
            sets: (0..nsets).map(|_| vec![empty; cfg.ways as usize]).collect(),
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The configured geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Access one byte address; `write` marks the line dirty.
    /// Returns `true` on hit. Write misses allocate (write-allocate), so
    /// they fetch the line first (the RFO read the paper's traffic model
    /// implies).
    pub fn access(&mut self, addr: u64, write: bool) -> bool {
        self.clock += 1;
        self.stats.accesses += 1;
        let line_addr = addr / self.cfg.line_size;
        let set_idx = (line_addr % self.sets.len() as u64) as usize;
        let tag = line_addr / self.sets.len() as u64;
        let set = &mut self.sets[set_idx];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.used = self.clock;
            line.dirty |= write;
            self.stats.hits += 1;
            return true;
        }
        self.stats.misses += 1;
        // Choose the victim: an invalid way, else true LRU.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.used + 1 } else { 0 })
            .expect("nonzero ways");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            used: self.clock,
        };
        false
    }

    /// Access every line of the byte range `[addr, addr+len)` once.
    pub fn access_range(&mut self, addr: u64, len: u64, write: bool) {
        if len == 0 {
            return;
        }
        let first = addr / self.cfg.line_size;
        let last = (addr + len - 1) / self.cfg.line_size;
        for line in first..=last {
            self.access(line * self.cfg.line_size, write);
        }
    }

    /// Flush: write back all dirty lines (counted as writebacks) and
    /// invalidate everything. Models the end-of-run drain so that the
    /// total DRAM write volume includes resident dirty data.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for line in set {
                if line.valid && line.dirty {
                    self.stats.writebacks += 1;
                }
                line.valid = false;
                line.dirty = false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets x 2 ways x 64B lines = 512 B
        Cache::new(CacheConfig {
            capacity: 512,
            line_size: 64,
            ways: 2,
        })
    }

    #[test]
    fn geometry() {
        let c = CacheConfig::i7_4770_llc();
        assert_eq!(c.sets(), 8192);
    }

    #[test]
    fn hit_after_miss() {
        let mut c = tiny();
        assert!(!c.access(0, false));
        assert!(c.access(63, false)); // same line
        assert!(!c.access(64, false)); // next line
        assert_eq!(c.stats.misses, 2);
        assert_eq!(c.stats.hits, 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // set 0 holds lines with line_addr % 4 == 0: addresses 0, 256, 512...
        c.access(0, false); // A
        c.access(256, false); // B (set full)
        c.access(0, false); // touch A
        c.access(512, false); // C evicts B (LRU)
        assert!(c.access(0, false), "A must still be resident");
        assert!(!c.access(256, false), "B must have been evicted");
    }

    #[test]
    fn dirty_eviction_counts_writeback() {
        let mut c = tiny();
        c.access(0, true); // dirty A
        c.access(256, false); // B
        c.access(512, false); // evicts A (dirty)
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn flush_writes_back_resident_dirty() {
        let mut c = tiny();
        c.access(0, true);
        c.access(64, true);
        c.access(128, false);
        c.flush();
        assert_eq!(c.stats.writebacks, 2);
        // all invalid now
        assert!(!c.access(0, false));
    }

    #[test]
    fn access_range_touches_every_line() {
        let mut c = tiny();
        c.access_range(10, 200, false); // lines 0..=3
        assert_eq!(c.stats.accesses, 4);
        c.access_range(0, 0, false);
        assert_eq!(c.stats.accesses, 4);
    }

    #[test]
    fn streaming_larger_than_cache_always_misses() {
        let mut c = tiny();
        for i in 0..64u64 {
            c.access(i * 64, false);
        }
        // 512B cache, 4KiB stream: every access a miss once warm
        assert_eq!(c.stats.misses, 64);
    }
}
