//! DRAM-traffic replay of host-based unpacking (Fig. 17 methodology).
//!
//! Host-based receive of a non-contiguous message moves, per the paper:
//!
//! 1. the packed message, DMA-written by the NIC into a staging buffer
//!    (message size, NIC → DRAM), then
//! 2. everything the CPU's unpack loop exchanges with DRAM: reading the
//!    packed stream back (cold), fetching destination lines
//!    (write-allocate), and writing dirty destination lines back —
//!    "measured as number of last-level cache misses times the cache
//!    line size".
//!
//! NIC-offloaded unpacking moves only (1), written directly to its final
//! location. [`unpack_traffic`] replays the unpack access pattern of a
//! datatype through the LLC model and reports both volumes.

use nca_ddt::dataloop::compile;
use nca_ddt::segment::Segment;
use nca_ddt::sink::BlockSink;
use nca_ddt::types::Datatype;

use crate::cache::{Cache, CacheConfig};

/// Traffic volumes for receiving + unpacking one message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficReport {
    /// Message (packed) size in bytes.
    pub message_bytes: u64,
    /// Host-based total: NIC DMA of the packed message + LLC miss traffic
    /// of the unpack loop.
    pub host_bytes: u64,
    /// Offloaded total: the NIC writes each block to its final location —
    /// exactly the message size.
    pub offload_bytes: u64,
    /// LLC statistics of the unpack replay.
    pub unpack_misses: u64,
    /// Dirty lines written back during/after the unpack replay.
    pub unpack_writebacks: u64,
}

impl TrafficReport {
    /// Host/offload traffic ratio (the paper reports a 3.8× geometric
    /// mean across its application workloads).
    pub fn ratio(&self) -> f64 {
        self.host_bytes as f64 / self.offload_bytes as f64
    }
}

struct UnpackReplay<'c> {
    cache: &'c mut Cache,
    src_base: u64,
    dst_base: u64,
}

impl BlockSink for UnpackReplay<'_> {
    fn block(&mut self, buf_off: i64, len: u64, stream_off: u64) {
        // The unpack loop reads the packed bytes and writes them to the
        // destination (write-allocate: the destination line is fetched on
        // a write miss).
        self.cache
            .access_range(self.src_base + stream_off, len, false);
        self.cache
            .access_range((self.dst_base as i64 + buf_off) as u64, len, true);
    }
}

/// Replay a cold-cache unpack of `count` copies of `dt` and report the
/// DRAM traffic of host-based vs offloaded receive.
pub fn unpack_traffic(dt: &Datatype, count: u32, cfg: CacheConfig) -> TrafficReport {
    let dl = compile(dt, count);
    let msg = dl.size;
    let mut cache = Cache::new(cfg);
    // Address layout: destination buffer at 0 (+slack for negative lb),
    // packed staging buffer far away (no aliasing).
    let dst_base = 1u64 << 33;
    let src_base = 1u64 << 34;
    {
        let mut replay = UnpackReplay {
            cache: &mut cache,
            src_base,
            dst_base,
        };
        let mut seg = Segment::new(dl);
        seg.advance(u64::MAX, &mut replay);
    }
    // Account resident dirty lines: they will eventually reach DRAM.
    cache.flush();
    let line = cfg.line_size;
    let unpack_traffic = cache.stats.dram_traffic_bytes(line);
    TrafficReport {
        message_bytes: msg,
        host_bytes: msg + unpack_traffic,
        offload_bytes: msg,
        unpack_misses: cache.stats.misses,
        unpack_writebacks: cache.stats.writebacks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_ddt::types::{elem, Datatype, DatatypeExt};

    fn llc() -> CacheConfig {
        CacheConfig::i7_4770_llc()
    }

    #[test]
    fn contiguous_unpack_traffic_about_3x() {
        // Contiguous copy: read src (1x) + write dst (fetch 1x + writeback
        // 1x) => host ≈ msg + 3·msg.
        let dt = Datatype::contiguous(1 << 20, &elem::byte());
        let r = unpack_traffic(&dt, 1, llc());
        assert_eq!(r.message_bytes, 1 << 20);
        assert_eq!(r.offload_bytes, 1 << 20);
        let x = r.host_bytes as f64 / r.message_bytes as f64;
        assert!((3.8..=4.2).contains(&x), "expected ~4x total, got {x}");
    }

    #[test]
    fn sparse_small_blocks_amplify_traffic() {
        // 4-byte blocks, 64-byte stride: every block touches a distinct
        // destination line -> 64B fetched + 64B written back per 4B of
        // payload.
        let dt = Datatype::vector(1 << 16, 1, 16, &elem::int());
        let r = unpack_traffic(&dt, 1, llc());
        let x = r.ratio();
        assert!(x > 10.0, "sparse unpack should amplify traffic, got {x}");
    }

    #[test]
    fn dense_blocks_close_to_contiguous() {
        // 2 KiB blocks: destination lines fully written, amplification
        // only from write-allocate fetches.
        let dt = Datatype::vector(512, 256, 512, &elem::double());
        let r = unpack_traffic(&dt, 1, llc());
        let x = r.ratio();
        assert!((3.5..=4.5).contains(&x), "got {x}");
    }

    #[test]
    fn offload_volume_is_message_size() {
        let dt = Datatype::vector(100, 3, 9, &elem::float());
        let r = unpack_traffic(&dt, 4, llc());
        assert_eq!(r.offload_bytes, dt.size * 4);
    }
}
