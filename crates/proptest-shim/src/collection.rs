//! Collection strategies (subset of `proptest::collection`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Inclusive-exclusive bounds on a generated collection's length.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

/// The strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.random_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
    fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        // Shorter first: halve the excess over the minimum length,
        // then a single pop.
        if value.len() > self.size.lo {
            let half = self.size.lo + (value.len() - self.size.lo) / 2;
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            if value.len() - 1 != half {
                out.push(value[..value.len() - 1].to_vec());
            }
        }
        // Then element-wise, capped so huge vectors don't explode the
        // candidate list.
        for i in 0..value.len().min(16) {
            for c in self.element.shrink(&value[i]) {
                let mut w = value.clone();
                w[i] = c;
                out.push(w);
            }
        }
        out
    }
}

/// A `Vec` whose length is drawn from `size` and whose elements are
/// drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
