//! Test-run plumbing (subset of `proptest::test_runner`).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::strategy::Strategy;

/// Per-test configuration. Only `cases` is modeled.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config that runs `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed; the case is discarded, not failed.
    Reject,
    /// A `prop_assert*!` failed with this message.
    Fail(String),
}

/// The RNG handed to strategies. Seeded from the test's name so every
/// test draws an independent, reproducible stream; set `PROPTEST_SEED`
/// to perturb all streams at once.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Build the RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test name.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                h ^= seed.rotate_left(17);
            }
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }
}

impl Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Pins a check closure's argument type to `&S::Value` so the
/// `proptest!` expansion can define the closure before any value has
/// been generated (plain `|t: &_| ..` leaves inference stuck).
#[doc(hidden)]
pub fn tie_check<S, F>(_strat: &S, check: F) -> F
where
    S: Strategy,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    check
}

/// Greedily minimize a failing input: ask the strategy for smaller
/// candidates, re-run the property on each, and whenever one still
/// fails adopt it and start over from its own candidates. Stops when
/// no candidate fails (a local minimum) or after a fixed re-test
/// budget. Returns the smallest failing value found, the failure
/// message it produced, and how many shrink steps were taken.
pub fn shrink_loop<S, F>(
    strat: &S,
    initial: S::Value,
    first_msg: String,
    check: F,
) -> (S::Value, String, u32)
where
    S: Strategy,
    S::Value: Clone,
    F: Fn(&S::Value) -> Result<(), TestCaseError>,
{
    const BUDGET: u32 = 1024;

    let mut current = initial;
    let mut msg = first_msg;
    let mut steps = 0u32;
    let mut tested = 0u32;
    'outer: loop {
        for candidate in strat.shrink(&current) {
            if tested >= BUDGET {
                break 'outer;
            }
            tested += 1;
            match check(&candidate) {
                Err(TestCaseError::Fail(m)) => {
                    current = candidate;
                    msg = m;
                    steps += 1;
                    continue 'outer;
                }
                // Passing and rejected candidates are simply not
                // adopted; keep scanning siblings.
                Ok(()) | Err(TestCaseError::Reject) => {}
            }
        }
        break;
    }
    (current, msg, steps)
}

/// `format!("{:?}")` capped at `LIMIT` bytes, so failing cases with
/// huge inputs (e.g. 100 KiB payload vectors) stay readable.
pub fn debug_truncated<T: std::fmt::Debug>(value: &T) -> String {
    const LIMIT: usize = 512;

    struct Capped {
        buf: String,
        truncated: bool,
    }

    impl std::fmt::Write for Capped {
        fn write_str(&mut self, s: &str) -> std::fmt::Result {
            let room = LIMIT.saturating_sub(self.buf.len());
            if room == 0 {
                self.truncated = true;
                return Err(std::fmt::Error);
            }
            if s.len() <= room {
                self.buf.push_str(s);
                Ok(())
            } else {
                let mut end = room;
                while !s.is_char_boundary(end) {
                    end -= 1;
                }
                self.buf.push_str(&s[..end]);
                self.truncated = true;
                Err(std::fmt::Error)
            }
        }
    }

    let mut out = Capped {
        buf: String::new(),
        truncated: false,
    };
    let _ = std::fmt::write(&mut out, format_args!("{value:?}"));
    if out.truncated {
        out.buf.push_str("… (truncated)");
    }
    out.buf
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_rngs_are_per_test_and_deterministic() {
        let mut a = TestRng::for_test("mod::test_a");
        let mut b = TestRng::for_test("mod::test_a");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = TestRng::for_test("mod::test_b");
        assert_ne!(TestRng::for_test("mod::test_a").next_u64(), c.next_u64());
    }

    #[test]
    fn shrink_loop_finds_known_minimum() {
        // Property "x < 10" fails for any x >= 10; the minimal failing
        // input under the strategy 0..1000 is exactly 10.
        let strat = (0u64..1000,);
        let check = |v: &(u64,)| -> Result<(), TestCaseError> {
            if v.0 >= 10 {
                Err(TestCaseError::Fail(format!("{} is too big", v.0)))
            } else {
                Ok(())
            }
        };
        let (min, msg, steps) = shrink_loop(&strat, (777,), "777 is too big".to_string(), check);
        assert_eq!(min, (10,), "greedy shrink must land on the boundary");
        assert_eq!(msg, "10 is too big");
        assert!(steps > 0);
    }

    #[test]
    fn debug_truncation_caps_output() {
        let big = vec![0u8; 100_000];
        let s = debug_truncated(&big);
        assert!(s.len() < 600);
        assert!(s.ends_with("… (truncated)"));
        let small = debug_truncated(&42u32);
        assert_eq!(small, "42");
    }
}
