//! # nca-proptest — offline stand-in for the `proptest` crate
//!
//! The workspace builds in containers with no access to crates.io, so
//! the external `proptest` dev-dependency is replaced by this shim
//! (wired up via dependency renaming in the workspace `Cargo.toml`).
//!
//! It implements the subset of the proptest 1.x API the workspace's
//! property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! * [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assert_ne!`] /
//!   [`prop_assume!`],
//! * [`strategy::Strategy`] with `prop_map`, `prop_flat_map`,
//!   `prop_recursive`, `boxed`,
//! * range / tuple / [`strategy::Just`] / [`any`] strategies,
//!   [`prop_oneof!`] unions, and [`collection::vec`].
//!
//! Differences from upstream proptest, by design:
//!
//! * **Greedy shrinking.** A failing case is minimized by re-testing
//!   the candidates each strategy proposes via [`Strategy::shrink`]
//!   (no lazy shrink tree like upstream); both the original and the
//!   minimal failing inputs are reported.
//! * **Deterministic seeding.** Each test's RNG is seeded from the
//!   test's module path and name, so runs are reproducible in CI; set
//!   `PROPTEST_SEED=<n>` to mix in a different seed.
//! * Default case count is 64 (upstream: 256) to keep the simulation-
//!   heavy suites fast; `ProptestConfig::with_cases` overrides it.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

/// Everything a property test normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. See the crate docs for supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                let mut __ran: u32 = 0;
                let mut __rejected: u32 = 0;
                // All arguments form one tuple strategy so a failing
                // case can be shrunk as a unit (one component at a
                // time, the others held fixed).
                let __strat = ($( $strat, )+);
                // Runs the property body on a borrowed input tuple;
                // the closure catches the early `return Err(..)` that
                // prop_assert!/prop_assume! expand to.
                let __check = $crate::test_runner::tie_check(&__strat, |__tuple| {
                    let ($($arg,)+) = ::std::clone::Clone::clone(__tuple);
                    #[allow(clippy::redundant_closure_call)]
                    let __r: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    __r
                });
                while __ran < __cfg.cases {
                    let __tuple =
                        $crate::strategy::Strategy::generate(&__strat, &mut __rng);
                    match __check(&__tuple) {
                        Ok(()) => __ran += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            __rejected += 1;
                            assert!(
                                __rejected < __cfg.cases * 16,
                                "proptest '{}': too many prop_assume! rejections ({} for {} cases)",
                                stringify!($name), __rejected, __cfg.cases
                            );
                        }
                        Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                            let __orig = $crate::test_runner::debug_truncated(&__tuple);
                            let (__min, __min_msg, __steps) = $crate::test_runner::shrink_loop(
                                &__strat, __tuple, __msg, &__check,
                            );
                            panic!(
                                "proptest '{}' failed at case {}:\n{}\n\
                                 original failing input: ({}) = {}\n\
                                 minimal failing input (after {} shrink steps): ({}) = {}",
                                stringify!($name), __ran, __min_msg,
                                stringify!($($arg),+), __orig,
                                __steps,
                                stringify!($($arg),+),
                                $crate::test_runner::debug_truncated(&__min),
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {} ({})", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Fail the current case unless `a == b`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {}\n right: {}",
                stringify!($a),
                stringify!($b),
                $crate::test_runner::debug_truncated(__a),
                $crate::test_runner::debug_truncated(__b),
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} == {} ({})\n  left: {}\n right: {}",
                stringify!($a),
                stringify!($b),
                format!($($fmt)+),
                $crate::test_runner::debug_truncated(__a),
                $crate::test_runner::debug_truncated(__b),
            )));
        }
    }};
}

/// Fail the current case unless `a != b`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if *__a == *__b {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {}",
                stringify!($a),
                stringify!($b),
                $crate::test_runner::debug_truncated(__a),
            )));
        }
    }};
}

/// Discard the current case (it does not count toward the case budget)
/// unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// A uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1u64..100, v in collection::vec(0u8..10, 2..5)) {
            prop_assert!((1..100).contains(&x));
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn maps_and_unions(
            y in prop_oneof![Just(1u32), Just(2u32), (10u32..20).prop_map(|v| v * 2)],
        ) {
            prop_assert!(y == 1 || y == 2 || (20..40).contains(&y));
        }

        #[test]
        fn assume_rejects_without_failing(z in 0u32..10) {
            prop_assume!(z % 2 == 0);
            prop_assert!(z % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]

        #[test]
        fn config_is_honoured(_x in 0u32..10) {
            // runs exactly 7 cases; nothing to assert beyond not panicking
        }
    }

    // Deliberately failing property used by the shrink test below.
    // Declared without `#[test]` so the harness never runs it directly.
    proptest! {
        fn always_fails(x in 5u64..1000) {
            prop_assert!(x < 5);
        }
    }

    #[test]
    fn failing_property_is_shrunk_to_minimum() {
        let err = std::panic::catch_unwind(always_fails).expect_err("always_fails must panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .expect("panic payload is a string");
        assert!(msg.contains("original failing input"), "{msg}");
        assert!(msg.contains("minimal failing input"), "{msg}");
        // x < 5 fails for every value the 5..1000 strategy can produce,
        // so the greedy walk must land on the range's lower bound.
        assert!(msg.contains("(5,)"), "{msg}");
    }

    #[test]
    fn recursive_strategies_bound_depth() {
        #[derive(Debug, Clone, PartialEq)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(3, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng::for_test("recursive");
        let mut saw_node = false;
        for _ in 0..64 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= t != Tree::Leaf;
        }
        assert!(saw_node, "recursion must sometimes pick deeper levels");
    }

    #[test]
    fn flat_map_chains_generation() {
        let strat = (1usize..4).prop_flat_map(|n| collection::vec(Just(n), n..n + 1));
        let mut rng = crate::test_runner::TestRng::for_test("flat_map");
        for _ in 0..32 {
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 4);
            assert!(v.iter().all(|&x| x == v.len()));
        }
    }
}
