//! Value-generation strategies (subset of `proptest::strategy`).
//!
//! A [`Strategy`] here is just a deterministic function from an RNG to a
//! value; there is no shrinking tree. Combinators mirror the upstream
//! names so test code compiles unchanged.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;
use rand::Rng;

/// A source of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and
    /// `recurse` wraps a strategy for depth `d` into one for depth
    /// `d + 1`. Generation picks a depth level uniformly, bounding
    /// nesting at `depth`. `desired_size` and `expected_branch_size`
    /// are accepted for API compatibility but unused (they tune
    /// probabilistic sizing in upstream proptest).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            // Each level may recurse into anything shallower than itself,
            // so generated structures mix depths rather than being
            // uniformly maximal.
            let inner = Union::new(levels.clone()).boxed();
            levels.push(recurse(inner).boxed());
        }
        Union::new(levels).boxed()
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Arc::new(move |rng| self.generate(rng)),
        }
    }
}

/// A cheaply clonable, type-erased [`Strategy`].
pub struct BoxedStrategy<T> {
    generate: Arc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Arc::clone(&self.generate),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Uniform choice between strategies producing the same type
/// (what [`prop_oneof!`](crate::prop_oneof) expands to).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
