//! Value-generation strategies (subset of `proptest::strategy`).
//!
//! A [`Strategy`] here is a deterministic function from an RNG to a
//! value plus an optional [`Strategy::shrink`] step proposing smaller
//! candidates (no lazy shrink *tree* like upstream — the runner
//! greedily re-tests candidates instead). Combinators mirror the
//! upstream names so test code compiles unchanged.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;
use rand::Rng;

/// A source of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Propose strictly "smaller" candidates for `value`, best first.
    /// The runner re-tests each candidate and greedily walks toward a
    /// minimal failing input; strategies without a useful notion of
    /// smaller return nothing (the default) and failures are reported
    /// unshrunk.
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Generate a value, then generate from the strategy `f` builds
    /// out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { source: self, f }
    }

    /// Build a recursive strategy: `self` generates leaves, and
    /// `recurse` wraps a strategy for depth `d` into one for depth
    /// `d + 1`. Generation picks a depth level uniformly, bounding
    /// nesting at `depth`. `desired_size` and `expected_branch_size`
    /// are accepted for API compatibility but unused (they tune
    /// probabilistic sizing in upstream proptest).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            // Each level may recurse into anything shallower than itself,
            // so generated structures mix depths rather than being
            // uniformly maximal.
            let inner = Union::new(levels.clone()).boxed();
            levels.push(recurse(inner).boxed());
        }
        Union::new(levels).boxed()
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        let strat = Arc::new(self);
        let gen_handle = Arc::clone(&strat);
        BoxedStrategy {
            generate: Arc::new(move |rng| gen_handle.generate(rng)),
            shrink: Arc::new(move |v| strat.shrink(v)),
        }
    }
}

type ShrinkFn<T> = Arc<dyn Fn(&T) -> Vec<T>>;

/// A cheaply clonable, type-erased [`Strategy`].
pub struct BoxedStrategy<T> {
    generate: Arc<dyn Fn(&mut TestRng) -> T>,
    shrink: ShrinkFn<T>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy {
            generate: Arc::clone(&self.generate),
            shrink: Arc::clone(&self.shrink),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        (self.shrink)(value)
    }
}

/// Uniform choice between strategies producing the same type
/// (what [`prop_oneof!`](crate::prop_oneof) expands to).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `options`; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.random_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
    fn shrink(&self, value: &T) -> Vec<T> {
        // The generating option is not tracked, so ask all of them;
        // every candidate is re-tested by the runner anyway.
        self.options.iter().flat_map(|o| o.shrink(value)).collect()
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draw one value from the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.random()
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy over the full domain of `T` (e.g. `any::<u64>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates(self.start as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
            fn shrink(&self, value: &$t) -> Vec<$t> {
                int_shrink_candidates(*self.start() as i128, *value as i128)
                    .into_iter()
                    .map(|c| c as $t)
                    .collect()
            }
        }
    )*};
}

impl_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Candidates between a range's lower bound and the failing value: the
// bound itself, the halfway point, and one step down (i128 to dodge
// signed-width overflow; all the impl'd int types embed losslessly).
fn int_shrink_candidates(lo: i128, v: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if v > lo {
        for c in [lo, lo + (v - lo) / 2, v - 1] {
            if c < v && !out.contains(&c) {
                out.push(c);
            }
        }
    }
    out
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.random_range(self.clone())
    }
    fn shrink(&self, value: &f64) -> Vec<f64> {
        let lo = self.start;
        let mut out = Vec::new();
        if *value > lo {
            out.push(lo);
            let mid = lo + (*value - lo) / 2.0;
            if mid > lo && mid < *value {
                out.push(mid);
            }
        }
        out
    }
}

macro_rules! impl_tuple_strategies {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+)
        where
            $($s::Value: Clone),+
        {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                // One component at a time, the others held fixed.
                let mut out = Vec::new();
                $(
                    for c in self.$idx.shrink(&value.$idx) {
                        let mut t = value.clone();
                        t.$idx = c;
                        out.push(t);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategies! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
