//! Fig. 11 — RW-CP handler instructions-per-cycle on PULP.

use nca_pulp::arch::PulpConfig;
use nca_pulp::ddtproc::rwcp_on_pulp;

/// `(block_bytes, ipc)` series.
pub fn rows() -> Vec<(u64, f64)> {
    let cfg = PulpConfig::default();
    [32u64, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
        .iter()
        .map(|&b| (b, rwcp_on_pulp(&cfg, 1 << 20, b, 2048).ipc))
        .collect()
}

/// Print the figure table.
pub fn print(_quick: bool) {
    println!("# Fig. 11 — RW-CP IPC on PULP (paper medians 0.14-0.26)");
    println!("block_bytes\tipc");
    for (b, ipc) in rows() {
        println!("{b}\t{ipc:.3}");
    }
}
