//! Fig. 15 — DMA-write queue occupancy over time for γ = 16, per
//! strategy, including the host checkpoint-creation overhead.
//!
//! The timeline is reconstructed from the telemetry trace stream (the
//! `spin/dma_queue` gauge, sampled at every FIFO push/pop) rather than
//! from the pipeline's bespoke `dma_history` probe — the same events
//! a `--trace-out` Perfetto dump contains.

use nca_core::runner::{Experiment, Strategy};
use nca_spin::params::NicParams;
use nca_telemetry::{aggregate, EventKind, Telemetry, TraceEvent};

use super::vector_workload;

/// One strategy's timeline.
pub struct Timeline {
    /// Strategy label.
    pub strategy: &'static str,
    /// Host-side setup (checkpoint creation/copy), ps.
    pub host_overhead: u64,
    /// Sampled `(time_ps, queue_len)` series.
    pub series: Vec<(u64, usize)>,
    /// Busy-interval spans DMA channel 0 served.
    pub chan0_spans: usize,
    /// Total busy time of DMA channel 0, ps.
    pub chan0_busy: u64,
}

/// Count and total duration of the `dma_chan` busy spans on one
/// channel track (the per-channel PCIe-utilization view).
pub fn channel_busy(events: &[TraceEvent], chan: u64) -> (usize, u64) {
    events
        .iter()
        .filter(|ev| ev.component == "spin" && ev.name == "dma_chan" && ev.track == chan)
        .fold((0, 0), |(n, busy), ev| match ev.kind {
            EventKind::Span { end } => (n + 1, busy + end.saturating_sub(ev.time)),
            _ => (n, busy),
        })
}

/// Strategies in the figure's panel order.
pub const STRATEGIES: [Strategy; 4] = [
    Strategy::HpuLocal,
    Strategy::RoCp,
    Strategy::RwCp,
    Strategy::Specialized,
];

/// The full (undownsampled) DMA-queue occupancy series of one strategy,
/// extracted from a trace of the run.
pub fn trace_dma_series(strategy: Strategy, quick: bool) -> Vec<(u64, usize)> {
    let msg: u64 = if quick { 256 << 10 } else { 4 << 20 };
    let (dt, count) = vector_workload(msg, 128);
    let mut exp = Experiment::new(dt, count, NicParams::with_hpus(16));
    exp.verify = false;
    let (tel, sink) = Telemetry::ring(1 << 20);
    exp.telemetry = tel;
    exp.run(strategy);
    aggregate::gauge_series(&sink.events(), "spin", "dma_queue")
        .into_iter()
        .map(|(t, v)| (t, v as usize))
        .collect()
}

/// Compute the figure (γ=16, i.e. 128 B blocks).
pub fn timelines(quick: bool) -> Vec<Timeline> {
    let msg: u64 = if quick { 256 << 10 } else { 4 << 20 };
    STRATEGIES
        .iter()
        .map(|&s| {
            let (dt, count) = vector_workload(msg, 128);
            let mut exp = Experiment::new(dt, count, NicParams::with_hpus(16));
            exp.verify = false;
            let (tel, sink) = Telemetry::ring(1 << 20);
            exp.telemetry = tel;
            let r = exp.run(s);
            let events = sink.events();
            let history: Vec<(u64, usize)> = aggregate::gauge_series(&events, "spin", "dma_queue")
                .into_iter()
                .map(|(t, v)| (t, v as usize))
                .collect();
            // Downsample to 48 points for the table.
            let series = sample(&history, 48);
            let (chan0_spans, chan0_busy) = channel_busy(&events, 0);
            Timeline {
                strategy: s.label(),
                host_overhead: r.host_setup_time,
                series,
                chan0_spans,
                chan0_busy,
            }
        })
        .collect()
}

/// Downsample `h` to at most `n` evenly spaced points.
pub fn sample(h: &[(u64, usize)], n: usize) -> Vec<(u64, usize)> {
    if h.len() <= n {
        return h.to_vec();
    }
    let step = h.len() as f64 / n as f64;
    (0..n).map(|i| h[(i as f64 * step) as usize]).collect()
}

/// Render the figure's rows as TSV lines (golden-tested).
pub fn rows(quick: bool) -> Vec<String> {
    let mut out = Vec::new();
    for t in timelines(quick) {
        out.push(format!(
            "{}\thost_overhead_us\t{:.1}",
            t.strategy,
            t.host_overhead as f64 / 1e6
        ));
        out.push(format!(
            "{}\tdma_chan0\t{}\t{:.1}",
            t.strategy,
            t.chan0_spans,
            t.chan0_busy as f64 / 1e6
        ));
        for (time, q) in &t.series {
            out.push(format!("{}\t{:.4}\t{}", t.strategy, *time as f64 / 1e9, q));
        }
    }
    out
}

/// Print the figure table.
pub fn print(quick: bool) {
    println!("# Fig. 15 — DMA queue size over time (gamma = 16)");
    for t in timelines(quick) {
        println!(
            "## {} (host overhead: {:.1} us; DMA chan 0: {} spans, {:.1} us busy)",
            t.strategy,
            t.host_overhead as f64 / 1e6,
            t.chan0_spans,
            t.chan0_busy as f64 / 1e6
        );
        println!("time_ms\tqueue");
        for (time, q) in &t.series {
            println!("{:.4}\t{}", *time as f64 / 1e9, q);
        }
    }
}
