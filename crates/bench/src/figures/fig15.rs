//! Fig. 15 — DMA-write queue occupancy over time for γ = 16, per
//! strategy, including the host checkpoint-creation overhead.

use nca_core::runner::{Experiment, Strategy};
use nca_spin::params::NicParams;

use super::vector_workload;

/// One strategy's timeline.
pub struct Timeline {
    /// Strategy label.
    pub strategy: &'static str,
    /// Host-side setup (checkpoint creation/copy), ps.
    pub host_overhead: u64,
    /// Sampled `(time_ps, queue_len)` series.
    pub series: Vec<(u64, usize)>,
}

/// Compute the figure (γ=16, i.e. 128 B blocks).
pub fn timelines(quick: bool) -> Vec<Timeline> {
    let msg: u64 = if quick { 256 << 10 } else { 4 << 20 };
    [Strategy::HpuLocal, Strategy::RoCp, Strategy::RwCp, Strategy::Specialized]
        .iter()
        .map(|&s| {
            let (dt, count) = vector_workload(msg, 128);
            let mut exp = Experiment::new(dt, count, NicParams::with_hpus(16));
            exp.verify = false;
            exp.record_dma_history = true;
            let r = exp.run(s);
            // Downsample to 48 points for the table.
            let series = sample(&r.dma_history, 48);
            Timeline { strategy: s.label(), host_overhead: r.host_setup_time, series }
        })
        .collect()
}

fn sample(h: &[(u64, usize)], n: usize) -> Vec<(u64, usize)> {
    if h.len() <= n {
        return h.to_vec();
    }
    let step = h.len() as f64 / n as f64;
    (0..n).map(|i| h[(i as f64 * step) as usize]).collect()
}

/// Print the figure table.
pub fn print(quick: bool) {
    println!("# Fig. 15 — DMA queue size over time (gamma = 16)");
    for t in timelines(quick) {
        println!("## {} (host overhead: {:.1} us)", t.strategy, t.host_overhead as f64 / 1e6);
        println!("time_ms\tqueue");
        for (time, q) in &t.series {
            println!("{:.4}\t{}", *time as f64 / 1e9, q);
        }
    }
}
