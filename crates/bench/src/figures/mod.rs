//! Figure computations. Each submodule exposes a `rows()` function
//! returning the series the paper's figure plots, and a `print(quick)`
//! entry used by the binaries.

pub mod fig02;
pub mod fig08;
pub mod fig09b;
pub mod fig09c;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod sender;

/// Vector microbenchmark datatype: `block_bytes`-sized blocks on a 2x
/// stride (the Fig. 8 configuration: "stride (twice the blocksize)"),
/// sized to `msg_bytes` total. Built byte-granular so 4 B blocks are
/// really 4 B.
pub fn vector_workload(msg_bytes: u64, block_bytes: u64) -> (nca_ddt::types::Datatype, u32) {
    use nca_ddt::types::{elem, Datatype, DatatypeExt};
    let count = (msg_bytes / block_bytes).max(1) as u32;
    (
        Datatype::hvector(
            count,
            block_bytes as u32,
            2 * block_bytes as i64,
            &elem::byte(),
        ),
        1,
    )
}
pub mod ablations;
