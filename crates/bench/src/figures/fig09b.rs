//! Fig. 9b — accelerator area breakdown (plus the Sec. 4.4 silicon
//! area, power and BlueField comparison).

use nca_pulp::arch::PulpConfig;
use nca_pulp::area::{area_breakdown, bluefield_subsystem_mm2};

/// Print the breakdown.
pub fn print(_quick: bool) {
    let cfg = PulpConfig::default();
    let a = area_breakdown(&cfg);
    println!(
        "# Fig. 9b — area breakdown ({} clusters x {} cores)",
        cfg.clusters, cfg.cores_per_cluster
    );
    println!("component\tMGE\tshare");
    println!(
        "clusters\t{:.1}\t{:.1}%",
        a.clusters_total / 1e6,
        100.0 * a.clusters_total / a.total
    );
    println!("L2 SPM\t{:.1}\t{:.1}%", a.l2 / 1e6, 100.0 * a.l2 / a.total);
    println!(
        "interconnect/DWC/buffers\t{:.1}\t{:.1}%",
        a.top_interconnect / 1e6,
        100.0 * a.top_interconnect / a.total
    );
    println!("total\t{:.1}\t100%", a.total / 1e6);
    let c = a.cluster_total();
    println!(
        "# per-cluster: L1 {:.1}% | I$ {:.1}% | cores {:.1}% | DMA+icon {:.1}%",
        100.0 * a.cluster_l1 / c,
        100.0 * a.cluster_icache / c,
        100.0 * a.cluster_cores / c,
        100.0 * (a.cluster_dma_icon) / c
    );
    println!(
        "# silicon: {:.1} mm2 @22nm (paper 23.5), power {:.1} W (paper ~6)",
        a.silicon_mm2(),
        a.power_w()
    );
    println!(
        "# BlueField compute subsystem: {:.1} mm2 -> this design uses {:.0}% of that budget",
        bluefield_subsystem_mm2(),
        100.0 * a.silicon_mm2() / bluefield_subsystem_mm2()
    );
}
