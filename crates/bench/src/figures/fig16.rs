//! Fig. 16 — message-processing-time speedup over host-based unpacking
//! for the thirteen application DDTs.
//!
//! The implementation lives in [`nca_scenario::fig16`] so the
//! `fig16` scenario and the `fig16_applications` binary render the one
//! table from one code path; this module re-exports it for the bench
//! harnesses and tests that address it as `figures::fig16`.

pub use nca_scenario::fig16::{print, print_on, render, rows, rows_filtered, rows_on, Row};
