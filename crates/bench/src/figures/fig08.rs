//! Fig. 8 — unpack throughput of an `MPI_Type_vector` message as a
//! function of block size, for the four offloaded strategies and the
//! host-based unpack (4 MiB message, stride = 2 x block size, 16 HPUs).

use nca_core::runner::{Experiment, Strategy};
use nca_spin::params::NicParams;

use super::vector_workload;

/// One table row.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Block size in bytes.
    pub block: u64,
    /// Throughput per strategy (Gbit/s), indexed like [`Strategy::ALL`].
    pub offloaded: [f64; 4],
    /// Host-based unpack throughput (Gbit/s).
    pub host: f64,
}

/// Block sizes of the figure's x axis.
pub fn block_sizes(quick: bool) -> Vec<u64> {
    if quick {
        vec![16, 128, 2048]
    } else {
        vec![4, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
    }
}

/// Compute the figure.
pub fn rows(quick: bool) -> Vec<Row> {
    let msg: u64 = if quick { 256 << 10 } else { 4 << 20 };
    block_sizes(quick)
        .into_iter()
        .map(|block| {
            let (dt, count) = vector_workload(msg, block);
            let mut exp = Experiment::new(dt, count, NicParams::with_hpus(16));
            exp.verify = quick; // full-size runs skip the O(msg) compare
            let mut offloaded = [0.0f64; 4];
            for (i, s) in Strategy::ALL.iter().enumerate() {
                offloaded[i] = exp.run(*s).throughput_gbit();
            }
            Row {
                block,
                offloaded,
                host: exp.run_host().throughput_gbit(),
            }
        })
        .collect()
}

/// Print the figure table.
pub fn print(quick: bool) {
    println!("# Fig. 8 — vector unpack throughput (Gbit/s), 16 HPUs");
    println!("block\tSpecialized\tRW-CP\tRO-CP\tHPU-local\tHost");
    for r in rows(quick) {
        println!(
            "{}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            r.block, r.offloaded[0], r.offloaded[1], r.offloaded[2], r.offloaded[3], r.host
        );
    }
}
