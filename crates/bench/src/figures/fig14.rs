//! Fig. 14 — maximum DMA-write queue occupancy vs γ, with the total
//! number of DMA writes per message.

use nca_core::runner::{Experiment, Strategy};
use nca_spin::params::NicParams;

use super::vector_workload;

/// One row: γ, per-strategy max queue, and the total writes.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Regions per packet.
    pub gamma: u64,
    /// Max DMA queue occupancy per strategy ([`Strategy::ALL`] order).
    pub max_queue: [usize; 4],
    /// Total data DMA writes for the message.
    pub total_writes: u64,
}

/// Compute the figure.
pub fn rows(quick: bool) -> Vec<Row> {
    let msg: u64 = if quick { 256 << 10 } else { 4 << 20 };
    let gammas: &[u64] = if quick { &[1, 16] } else { &[1, 2, 4, 8, 16] };
    gammas
        .iter()
        .map(|&gamma| {
            let (dt, count) = vector_workload(msg, 2048 / gamma);
            let mut exp = Experiment::new(dt, count, NicParams::with_hpus(16));
            exp.verify = false;
            exp.record_dma_history = false;
            let mut max_queue = [0usize; 4];
            let mut total = 0u64;
            for (i, s) in Strategy::ALL.iter().enumerate() {
                let r = exp.run(*s);
                max_queue[i] = r.dma_max_queue;
                total = r.dma_writes - 1; // minus the completion signal
            }
            Row {
                gamma,
                max_queue,
                total_writes: total,
            }
        })
        .collect()
}

/// Print the figure table.
pub fn print(quick: bool) {
    println!("# Fig. 14 — max DMA queue occupancy (16 HPUs)");
    println!("gamma\tSpecialized\tRW-CP\tRO-CP\tHPU-local\ttotal_writes");
    for r in rows(quick) {
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            r.gamma, r.max_queue[0], r.max_queue[1], r.max_queue[2], r.max_queue[3], r.total_writes
        );
    }
}
