//! Sec. 3.1 — sender-side strategies: pack+send vs streaming puts vs
//! outbound sPIN (`PtlProcessPut`). The paper describes these (Fig. 4)
//! without a dedicated plot; this bench quantifies them on the Fig. 8
//! vector workload.

use nca_spin::outbound::{pack_and_send, process_put_send, streaming_put_send, SendWorkload};
use nca_spin::params::NicParams;

/// `(block_bytes, pack_us, streaming_us, spin_us, cpu_busy_us x3)`.
pub fn rows(quick: bool) -> Vec<(u64, [f64; 3], [f64; 3])> {
    let msg: u64 = if quick { 256 << 10 } else { 4 << 20 };
    let p = NicParams::default();
    [64u64, 256, 1024, 4096, 16384]
        .iter()
        .map(|&b| {
            let w = SendWorkload {
                msg_bytes: msg,
                regions: msg / b,
                cpu_pack_per_region: nca_sim::ns(60),
                cpu_stream_per_region: nca_sim::ns(40),
                nic_gather_per_region: nca_sim::ns(25),
            };
            let r = [
                pack_and_send(&p, &w),
                streaming_put_send(&p, &w),
                process_put_send(&p, &w),
            ];
            (
                b,
                [
                    r[0].inject_time as f64 / 1e6,
                    r[1].inject_time as f64 / 1e6,
                    r[2].inject_time as f64 / 1e6,
                ],
                [
                    r[0].cpu_busy as f64 / 1e6,
                    r[1].cpu_busy as f64 / 1e6,
                    r[2].cpu_busy as f64 / 1e6,
                ],
            )
        })
        .collect()
}

/// Print the comparison.
pub fn print(quick: bool) {
    println!("# Sec. 3.1 — sender-side strategies (4 MiB vector message)");
    println!("block\tpack_us\tstream_us\tspinout_us\tcpu_pack_us\tcpu_stream_us\tcpu_spin_us");
    for (b, inject, cpu) in rows(quick) {
        println!(
            "{b}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}",
            inject[0], inject[1], inject[2], cpu[0], cpu[1], cpu[2]
        );
    }
}
