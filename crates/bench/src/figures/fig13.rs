//! Fig. 13 — scalability: (a) receive throughput vs #HPUs (2 KiB
//! blocks); (b) NIC memory occupancy vs block size (16 HPUs);
//! (c) NIC memory occupancy vs #HPUs.

use nca_core::runner::{Experiment, Strategy};
use nca_spin::params::NicParams;
use nca_telemetry::Telemetry;

use super::vector_workload;

/// (a): `(hpus, [throughput per strategy])`.
pub fn throughput_vs_hpus(quick: bool) -> Vec<(usize, [f64; 4])> {
    let msg: u64 = if quick { 256 << 10 } else { 4 << 20 };
    let hpus: &[usize] = if quick { &[2, 16] } else { &[2, 4, 8, 16, 32] };
    hpus.iter()
        .map(|&h| {
            let (dt, count) = vector_workload(msg, 2048);
            let mut exp = Experiment::new(dt, count, NicParams::with_hpus(h));
            exp.verify = false;
            let mut t = [0.0f64; 4];
            for (i, s) in Strategy::ALL.iter().enumerate() {
                t[i] = exp.run(*s).throughput_gbit();
            }
            (h, t)
        })
        .collect()
}

/// (b): `(block, [nic KiB per strategy])` at 16 HPUs.
pub fn nicmem_vs_block(quick: bool) -> Vec<(u64, [f64; 4])> {
    let msg: u64 = if quick { 256 << 10 } else { 4 << 20 };
    let blocks: &[u64] = if quick {
        &[32, 2048]
    } else {
        &[4, 16, 32, 64, 128, 512, 2048, 8192]
    };
    blocks
        .iter()
        .map(|&b| {
            let (dt, count) = vector_workload(msg, b);
            let mut m = [0.0f64; 4];
            for (i, s) in Strategy::ALL.iter().enumerate() {
                let p = s.build(
                    &dt,
                    count,
                    NicParams::with_hpus(16),
                    0.2,
                    Telemetry::disabled(),
                );
                m[i] = p.nic_mem_bytes() as f64 / 1024.0;
            }
            (b, m)
        })
        .collect()
}

/// (c): `(hpus, [nic KiB per strategy])` at 2 KiB blocks.
pub fn nicmem_vs_hpus(quick: bool) -> Vec<(usize, [f64; 4])> {
    let msg: u64 = if quick { 256 << 10 } else { 4 << 20 };
    let hpus: &[usize] = if quick { &[4, 32] } else { &[4, 8, 16, 32] };
    hpus.iter()
        .map(|&h| {
            let (dt, count) = vector_workload(msg, 2048);
            let mut m = [0.0f64; 4];
            for (i, s) in Strategy::ALL.iter().enumerate() {
                let p = s.build(
                    &dt,
                    count,
                    NicParams::with_hpus(h),
                    0.2,
                    Telemetry::disabled(),
                );
                m[i] = p.nic_mem_bytes() as f64 / 1024.0;
            }
            (h, m)
        })
        .collect()
}

/// Print all three panels.
pub fn print(quick: bool) {
    println!("# Fig. 13a — receive throughput vs HPUs (2 KiB blocks, Gbit/s)");
    println!("hpus\tSpecialized\tRW-CP\tRO-CP\tHPU-local");
    for (h, t) in throughput_vs_hpus(quick) {
        println!("{h}\t{:.1}\t{:.1}\t{:.1}\t{:.1}", t[0], t[1], t[2], t[3]);
    }
    println!("# Fig. 13b — NIC memory vs block size (16 HPUs, KiB)");
    println!("block\tSpecialized\tRW-CP\tRO-CP\tHPU-local");
    for (b, m) in nicmem_vs_block(quick) {
        println!("{b}\t{:.2}\t{:.2}\t{:.2}\t{:.2}", m[0], m[1], m[2], m[3]);
    }
    println!("# Fig. 13c — NIC memory vs HPUs (2 KiB blocks, KiB)");
    println!("hpus\tSpecialized\tRW-CP\tRO-CP\tHPU-local");
    for (h, m) in nicmem_vs_hpus(quick) {
        println!("{h}\t{:.2}\t{:.2}\t{:.2}\t{:.2}", m[0], m[1], m[2], m[3]);
    }
}
