//! Fig. 9c — PULP DMA-chain bandwidth vs block size.

use nca_pulp::arch::PulpConfig;
use nca_pulp::bandwidth::dma_bandwidth_gbit;

/// `(block_bytes, Gbit/s)` series.
pub fn rows() -> Vec<(u64, f64)> {
    let cfg = PulpConfig::default();
    let mut v = Vec::new();
    let mut b = 256u64;
    while b <= 128 * 1024 {
        v.push((b, dma_bandwidth_gbit(&cfg, b)));
        b *= 2;
    }
    v
}

/// Print the figure table.
pub fn print(_quick: bool) {
    println!("# Fig. 9c — DMA bandwidth vs block size (line rate = 200 Gbit/s)");
    println!("block_bytes\tgbit_per_s");
    for (b, bw) in rows() {
        println!("{b}\t{bw:.1}");
    }
}
