//! Fig. 18 — number of datatype reuses needed to amortize the RW-CP
//! checkpoint-creation cost (paper: 75% of cases need < 4 reuses).

use nca_core::runner::{Experiment, Strategy};
use nca_spin::params::NicParams;
use nca_workloads::apps::all_workloads;

/// Per-workload `(label, reuses_to_amortize)`.
pub fn rows(quick: bool) -> Vec<(String, f64)> {
    all_workloads()
        .into_iter()
        .filter(|w| !quick || w.msg_bytes() <= 512 << 10)
        .map(|w| {
            let mut exp = Experiment::new(w.dt.clone(), w.count, NicParams::with_hpus(16));
            exp.verify = false;
            let host = exp.run_host().processing_time as f64;
            let r = exp.run(Strategy::RwCp);
            let gain = host - r.processing_time() as f64;
            let reuses = if gain > 0.0 {
                r.host_setup_time as f64 / gain
            } else {
                f64::INFINITY
            };
            (w.label(), reuses)
        })
        .collect()
}

/// Print the figure table.
pub fn print(quick: bool) {
    let data = rows(quick);
    println!("# Fig. 18 — DDT reuses to amortize checkpoint creation");
    println!("app\treuses");
    for (label, n) in &data {
        println!("{label}\t{n:.2}");
    }
    let finite: Vec<f64> = data.iter().map(|d| d.1).filter(|v| v.is_finite()).collect();
    let under4 = finite.iter().filter(|&&v| v < 4.0).count();
    println!(
        "# {}/{} amortize in < 4 reuses ({:.0}%; paper: 75% of cases < 4)",
        under4,
        finite.len(),
        100.0 * under4 as f64 / finite.len().max(1) as f64
    );
}
