//! Fig. 19 — FFT2D strong scaling (n = 20480): runtime of host-based vs
//! RW-CP-offloaded unpacking and the offload speedup.

use nca_loggopsim::fft2d::{strong_scaling, Fft2dConfig};

/// `(ranks, host_ms, rwcp_ms, speedup_percent)` series.
pub fn rows(quick: bool) -> Vec<(u32, f64, f64, f64)> {
    let cfg = Fft2dConfig::default();
    let ps: &[u32] = if quick {
        &[64, 128]
    } else {
        &[64, 128, 256, 512, 1024]
    };
    strong_scaling(&cfg, ps)
        .into_iter()
        .map(|(p, host, rwcp, s)| (p, host.runtime as f64 / 1e9, rwcp.runtime as f64 / 1e9, s))
        .collect()
}

/// Print the figure table.
pub fn print(quick: bool) {
    println!("# Fig. 19 — FFT2D strong scaling, n = 20480 (paper: ~26% at P=64)");
    println!("nodes\thost_ms\trwcp_ms\tspeedup_pct");
    for (p, h, r, s) in rows(quick) {
        println!("{p}\t{h:.1}\t{r:.1}\t{s:.1}");
    }
}
