//! Fig. 17 — data volume moved to/from main memory: RW-CP (offloaded)
//! vs host-based unpack, over the Fig. 16 experiments (histogram +
//! geometric means; paper reports a 3.8x geomean ratio).

use nca_memsim::cache::CacheConfig;
use nca_memsim::traffic::unpack_traffic;
use nca_sim::stats::{geomean, log2_histogram};
use nca_workloads::apps::all_workloads;

/// Per-workload `(label, offload KiB, host KiB)`.
pub fn rows(quick: bool) -> Vec<(String, f64, f64)> {
    all_workloads()
        .into_iter()
        .filter(|w| !quick || w.msg_bytes() <= 512 << 10)
        .map(|w| {
            let r = unpack_traffic(&w.dt, w.count, CacheConfig::i7_4770_llc());
            (
                w.label(),
                r.offload_bytes as f64 / 1024.0,
                r.host_bytes as f64 / 1024.0,
            )
        })
        .collect()
}

/// Print the histogram and geomeans.
pub fn print(quick: bool) {
    let data = rows(quick);
    println!("# Fig. 17 — memory transfer volumes (KiB)");
    println!("app\toffload_kib\thost_kib\tratio");
    for (label, o, h) in &data {
        println!("{label}\t{o:.1}\t{h:.1}\t{:.2}", h / o);
    }
    let off: Vec<f64> = data.iter().map(|d| d.1).collect();
    let host: Vec<f64> = data.iter().map(|d| d.2).collect();
    match (geomean(&off), geomean(&host)) {
        (Some(go), Some(gh)) => println!(
            "# geomean offload: {go:.1} KiB, host: {gh:.1} KiB, ratio {:.2}x (paper: 3.8x)",
            gh / go
        ),
        _ => println!("# geomean undefined (no workloads selected)"),
    }
    println!("# histogram (log2 buckets of KiB): offload | host");
    let ho = log2_histogram(&off);
    let hh = log2_histogram(&host);
    println!("offload\t{:?}", ho.buckets);
    println!("host\t{:?}", hh.buckets);
}
