//! Fig. 2 — latency of a one-byte put: RDMA vs sPIN, with the
//! PCIe / NIC / network breakdown.

use nca_sim::units::to_us;
use nca_spin::builtin::ContigProcessor;
use nca_spin::nic::{ReceiveSim, RunConfig};
use nca_spin::params::NicParams;

/// One bar of the figure.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// "RDMA" or "sPIN".
    pub path: &'static str,
    /// PCIe component (ps).
    pub pcie: u64,
    /// NIC component (ps).
    pub nic: u64,
    /// Network component (ps).
    pub network: u64,
}

impl Row {
    /// Total latency (ps).
    pub fn total(&self) -> u64 {
        self.pcie + self.nic + self.network
    }
}

/// The two bars, from the model parameters.
pub fn rows() -> Vec<Row> {
    let p = NicParams::default();
    vec![
        Row {
            path: "RDMA",
            pcie: p.pcie_latency,
            nic: p.nic_passthrough,
            network: p.net_latency,
        },
        Row {
            path: "sPIN",
            pcie: p.pcie_latency,
            nic: p.nic_passthrough + p.sched_dispatch + p.spin_min_handler(),
            network: p.net_latency,
        },
    ]
}

/// End-to-end simulated 1-byte sPIN put (cross-check of the breakdown).
pub fn simulated_spin_total() -> u64 {
    let p = NicParams::default();
    let handler = p.spin_min_handler();
    let proc_ = Box::new(ContigProcessor::new(0, handler));
    let report = ReceiveSim::run(proc_, vec![0xAB], 0, 1, &RunConfig::new(p));
    report.t_complete
}

/// Print the figure table.
pub fn print(_quick: bool) {
    println!("# Fig. 2 — one-byte put latency (us)");
    println!("path\tpcie\tnic\tnetwork\ttotal");
    let r = rows();
    for row in &r {
        println!(
            "{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            row.path,
            to_us(row.pcie),
            to_us(row.nic),
            to_us(row.network),
            to_us(row.total())
        );
    }
    let overhead = r[1].total() as f64 / r[0].total() as f64 - 1.0;
    println!("# sPIN overhead: {:.1}% (paper: +24.4%)", overhead * 100.0);
    println!(
        "# simulated sPIN end-to-end: {:.3} us",
        to_us(simulated_spin_total())
    );
}
