//! Ablations of the design parameters the paper exposes:
//!
//! * **ε** — the RW-CP scheduling-overhead bound (Sec. 3.2.4 lists it as
//!   a user-settable type attribute): smaller ε ⇒ more checkpoints ⇒
//!   more NIC memory but less blocked-RR serialization.
//! * **payload size** — the simulations fix 2 KiB packets; this sweep
//!   shows how the offload benefit shifts with packet size (γ scales
//!   with the payload).
//! * **out-of-order degree** — payload reordering exercises HPU-local
//!   resets and RW-CP checkpoint reverts.

use nca_core::baselines::host_pipelined_unpack;
use nca_core::costmodel::HostCostModel;
use nca_core::runner::{Experiment, Strategy};
use nca_sim::Pool;
use nca_spin::params::NicParams;
use nca_telemetry::Telemetry;

use super::vector_workload;

/// ε sweep: `(epsilon, throughput Gbit/s, nic KiB)` for RW-CP.
/// Configurations are independent; they run on an `NCMT_JOBS`-sized
/// pool (as do the other sweeps here), results in sweep order.
pub fn epsilon_sweep(quick: bool) -> Vec<(f64, f64, f64)> {
    let msg: u64 = if quick { 256 << 10 } else { 4 << 20 };
    Pool::from_env(None).par_map(vec![0.02, 0.05, 0.1, 0.2, 0.5, 1.0], |_, eps| {
        let (dt, count) = vector_workload(msg, 256);
        let mut exp = Experiment::new(dt.clone(), count, NicParams::with_hpus(16));
        exp.epsilon = eps;
        exp.verify = false;
        let r = exp.run(Strategy::RwCp);
        let nic = Strategy::RwCp
            .build(
                &dt,
                count,
                NicParams::with_hpus(16),
                eps,
                Telemetry::disabled(),
            )
            .nic_mem_bytes() as f64
            / 1024.0;
        (eps, r.throughput_gbit(), nic)
    })
}

/// Payload-size sweep: `(payload, [throughput per strategy])`.
pub fn payload_sweep(quick: bool) -> Vec<(u64, [f64; 4])> {
    let msg: u64 = if quick { 256 << 10 } else { 2 << 20 };
    Pool::from_env(None).par_map(vec![512u64, 1024, 2048, 4096, 8192], |_, payload| {
        let mut params = NicParams::with_hpus(16);
        params.payload_size = payload;
        let (dt, count) = vector_workload(msg, 128);
        let mut exp = Experiment::new(dt, count, params);
        exp.verify = false;
        let mut t = [0.0f64; 4];
        for (i, s) in Strategy::ALL.iter().enumerate() {
            t[i] = exp.run(*s).throughput_gbit();
        }
        (payload, t)
    })
}

/// Out-of-order sweep: `(seed?, [processing ms per strategy])`, first
/// row in order.
pub fn ooo_sweep(quick: bool) -> Vec<(Option<u64>, [f64; 4])> {
    let msg: u64 = if quick { 128 << 10 } else { 1 << 20 };
    Pool::from_env(None).par_map(vec![None, Some(1u64), Some(17), Some(99)], |_, seed| {
        let (dt, count) = vector_workload(msg, 256);
        let mut exp = Experiment::new(dt, count, NicParams::with_hpus(16));
        exp.out_of_order = seed;
        exp.verify = true; // correctness under reordering is the point
        let mut t = [0.0f64; 4];
        for (i, s) in Strategy::ALL.iter().enumerate() {
            t[i] = exp.run(*s).processing_time() as f64 / 1e9;
        }
        (seed, t)
    })
}

/// Pipelined-host ablation: `(block, host_gbit, pipelined_gbit,
/// rwcp_gbit)` — how much of the offload win survives a smarter host
/// baseline that overlaps unpack with reception.
pub fn pipelined_host_sweep(quick: bool) -> Vec<(u64, f64, f64, f64)> {
    let msg: u64 = if quick { 256 << 10 } else { 2 << 20 };
    Pool::from_env(None).par_map(vec![64u64, 256, 1024, 4096], |_, block| {
        let (dt, count) = vector_workload(msg, block);
        let mut exp = Experiment::new(dt.clone(), count, NicParams::with_hpus(16));
        exp.verify = false;
        let host = exp.run_host().throughput_gbit();
        let piped = host_pipelined_unpack(
            &dt,
            count,
            &NicParams::with_hpus(16),
            &HostCostModel::default(),
        )
        .throughput_gbit();
        let rwcp = exp.run(Strategy::RwCp).throughput_gbit();
        (block, host, piped, rwcp)
    })
}

/// Print all four ablations.
pub fn print(quick: bool) {
    println!("# Ablation 1 — RW-CP ε bound (256 B blocks)");
    println!("epsilon\tgbit\tnic_kib");
    for (e, t, n) in epsilon_sweep(quick) {
        println!("{e}\t{t:.1}\t{n:.1}");
    }
    println!("# Ablation 2 — packet payload size (128 B blocks)");
    println!("payload\tSpecialized\tRW-CP\tRO-CP\tHPU-local");
    for (p, t) in payload_sweep(quick) {
        println!("{p}\t{:.1}\t{:.1}\t{:.1}\t{:.1}", t[0], t[1], t[2], t[3]);
    }
    println!("# Ablation 3 — out-of-order delivery (processing ms)");
    println!("seed\tSpecialized\tRW-CP\tRO-CP\tHPU-local");
    for (s, t) in ooo_sweep(quick) {
        let label = s
            .map(|v| v.to_string())
            .unwrap_or_else(|| "in-order".into());
        println!(
            "{label}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            t[0], t[1], t[2], t[3]
        );
    }
    println!("# Ablation 4 — pipelined host baseline (Gbit/s)");
    println!("block\thost\thost_pipelined\tRW-CP");
    for (b, h, pi, rw) in pipelined_host_sweep(quick) {
        println!("{b}\t{h:.1}\t{pi:.1}\t{rw:.1}");
    }
}
