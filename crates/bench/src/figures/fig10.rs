//! Fig. 10 — RW-CP DDT-processing throughput: PULP (RTL model) vs
//! ARM (gem5 model), 1 MiB vector message.

use nca_pulp::arch::PulpConfig;
use nca_pulp::ddtproc::{rwcp_on_arm, rwcp_on_pulp};

/// `(block_bytes, pulp_gbit, arm_gbit)` series.
pub fn rows() -> Vec<(u64, f64, f64)> {
    let cfg = PulpConfig::default();
    let msg = 1u64 << 20;
    [32u64, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384]
        .iter()
        .map(|&b| {
            (
                b,
                rwcp_on_pulp(&cfg, msg, b, 2048).throughput_gbit,
                rwcp_on_arm(32, 800, msg, b, 2048),
            )
        })
        .collect()
}

/// Print the figure table.
pub fn print(_quick: bool) {
    println!("# Fig. 10 — RW-CP throughput on PULP vs ARM (1 MiB message)");
    println!("block_bytes\tpulp_gbit\tarm_gbit");
    for (b, p, a) in rows() {
        println!("{b}\t{p:.1}\t{a:.1}");
    }
}
