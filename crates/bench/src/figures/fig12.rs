//! Fig. 12 — payload-handler runtime breakdown (init / setup /
//! processing) per strategy, as a function of γ (contiguous regions per
//! packet).

use nca_core::runner::{Experiment, Strategy};
use nca_spin::params::NicParams;

use super::vector_workload;

/// One (strategy, γ) cell: mean per-handler phase times in µs.
#[derive(Debug, Clone, Copy)]
pub struct Row {
    /// Strategy label.
    pub strategy: &'static str,
    /// Contiguous regions per packet.
    pub gamma: u64,
    /// Mean init time (µs).
    pub init_us: f64,
    /// Mean setup time (µs), incl. catch-up.
    pub setup_us: f64,
    /// Mean processing time (µs).
    pub proc_us: f64,
}

/// Compute the figure.
pub fn rows(quick: bool) -> Vec<Row> {
    let msg: u64 = if quick { 128 << 10 } else { 1 << 20 };
    let gammas: &[u64] = if quick { &[1, 16] } else { &[1, 2, 4, 8, 16] };
    let mut out = Vec::new();
    for s in [
        Strategy::HpuLocal,
        Strategy::RoCp,
        Strategy::RwCp,
        Strategy::Specialized,
    ] {
        for &gamma in gammas {
            let block = 2048 / gamma;
            let (dt, count) = vector_workload(msg, block);
            let mut exp = Experiment::new(dt, count, NicParams::with_hpus(16));
            exp.verify = false;
            let report = exp.run(s);
            let n = report.handler_costs.len().max(1) as f64;
            let sum = report.handler_cost_sum();
            out.push(Row {
                strategy: s.label(),
                gamma,
                init_us: sum.init as f64 / n / 1e6,
                setup_us: sum.setup as f64 / n / 1e6,
                proc_us: sum.processing as f64 / n / 1e6,
            });
        }
    }
    out
}

/// Print the figure table.
pub fn print(quick: bool) {
    println!("# Fig. 12 — payload handler runtime breakdown (us per handler)");
    println!("strategy\tgamma\tinit\tsetup\tprocessing\ttotal");
    for r in rows(quick) {
        println!(
            "{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{:.3}",
            r.strategy,
            r.gamma,
            r.init_us,
            r.setup_us,
            r.proc_us,
            r.init_us + r.setup_us + r.proc_us
        );
    }
}
