//! # nca-bench — figure harnesses
//!
//! One module (and one binary under `src/bin/`) per figure of the
//! paper's evaluation; each recomputes the series the figure plots and
//! prints a TSV table. Pass `--quick` (or set `NCA_QUICK=1`) for a
//! reduced-size run used by the smoke tests and Criterion benches.
//!
//! | Figure | Module | Binary |
//! |--------|--------|--------|
//! | Fig. 2 | [`figures::fig02`] | `fig02_put_latency` |
//! | Fig. 8 | [`figures::fig08`] | `fig08_unpack_throughput` |
//! | Fig. 9b | [`figures::fig09b`] | `fig09b_area` |
//! | Fig. 9c | [`figures::fig09c`] | `fig09c_bandwidth` |
//! | Fig. 10 | [`figures::fig10`] | `fig10_pulp_vs_arm` |
//! | Fig. 11 | [`figures::fig11`] | `fig11_ipc` |
//! | Fig. 12 | [`figures::fig12`] | `fig12_handler_breakdown` |
//! | Fig. 13 | [`figures::fig13`] | `fig13_scalability` |
//! | Fig. 14 | [`figures::fig14`] | `fig14_dma_queue` |
//! | Fig. 15 | [`figures::fig15`] | `fig15_dma_timeline` |
//! | Fig. 16 | [`figures::fig16`] | `fig16_applications` |
//! | Fig. 17 | [`figures::fig17`] | `fig17_memory_traffic` |
//! | Fig. 18 | [`figures::fig18`] | `fig18_amortization` |
//! | Fig. 19 | [`figures::fig19`] | `fig19_fft2d_scaling` |
//! | Sec. 3.1 | [`figures::sender`] | `sender_strategies` |

pub mod bench_diff;
pub mod figures;

/// Whether a reduced-size run was requested (`--quick` argument or
/// `NCA_QUICK=1`).
pub fn quick_from_env_args() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("NCA_QUICK")
            .map(|v| v == "1")
            .unwrap_or(false)
}

/// Worker pool for a figure binary: `--jobs N` argument, else the
/// `NCMT_JOBS`/core-count defaults of [`nca_sim::Pool::from_env`].
/// Figure output is deterministic and ordered at any worker count.
pub fn pool_from_env_args() -> nca_sim::Pool {
    let args: Vec<String> = std::env::args().collect();
    let requested = args
        .iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok());
    nca_sim::Pool::from_env(requested)
}
