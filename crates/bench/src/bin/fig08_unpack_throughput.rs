//! Regenerates the corresponding paper figure; pass `--quick` for a
//! reduced-size smoke run.

fn main() {
    let quick = nca_bench::quick_from_env_args();
    nca_bench::figures::fig08::print(quick);
}
