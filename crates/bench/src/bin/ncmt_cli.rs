//! `ncmt_cli` — command-line experiment driver.
//!
//! Run custom datatype-offload experiments without writing code:
//!
//! ```sh
//! # a strided vector receive: 4096 blocks of 32 doubles, stride 64
//! ncmt_cli vector --count 4096 --blocklen 32 --stride 64 [--hpus 16] [--ooo 7]
//!
//! # irregular fixed-size blocks at seeded random offsets
//! ncmt_cli indexed --blocks 8192 --blocklen 4 --seed 42
//!
//! # one of the Fig. 16 application workloads
//! ncmt_cli app MILC/b
//!
//! # list application workloads
//! ncmt_cli list
//! ```

use nca_core::report::{report_config, strategy_report, UTILIZATION_BUCKET_PS};
use nca_core::runner::{CaptureSpec, Experiment, Strategy};
use nca_core::sweep::{cell_ok, FaultSweepSpec};
use nca_ddt::normalize::classify;
use nca_ddt::types::{elem, Datatype, DatatypeExt};
use nca_sim::{profile, FaultSpec, Pool};
use nca_spin::params::NicParams;
use nca_spin::sched::QueueDiscipline;
use nca_telemetry::export;
use nca_telemetry::report::{
    diff_reports, FaultSweepDoc, Json, ProfileDoc, ProfilePhase, ProfileWorker, RunReportDoc,
    DEFAULT_THRESHOLD,
};
use nca_traffic::{app_group, traffic_sweep, ArrivalKind, TrafficSweepSpec, APP_GROUPS};
use nca_workloads::apps::all_workloads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Every subcommand, for help text and the unknown-subcommand message.
const SUBCOMMANDS: [&str; 9] = [
    "vector",
    "indexed",
    "app",
    "list",
    "report-diff",
    "bench-diff",
    "fault-sweep",
    "traffic",
    "profile",
];

/// Whether the args ask for help (`--help`/`-h` anywhere).
fn wants_help(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_u64(args: &[String], name: &str, default: u64) -> u64 {
    flag(args, name)
        .map(|v| v.parse().unwrap_or_else(|_| die(&format!("bad {name}"))))
        .unwrap_or(default)
}

fn flag_f64(args: &[String], name: &str, default: f64) -> f64 {
    flag(args, name)
        .map(|v| v.parse().unwrap_or_else(|_| die(&format!("bad {name}"))))
        .unwrap_or(default)
}

/// Build the worker pool from `--jobs` (falling back to `NCMT_JOBS`,
/// then to the detected core count; see [`Pool::from_env`]).
fn pool(args: &[String]) -> Pool {
    let requested = flag(args, "--jobs").map(|v| v.parse().unwrap_or_else(|_| die("bad --jobs")));
    Pool::from_env(requested)
}

/// Parse the shared fault knobs (`--drop/--dup/--corrupt/--reorder-ns/
/// --fault-seed`) into a [`FaultSpec`]; inert when none are given.
fn fault_spec(args: &[String]) -> FaultSpec {
    FaultSpec {
        drop: flag_f64(args, "--drop", 0.0),
        duplicate: flag_f64(args, "--dup", 0.0),
        corrupt: flag_f64(args, "--corrupt", 0.0),
        reorder_window: flag_u64(args, "--reorder-ns", 0) * 1_000,
        seed: flag_u64(args, "--fault-seed", 1),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: ncmt_cli <{}> [flags]  (see --help)",
        SUBCOMMANDS.join("|")
    );
    std::process::exit(2)
}

fn usage() -> ! {
    println!(
        "ncmt_cli — datatype-offload experiment driver

subcommands:
  vector   --count N --blocklen B --stride S   strided blocks (doubles)
  indexed  --blocks N --blocklen B --seed K    irregular fixed-size blocks
  app      <LABEL>                             a Fig. 16 workload (see `ncmt_cli list`)
  list                                         list application workloads
  report-diff <BASE> <NEW> [--threshold T]     compare two --report-out files;
                                               exit 1 when any metric regresses
                                               more than T (default 0.05)
  bench-diff <BASE> <NEW> [--fail-over P]      compare two nca-criterion-baseline
             [--warn-over P] [--require A>B]   JSONs (BENCH_*.json) on per_sec;
                                               exit 1 when any bench is more than
                                               P% slower (default fail 10, warn 5)
                                               or a --require assertion fails
  fault-sweep [--seeds N] [fault flags]        run a seed × fault-rate matrix over
                                               all strategies; exit 1 unless every
                                               run is byte-exact & exactly-once
  traffic [--apps A --loads L ...]             open-loop multi-tenant traffic sweep:
                                               offered-load × discipline grid with
                                               per-tenant p50/p99/p999 + drop counts
  profile [--count N ...]                      self-profile a serial strategy sweep:
                                               attribute host wall-clock to simulator
                                               phases (event queue, handlers, DMA
                                               copies, telemetry, allocation) and
                                               write an ncmt-profile JSON artifact

`ncmt_cli fault-sweep --help` / `ncmt_cli traffic --help` /
`ncmt_cli profile --help` print the full per-subcommand flag reference.

fault flags (vector/indexed/app/fault-sweep):
  --drop P        per-packet drop probability (default 0)
  --dup P         per-packet duplication probability (default 0)
  --corrupt P     per-packet payload-corruption probability (default 0)
  --reorder-ns W  extra-delay reordering window in ns (default 0)
  --fault-seed K  fault-schedule seed (default 1; sweep uses K..K+N-1)

common flags:
  --jobs N        worker threads for the strategy/sweep loops (default:
                  NCMT_JOBS, else the detected core count; 0 = auto;
                  artifacts are byte-identical at any N)
  --hpus N        handler processing units (default 16)
  --copies N      datatype repetition count (default 1)
  --ooo SEED      shuffle payload-packet arrival order
  --epsilon E     RW-CP scheduling-overhead bound (default 0.2)
  --trace-out F   write a Chrome/Perfetto trace of all strategy runs to F
                  (load at https://ui.perfetto.dev; one process per
                  strategy/component, HPU spans, DMA-queue counters)
  --report-out F  write a machine-readable JSON run report to F: per-strategy
                  latency attribution, histograms, and model-vs-measured
                  validation (schema in EXPERIMENTS.md)"
    );
    std::process::exit(0)
}

fn run_experiment(dt: Datatype, copies: u32, args: &[String]) {
    let hpus = flag_u64(args, "--hpus", 16) as usize;
    let epsilon: f64 = flag(args, "--epsilon")
        .map(|v| v.parse().unwrap_or(0.2))
        .unwrap_or(0.2);
    let ooo = flag(args, "--ooo").map(|v| v.parse().unwrap_or_else(|_| die("bad --ooo")));
    let trace_out = flag(args, "--trace-out");
    let report_out = flag(args, "--report-out");
    // Per-strategy rings merged after the barrier reproduce exactly
    // what one shared ring would capture from the serial loop;
    // per-strategy scopes keep the overlapping runs apart.
    let capture = (trace_out.is_some() || report_out.is_some()).then_some(1usize << 22);
    let jobs = pool(args);

    let mut exp = Experiment::new(dt.clone(), copies, NicParams::with_hpus(hpus));
    exp.epsilon = epsilon;
    exp.out_of_order = ooo;
    exp.verify = dt.size * copies as u64 <= 16 << 20;
    exp.faults = fault_spec(args);
    let faulty = !exp.faults.is_inert();

    println!("datatype : {}", dt.signature());
    println!("shape    : {:?}", classify(&dt));
    println!(
        "message  : {:.1} KiB in {} regions (gamma = {:.1}), {} HPUs{}",
        dt.size as f64 * copies as f64 / 1024.0,
        nca_ddt::dataloop::compile(&dt, copies).blocks,
        exp.gamma(),
        hpus,
        if ooo.is_some() { ", out-of-order" } else { "" }
    );
    println!();
    println!(
        "{:<14} {:>12} {:>10} {:>12}",
        "method", "time (us)", "Gbit/s", "NIC KiB"
    );
    // All strategies run as independent pool jobs; printing happens
    // after the barrier, in Strategy::ALL order, from the merged sweep.
    // Alongside the raw ring, each job folds its events into a
    // bounded streaming aggregate (utilization block, counter tracks).
    let sweep = exp.run_all_captured(
        &jobs,
        CaptureSpec {
            ring_capacity: capture,
            stream_bucket_ps: capture.is_some().then_some(UTILIZATION_BUCKET_PS),
        },
    );
    for (s, run) in &sweep.runs {
        let rel = if faulty {
            let r = &run.report.rel;
            format!(
                "  rtx {} drop {} dup {} corrupt {} fallback {}",
                r.retransmissions,
                r.drops_injected,
                r.dups_suppressed,
                r.corrupts_rejected,
                r.host_fallback_packets
            )
        } else {
            String::new()
        };
        println!(
            "{:<14} {:>12.1} {:>10.1} {:>12.2}{}",
            s.label(),
            run.report.processing_time() as f64 / 1e6,
            run.report.throughput_gbit(),
            run.report.nic_mem_bytes as f64 / 1024.0,
            rel
        );
    }
    let host = exp.run_host();
    println!(
        "{:<14} {:>12.1} {:>10.1} {:>12.2}",
        "Host unpack",
        host.processing_time as f64 / 1e6,
        host.throughput_gbit(),
        0.0
    );
    let iov = exp.run_iovec();
    println!(
        "{:<14} {:>12.1} {:>10.1} {:>12.2}",
        "Portals iovec",
        iov.processing_time as f64 / 1e6,
        iov.throughput_gbit(),
        iov.nic_bytes as f64 / 1024.0
    );
    if exp.verify {
        println!("\nreceive buffers byte-verified ✓");
    }
    if capture.is_some() {
        if sweep.dropped > 0 {
            eprintln!(
                "warning: trace ring dropped {} event(s); the exported trace is a \
                 suffix of the run (see trace_dropped_events in the report)",
                sweep.dropped
            );
        }
        let events = sweep.events;
        if let Some(path) = &trace_out {
            // Streaming time series ride along as Perfetto counter
            // tracks, scoped per strategy like the raw events.
            let aggs: Vec<(&str, &nca_telemetry::StreamAggregate)> = sweep
                .aggregates
                .iter()
                .map(|(s, a)| (s.label(), a))
                .collect();
            std::fs::write(
                path,
                export::chrome_trace_json_with_aggregates(&events, &aggs),
            )
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            let dropped = sweep.dropped;
            println!(
                "\ntrace    : {} events → {path} (Perfetto/chrome://tracing){}",
                events.len(),
                if dropped > 0 {
                    format!(", {dropped} oldest dropped")
                } else {
                    String::new()
                }
            );
        }
        if let Some(path) = &report_out {
            let doc = RunReportDoc {
                version: RunReportDoc::VERSION,
                trace_dropped_events: sweep.dropped,
                config: report_config(&exp),
                strategies: sweep
                    .runs
                    .iter()
                    .map(|(s, run)| strategy_report(&exp, run, &events, s.label()))
                    .collect(),
            };
            std::fs::write(path, doc.to_json())
                .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
            println!("report   : {} strategies → {path}", doc.strategies.len());
        }
    }
}

fn fault_sweep_usage() -> ! {
    println!(
        "ncmt_cli fault-sweep — seed × fault-rate matrix over all strategies

Runs every strategy at fault scales 0.0/0.5/1.0 of the given rates for
each seed and verifies byte-exact, exactly-once delivery in every cell.
Exits 1 when any cell fails.

flags:
  --seeds N       number of fault seeds (default 4; uses K..K+N-1)
  --fault-seed K  first fault-schedule seed (default 1)
  --drop P        per-packet drop probability at scale 1.0 (default 0)
  --dup P         per-packet duplication probability (default 0)
  --corrupt P     per-packet payload-corruption probability (default 0)
  --reorder-ns W  extra-delay reordering window in ns (default 0)
  --count N       vector blocks of the swept datatype (default 512)
  --blocklen B    block length in doubles (default 16)
  --stride S      block stride (default 32)
  --hpus N        handler processing units (default 16)
  --jobs N        worker threads (default: NCMT_JOBS, else cores)
  --report-out F  write the ncmt-fault-sweep JSON matrix to F

at least one of --drop/--dup/--corrupt/--reorder-ns must be nonzero."
    );
    std::process::exit(0)
}

/// `fault-sweep`: run every strategy across a seed × fault-scale matrix
/// and verify byte-exact, exactly-once delivery in every cell. Exits 1
/// when any cell fails; `--report-out` writes the machine-readable
/// matrix (`ncmt-fault-sweep` schema).
fn fault_sweep(args: &[String]) -> ! {
    if wants_help(args) {
        fault_sweep_usage();
    }
    let seeds = flag_u64(args, "--seeds", 4);
    let seed0 = flag_u64(args, "--fault-seed", 1);
    let hpus = flag_u64(args, "--hpus", 16) as usize;
    let count = flag_u64(args, "--count", 512) as u32;
    let blocklen = flag_u64(args, "--blocklen", 16) as u32;
    let stride = flag_u64(args, "--stride", 32) as i64;
    let report_out = flag(args, "--report-out");
    let base = fault_spec(args);
    if base.is_inert() {
        die("fault-sweep needs at least one nonzero fault rate (--drop/--dup/--corrupt/--reorder-ns)");
    }
    // Scale 0.0 doubles as the lossless control: its cells must match
    // the fault-free pipeline (no reliability machinery engaged).
    const SCALES: [f64; 3] = [0.0, 0.5, 1.0];

    let dt = Datatype::vector(count, blocklen, stride, &elem::double());
    let spec = FaultSweepSpec {
        dt: dt.clone(),
        count: 1,
        params: NicParams::with_hpus(hpus),
        base,
        seed0,
        seeds,
        scales: SCALES.to_vec(),
        ring_capacity: 1 << 20,
    };
    println!(
        "fault-sweep: {} over {} seeds × {:?} scales × {} strategies",
        dt.signature(),
        seeds,
        SCALES,
        nca_core::runner::Strategy::ALL.len()
    );
    println!(
        "rates at 1.0: drop {} dup {} corrupt {} reorder {} ns\n",
        base.drop,
        base.duplicate,
        base.corrupt,
        base.reorder_window / 1_000
    );
    println!(
        "{:<6} {:>6} {:<14} {:>6} {:>6} {:>9} {:>9} {:>9} {:>6}",
        "seed", "scale", "strategy", "exact", "tx", "rtx", "rejected", "fallback", "rcvry"
    );

    // The matrix runs in parallel at (seed, scale)-cell granularity;
    // cells come back in serial order, so the table and the report
    // below are byte-identical at any --jobs value.
    let cells = nca_core::sweep::fault_sweep(&spec, &pool(args));
    let mut failures = 0u64;
    for cell in &cells {
        let ok = cell_ok(cell);
        if !ok {
            failures += 1;
        }
        let f = &cell.faults;
        println!(
            "{:<6} {:>6.1} {:<14} {:>6} {:>6} {:>9} {:>9} {:>9} {:>6}",
            cell.seed,
            cell.scale,
            cell.strategy,
            if ok { "yes" } else { "NO" },
            f.transmissions,
            f.retransmissions,
            f.corrupts_rejected,
            f.host_fallback_packets,
            f.checkpoint_reverts + f.catchup_blocks
        );
    }

    let doc = FaultSweepDoc {
        version: FaultSweepDoc::VERSION,
        drop: base.drop,
        duplicate: base.duplicate,
        corrupt: base.corrupt,
        reorder_ns: base.reorder_window / 1_000,
        cells,
    };
    if let Some(path) = &report_out {
        std::fs::write(path, doc.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("\nsweep report → {path}");
    }
    if failures > 0 {
        eprintln!("\nFAIL: {failures} cell(s) were not byte-exact exactly-once");
        std::process::exit(1)
    }
    println!(
        "\nall {} cells byte-exact, delivered exactly once ✓",
        doc.cells.len()
    );
    std::process::exit(0)
}

fn traffic_usage() -> ! {
    println!(
        "ncmt_cli traffic — open-loop multi-tenant traffic sweep

Drives the NIC model with concurrent tenants at sustained offered loads
and reports per-tenant p50/p99/p999 offer→completion latency, drops and
goodput for each (app × load × discipline) grid cell. All cells of one
(app, load) point share the arrival schedule, so latency differences
between disciplines are attributable to scheduling alone. The artifact
is byte-identical at any --jobs count.

flags:
  --apps A,B      application mixes: a Fig. 16 family ({}),
                  or an exact workload label like MILC/b
                  (default milc,comb,fft2d)
  --loads L,M     offered loads as fractions of line rate
                  (default 0.3,0.6,0.9,1.2)
  --disciplines D queue disciplines: blocked-rr,cfcfs,dfcfs (default all)
  --tenants N     concurrent tenants (default 4)
  --strategy S    strategy all tenants run: specialized|hpu-local|
                  ro-cp|rw-cp (default rw-cp)
  --arrival A     poisson | lognormal | mixed (default poisson;
                  mixed alternates per tenant)
  --sigma S       lognormal shape parameter (default 1.5)
  --flows N       flows per tenant for RSS steering (default 8)
  --rss N         RSS indirection-table slots (default 64)
  --horizon-us T  open-loop generation horizon in us (default 400)
  --buffer-kib N  override the NIC packet-buffer admission budget
  --seed K        master schedule seed (default 1)
  --hpus N        handler processing units (default 16)
  --jobs N        worker threads (default: NCMT_JOBS, else cores;
                  the report is byte-identical at any N)
  --report-out F  write the ncmt-traffic JSON document to F

exit status is 1 when any completed message failed byte verification.",
        APP_GROUPS.join(", ")
    );
    std::process::exit(0)
}

fn parse_strategy(s: &str) -> Option<Strategy> {
    let t = s.to_ascii_lowercase().replace(['-', '_'], "");
    Strategy::ALL
        .into_iter()
        .find(|st| st.label().to_ascii_lowercase().replace('-', "") == t)
}

/// Parse a comma-separated flag value through `parse`, with a default.
fn flag_csv<T>(
    args: &[String],
    name: &str,
    default: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Vec<T> {
    flag(args, name)
        .unwrap_or_else(|| default.to_string())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).unwrap_or_else(|| die(&format!("bad {name} entry {s:?}"))))
        .collect()
}

/// `traffic`: offered-load × discipline × app sweep with per-tenant
/// tail-latency accounting (`ncmt-traffic` schema).
fn traffic(args: &[String]) -> ! {
    if wants_help(args) {
        traffic_usage();
    }
    let mut spec = TrafficSweepSpec::new(flag_u64(args, "--seed", 1));
    spec.apps = flag_csv(args, "--apps", "milc,comb,fft2d", |s| {
        app_group(s).map(|_| s.to_string())
    });
    spec.loads = flag_csv(args, "--loads", "0.3,0.6,0.9,1.2", |s| {
        s.parse::<f64>().ok().filter(|l| *l > 0.0)
    });
    spec.disciplines = flag_csv(
        args,
        "--disciplines",
        "blocked-rr,cfcfs,dfcfs",
        QueueDiscipline::parse,
    );
    spec.tenants = flag_u64(args, "--tenants", 4) as usize;
    spec.strategy = flag(args, "--strategy")
        .map(|s| parse_strategy(&s).unwrap_or_else(|| die(&format!("bad --strategy {s:?}"))))
        .unwrap_or(Strategy::RwCp);
    spec.arrival = flag(args, "--arrival")
        .map(|s| ArrivalKind::parse(&s).unwrap_or_else(|| die(&format!("bad --arrival {s:?}"))))
        .unwrap_or(ArrivalKind::Poisson);
    spec.sigma = flag_f64(args, "--sigma", 1.5);
    spec.flows_per_tenant = flag_u64(args, "--flows", 8);
    spec.rss_entries = flag_u64(args, "--rss", 64) as usize;
    spec.horizon_ps = nca_sim::us(flag_u64(args, "--horizon-us", 400));
    spec.hpus = flag_u64(args, "--hpus", 16) as usize;
    spec.pkt_buffer_bytes = flag(args, "--buffer-kib")
        .map(|v| v.parse::<u64>().unwrap_or_else(|_| die("bad --buffer-kib")) << 10);
    let report_out = flag(args, "--report-out");

    println!(
        "traffic: {} × {:?} loads × {} disciplines, {} {} tenants ({} arrivals), {} HPUs",
        spec.apps.join("/"),
        spec.loads,
        spec.disciplines.len(),
        spec.tenants,
        spec.strategy.label(),
        spec.arrival.label(),
        spec.hpus
    );
    println!();
    println!(
        "{:<8} {:<11} {:>5} {:<4} {:>7} {:>7} {:>6} {:>5} {:>9} {:>9} {:>9} {:>8}",
        "app",
        "discipline",
        "load",
        "ten",
        "offered",
        "compl",
        "drop",
        "lost",
        "p50 us",
        "p99 us",
        "p999 us",
        "Gbit/s"
    );
    let doc = traffic_sweep(&spec, &pool(args));
    for c in &doc.cells {
        for t in &c.tenants {
            println!(
                "{:<8} {:<11} {:>5.2} {:<4} {:>7} {:>7} {:>6} {:>5} {:>9.1} {:>9.1} {:>9.1} {:>8.1}",
                c.app,
                c.discipline,
                c.offered_load,
                t.tenant,
                t.offered,
                t.completed,
                t.dropped,
                t.lost,
                t.latency.p50 as f64 / 1e6,
                t.latency.p99 as f64 / 1e6,
                t.latency.p999 as f64 / 1e6,
                t.goodput_gbit
            );
        }
    }
    if let Some(path) = &report_out {
        std::fs::write(path, doc.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("\ntraffic report → {path}");
    }
    if !doc.all_byte_exact() {
        eprintln!("\nFAIL: a completed message was not byte-exact");
        std::process::exit(1)
    }
    println!("\nall completed messages byte-verified ✓");
    std::process::exit(0)
}

fn profile_usage() -> ! {
    println!(
        "ncmt_cli profile — simulator self-profiler

Runs the full strategy sweep serially with the self-profiler on and
attributes the host wall-clock of the sweep to simulator phases:
event-queue operations, handler execution, DMA-copy kernels, telemetry
emission, and allocation/packing. Phases nest innermost-wins, so the
totals are disjoint and tile the wall-clock exactly
(attributed + other = wall).

flags:
  --count N       vector blocks of the profiled datatype (default 512)
  --blocklen B    block length in doubles (default 16)
  --stride S      block stride (default 32)
  --copies N      datatype repetition count (default 1)
  --hpus N        handler processing units (default 16)
  --epsilon E     RW-CP scheduling-overhead bound (default 0.2)
  --out F         write the ncmt-profile JSON artifact to F

needs a binary compiled with the nca-sim `self-profile` feature (the
nca-bench build turns it on); otherwise the subcommand exits 2."
    );
    std::process::exit(0)
}

/// `profile`: run the strategy sweep serially under the self-profiler
/// and render/write the `ncmt-profile` phase attribution.
fn profile_cmd(args: &[String]) -> ! {
    if wants_help(args) {
        profile_usage();
    }
    if !profile::is_compiled() {
        die("this binary was built without the nca-sim `self-profile` feature");
    }
    let count = flag_u64(args, "--count", 512) as u32;
    let blocklen = flag_u64(args, "--blocklen", 16) as u32;
    let stride = flag_u64(args, "--stride", 32) as i64;
    let copies = flag_u64(args, "--copies", 1) as u32;
    let hpus = flag_u64(args, "--hpus", 16) as usize;
    let out = flag(args, "--out");

    let dt = Datatype::vector(count, blocklen, stride, &elem::double());
    let mut exp = Experiment::new(dt.clone(), copies, NicParams::with_hpus(hpus));
    exp.epsilon = flag_f64(args, "--epsilon", 0.2);
    let command = format!(
        "profile vector --count {count} --blocklen {blocklen} --stride {stride} \
         --copies {copies} --hpus {hpus}"
    );
    println!(
        "profiling: {} × {copies}, {hpus} HPUs (serial sweep)",
        dt.signature()
    );

    // Serial pool: the whole sweep runs on this thread, so the profile
    // is one clean timeline under worker 0. Streaming aggregation stays
    // on so the telemetry phase reflects the production emission path.
    profile::reset();
    profile::set_enabled(true);
    let wall = std::time::Instant::now();
    let sweep = exp.run_all_captured(
        &Pool::serial(),
        CaptureSpec {
            ring_capacity: None,
            stream_bucket_ps: Some(UTILIZATION_BUCKET_PS),
        },
    );
    let wall_ns = wall.elapsed().as_nanos() as u64;
    profile::set_enabled(false);
    let snap = profile::snapshot();
    profile::reset();
    drop(sweep);

    let doc = ProfileDoc {
        version: ProfileDoc::VERSION,
        command,
        wall_ns,
        workers: snap
            .iter()
            .map(|w| ProfileWorker {
                worker: w.worker as u64,
                phases: profile::Phase::ALL
                    .iter()
                    .map(|p| ProfilePhase {
                        phase: p.label().to_string(),
                        ns: w.ns[p.index()],
                        count: w.counts[p.index()],
                    })
                    .collect(),
            })
            .collect(),
    };

    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>8}",
        "phase", "ms", "enters", "% wall"
    );
    for p in doc.totals() {
        println!(
            "{:<14} {:>12.3} {:>12} {:>8.1}",
            p.phase,
            p.ns as f64 / 1e6,
            p.count,
            if wall_ns > 0 {
                p.ns as f64 / wall_ns as f64 * 100.0
            } else {
                0.0
            }
        );
    }
    println!(
        "{:<14} {:>12.3} {:>12} {:>8.1}",
        "other",
        doc.other_ns() as f64 / 1e6,
        "",
        if wall_ns > 0 {
            doc.other_ns() as f64 / wall_ns as f64 * 100.0
        } else {
            0.0
        }
    );
    println!(
        "{:<14} {:>12.3}  ({} worker(s); attributed + other = wall)",
        "wall",
        wall_ns as f64 / 1e6,
        doc.workers.len()
    );
    if let Some(path) = &out {
        std::fs::write(path, doc.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("\nprofile  → {path}");
    }
    std::process::exit(0)
}

fn report_diff(args: &[String]) -> ! {
    let (Some(base_path), Some(new_path)) = (args.get(1), args.get(2)) else {
        die("report-diff needs <BASE> <NEW>")
    };
    let threshold: f64 = flag(args, "--threshold")
        .map(|v| v.parse().unwrap_or_else(|_| die("bad --threshold")))
        .unwrap_or(DEFAULT_THRESHOLD);
    let parse = |path: &String| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2)
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2)
        })
    };
    let (base, new) = (parse(base_path), parse(new_path));
    let diff = diff_reports(&base, &new, threshold).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2)
    });
    print!("{}", diff.render());
    std::process::exit(if diff.regressions() > 0 { 1 } else { 0 })
}

/// `bench-diff`: gate a fresh criterion-shim baseline against a
/// committed one on throughput. This is what the CI `bench-gate` job
/// runs; the thresholds and the missing-bench policy live in
/// [`nca_bench::bench_diff`].
fn bench_diff(args: &[String]) -> ! {
    use nca_bench::bench_diff::{diff_baselines, parse_baseline, parse_require};
    let (Some(base_path), Some(new_path)) = (args.get(1), args.get(2)) else {
        die("bench-diff needs <BASE> <NEW>")
    };
    let warn_over = flag_f64(args, "--warn-over", 5.0);
    let fail_over = flag_f64(args, "--fail-over", 10.0);
    // Every `--require A>B` occurrence, in order.
    let requires: Vec<(String, String)> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--require")
        .map(|(i, _)| {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| die("--require needs a value"));
            parse_require(v).unwrap_or_else(|| die(&format!("bad --require {v:?} (want A>B)")))
        })
        .collect();
    let load = |path: &String| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2)
        });
        parse_baseline(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2)
        })
    };
    let (base, new) = (load(base_path), load(new_path));
    let diff = diff_baselines(&base, &new, warn_over, fail_over, &requires);
    print!("{}", diff.render());
    std::process::exit(if diff.failures() > 0 { 1 } else { 0 })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // `fault-sweep --help` / `traffic --help` / `profile --help` print
    // their own flag reference; everywhere else help falls through to
    // the global usage.
    if args.is_empty()
        || (wants_help(&args) && !matches!(args[0].as_str(), "fault-sweep" | "traffic" | "profile"))
    {
        usage();
    }
    let copies = |a: &[String]| flag_u64(a, "--copies", 1) as u32;
    match args[0].as_str() {
        "vector" => {
            let count = flag_u64(&args, "--count", 4096) as u32;
            let blocklen = flag_u64(&args, "--blocklen", 32) as u32;
            let stride = flag_u64(&args, "--stride", 64) as i64;
            let dt = Datatype::vector(count, blocklen, stride, &elem::double());
            run_experiment(dt, copies(&args), &args);
        }
        "indexed" => {
            let blocks = flag_u64(&args, "--blocks", 8192);
            let blocklen = flag_u64(&args, "--blocklen", 4) as u32;
            let seed = flag_u64(&args, "--seed", 1);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut displs = Vec::with_capacity(blocks as usize);
            let mut at = 0i64;
            for _ in 0..blocks {
                displs.push(at);
                at += blocklen as i64 + rng.random_range(1..=4i64);
            }
            let dt = Datatype::indexed_block(blocklen, &displs, &elem::double())
                .unwrap_or_else(|e| die(&e.to_string()));
            run_experiment(dt, copies(&args), &args);
        }
        "app" => {
            let label = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| die("app needs a label"));
            let w = all_workloads()
                .into_iter()
                .find(|w| w.label() == label)
                .unwrap_or_else(|| die(&format!("unknown workload {label}; try `ncmt_cli list`")));
            println!("workload : {} ({})", w.label(), w.ddt_class);
            run_experiment(w.dt.clone(), w.count, &args);
        }
        "list" => {
            println!(
                "{:<14} {:<20} {:>10} {:>8}",
                "workload", "class", "size KiB", "gamma"
            );
            for w in all_workloads() {
                println!(
                    "{:<14} {:<20} {:>10.1} {:>8.1}",
                    w.label(),
                    w.ddt_class,
                    w.msg_bytes() as f64 / 1024.0,
                    w.gamma(2048)
                );
            }
        }
        "report-diff" => report_diff(&args),
        "bench-diff" => bench_diff(&args),
        "fault-sweep" => fault_sweep(&args),
        "traffic" => traffic(&args),
        "profile" => profile_cmd(&args),
        other => die(&format!(
            "unknown subcommand {other}; valid subcommands: {}",
            SUBCOMMANDS.join(", ")
        )),
    }
}
