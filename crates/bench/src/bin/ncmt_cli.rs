//! `ncmt_cli` — command-line experiment driver.
//!
//! Run custom datatype-offload experiments without writing code:
//!
//! ```sh
//! # a strided vector receive: 4096 blocks of 32 doubles, stride 64
//! ncmt_cli vector --count 4096 --blocklen 32 --stride 64 [--hpus 16] [--ooo 7]
//!
//! # irregular fixed-size blocks at seeded random offsets
//! ncmt_cli indexed --blocks 8192 --blocklen 4 --seed 42
//!
//! # one of the Fig. 16 application workloads
//! ncmt_cli app MILC/b
//!
//! # a declarative scenario file (see scenarios/)
//! ncmt_cli run scenarios/fig16.json --report-out fig16.tsv
//! ```
//!
//! Every experiment family compiles down to [`nca_scenario`]: the
//! `vector`/`indexed`/`app`/`fault-sweep`/`traffic` subcommands are
//! thin flag-to-[`Scenario`] wrappers over the same execution layer
//! `run <scenario.json>` uses, so both entry points produce
//! byte-identical tables and artifacts.

use nca_core::report::UTILIZATION_BUCKET_PS;
use nca_core::runner::{CaptureSpec, Experiment, Strategy};
use nca_ddt::types::{elem, Datatype, DatatypeExt};
use nca_scenario::{
    parse_scenario, parse_strategy, FaultsSpec, RunOptions, Scenario, ScenarioKind, TrafficSpec,
    WorkloadSpec,
};
use nca_sim::{profile, FaultSpec, Pool};
use nca_spin::nic::EngineMode;
use nca_spin::params::NicParams;
use nca_spin::sched::QueueDiscipline;
use nca_telemetry::report::{
    diff_reports, Json, ProfileDoc, ProfilePhase, ProfileWorker, DEFAULT_THRESHOLD,
};
use nca_traffic::{app_group, ArrivalKind, APP_GROUPS};
use nca_workloads::apps::all_workloads;

/// One dispatch-table entry: every subcommand is a diverging function,
/// with an optional dedicated `--help` renderer (commands without one
/// fall back to the global usage).
struct Cmd {
    name: &'static str,
    help: Option<fn() -> !>,
    run: fn(&[String]) -> !,
}

/// The single subcommand table: lookup, help dispatch and the
/// unknown-subcommand message all derive from it.
const COMMANDS: &[Cmd] = &[
    Cmd {
        name: "vector",
        help: None,
        run: vector_cmd,
    },
    Cmd {
        name: "indexed",
        help: None,
        run: indexed_cmd,
    },
    Cmd {
        name: "app",
        help: None,
        run: app_cmd,
    },
    Cmd {
        name: "list",
        help: None,
        run: list_cmd,
    },
    Cmd {
        name: "run",
        help: Some(run_usage),
        run: run_cmd,
    },
    Cmd {
        name: "report-diff",
        help: None,
        run: report_diff,
    },
    Cmd {
        name: "bench-diff",
        help: None,
        run: bench_diff,
    },
    Cmd {
        name: "fault-sweep",
        help: Some(fault_sweep_usage),
        run: fault_sweep,
    },
    Cmd {
        name: "traffic",
        help: Some(traffic_usage),
        run: traffic,
    },
    Cmd {
        name: "profile",
        help: Some(profile_usage),
        run: profile_cmd,
    },
];

fn names() -> Vec<&'static str> {
    COMMANDS.iter().map(|c| c.name).collect()
}

/// Whether the args ask for help (`--help`/`-h` anywhere).
fn wants_help(args: &[String]) -> bool {
    args.iter().any(|a| a == "--help" || a == "-h")
}

fn flag(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn flag_u64(args: &[String], name: &str, default: u64) -> u64 {
    flag(args, name)
        .map(|v| v.parse().unwrap_or_else(|_| die(&format!("bad {name}"))))
        .unwrap_or(default)
}

fn flag_f64(args: &[String], name: &str, default: f64) -> f64 {
    flag(args, name)
        .map(|v| v.parse().unwrap_or_else(|_| die(&format!("bad {name}"))))
        .unwrap_or(default)
}

/// Build the worker pool from `--jobs` (falling back to `NCMT_JOBS`,
/// then to the detected core count; see [`Pool::from_env`]).
fn pool(args: &[String]) -> Pool {
    let requested = flag(args, "--jobs").map(|v| v.parse().unwrap_or_else(|_| die("bad --jobs")));
    Pool::from_env(requested)
}

/// Parse the shared fault knobs (`--drop/--dup/--corrupt/--reorder-ns/
/// --fault-seed`) into a [`FaultSpec`]; inert when none are given.
fn fault_spec(args: &[String]) -> FaultSpec {
    FaultSpec {
        drop: flag_f64(args, "--drop", 0.0),
        duplicate: flag_f64(args, "--dup", 0.0),
        corrupt: flag_f64(args, "--corrupt", 0.0),
        reorder_window: flag_u64(args, "--reorder-ns", 0) * 1_000,
        seed: flag_u64(args, "--fault-seed", 1),
    }
}

/// The scenario-schema faults section for the same flags.
fn faults_section(args: &[String]) -> FaultsSpec {
    let f = fault_spec(args);
    FaultsSpec {
        drop: f.drop,
        duplicate: f.duplicate,
        corrupt: f.corrupt,
        reorder_ns: f.reorder_window / 1_000,
        seed: f.seed,
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: ncmt_cli <{}> [flags]  (see --help)",
        names().join("|")
    );
    std::process::exit(2)
}

fn usage() -> ! {
    println!(
        "ncmt_cli — datatype-offload experiment driver

subcommands:
  vector   --count N --blocklen B --stride S   strided blocks (doubles)
  indexed  --blocks N --blocklen B --seed K    irregular fixed-size blocks
  app      <LABEL>                             a Fig. 16 workload (see `ncmt_cli list`)
  list                                         list application workloads
  run      <SCENARIO.json>                     compile and run a declarative
                                               scenario file (workload × traffic ×
                                               faults × scheduling × sweep; see
                                               scenarios/ and `ncmt_cli run --help`)
  report-diff <BASE> <NEW> [--threshold T]     compare two --report-out files;
                                               exit 1 when any metric regresses
                                               more than T (default 0.05)
  bench-diff <BASE> <NEW> [--fail-over P]      compare two nca-criterion-baseline
             [--warn-over P] [--require A>B]   JSONs (BENCH_*.json) on per_sec;
                                               exit 1 when any bench is more than
                                               P% slower (default fail 10, warn 5)
                                               or a --require assertion fails
  fault-sweep [--seeds N] [fault flags]        run a seed × fault-rate matrix over
                                               all strategies; exit 1 unless every
                                               run is byte-exact & exactly-once
  traffic [--apps A --loads L ...]             open-loop multi-tenant traffic sweep:
                                               offered-load × discipline grid with
                                               per-tenant p50/p99/p999 + drop counts
  profile [--count N ...]                      self-profile a serial strategy sweep:
                                               attribute host wall-clock to simulator
                                               phases (event queue, handlers, DMA
                                               copies, telemetry, allocation) and
                                               write an ncmt-profile JSON artifact

`ncmt_cli run --help` / `ncmt_cli fault-sweep --help` /
`ncmt_cli traffic --help` / `ncmt_cli profile --help` print the full
per-subcommand flag reference.

fault flags (vector/indexed/app/fault-sweep):
  --drop P        per-packet drop probability (default 0)
  --dup P         per-packet duplication probability (default 0)
  --corrupt P     per-packet payload-corruption probability (default 0)
  --reorder-ns W  extra-delay reordering window in ns (default 0)
  --fault-seed K  fault-schedule seed (default 1; sweep uses K..K+N-1)

common flags:
  --jobs N        worker threads for the strategy/sweep loops (default:
                  NCMT_JOBS, else the detected core count; 0 = auto;
                  artifacts are byte-identical at any N)
  --hpus N        handler processing units (default 16)
  --copies N      datatype repetition count (default 1)
  --ooo SEED      shuffle payload-packet arrival order
  --engine M      DMA engine: auto | event | eager (default auto; an
                  eager request under telemetry capture falls back to
                  the event engine and flags it in the run report)
  --epsilon E     RW-CP scheduling-overhead bound (default 0.2)
  --trace-out F   write a Chrome/Perfetto trace of all strategy runs to F
                  (load at https://ui.perfetto.dev; one process per
                  strategy/component, HPU spans, DMA-queue counters)
  --report-out F  write a machine-readable JSON run report to F: per-strategy
                  latency attribution, histograms, and model-vs-measured
                  validation (schema in EXPERIMENTS.md)"
    );
    std::process::exit(0)
}

/// Shared tail of the `vector`/`indexed`/`app` wrappers: fold the
/// common flags into the scenario, compile, run, emit.
fn strategy_cmd(mut scn: Scenario, args: &[String]) -> ! {
    scn.scheduling.hpus = flag_u64(args, "--hpus", 16);
    scn.scheduling.epsilon = flag_f64(args, "--epsilon", 0.2);
    scn.scheduling.copies = flag_u64(args, "--copies", 1) as u32;
    scn.scheduling.out_of_order =
        flag(args, "--ooo").map(|v| v.parse().unwrap_or_else(|_| die("bad --ooo")));
    scn.scheduling.engine = flag(args, "--engine")
        .map(|s| EngineMode::parse(&s).unwrap_or_else(|| die(&format!("bad --engine {s:?}"))))
        .unwrap_or(EngineMode::Auto);
    scn.faults = faults_section(args);
    run_scenario(&scn, args)
}

/// Compile and run a scenario, then print/write/exit like the legacy
/// subcommands always did.
fn run_scenario(scn: &Scenario, args: &[String]) -> ! {
    let trace_out = flag(args, "--trace-out");
    let report_out = flag(args, "--report-out");
    let plan = scn.compile().unwrap_or_else(|e| die(&e));
    let out = plan.run(
        &pool(args),
        &RunOptions {
            want_trace: trace_out.is_some(),
            want_report: report_out.is_some(),
        },
    );
    emit(out, trace_out.as_ref(), report_out.as_ref())
}

/// Print the run's table, write any requested artifacts, and exit
/// with the run's status.
fn emit(out: nca_scenario::Outcome, trace_out: Option<&String>, report_out: Option<&String>) -> ! {
    print!("{}", out.stdout);
    if let Some(w) = &out.warn {
        eprintln!("{w}");
    }
    if let (Some(t), Some(path)) = (&out.trace, trace_out) {
        std::fs::write(path, &t.text).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("{}", t.line.replace("{path}", path));
    }
    if let (Some(a), Some(path)) = (&out.artifact, report_out) {
        std::fs::write(path, &a.text).unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("{}", a.line.replace("{path}", path));
    }
    if let Some(f) = &out.fail {
        eprintln!("{f}");
        std::process::exit(1)
    }
    if let Some(v) = &out.verdict {
        println!("{v}");
    }
    std::process::exit(0)
}

fn vector_cmd(args: &[String]) -> ! {
    let mut scn = Scenario::new("cli-vector", ScenarioKind::StrategyRun);
    scn.workload = Some(WorkloadSpec::Vector {
        count: flag_u64(args, "--count", 4096) as u32,
        blocklen: flag_u64(args, "--blocklen", 32) as u32,
        stride: flag_u64(args, "--stride", 64) as i64,
    });
    strategy_cmd(scn, args)
}

fn indexed_cmd(args: &[String]) -> ! {
    let mut scn = Scenario::new("cli-indexed", ScenarioKind::StrategyRun);
    scn.workload = Some(WorkloadSpec::Indexed {
        blocks: flag_u64(args, "--blocks", 8192),
        blocklen: flag_u64(args, "--blocklen", 4) as u32,
        seed: flag_u64(args, "--seed", 1),
    });
    strategy_cmd(scn, args)
}

fn app_cmd(args: &[String]) -> ! {
    let label = args
        .get(1)
        .cloned()
        .unwrap_or_else(|| die("app needs a label"));
    if !all_workloads().iter().any(|w| w.label() == label) {
        die(&format!("unknown workload {label}; try `ncmt_cli list`"));
    }
    let mut scn = Scenario::new("cli-app", ScenarioKind::StrategyRun);
    scn.workload = Some(WorkloadSpec::App { label });
    strategy_cmd(scn, args)
}

fn list_cmd(_args: &[String]) -> ! {
    println!(
        "{:<14} {:<20} {:>10} {:>8}",
        "workload", "class", "size KiB", "gamma"
    );
    for w in all_workloads() {
        println!(
            "{:<14} {:<20} {:>10.1} {:>8.1}",
            w.label(),
            w.ddt_class,
            w.msg_bytes() as f64 / 1024.0,
            w.gamma(2048)
        );
    }
    std::process::exit(0)
}

fn run_usage() -> ! {
    println!(
        "ncmt_cli run — compile and run a declarative scenario file

A scenario is one JSON document naming the workload, fault model,
scheduling setup, telemetry capture, traffic mix and sweep axes; the
strict parser rejects unknown keys with the offending path. Scenario
kinds: strategy-run, fault-sweep, traffic, fig16, ddt-host-compare.
Shipped scenarios live in scenarios/; the full schema reference is in
EXPERIMENTS.md.

usage: ncmt_cli run <SCENARIO.json> [flags]

flags:
  --jobs N        worker threads (default: NCMT_JOBS, else cores;
                  artifacts are byte-identical at any N)
  --report-out F  write the scenario's machine-readable artifact to F
                  (run report, fault-sweep matrix, traffic document,
                  figure table or ddt-compare document, by kind)
  --trace-out F   strategy-run scenarios: write a Perfetto trace to F

exit status follows the scenario's own verification (e.g. 1 when a
fault-sweep cell is not byte-exact exactly-once)."
    );
    std::process::exit(0)
}

fn run_cmd(args: &[String]) -> ! {
    let path = args
        .get(1)
        .filter(|p| !p.starts_with("--"))
        .unwrap_or_else(|| die("run needs a scenario file; see `ncmt_cli run --help`"));
    let text =
        std::fs::read_to_string(path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    let scn = parse_scenario(&text).unwrap_or_else(|e| die(&e));
    run_scenario(&scn, args)
}

fn fault_sweep_usage() -> ! {
    println!(
        "ncmt_cli fault-sweep — seed × fault-rate matrix over all strategies

Runs every strategy at fault scales 0.0/0.5/1.0 of the given rates for
each seed and verifies byte-exact, exactly-once delivery in every cell.
Exits 1 when any cell fails. Equivalent to a `fault-sweep` scenario
(see `ncmt_cli run --help`).

flags:
  --seeds N       number of fault seeds (default 4; uses K..K+N-1)
  --fault-seed K  first fault-schedule seed (default 1)
  --drop P        per-packet drop probability at scale 1.0 (default 0)
  --dup P         per-packet duplication probability (default 0)
  --corrupt P     per-packet payload-corruption probability (default 0)
  --reorder-ns W  extra-delay reordering window in ns (default 0)
  --count N       vector blocks of the swept datatype (default 512)
  --blocklen B    block length in doubles (default 16)
  --stride S      block stride (default 32)
  --hpus N        handler processing units (default 16)
  --jobs N        worker threads (default: NCMT_JOBS, else cores)
  --report-out F  write the ncmt-fault-sweep JSON matrix to F

at least one of --drop/--dup/--corrupt/--reorder-ns must be nonzero."
    );
    std::process::exit(0)
}

/// `fault-sweep`: thin wrapper building a `fault-sweep` scenario from
/// the legacy flags; the matrix itself runs in [`nca_scenario::exec`].
fn fault_sweep(args: &[String]) -> ! {
    let base = fault_spec(args);
    if base.is_inert() {
        die("fault-sweep needs at least one nonzero fault rate (--drop/--dup/--corrupt/--reorder-ns)");
    }
    let mut scn = Scenario::new("cli-fault-sweep", ScenarioKind::FaultSweep);
    scn.workload = Some(WorkloadSpec::Vector {
        count: flag_u64(args, "--count", 512) as u32,
        blocklen: flag_u64(args, "--blocklen", 16) as u32,
        stride: flag_u64(args, "--stride", 32) as i64,
    });
    scn.scheduling.hpus = flag_u64(args, "--hpus", 16);
    scn.faults = faults_section(args);
    scn.sweep.seeds = flag_u64(args, "--seeds", 4);
    scn.sweep.seed0 = flag_u64(args, "--fault-seed", 1);
    run_scenario(&scn, args)
}

fn traffic_usage() -> ! {
    println!(
        "ncmt_cli traffic — open-loop multi-tenant traffic sweep

Drives the NIC model with concurrent tenants at sustained offered loads
and reports per-tenant p50/p99/p999 offer→completion latency, drops and
goodput for each (app × load × discipline) grid cell. All cells of one
(app, load) point share the arrival schedule, so latency differences
between disciplines are attributable to scheduling alone. The artifact
is byte-identical at any --jobs count. Equivalent to a `traffic`
scenario (see `ncmt_cli run --help`).

flags:
  --apps A,B      application mixes: a Fig. 16 family ({}),
                  or an exact workload label like MILC/b
                  (default milc,comb,fft2d)
  --loads L,M     offered loads as fractions of line rate
                  (default 0.3,0.6,0.9,1.2)
  --disciplines D queue disciplines: blocked-rr,cfcfs,dfcfs (default all)
  --tenants N     concurrent tenants (default 4)
  --strategy S    strategy all tenants run: specialized|hpu-local|
                  ro-cp|rw-cp (default rw-cp)
  --arrival A     poisson | lognormal | mixed (default poisson;
                  mixed alternates per tenant)
  --sigma S       lognormal shape parameter (default 1.5)
  --flows N       flows per tenant for RSS steering (default 8)
  --rss N         RSS indirection-table slots (default 64)
  --horizon-us T  open-loop generation horizon in us (default 400)
  --buffer-kib N  override the NIC packet-buffer admission budget
  --seed K        master schedule seed (default 1)
  --hpus N        handler processing units (default 16)
  --jobs N        worker threads (default: NCMT_JOBS, else cores;
                  the report is byte-identical at any N)
  --report-out F  write the ncmt-traffic JSON document to F

exit status is 1 when any completed message failed byte verification.",
        APP_GROUPS.join(", ")
    );
    std::process::exit(0)
}

/// Parse a comma-separated flag value through `parse`, with a default.
fn flag_csv<T>(
    args: &[String],
    name: &str,
    default: &str,
    parse: impl Fn(&str) -> Option<T>,
) -> Vec<T> {
    flag(args, name)
        .unwrap_or_else(|| default.to_string())
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse(s).unwrap_or_else(|| die(&format!("bad {name} entry {s:?}"))))
        .collect()
}

/// `traffic`: thin wrapper building a `traffic` scenario from the
/// legacy flags; the grid itself runs in [`nca_scenario::exec`].
fn traffic(args: &[String]) -> ! {
    let mut scn = Scenario::new("cli-traffic", ScenarioKind::Traffic);
    scn.scheduling.hpus = flag_u64(args, "--hpus", 16);
    scn.traffic = Some(TrafficSpec {
        apps: flag_csv(args, "--apps", "milc,comb,fft2d", |s| {
            app_group(s).map(|_| s.to_string())
        }),
        loads: flag_csv(args, "--loads", "0.3,0.6,0.9,1.2", |s| {
            s.parse::<f64>().ok().filter(|l| *l > 0.0)
        }),
        disciplines: flag_csv(
            args,
            "--disciplines",
            "blocked-rr,cfcfs,dfcfs",
            QueueDiscipline::parse,
        ),
        tenants: flag_u64(args, "--tenants", 4),
        strategy: flag(args, "--strategy")
            .map(|s| parse_strategy(&s).unwrap_or_else(|| die(&format!("bad --strategy {s:?}"))))
            .unwrap_or(Strategy::RwCp),
        arrival: flag(args, "--arrival")
            .map(|s| ArrivalKind::parse(&s).unwrap_or_else(|| die(&format!("bad --arrival {s:?}"))))
            .unwrap_or(ArrivalKind::Poisson),
        sigma: flag_f64(args, "--sigma", 1.5),
        flows_per_tenant: flag_u64(args, "--flows", 8),
        rss_entries: flag_u64(args, "--rss", 64),
        horizon_us: flag_u64(args, "--horizon-us", 400),
        buffer_kib: flag(args, "--buffer-kib")
            .map(|v| v.parse::<u64>().unwrap_or_else(|_| die("bad --buffer-kib"))),
        seed: flag_u64(args, "--seed", 1),
    });
    run_scenario(&scn, args)
}

fn profile_usage() -> ! {
    println!(
        "ncmt_cli profile — simulator self-profiler

Runs the full strategy sweep serially with the self-profiler on and
attributes the host wall-clock of the sweep to simulator phases:
event-queue operations, handler execution, DMA-copy kernels, telemetry
emission, and allocation/packing. Phases nest innermost-wins, so the
totals are disjoint and tile the wall-clock exactly
(attributed + other = wall).

flags:
  --count N       vector blocks of the profiled datatype (default 512)
  --blocklen B    block length in doubles (default 16)
  --stride S      block stride (default 32)
  --copies N      datatype repetition count (default 1)
  --hpus N        handler processing units (default 16)
  --epsilon E     RW-CP scheduling-overhead bound (default 0.2)
  --out F         write the ncmt-profile JSON artifact to F

needs a binary compiled with the nca-sim `self-profile` feature (the
nca-bench build turns it on); otherwise the subcommand exits 2."
    );
    std::process::exit(0)
}

/// `profile`: run the strategy sweep serially under the self-profiler
/// and render/write the `ncmt-profile` phase attribution.
fn profile_cmd(args: &[String]) -> ! {
    if !profile::is_compiled() {
        die("this binary was built without the nca-sim `self-profile` feature");
    }
    let count = flag_u64(args, "--count", 512) as u32;
    let blocklen = flag_u64(args, "--blocklen", 16) as u32;
    let stride = flag_u64(args, "--stride", 32) as i64;
    let copies = flag_u64(args, "--copies", 1) as u32;
    let hpus = flag_u64(args, "--hpus", 16) as usize;
    let out = flag(args, "--out");

    let dt = Datatype::vector(count, blocklen, stride, &elem::double());
    let mut exp = Experiment::new(dt.clone(), copies, NicParams::with_hpus(hpus));
    exp.epsilon = flag_f64(args, "--epsilon", 0.2);
    let command = format!(
        "profile vector --count {count} --blocklen {blocklen} --stride {stride} \
         --copies {copies} --hpus {hpus}"
    );
    println!(
        "profiling: {} × {copies}, {hpus} HPUs (serial sweep)",
        dt.signature()
    );

    // Serial pool: the whole sweep runs on this thread, so the profile
    // is one clean timeline under worker 0. Streaming aggregation stays
    // on so the telemetry phase reflects the production emission path.
    profile::reset();
    profile::set_enabled(true);
    let wall = std::time::Instant::now();
    let sweep = exp.run_all_captured(
        &Pool::serial(),
        CaptureSpec {
            ring_capacity: None,
            stream_bucket_ps: Some(UTILIZATION_BUCKET_PS),
        },
    );
    let wall_ns = wall.elapsed().as_nanos() as u64;
    profile::set_enabled(false);
    let snap = profile::snapshot();
    profile::reset();
    drop(sweep);

    let doc = ProfileDoc {
        version: ProfileDoc::VERSION,
        command,
        wall_ns,
        workers: snap
            .iter()
            .map(|w| ProfileWorker {
                worker: w.worker as u64,
                phases: profile::Phase::ALL
                    .iter()
                    .map(|p| ProfilePhase {
                        phase: p.label().to_string(),
                        ns: w.ns[p.index()],
                        count: w.counts[p.index()],
                    })
                    .collect(),
            })
            .collect(),
    };

    println!();
    println!(
        "{:<14} {:>12} {:>12} {:>8}",
        "phase", "ms", "enters", "% wall"
    );
    for p in doc.totals() {
        println!(
            "{:<14} {:>12.3} {:>12} {:>8.1}",
            p.phase,
            p.ns as f64 / 1e6,
            p.count,
            if wall_ns > 0 {
                p.ns as f64 / wall_ns as f64 * 100.0
            } else {
                0.0
            }
        );
    }
    println!(
        "{:<14} {:>12.3} {:>12} {:>8.1}",
        "other",
        doc.other_ns() as f64 / 1e6,
        "",
        if wall_ns > 0 {
            doc.other_ns() as f64 / wall_ns as f64 * 100.0
        } else {
            0.0
        }
    );
    println!(
        "{:<14} {:>12.3}  ({} worker(s); attributed + other = wall)",
        "wall",
        wall_ns as f64 / 1e6,
        doc.workers.len()
    );
    if let Some(path) = &out {
        std::fs::write(path, doc.to_json())
            .unwrap_or_else(|e| die(&format!("cannot write {path}: {e}")));
        println!("\nprofile  → {path}");
    }
    std::process::exit(0)
}

fn report_diff(args: &[String]) -> ! {
    let (Some(base_path), Some(new_path)) = (args.get(1), args.get(2)) else {
        die("report-diff needs <BASE> <NEW>")
    };
    let threshold: f64 = flag(args, "--threshold")
        .map(|v| v.parse().unwrap_or_else(|_| die("bad --threshold")))
        .unwrap_or(DEFAULT_THRESHOLD);
    let parse = |path: &String| -> Json {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2)
        });
        Json::parse(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2)
        })
    };
    let (base, new) = (parse(base_path), parse(new_path));
    let diff = diff_reports(&base, &new, threshold).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2)
    });
    print!("{}", diff.render());
    std::process::exit(if diff.regressions() > 0 { 1 } else { 0 })
}

/// `bench-diff`: gate a fresh criterion-shim baseline against a
/// committed one on throughput. This is what the CI `bench-gate` job
/// runs; the thresholds and the missing-bench policy live in
/// [`nca_bench::bench_diff`].
fn bench_diff(args: &[String]) -> ! {
    use nca_bench::bench_diff::{diff_baselines, parse_baseline, parse_require};
    let (Some(base_path), Some(new_path)) = (args.get(1), args.get(2)) else {
        die("bench-diff needs <BASE> <NEW>")
    };
    let warn_over = flag_f64(args, "--warn-over", 5.0);
    let fail_over = flag_f64(args, "--fail-over", 10.0);
    // Every `--require A>B` occurrence, in order.
    let requires: Vec<(String, String)> = args
        .iter()
        .enumerate()
        .filter(|(_, a)| *a == "--require")
        .map(|(i, _)| {
            let v = args
                .get(i + 1)
                .unwrap_or_else(|| die("--require needs a value"));
            parse_require(v).unwrap_or_else(|| die(&format!("bad --require {v:?} (want A>B)")))
        })
        .collect();
    let load = |path: &String| {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {path}: {e}");
            std::process::exit(2)
        });
        parse_baseline(&text).unwrap_or_else(|e| {
            eprintln!("error: {path}: {e}");
            std::process::exit(2)
        })
    };
    let (base, new) = (load(base_path), load(new_path));
    let diff = diff_baselines(&base, &new, warn_over, fail_over, &requires);
    print!("{}", diff.render());
    std::process::exit(if diff.failures() > 0 { 1 } else { 0 })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let Some(cmd) = COMMANDS.iter().find(|c| c.name == args[0]) else {
        if wants_help(&args) {
            usage();
        }
        die(&format!(
            "unknown subcommand {}; valid subcommands: {}",
            args[0],
            names().join(", ")
        ))
    };
    if wants_help(&args) {
        // Commands with a dedicated flag reference print it; the rest
        // fall back to the global usage — no special-case name list.
        match cmd.help {
            Some(help) => help(),
            None => usage(),
        }
    }
    (cmd.run)(&args)
}
