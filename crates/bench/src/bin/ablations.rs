//! Parameter ablations (ε, payload size, out-of-order degree); pass
//! `--quick` for a reduced-size run.

fn main() {
    let quick = nca_bench::quick_from_env_args();
    nca_bench::figures::ablations::print(quick);
}
