//! Regenerates the corresponding paper figure; pass `--quick` for a
//! reduced-size smoke run and `--jobs N` to bound worker threads.

fn main() {
    let quick = nca_bench::quick_from_env_args();
    let pool = nca_bench::pool_from_env_args();
    nca_bench::figures::fig16::print_on(quick, &pool);
}
