//! Extension experiment (paper Sec. 4.5 future work): static vs dynamic
//! HER assignment on the PULP multicluster under skewed handler loads.

use nca_pulp::arch::PulpConfig;
use nca_pulp::runtime::{simulate_runtime, skewed_handlers, Assignment};

fn main() {
    let cfg = PulpConfig::default();
    let dynamic = Assignment::Dynamic {
        dispatch_cycles: 40,
        migration_cycles: 300,
    };
    println!("# sPIN-on-PULP runtime: static vs dynamic HER assignment (512 pkts, 2 KiB)");
    println!("hot_frac\tstatic_gbit\tdynamic_gbit\tstatic_imb\tdyn_imb\tmigrations");
    for hot in [0.0f64, 0.05, 0.1, 0.2, 0.4] {
        let handlers = skewed_handlers(512, 800, hot, 20, 7);
        let s = simulate_runtime(&cfg, &handlers, 2048, 4, Assignment::Static { chunk: 4 });
        let d = simulate_runtime(&cfg, &handlers, 2048, 4, dynamic);
        println!(
            "{hot}\t{:.1}\t{:.1}\t{:.2}\t{:.2}\t{}",
            s.throughput_gbit, d.throughput_gbit, s.imbalance, d.imbalance, d.migrations
        );
    }
}
