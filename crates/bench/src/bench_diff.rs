//! Compare two `nca-criterion-baseline` JSON documents (the format the
//! criterion shim's `--save-baseline` writes and the committed
//! `BENCH_*.json` files hold).
//!
//! This is the engine behind `ncmt_cli bench-diff`, which the CI
//! `bench-gate` job runs to hold the perf floor: a fresh baseline is
//! measured on the runner and compared against the committed one on
//! throughput (`per_sec`). Throughput is the comparison axis — not raw
//! mean nanoseconds — because every tracked bench declares a unit
//! (pkts, bytes, runs) and `per_sec` is the number the experiments
//! report, so a regression here is a regression in a headline figure.
//!
//! Policy (mirrored in `DESIGN.md` §4e): a bench whose new throughput
//! is more than `fail_over` percent below the committed baseline fails
//! the gate; above `warn_over` percent it warns; improvements never
//! fail. A tracked bench that vanished from the new run is a failure —
//! a silently skipped bench would otherwise read as "no regression".
//! Benches only present in the new run are reported as `new` and pass
//! (they gain a floor once the baseline is regenerated). `--require
//! A>B` assertions compare two benches of the *new* run against each
//! other, for invariants that a single-bench threshold cannot express
//! (the parallel sweep must beat the serial sweep).

use nca_telemetry::report::Json;

/// One tracked benchmark from a baseline document.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchEntry {
    pub name: String,
    pub per_sec: f64,
    pub mean_ns: f64,
    pub unit: String,
}

/// Parse an `nca-criterion-baseline` document into its bench entries.
pub fn parse_baseline(text: &str) -> Result<Vec<BenchEntry>, String> {
    let json = Json::parse(text)?;
    match json.path("kind").and_then(Json::as_str) {
        Some("nca-criterion-baseline") => {}
        Some(other) => return Err(format!("not a bench baseline (kind = {other:?})")),
        None => return Err("not a bench baseline (no `kind` field)".into()),
    }
    // Committed baselines predate the `version` field; absent means v1.
    match json.path("version").and_then(Json::as_f64) {
        None => {}
        Some(1.0) => {}
        Some(v) => return Err(format!("unsupported bench-baseline version {v}")),
    }
    let benches = json
        .path("benches")
        .and_then(Json::as_arr)
        .ok_or("baseline has no `benches` array")?;
    benches
        .iter()
        .map(|b| {
            let mean_ns = b
                .path("mean_ns")
                .and_then(Json::as_f64)
                .ok_or("bench entry missing numeric `mean_ns`")?;
            // Benches without a declared throughput (e.g. the
            // telemetry_overhead group) are gated on iterations/sec, so
            // everything compares on one faster-is-more axis.
            let per_sec = b
                .path("per_sec")
                .and_then(Json::as_f64)
                .unwrap_or(1e9 / mean_ns);
            Ok(BenchEntry {
                name: b
                    .path("name")
                    .and_then(Json::as_str)
                    .ok_or("bench entry missing `name`")?
                    .to_string(),
                per_sec,
                mean_ns,
                unit: b
                    .path("unit")
                    .and_then(Json::as_str)
                    .unwrap_or("iter")
                    .to_string(),
            })
        })
        .collect()
}

/// Verdict for one benchmark of the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the warn threshold (or improved).
    Ok,
    /// Slower than baseline by more than the warn threshold.
    Warn,
    /// Slower than baseline by more than the fail threshold.
    Fail,
    /// Tracked in the baseline but absent from the new run.
    Missing,
    /// Present only in the new run (no floor yet).
    New,
}

/// One row of the comparison table.
#[derive(Debug, Clone)]
pub struct DiffLine {
    pub name: String,
    pub unit: String,
    /// Baseline throughput (0 for `New` rows).
    pub base_per_sec: f64,
    /// New throughput (0 for `Missing` rows).
    pub new_per_sec: f64,
    /// Relative throughput change in percent (positive = faster).
    pub change_pct: f64,
    pub verdict: Verdict,
}

/// One `--require A>B` assertion, evaluated on the new run.
#[derive(Debug, Clone)]
pub struct RequireLine {
    pub faster: String,
    pub slower: String,
    /// `per_sec` of the two sides in the new run, when both exist.
    pub values: Option<(f64, f64)>,
    pub passed: bool,
}

/// The full comparison: per-bench rows plus cross-bench assertions.
#[derive(Debug)]
pub struct BenchDiff {
    pub lines: Vec<DiffLine>,
    pub requires: Vec<RequireLine>,
    pub warn_over: f64,
    pub fail_over: f64,
}

impl BenchDiff {
    /// Number of gate failures (regressions beyond `fail_over`, tracked
    /// benches missing from the new run, failed `--require` assertions).
    pub fn failures(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| matches!(l.verdict, Verdict::Fail | Verdict::Missing))
            .count()
            + self.requires.iter().filter(|r| !r.passed).count()
    }

    /// Number of warn-level slowdowns.
    pub fn warnings(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.verdict == Verdict::Warn)
            .count()
    }

    /// Human-readable table, one row per bench plus assertion lines.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let (n, b, s, c, v) = ("bench", "base/s", "new/s", "change", "verdict");
        let _ = writeln!(out, "{n:<44} {b:>14} {s:>14} {c:>9}  {v}");
        for l in &self.lines {
            let verdict = match l.verdict {
                Verdict::Ok => "ok",
                Verdict::Warn => "WARN",
                Verdict::Fail => "FAIL",
                Verdict::Missing => "FAIL (missing)",
                Verdict::New => "new",
            };
            let fmt = |v: f64| {
                if v == 0.0 {
                    "-".to_string()
                } else {
                    format!("{v:.0}")
                }
            };
            let change = match l.verdict {
                Verdict::Missing | Verdict::New => "-".to_string(),
                _ => format!("{:+.1}%", l.change_pct),
            };
            let _ = writeln!(
                out,
                "{:<44} {:>14} {:>14} {:>9}  {}",
                format!("{} ({})", l.name, l.unit),
                fmt(l.base_per_sec),
                fmt(l.new_per_sec),
                change,
                verdict
            );
        }
        for r in &self.requires {
            let detail = match r.values {
                Some((a, b)) => format!("{:.0}/s vs {:.0}/s", a, b),
                None => "bench missing from new run".to_string(),
            };
            let _ = writeln!(
                out,
                "require {} > {}: {} ({})",
                r.faster,
                r.slower,
                if r.passed { "ok" } else { "FAIL" },
                detail
            );
        }
        let _ = writeln!(
            out,
            "{} bench(es): {} failure(s), {} warning(s) (fail > {:.0}%, warn > {:.0}%)",
            self.lines.len(),
            self.failures(),
            self.warnings(),
            self.fail_over,
            self.warn_over
        );
        out
    }
}

/// Compare `new` against `base` on throughput, with `requires` as
/// `(faster, slower)` bench-name pairs asserted on the new run.
pub fn diff_baselines(
    base: &[BenchEntry],
    new: &[BenchEntry],
    warn_over: f64,
    fail_over: f64,
    requires: &[(String, String)],
) -> BenchDiff {
    let find = |set: &[BenchEntry], name: &str| -> Option<BenchEntry> {
        set.iter().find(|e| e.name == name).cloned()
    };
    let mut lines = Vec::new();
    for b in base {
        match find(new, &b.name) {
            Some(n) => {
                // Positive = faster. The drop (negative change) is what
                // the thresholds judge.
                let change_pct = if b.per_sec > 0.0 {
                    (n.per_sec - b.per_sec) / b.per_sec * 100.0
                } else {
                    0.0
                };
                let verdict = if -change_pct > fail_over {
                    Verdict::Fail
                } else if -change_pct > warn_over {
                    Verdict::Warn
                } else {
                    Verdict::Ok
                };
                lines.push(DiffLine {
                    name: b.name.clone(),
                    unit: b.unit.clone(),
                    base_per_sec: b.per_sec,
                    new_per_sec: n.per_sec,
                    change_pct,
                    verdict,
                });
            }
            None => lines.push(DiffLine {
                name: b.name.clone(),
                unit: b.unit.clone(),
                base_per_sec: b.per_sec,
                new_per_sec: 0.0,
                change_pct: 0.0,
                verdict: Verdict::Missing,
            }),
        }
    }
    for n in new {
        if find(base, &n.name).is_none() {
            lines.push(DiffLine {
                name: n.name.clone(),
                unit: n.unit.clone(),
                base_per_sec: 0.0,
                new_per_sec: n.per_sec,
                change_pct: 0.0,
                verdict: Verdict::New,
            });
        }
    }
    let requires = requires
        .iter()
        .map(|(faster, slower)| {
            let values = find(new, faster).zip(find(new, slower));
            match values {
                Some((a, b)) => RequireLine {
                    faster: faster.clone(),
                    slower: slower.clone(),
                    values: Some((a.per_sec, b.per_sec)),
                    passed: a.per_sec > b.per_sec,
                },
                None => RequireLine {
                    faster: faster.clone(),
                    slower: slower.clone(),
                    values: None,
                    passed: false,
                },
            }
        })
        .collect();
    BenchDiff {
        lines,
        requires,
        warn_over,
        fail_over,
    }
}

/// Parse a `--require` value of the form `A>B` into `(A, B)`.
pub fn parse_require(s: &str) -> Option<(String, String)> {
    let (a, b) = s.split_once('>')?;
    let (a, b) = (a.trim(), b.trim());
    (!a.is_empty() && !b.is_empty()).then(|| (a.to_string(), b.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(benches: &[(&str, f64)]) -> String {
        let entries: Vec<String> = benches
            .iter()
            .map(|(name, per_sec)| {
                format!(
                    r#"{{"name": "{name}", "mean_ns": {:.1}, "p50_ns": 1.0, "p95_ns": 1.0, "unit": "pkts", "per_iter": 1, "per_sec": {per_sec:.1}}}"#,
                    1e9 / per_sec
                )
            })
            .collect();
        format!(
            r#"{{"kind": "nca-criterion-baseline", "baseline": "t", "benches": [{}]}}"#,
            entries.join(", ")
        )
    }

    #[test]
    fn parses_the_committed_baseline_format() {
        let entries = parse_baseline(&doc(&[("packet_path_pkts/Specialized", 262331.0)])).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "packet_path_pkts/Specialized");
        assert!((entries[0].per_sec - 262331.0).abs() < 0.5);
        assert_eq!(entries[0].unit, "pkts");
    }

    #[test]
    fn rejects_non_baseline_documents() {
        assert!(parse_baseline(r#"{"kind": "ncmt-run-report"}"#).is_err());
        assert!(parse_baseline(r#"{"benches": []}"#).is_err());
    }

    #[test]
    fn version_field_is_enforced_when_present() {
        // The nca-criterion shim now stamps `"version": 1`; committed
        // baselines without the field stay readable as v1.
        let versioned =
            r#"{"kind": "nca-criterion-baseline", "version": 1, "baseline": "t", "benches": []}"#;
        assert!(parse_baseline(versioned).unwrap().is_empty());
        let future =
            r#"{"kind": "nca-criterion-baseline", "version": 2, "baseline": "t", "benches": []}"#;
        let err = parse_baseline(future).unwrap_err();
        assert!(err.contains("version 2"), "{err}");
    }

    #[test]
    fn synthetic_regression_beyond_10_percent_fails_the_gate() {
        let base = parse_baseline(&doc(&[("a", 1000.0), ("b", 1000.0)])).unwrap();
        // `a` drops 12% (fail), `b` drops 7% (warn only).
        let new = parse_baseline(&doc(&[("a", 880.0), ("b", 930.0)])).unwrap();
        let diff = diff_baselines(&base, &new, 5.0, 10.0, &[]);
        assert_eq!(diff.failures(), 1);
        assert_eq!(diff.warnings(), 1);
        assert_eq!(diff.lines[0].verdict, Verdict::Fail);
        assert_eq!(diff.lines[1].verdict, Verdict::Warn);
    }

    #[test]
    fn improvements_and_small_noise_pass() {
        let base = parse_baseline(&doc(&[("a", 1000.0), ("b", 1000.0)])).unwrap();
        let new = parse_baseline(&doc(&[("a", 3000.0), ("b", 970.0)])).unwrap();
        let diff = diff_baselines(&base, &new, 5.0, 10.0, &[]);
        assert_eq!(diff.failures(), 0);
        assert_eq!(diff.warnings(), 0);
    }

    #[test]
    fn missing_tracked_bench_fails_and_new_bench_passes() {
        let base = parse_baseline(&doc(&[("gone", 1000.0)])).unwrap();
        let new = parse_baseline(&doc(&[("fresh", 1000.0)])).unwrap();
        let diff = diff_baselines(&base, &new, 5.0, 10.0, &[]);
        assert_eq!(diff.failures(), 1);
        let gone = diff.lines.iter().find(|l| l.name == "gone").unwrap();
        assert_eq!(gone.verdict, Verdict::Missing);
        let fresh = diff.lines.iter().find(|l| l.name == "fresh").unwrap();
        assert_eq!(fresh.verdict, Verdict::New);
    }

    #[test]
    fn require_assertion_compares_benches_of_the_new_run() {
        let base = parse_baseline(&doc(&[])).unwrap();
        let new = parse_baseline(&doc(&[("sweep/jobs4", 400.0), ("sweep/serial", 300.0)])).unwrap();
        let req = vec![parse_require("sweep/jobs4>sweep/serial").unwrap()];
        let diff = diff_baselines(&base, &new, 5.0, 10.0, &req);
        assert_eq!(diff.failures(), 0);
        assert!(diff.requires[0].passed);

        let inverted = vec![parse_require("sweep/serial > sweep/jobs4").unwrap()];
        let diff = diff_baselines(&base, &new, 5.0, 10.0, &inverted);
        assert_eq!(diff.failures(), 1);

        // An assertion over a bench the new run never produced fails
        // loudly instead of vacuously passing.
        let absent = vec![parse_require("sweep/jobs8>sweep/serial").unwrap()];
        let diff = diff_baselines(&base, &new, 5.0, 10.0, &absent);
        assert_eq!(diff.failures(), 1);
        assert!(diff.requires[0].values.is_none());
    }

    #[test]
    fn render_mentions_thresholds_and_failures() {
        let base = parse_baseline(&doc(&[("a", 1000.0)])).unwrap();
        let new = parse_baseline(&doc(&[("a", 500.0)])).unwrap();
        let diff = diff_baselines(&base, &new, 5.0, 10.0, &[]);
        let text = diff.render();
        assert!(text.contains("FAIL"));
        assert!(text.contains("-50.0%"));
        assert!(text.contains("fail > 10%"));
    }
}
