//! End-to-end tests of `ncmt_cli --report-out` and `report-diff`:
//! the emitted artifact parses with the advertised keys, self-diff is
//! clean (exit 0), and a seeded regression trips the exit code.

use std::collections::BTreeMap;
use std::process::Command;

use nca_telemetry::report::{
    HistSummary, Json, ModelValidation, ReportConfig, RunReportDoc, StrategyReport,
};

const CLI: &str = env!("CARGO_BIN_EXE_ncmt_cli");

fn tmp_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("ncmt-report-cli-{}-{name}", std::process::id()));
    p
}

fn run_report(path: &std::path::Path) {
    let out = Command::new(CLI)
        .args([
            "vector",
            "--count",
            "512",
            "--blocklen",
            "16",
            "--stride",
            "32",
            "--report-out",
        ])
        .arg(path)
        .output()
        .expect("run ncmt_cli");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn report_out_emits_a_parsable_document_with_required_keys() {
    let path = tmp_path("doc.json");
    run_report(&path);
    let text = std::fs::read_to_string(&path).expect("report written");
    let v = Json::parse(&text).expect("valid JSON");
    assert_eq!(
        v.get("kind").and_then(Json::as_str),
        Some(RunReportDoc::KIND)
    );
    assert_eq!(
        v.path("version").and_then(Json::as_f64),
        Some(RunReportDoc::VERSION as f64)
    );
    for key in ["datatype", "msg_bytes", "npkt", "gamma", "hpus", "epsilon"] {
        assert!(
            v.path(&format!("config.{key}")).is_some(),
            "config.{key} missing"
        );
    }
    assert_eq!(
        v.path("trace_dropped_events").and_then(Json::as_f64),
        Some(0.0),
        "the CI-sized ring must not drop events on this workload"
    );
    let strats = v.get("strategies").and_then(Json::as_arr).expect("array");
    assert_eq!(strats.len(), 4);
    for s in strats {
        let name = s.get("name").and_then(Json::as_str).unwrap();
        let e2e = s.path("end_to_end_ps").and_then(Json::as_f64).unwrap();
        let sum = s.path("attribution_sum_ps").and_then(Json::as_f64).unwrap();
        assert!(e2e > 0.0, "{name}: end_to_end_ps");
        assert_eq!(sum, e2e, "{name}: attribution must tile the window");
        assert!(
            s.path("histograms.handler_ps.p99")
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0,
            "{name}: handler histogram"
        );
        let peak = s
            .path("utilization.peak_queue_depth")
            .and_then(Json::as_f64)
            .unwrap();
        assert!(peak > 0.0, "{name}: utilization block");
        let fracs = s
            .path("utilization.hpu_busy_frac")
            .and_then(Json::as_arr)
            .unwrap();
        assert!(!fracs.is_empty(), "{name}: per-HPU busy fractions");
        let model = s.path("model").unwrap();
        match name {
            "RW-CP" | "RO-CP" => assert!(
                model.path("sched_budget_ps").is_some(),
                "{name}: model block expected"
            ),
            _ => assert_eq!(model, &Json::Null, "{name}: no Δr plan"),
        }
    }
    let _ = std::fs::remove_file(&path);
}

/// `ncmt_cli profile` acceptance: the artifact parses, carries every
/// phase, and its phase totals tile the measured wall-clock — the sum
/// of attributed and unattributed time must equal `wall_ns` within 2%
/// (it is exact by construction; the slack guards the JSON round-trip).
#[test]
fn profile_artifact_phase_totals_tile_the_wall_clock() {
    let path = tmp_path("profile.json");
    let out = Command::new(CLI)
        .args(["profile", "--count", "256", "--out"])
        .arg(&path)
        .output()
        .expect("run ncmt_cli profile");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).expect("profile written");
    let v = Json::parse(&text).expect("valid JSON");
    assert_eq!(v.get("kind").and_then(Json::as_str), Some("ncmt-profile"));
    let wall = v.path("wall_ns").and_then(Json::as_f64).unwrap();
    let attributed = v.path("attributed_ns").and_then(Json::as_f64).unwrap();
    let other = v.path("other_ns").and_then(Json::as_f64).unwrap();
    assert!(wall > 0.0);
    assert!(
        ((attributed + other) - wall).abs() <= 0.02 * wall,
        "attributed {attributed} + other {other} must tile wall {wall}"
    );
    let mut sum = 0.0;
    for phase in ["event_queue", "handler", "dma_copy", "telemetry", "alloc"] {
        let ns = v
            .path(&format!("totals.{phase}.ns"))
            .and_then(Json::as_f64)
            .unwrap_or_else(|| panic!("totals.{phase} missing"));
        sum += ns;
    }
    assert_eq!(sum, attributed, "totals must re-sum to attributed_ns");
    assert!(
        v.get("workers")
            .and_then(Json::as_arr)
            .is_some_and(|w| !w.is_empty()),
        "per-worker breakdown present"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn report_diff_of_a_report_with_itself_exits_zero() {
    let path = tmp_path("self.json");
    run_report(&path);
    let out = Command::new(CLI)
        .arg("report-diff")
        .arg(&path)
        .arg(&path)
        .output()
        .expect("run report-diff");
    assert!(
        out.status.success(),
        "self-diff must pass: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_file(&path);
}

fn synthetic_doc(e2e: u64) -> RunReportDoc {
    let mut h = nca_telemetry::hist::LogHistogram::new();
    h.record_n(e2e / 10, 20);
    let mut histograms = BTreeMap::new();
    histograms.insert("handler_ps".to_string(), HistSummary::of(&h));
    histograms.insert("queue_wait_ps".to_string(), HistSummary::of(&h));
    RunReportDoc {
        version: RunReportDoc::VERSION,
        trace_dropped_events: 0,
        config: ReportConfig {
            datatype: "vector(MPI_DOUBLE)".to_string(),
            msg_bytes: 65536,
            npkt: 32,
            gamma: 16.0,
            hpus: 16,
            payload_size: 2048,
            epsilon: 0.2,
            out_of_order: None,
        },
        strategies: vec![StrategyReport {
            name: "RW-CP".to_string(),
            end_to_end_ps: e2e,
            host_setup_ps: 1_000,
            throughput_gbit: 100.0,
            nic_mem_bytes: 4096,
            nic_mem_hwm_bytes: 4096,
            dma_writes: 512,
            dma_bytes: 65536,
            dma_max_queue: 9,
            attribution: vec![("handler_proc", e2e)],
            hpu_busy_ps: e2e,
            hpu_utilization: 0.1,
            histograms,
            utilization: None,
            model: Some(ModelValidation {
                delta_r: 8192,
                delta_p: 4,
                num_checkpoints: 8,
                ckpt_nic_bytes: 2048,
                epsilon: 0.2,
                planned_epsilon_violated: false,
                t_ph_predicted_ps: 90_000,
                t_ph_measured_ps: 92_000.0,
                sched_budget_ps: 36_000,
                sched_overhead_ps: e2e / 100,
                epsilon_respected: true,
            }),
            faults: None,
            eager_fallback: false,
        }],
    }
}

#[test]
fn report_diff_exits_nonzero_on_a_seeded_regression() {
    let base = tmp_path("base.json");
    let worse = tmp_path("worse.json");
    std::fs::write(&base, synthetic_doc(1_000_000).to_json()).unwrap();
    std::fs::write(&worse, synthetic_doc(1_300_000).to_json()).unwrap();
    let out = Command::new(CLI)
        .arg("report-diff")
        .arg(&base)
        .arg(&worse)
        .output()
        .expect("run report-diff");
    assert_eq!(out.status.code(), Some(1), "regression must exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("REGRESSED"), "{stdout}");

    // A loose threshold waves the same change through.
    let out = Command::new(CLI)
        .args(["report-diff"])
        .arg(&base)
        .arg(&worse)
        .args(["--threshold", "0.5"])
        .output()
        .expect("run report-diff");
    assert_eq!(out.status.code(), Some(0));

    // Garbage input is an operational error, not a regression.
    let junk = tmp_path("junk.json");
    std::fs::write(&junk, "not json").unwrap();
    let out = Command::new(CLI)
        .arg("report-diff")
        .arg(&base)
        .arg(&junk)
        .output()
        .expect("run report-diff");
    assert_eq!(out.status.code(), Some(2), "parse failure must exit 2");
    for p in [&base, &worse, &junk] {
        let _ = std::fs::remove_file(p);
    }
}
