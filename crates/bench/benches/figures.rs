//! One Criterion group per paper figure, running the harness in quick
//! mode — regression tracking for the figure pipelines themselves.

use criterion::{criterion_group, criterion_main, Criterion};
use nca_bench::figures as f;

fn figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_quick");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("fig02_put_latency", |b| b.iter(f::fig02::rows));
    g.bench_function("fig08_unpack_throughput", |b| {
        b.iter(|| f::fig08::rows(true))
    });
    g.bench_function("fig09c_bandwidth", |b| b.iter(f::fig09c::rows));
    g.bench_function("fig10_pulp_vs_arm", |b| b.iter(f::fig10::rows));
    g.bench_function("fig11_ipc", |b| b.iter(f::fig11::rows));
    g.bench_function("fig12_handler_breakdown", |b| {
        b.iter(|| f::fig12::rows(true))
    });
    g.bench_function("fig13_scalability", |b| {
        b.iter(|| f::fig13::throughput_vs_hpus(true))
    });
    g.bench_function("fig14_dma_queue", |b| b.iter(|| f::fig14::rows(true)));
    g.bench_function("fig16_applications", |b| b.iter(|| f::fig16::rows(true)));
    g.bench_function("fig17_memory_traffic", |b| b.iter(|| f::fig17::rows(true)));
    g.bench_function("fig18_amortization", |b| b.iter(|| f::fig18::rows(true)));
    g.bench_function("fig19_fft2d", |b| b.iter(|| f::fig19::rows(true)));
    g.finish();
}

criterion_group!(benches, figures);
criterion_main!(benches);
