//! Traffic-engine wall-clock benchmark: a small open-loop multi-tenant
//! grid through the full NIC model.
//!
//! Third wall of the CI `bench-gate` (next to `packet_path` and
//! `sweep`): `cargo bench -p nca-bench --bench traffic -- --save-baseline
//! traffic` writes `target/nca-criterion/traffic.{tsv,json}`; the JSON
//! is committed as `BENCH_traffic_engine.json` and diffed by
//! `ncmt_cli bench-diff` on every PR (see EXPERIMENTS.md). The grid is
//! deliberately small — two loads across one discipline — so the number
//! tracks engine cost (arrival generation, RSS steering, admission
//! control, the per-message receive pipeline), not grid size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use nca_sim::Pool;
use nca_spin::sched::QueueDiscipline;
use nca_traffic::{traffic_sweep, TrafficSweepSpec};

/// The benchmarked grid: COMB/b at an underloaded and an overloaded
/// point, blocked-RR, 3 tenants, a 200 us horizon — the golden-gate
/// traffic workload's shape, halved.
fn spec() -> TrafficSweepSpec {
    let mut s = TrafficSweepSpec::new(1);
    s.apps = vec!["COMB/b".to_string()];
    s.loads = vec![0.4, 1.0];
    s.disciplines = vec![QueueDiscipline::BlockedRR];
    s.tenants = 3;
    s.hpus = 8;
    s.horizon_ps = nca_sim::us(200);
    s
}

fn bench_traffic(c: &mut Criterion) {
    let spec = spec();
    let cells = (spec.apps.len() * spec.loads.len() * spec.disciplines.len()) as u64;
    let pool = Pool::serial();
    let mut g = c.benchmark_group("traffic");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells));
    g.bench_function(BenchmarkId::from_parameter("grid"), |b| {
        b.iter(|| traffic_sweep(&spec, &pool).cells.len())
    });
    g.finish();
}

criterion_group!(benches, bench_traffic);
criterion_main!(benches);
