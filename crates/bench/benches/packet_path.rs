//! Packet-path wall-clock benchmarks: packets/sec and bytes/sec through
//! the receive pipeline, per strategy plus the contiguous landing.
//!
//! This is the benchmark wall for the zero-copy wire-buffer refactor:
//! `cargo bench -p nca-bench --bench packet_path -- --save-baseline
//! packet_path` writes `target/nca-criterion/packet_path.{tsv,json}`;
//! the JSON is committed as `BENCH_packet_path.json` so future PRs can
//! diff packet-path throughput against it (see EXPERIMENTS.md).
//!
//! The `contig` benchmarks isolate the pipeline itself (minimal handler,
//! no datatype processing): their packets/sec is the per-packet overhead
//! of the simulated receive path — message clone, checksum stamping,
//! payload staging and DMA landing — which is exactly what the zero-copy
//! refactor attacks. The per-strategy benchmarks include processor
//! construction (dataloop compile, checkpoint tables), i.e. the full
//! per-message receive cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use nca_core::runner::Strategy;
use nca_ddt::pack::{buffer_span, pack};
use nca_ddt::types::{elem, Datatype, DatatypeExt};
use nca_sim::WireBuf;
use nca_spin::builtin::ContigProcessor;
use nca_spin::nic::{ReceiveSim, RunConfig};
use nca_spin::params::NicParams;
use nca_telemetry::Telemetry;

/// Deterministic payload pattern.
fn pattern(len: usize) -> Vec<u8> {
    (0..len).map(|i| (i.wrapping_mul(31) % 251) as u8).collect()
}

fn npackets(params: &NicParams, bytes: u64) -> u64 {
    bytes.div_ceil(params.payload_size).max(1)
}

/// Contiguous landing at two message sizes, reported as packets/sec.
fn bench_contig_pkts(c: &mut Criterion) {
    let params = NicParams::with_hpus(16);
    let mut g = c.benchmark_group("packet_path_pkts");
    g.sample_size(20);
    for (label, bytes) in [("contig_64k", 64usize << 10), ("contig_1m", 1usize << 20)] {
        // Built once; per-iteration clones are refcount bumps.
        let packed: WireBuf = pattern(bytes).into();
        g.throughput(Throughput::Elements(npackets(&params, bytes as u64)));
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            let cfg = RunConfig::new(params.clone());
            b.iter(|| {
                let proc = Box::new(ContigProcessor::new(0, params.spin_min_handler()));
                ReceiveSim::run(proc, packed.clone(), 0, bytes as u64, &cfg).t_complete
            })
        });
    }
    g.finish();
}

/// Contiguous landing, reported as bytes/sec.
fn bench_contig_bytes(c: &mut Criterion) {
    let params = NicParams::with_hpus(16);
    let bytes = 1usize << 20;
    let packed: WireBuf = pattern(bytes).into();
    let mut g = c.benchmark_group("packet_path_bytes");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(bytes as u64));
    g.bench_function(BenchmarkId::from_parameter("contig_1m"), |b| {
        let cfg = RunConfig::new(params.clone());
        b.iter(|| {
            let proc = Box::new(ContigProcessor::new(0, params.spin_min_handler()));
            ReceiveSim::run(proc, packed.clone(), 0, bytes as u64, &cfg).t_complete
        })
    });
    g.finish();
}

/// Full receive per strategy over a 64 KiB vector datatype (128 B
/// blocks), both packets/sec and bytes/sec.
fn bench_strategies(c: &mut Criterion) {
    let dt = Datatype::vector(512, 16, 32, &elem::double()); // 64 KiB
    let params = NicParams::with_hpus(16);
    let (origin, span) = buffer_span(&dt, 1);
    let src = pattern(span as usize);
    let packed: WireBuf = pack(&dt, 1, &src, origin).expect("packable").into();
    let msg_bytes = packed.len() as u64;
    let npkt = npackets(&params, msg_bytes);

    let mut g = c.benchmark_group("packet_path_pkts");
    g.sample_size(20);
    g.throughput(Throughput::Elements(npkt));
    for s in Strategy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(s.label()), &s, |b, &s| {
            let cfg = RunConfig::new(params.clone());
            b.iter(|| {
                let proc = s.build(&dt, 1, params.clone(), 0.2, Telemetry::disabled());
                ReceiveSim::run(proc, packed.clone(), origin, span, &cfg).t_complete
            })
        });
    }
    g.finish();

    let mut g = c.benchmark_group("packet_path_bytes");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(msg_bytes));
    for s in Strategy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(s.label()), &s, |b, &s| {
            let cfg = RunConfig::new(params.clone());
            b.iter(|| {
                let proc = s.build(&dt, 1, params.clone(), 0.2, Telemetry::disabled());
                ReceiveSim::run(proc, packed.clone(), origin, span, &cfg).t_complete
            })
        });
    }
    g.finish();
}

/// The CI telemetry-overhead gate (ISSUE 7): one RW-CP receive carried
/// through to the rollups both ways. The `stream` arm runs with
/// aggregation **on** — events fold into a [`StreamingRecorder`] at
/// emission, and reading the rollups afterwards touches only the tiny
/// reducer state. The `ring` arm runs with aggregation **fully off** —
/// every event is retained, and the identical rollups (byte-identical,
/// CI-enforced by `tests/streaming_equiv.rs`) are computed from the
/// retained stream afterwards. Both arms pay the same emission cost and
/// deliver the same result, so the ratio is exactly what streaming
/// aggregation costs relative to retention; CI fails when `stream`
/// exceeds `ring` by more than 5%.
///
/// A receive emits one event per ~35 ns of simulated host work, so any
/// per-event sink — even one that discards — reads as a large fraction
/// of a telemetry-disabled run; `disabled` is recorded for context
/// (the pay-for-use cost of capture as a whole), not as the baseline.
fn bench_telemetry_overhead(c: &mut Criterion) {
    use std::sync::Arc;

    use nca_telemetry::aggregate::rollup;
    use nca_telemetry::{Recorder, StreamingRecorder};

    let dt = Datatype::vector(512, 16, 32, &elem::double()); // 64 KiB
    let params = NicParams::with_hpus(16);
    let (origin, span) = buffer_span(&dt, 1);
    let src = pattern(span as usize);
    let packed: WireBuf = pack(&dt, 1, &src, origin).expect("packable").into();
    let s = Strategy::RwCp;
    let receive = |tel: &Telemetry| {
        let mut cfg = RunConfig::new(params.clone());
        cfg.telemetry = tel.clone();
        let proc = s.build(&dt, 1, params.clone(), 0.2, tel.clone());
        ReceiveSim::run(proc, packed.clone(), origin, span, &cfg).t_complete
    };

    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(20);
    g.bench_function(BenchmarkId::from_parameter("ring"), |b| {
        b.iter(|| {
            // Big enough that nothing drops (a receive emits ~4.3k
            // events); retention must see the whole stream.
            let (tel, ring) = Telemetry::ring(1 << 13);
            receive(&tel);
            rollup(&ring.events())
        })
    });
    g.bench_function(BenchmarkId::from_parameter("stream"), |b| {
        b.iter(|| {
            let rec = Arc::new(StreamingRecorder::new(1_000_000));
            let tel = Telemetry::with_recorder(rec.clone() as Arc<dyn Recorder>);
            receive(&tel);
            rec.take().rollups()
        })
    });
    g.bench_function(BenchmarkId::from_parameter("disabled"), |b| {
        let tel = Telemetry::disabled();
        b.iter(|| receive(&tel))
    });
    g.finish();
}

/// Leaf copy-kernel microbenchmarks (bytes/sec per kernel variant):
/// the specialized strided kernels against the per-block generic paths
/// they replaced. The workload mirrors the strategy benchmarks' wire
/// shape — 64 KiB moved as fixed-size blocks at a fixed stride — so a
/// kernel regression shows up here before it blurs into the full
/// pipeline numbers. `strided_*` are the word-multiple (aligned) fast
/// paths taken by every vector-like dataloop level; `per_block_*` is
/// the same byte movement through one kernel call per block; the
/// `memcpy_128` variant is the pre-kernel reference loop (runtime
/// length, one `memcpy` dispatch per block).
fn bench_copy_kernels(c: &mut Criterion) {
    use nca_ddt::kernels::{copy_block, copy_strided};

    const TOTAL: usize = 64 << 10;
    let src = pattern(TOTAL);
    let mut g = c.benchmark_group("copy_kernels");
    g.sample_size(20);
    g.throughput(Throughput::Bytes(TOTAL as u64));

    // 8-byte blocks (a double) scattered at stride 16: the finest
    // aligned case, where per-block dispatch overhead dominates.
    let n8 = (TOTAL / 8) as u64;
    let mut dst = vec![0u8; 2 * TOTAL];
    g.bench_function(BenchmarkId::from_parameter("strided_8"), |b| {
        b.iter(|| copy_strided(&mut dst, 0, 16, &src, 0, 8, 8, n8))
    });

    // 128-byte blocks at stride 256: the strategy benchmarks' datatype
    // (vector of 16 doubles every 32).
    let n128 = (TOTAL / 128) as u64;
    g.bench_function(BenchmarkId::from_parameter("strided_128_aligned"), |b| {
        b.iter(|| copy_strided(&mut dst, 0, 256, &src, 0, 128, 128, n128))
    });

    g.bench_function(BenchmarkId::from_parameter("per_block_128"), |b| {
        b.iter(|| {
            for i in 0..n128 as usize {
                copy_block(&mut dst, i * 256, &src, i * 128, 128);
            }
        })
    });

    g.bench_function(BenchmarkId::from_parameter("per_block_memcpy_128"), |b| {
        b.iter(|| {
            for i in 0..n128 as usize {
                let (d, s) = (i * 256, i * 128);
                let len = criterion::black_box(128usize);
                dst[d..d + len].copy_from_slice(&src[s..s + len]);
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_contig_pkts,
    bench_contig_bytes,
    bench_strategies,
    bench_copy_kernels,
    bench_telemetry_overhead
);
criterion_main!(benches);
