//! NIC-pipeline benchmarks: matching, end-to-end simulated receives per
//! strategy, and the host LLC traffic replay.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use nca_core::runner::{Experiment, Strategy};
use nca_ddt::types::{elem, Datatype, DatatypeExt};
use nca_memsim::cache::CacheConfig;
use nca_memsim::traffic::unpack_traffic;
use nca_portals::matching::{MatchEntry, MatchingUnit};
use nca_spin::multi::{run_concurrent, MessageSpec};
use nca_spin::params::NicParams;

fn bench_matching(c: &mut Criterion) {
    c.bench_function("portals_match_256_entries", |b| {
        b.iter_batched(
            || {
                let mut mu = MatchingUnit::new();
                for i in 0..256u64 {
                    mu.append_priority(MatchEntry {
                        id: 0,
                        match_bits: i,
                        ignore_bits: 0,
                        start: 0,
                        length: 4096,
                        exec_ctx: None,
                        use_once: false,
                    });
                }
                mu
            },
            |mut mu| {
                let (out, _) = mu.match_header(0, 255);
                out
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_receive(c: &mut Criterion) {
    let dt = Datatype::vector(512, 16, 32, &elem::double()); // 64 KiB, 128 B blocks
    let mut g = c.benchmark_group("simulated_receive_64kib");
    g.sample_size(20);
    g.measurement_time(std::time::Duration::from_secs(4));
    g.throughput(Throughput::Bytes(dt.size));
    for s in Strategy::ALL {
        g.bench_with_input(BenchmarkId::from_parameter(s.label()), &s, |b, &s| {
            let mut exp = Experiment::new(dt.clone(), 1, NicParams::with_hpus(16));
            exp.verify = false;
            b.iter(|| exp.run(s).t_complete)
        });
    }
    g.finish();
}

fn bench_cache_replay(c: &mut Criterion) {
    let dt = Datatype::vector(2048, 16, 32, &elem::double()); // 256 KiB
    c.bench_function("llc_unpack_replay_256kib", |b| {
        b.iter(|| unpack_traffic(&dt, 1, CacheConfig::i7_4770_llc()).host_bytes)
    });
}

fn bench_concurrent(c: &mut Criterion) {
    c.bench_function("concurrent_4_messages_32kib", |b| {
        let params = NicParams::with_hpus(8);
        b.iter(|| {
            let specs: Vec<MessageSpec> = (0..4)
                .map(|i| MessageSpec {
                    packed: vec![i as u8; 32 << 10].into(),
                    proc: Box::new(nca_spin::builtin::ContigProcessor::new(
                        0,
                        params.spin_min_handler(),
                    )),
                    host_origin: 0,
                    host_span: 32 << 10,
                    start_time: 0,
                })
                .collect();
            run_concurrent(specs, &params).len()
        })
    });
}

fn bench_sender_pipelines(c: &mut Criterion) {
    use nca_ddt::flatten::flatten;
    use nca_spin::sender::{simulate_streaming_put, SenderCosts};
    let dt = Datatype::vector(4096, 16, 32, &elem::double());
    let (origin, span) = nca_ddt::pack::buffer_span(&dt, 1);
    let src: Vec<u8> = (0..span as usize).map(|i| i as u8).collect();
    let iov = flatten(&dt, 1);
    c.bench_function("streaming_put_sender_512kib", |b| {
        let p = NicParams::default();
        let costs = SenderCosts::default();
        b.iter(|| simulate_streaming_put(&p, &costs, &iov, &src, origin).inject_done)
    });
}

criterion_group!(
    benches,
    bench_matching,
    bench_receive,
    bench_cache_replay,
    bench_concurrent,
    bench_sender_pipelines
);
criterion_main!(benches);
