//! Hot-path microbenchmarks of the datatype engine: the operations the
//! simulated NIC handlers and the host baseline execute per packet.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use nca_ddt::checkpoint::CheckpointTable;
use nca_ddt::dataloop::compile;
use nca_ddt::flatten::flatten;
use nca_ddt::normalize::classify;
use nca_ddt::pack::{buffer_span, pack, unpack};
use nca_ddt::segment::Segment;
use nca_ddt::sink::CountSink;
use nca_ddt::types::{elem, Datatype, DatatypeExt};

fn vector_1mib(block: u64) -> Datatype {
    let elems = (block / 8) as u32;
    let count = ((1u64 << 20) / block) as u32;
    Datatype::vector(count, elems, 2 * elems as i64, &elem::double())
}

fn bench_segment_walk(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment_full_walk");
    for block in [64u64, 512, 4096] {
        let dl = compile(&vector_1mib(block), 1);
        g.throughput(Throughput::Bytes(dl.size));
        g.bench_with_input(BenchmarkId::from_parameter(block), &dl, |b, dl| {
            b.iter(|| {
                let mut seg = Segment::new(dl.clone());
                let mut sink = CountSink::default();
                seg.advance(u64::MAX, &mut sink);
                sink.blocks
            })
        });
    }
    g.finish();
}

fn bench_packetwise_advance(c: &mut Criterion) {
    let mut g = c.benchmark_group("segment_packetwise_2kib");
    for block in [64u64, 512] {
        let dl = compile(&vector_1mib(block), 1);
        g.throughput(Throughput::Bytes(dl.size));
        g.bench_with_input(BenchmarkId::from_parameter(block), &dl, |b, dl| {
            b.iter(|| {
                let mut seg = Segment::new(dl.clone());
                let mut sink = CountSink::default();
                while !seg.finished() {
                    seg.advance(2048, &mut sink);
                }
                sink.blocks
            })
        });
    }
    g.finish();
}

fn bench_seek(c: &mut Criterion) {
    let dl = compile(&vector_1mib(64), 1);
    c.bench_function("segment_seek_random", |b| {
        let mut seg = Segment::new(dl.clone());
        let mut pos = 7u64;
        b.iter(|| {
            pos = (pos * 2654435761) % dl.size;
            seg.seek(pos).expect("in range");
            seg.position()
        })
    });
}

fn bench_pack_unpack(c: &mut Criterion) {
    let dt = vector_1mib(512);
    let (origin, span) = buffer_span(&dt, 1);
    let src: Vec<u8> = (0..span as usize).map(|i| i as u8).collect();
    let packed = pack(&dt, 1, &src, origin).expect("packable");
    let mut g = c.benchmark_group("pack_unpack_1mib");
    g.throughput(Throughput::Bytes(dt.size));
    g.bench_function("pack", |b| {
        b.iter(|| pack(&dt, 1, &src, origin).expect("ok").len())
    });
    g.bench_function("unpack", |b| {
        let mut dst = vec![0u8; span as usize];
        b.iter(|| {
            unpack(&dt, 1, &packed, &mut dst, origin).expect("ok");
            dst[0]
        })
    });
    g.finish();
}

fn bench_checkpoints(c: &mut Criterion) {
    let dl = compile(&vector_1mib(128), 1);
    c.bench_function("checkpoint_table_build_64", |b| {
        b.iter(|| CheckpointTable::build(&dl, dl.size / 64).expect("ok").len())
    });
    let table = CheckpointTable::build(&dl, dl.size / 64).expect("ok");
    c.bench_function("checkpoint_materialize_and_resume", |b| {
        b.iter(|| {
            let cp = table.closest(dl.size / 2);
            let mut seg = cp.materialize();
            let mut sink = CountSink::default();
            seg.process_range(dl.size / 2, dl.size / 2 + 2048, &mut sink)
                .expect("ok");
            sink.blocks
        })
    });
}

fn bench_flatten_classify(c: &mut Criterion) {
    let dt = vector_1mib(64);
    c.bench_function("flatten_16k_regions", |b| {
        b.iter(|| flatten(&dt, 1).entries.len())
    });
    c.bench_function("classify", |b| b.iter(|| classify(&dt)));
}

criterion_group!(
    benches,
    bench_segment_walk,
    bench_packetwise_advance,
    bench_seek,
    bench_pack_unpack,
    bench_checkpoints,
    bench_flatten_classify
);
criterion_main!(benches);
