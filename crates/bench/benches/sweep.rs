//! Parallel-sweep wall-clock benchmark: the same fault-sweep matrix run
//! serially and on a 4-worker pool.
//!
//! This is the benchmark wall for the parallel executor:
//! `cargo bench -p nca-bench --bench sweep -- --save-baseline sweep`
//! writes `target/nca-criterion/sweep.{tsv,json}`; the JSON is committed
//! as `BENCH_sweep.json` so future PRs can diff sweep wall-clock against
//! it (see EXPERIMENTS.md). On a single-core runner the two series are
//! expected to be equal (the pool degrades to at most one runnable
//! worker); the `--jobs 4` speedup target applies on multi-core CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use nca_core::sweep::{fault_sweep, FaultSweepSpec};
use nca_ddt::types::{elem, Datatype, DatatypeExt};
use nca_sim::{FaultSpec, Pool};
use nca_spin::params::NicParams;

/// The matrix both variants run: the ncmt_cli fault-sweep defaults
/// (64 KiB strided vector, 4 seeds × 3 scales × 4 strategies).
fn spec() -> FaultSweepSpec {
    FaultSweepSpec {
        dt: Datatype::vector(512, 16, 32, &elem::double()),
        count: 1,
        params: NicParams::with_hpus(16),
        base: FaultSpec {
            drop: 0.05,
            duplicate: 0.02,
            corrupt: 0.01,
            reorder_window: 2_000_000,
            seed: 1,
        },
        seed0: 1,
        seeds: 4,
        scales: vec![0.0, 0.5, 1.0],
        ring_capacity: 1 << 20,
    }
}

fn bench_sweep(c: &mut Criterion) {
    let spec = spec();
    let cells = (spec.seeds as usize) * spec.scales.len();
    let mut g = c.benchmark_group("sweep");
    g.sample_size(10);
    g.throughput(Throughput::Elements(cells as u64));
    for (label, jobs) in [("serial", 1usize), ("jobs4", 4)] {
        let pool = Pool::new(jobs);
        g.bench_function(BenchmarkId::from_parameter(label), |b| {
            b.iter(|| fault_sweep(&spec, &pool).len())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
