//! # nca-criterion — offline stand-in for the `criterion` crate
//!
//! The workspace builds in containers with no access to crates.io, so
//! the external `criterion` dev-dependency is replaced by this shim
//! (wired up via dependency renaming in the workspace `Cargo.toml`).
//!
//! It keeps the criterion 0.5 API the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`BenchmarkId`],
//! [`Throughput`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros — but the statistics are deliberately simple: per sample it
//! times a fixed iteration batch and reports min / mean / max
//! nanoseconds per iteration (plus derived throughput). There are no
//! saved baselines, HTML reports, or outlier analysis.
//!
//! Default budget per benchmark is small (10 samples, ~1 s measurement,
//! 500 ms warm-up) so `cargo bench` over the whole workspace stays
//! fast; groups can override via the usual `sample_size` /
//! `measurement_time` / `warm_up_time` setters.
//!
//! Each report line carries min/mean/max plus nearest-rank p50/p95.
//! Criterion's named baselines are supported in TSV form:
//! `cargo bench -- --save-baseline NAME` records every benchmark's
//! stats under `target/nca-criterion/NAME.tsv` (or
//! `$NCA_CRITERION_DIR`), and `cargo bench -- --baseline NAME` prints
//! the percent change of mean/p50/p95 against that file.
//!
//! Alongside the TSV, `--save-baseline NAME` also writes a
//! machine-readable `NAME.json` (`nca-criterion-baseline` document):
//! one entry per benchmark with mean/p50/p95 ns-per-iteration and, when
//! the group declared a [`Throughput`], the per-iteration amount plus
//! the derived per-second rate. This is the artifact committed as a
//! benchmark wall (e.g. `BENCH_packet_path.json`) and diffed by CI.

use std::collections::{BTreeMap, HashSet};
use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How `iter_batched` amortizes setup cost. The shim times each routine
/// call individually, so the variants only influence batching hints.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small inputs: many per batch.
    SmallInput,
    /// Large inputs: few per batch.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// Units for reporting throughput alongside time per iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// A benchmark's display identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id naming a function/parameter pair.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id that is just the parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

#[derive(Debug, Clone)]
struct MeasureConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
}

impl Default for MeasureConfig {
    fn default() -> Self {
        MeasureConfig {
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            warm_up_time: Duration::from_millis(500),
            throughput: None,
        }
    }
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher<'a> {
    cfg: &'a MeasureConfig,
    /// Nanoseconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

impl Bencher<'_> {
    /// Time `routine`, called in batches until the measurement budget
    /// is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single iteration's cost.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || warm_iters == 0 {
            std_black_box(routine());
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        let per_sample = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let iters = ((per_sample / est_per_iter.max(1e-9)) as u64).clamp(1, 10_000_000);

        self.samples.clear();
        for _ in 0..self.cfg.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std_black_box(routine());
            }
            let dt = t0.elapsed().as_nanos() as f64;
            self.samples.push(dt / iters as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        while warm_start.elapsed() < self.cfg.warm_up_time || warm_iters == 0 {
            let input = setup();
            std_black_box(routine(input));
            warm_iters += 1;
            if warm_iters >= 1_000_000 {
                break;
            }
        }

        let per_sample = self.cfg.measurement_time.as_secs_f64() / self.cfg.sample_size as f64;
        let est = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((per_sample / est.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples.clear();
        for _ in 0..self.cfg.sample_size {
            let inputs: Vec<I> = (0..iters).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                std_black_box(routine(input));
            }
            let dt = t0.elapsed().as_nanos() as f64;
            self.samples.push(dt / iters as f64);
        }
    }
}

/// Nearest-rank percentile of `samples` (any order); 0 when empty.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut xs = samples.to_vec();
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let k = ((q / 100.0) * xs.len() as f64).ceil().max(1.0) as usize;
    xs[k.min(xs.len()) - 1]
}

/// Summary stats of one benchmark as stored in a baseline file.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Mean nanoseconds per iteration.
    pub mean: f64,
    /// Median ns/iter (nearest rank).
    pub p50: f64,
    /// 95th-percentile ns/iter (nearest rank).
    pub p95: f64,
}

impl Stats {
    /// Summarize raw per-sample timings.
    pub fn of(samples: &[f64]) -> Option<Stats> {
        if samples.is_empty() {
            return None;
        }
        Some(Stats {
            mean: samples.iter().sum::<f64>() / samples.len() as f64,
            p50: percentile(samples, 50.0),
            p95: percentile(samples, 95.0),
        })
    }
}

/// Where baseline TSVs live: `$NCA_CRITERION_DIR` or
/// `target/nca-criterion` relative to the working directory.
pub fn baseline_dir() -> PathBuf {
    std::env::var_os("NCA_CRITERION_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/nca-criterion"))
}

fn baseline_path(dir: &Path, baseline: &str) -> PathBuf {
    dir.join(format!("{baseline}.tsv"))
}

// Baseline files accumulate one line per benchmark across the whole
// `cargo bench` process (many groups, one file): the first write in
// this process truncates any stale file, later ones append.
fn fresh_files() -> &'static Mutex<HashSet<PathBuf>> {
    static SET: OnceLock<Mutex<HashSet<PathBuf>>> = OnceLock::new();
    SET.get_or_init(|| Mutex::new(HashSet::new()))
}

/// Append one benchmark's stats to baseline `baseline` under `dir`
/// (TSV: `name\tmean\tp50\tp95`). The first save per file in this
/// process truncates it.
pub fn save_baseline_entry(
    dir: &Path,
    baseline: &str,
    bench: &str,
    s: &Stats,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = baseline_path(dir, baseline);
    let truncate = fresh_files().lock().unwrap().insert(path.clone());
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(!truncate)
        .write(true)
        .truncate(truncate)
        .open(&path)?;
    writeln!(f, "{bench}\t{}\t{}\t{}", s.mean, s.p50, s.p95)
}

/// Load baseline `baseline` from `dir`; benchmarks keyed by name.
/// Malformed lines are skipped (forward compatibility).
pub fn load_baseline(dir: &Path, baseline: &str) -> std::io::Result<BTreeMap<String, Stats>> {
    let text = std::fs::read_to_string(baseline_path(dir, baseline))?;
    let mut out = BTreeMap::new();
    for line in text.lines() {
        let mut it = line.split('\t');
        let (Some(name), Some(mean), Some(p50), Some(p95)) =
            (it.next(), it.next(), it.next(), it.next())
        else {
            continue;
        };
        let (Ok(mean), Ok(p50), Ok(p95)) = (mean.parse(), p50.parse(), p95.parse()) else {
            continue;
        };
        out.insert(name.to_string(), Stats { mean, p50, p95 });
    }
    Ok(out)
}

/// One benchmark's entry in the JSON baseline document.
#[derive(Debug, Clone)]
struct JsonEntry {
    name: String,
    stats: Stats,
    throughput: Option<Throughput>,
}

// Entries accumulated per JSON baseline file over the whole process, so
// each `record` can rewrite the complete document (there is no end-of-
// run hook in the criterion_main! contract to flush once).
fn json_entries() -> &'static Mutex<BTreeMap<PathBuf, Vec<JsonEntry>>> {
    static MAP: OnceLock<Mutex<BTreeMap<PathBuf, Vec<JsonEntry>>>> = OnceLock::new();
    MAP.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "0".to_string()
    }
}

/// Append one benchmark's stats to the JSON mirror of `baseline` under
/// `dir` and rewrite the whole document. Mirrors the TSV lifecycle: the
/// first save per file in this process starts a fresh entry list.
pub fn save_baseline_json_entry(
    dir: &Path,
    baseline: &str,
    bench: &str,
    s: &Stats,
    throughput: Option<Throughput>,
) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{baseline}.json"));
    let mut map = json_entries().lock().unwrap();
    let entries = map.entry(path.clone()).or_default();
    entries.retain(|e| e.name != bench);
    entries.push(JsonEntry {
        name: bench.to_string(),
        stats: *s,
        throughput,
    });
    let mut doc = String::new();
    doc.push_str("{\n");
    doc.push_str("  \"kind\": \"nca-criterion-baseline\",\n");
    doc.push_str("  \"version\": 1,\n");
    doc.push_str(&format!("  \"baseline\": \"{}\",\n", json_escape(baseline)));
    doc.push_str("  \"benches\": [\n");
    for (i, e) in entries.iter().enumerate() {
        let mut line = format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {}, \"p50_ns\": {}, \"p95_ns\": {}",
            json_escape(&e.name),
            json_f64(e.stats.mean),
            json_f64(e.stats.p50),
            json_f64(e.stats.p95)
        );
        if let Some(tp) = e.throughput {
            let (amount, unit) = match tp {
                Throughput::Bytes(n) => (n, "bytes"),
                Throughput::Elements(n) => (n, "elements"),
            };
            let per_sec = amount as f64 / (e.stats.mean / 1e9);
            line.push_str(&format!(
                ", \"unit\": \"{unit}\", \"per_iter\": {amount}, \"per_sec\": {}",
                json_f64(per_sec)
            ));
        }
        line.push('}');
        if i + 1 < entries.len() {
            line.push(',');
        }
        doc.push_str(&line);
        doc.push('\n');
    }
    doc.push_str("  ]\n}\n");
    std::fs::write(&path, doc)
}

#[derive(Debug, Clone, Default)]
enum BaselineMode {
    #[default]
    Off,
    Save(String),
    Compare(String, BTreeMap<String, Stats>),
}

fn arg_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .or_else(|| {
            let prefix = format!("{name}=");
            args.iter()
                .find_map(|a| a.strip_prefix(&prefix).map(str::to_string))
        })
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn report(name: &str, cfg: &MeasureConfig, samples: &[f64]) -> Option<Stats> {
    let Some(stats) = Stats::of(samples) else {
        println!("{name:<40} (no samples collected)");
        return None;
    };
    let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let mut line = format!(
        "{:<40} time: [{} {} {}] p50: {} p95: {}",
        name,
        fmt_ns(min),
        fmt_ns(stats.mean),
        fmt_ns(max),
        fmt_ns(stats.p50),
        fmt_ns(stats.p95)
    );
    let mean = stats.mean;
    if let Some(tp) = cfg.throughput {
        let (amount, unit) = match tp {
            Throughput::Bytes(n) => (n as f64, "B"),
            Throughput::Elements(n) => (n as f64, "elem"),
        };
        let per_sec = amount / (mean / 1e9);
        let thr = if unit == "B" && per_sec >= 1e9 {
            format!("{:.3} GiB/s", per_sec / (1u64 << 30) as f64)
        } else if unit == "B" && per_sec >= 1e6 {
            format!("{:.3} MiB/s", per_sec / (1u64 << 20) as f64)
        } else {
            format!("{per_sec:.0} {unit}/s")
        };
        line.push_str(&format!(" thrpt: {thr}"));
    }
    println!("{line}");
    Some(stats)
}

/// Benchmark registry/driver (stand-in for `criterion::Criterion`).
/// `Default` picks up `--save-baseline NAME` / `--baseline NAME` from
/// the process arguments (the criterion CLI contract under
/// `cargo bench -- …`).
pub struct Criterion {
    mode: BaselineMode,
    dir: PathBuf,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let dir = baseline_dir();
        let mode = if let Some(name) = arg_value(&args, "--save-baseline") {
            BaselineMode::Save(name)
        } else if let Some(name) = arg_value(&args, "--baseline") {
            match load_baseline(&dir, &name) {
                Ok(entries) => BaselineMode::Compare(name, entries),
                Err(e) => {
                    eprintln!("warning: cannot load baseline '{name}': {e}");
                    BaselineMode::Off
                }
            }
        } else {
            BaselineMode::Off
        };
        Criterion { mode, dir }
    }
}

impl Criterion {
    fn record(&mut self, name: &str, cfg: &MeasureConfig, samples: &[f64]) {
        let Some(stats) = report(name, cfg, samples) else {
            return;
        };
        match &self.mode {
            BaselineMode::Off => {}
            BaselineMode::Save(b) => {
                if let Err(e) = save_baseline_entry(&self.dir, b, name, &stats) {
                    eprintln!("warning: cannot save baseline '{b}': {e}");
                }
                if let Err(e) = save_baseline_json_entry(&self.dir, b, name, &stats, cfg.throughput)
                {
                    eprintln!("warning: cannot save JSON baseline '{b}': {e}");
                }
            }
            BaselineMode::Compare(b, entries) => match entries.get(name) {
                Some(base) => {
                    let pct = |new: f64, old: f64| {
                        if old > 0.0 {
                            (new - old) / old * 100.0
                        } else {
                            0.0
                        }
                    };
                    println!(
                        "{:<40} change vs '{b}': mean {:+.2}%  p50 {:+.2}%  p95 {:+.2}%",
                        "",
                        pct(stats.mean, base.mean),
                        pct(stats.p50, base.p50),
                        pct(stats.p95, base.p95)
                    );
                }
                None => println!("{:<40} (no entry in baseline '{b}')", ""),
            },
        }
    }

    /// Run a single benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let cfg = MeasureConfig::default();
        let mut b = Bencher {
            cfg: &cfg,
            samples: Vec::new(),
        };
        f(&mut b);
        self.record(name, &cfg, &b.samples);
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.into(),
            cfg: MeasureConfig::default(),
        }
    }
}

/// A group of benchmarks sharing a name prefix and measurement config.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    cfg: MeasureConfig,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.cfg.sample_size = n.max(1);
        self
    }

    /// Set the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.measurement_time = d;
        self
    }

    /// Set the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.cfg.warm_up_time = d;
        self
    }

    /// Report throughput derived from time-per-iteration.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.cfg.throughput = Some(tp);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            cfg: &self.cfg,
            samples: Vec::new(),
        };
        f(&mut b);
        let name = format!("{}/{}", self.name, id.id);
        self.parent.record(&name, &self.cfg, &b.samples);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            cfg: &self.cfg,
            samples: Vec::new(),
        };
        f(&mut b, input);
        let name = format!("{}/{}", self.name, id.id);
        self.parent.record(&name, &self.cfg, &b.samples);
        self
    }

    /// End the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Bundle benchmark functions into a single runner function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_cfg() -> MeasureConfig {
        MeasureConfig {
            sample_size: 3,
            measurement_time: Duration::from_millis(30),
            warm_up_time: Duration::from_millis(5),
            throughput: None,
        }
    }

    #[test]
    fn iter_collects_requested_samples() {
        let cfg = fast_cfg();
        let mut b = Bencher {
            cfg: &cfg,
            samples: Vec::new(),
        };
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            x
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let cfg = fast_cfg();
        let mut b = Bencher {
            cfg: &cfg,
            samples: Vec::new(),
        };
        b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.samples.len(), 3);
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let xs = [5.0, 1.0, 4.0, 2.0, 3.0];
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 95.0), 5.0);
        assert_eq!(percentile(&xs, 1.0), 1.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
        let s = Stats::of(&xs).unwrap();
        assert_eq!(s.mean, 3.0);
        assert_eq!((s.p50, s.p95), (3.0, 5.0));
    }

    #[test]
    fn baseline_save_load_round_trips_and_first_save_truncates() {
        let dir = std::env::temp_dir().join(format!("nca-criterion-test-{}", std::process::id()));
        // A stale file from a previous run must not leak entries.
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("b.tsv"), "stale\t1\t1\t1\n").unwrap();
        let s1 = Stats {
            mean: 10.0,
            p50: 9.0,
            p95: 12.5,
        };
        let s2 = Stats {
            mean: 20.0,
            p50: 19.0,
            p95: 25.0,
        };
        save_baseline_entry(&dir, "b", "bench/one", &s1).unwrap();
        save_baseline_entry(&dir, "b", "bench/two", &s2).unwrap();
        let loaded = load_baseline(&dir, "b").unwrap();
        assert!(!loaded.contains_key("stale"), "first save must truncate");
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded["bench/one"], s1);
        assert_eq!(loaded["bench/two"], s2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn json_baseline_accumulates_entries_with_throughput() {
        let dir = std::env::temp_dir().join(format!("nca-criterion-json-{}", std::process::id()));
        let s = Stats {
            mean: 1000.0,
            p50: 900.0,
            p95: 1500.0,
        };
        save_baseline_json_entry(&dir, "j", "grp/one", &s, Some(Throughput::Elements(50))).unwrap();
        save_baseline_json_entry(&dir, "j", "grp/two", &s, None).unwrap();
        // Re-recording the same bench must replace, not duplicate.
        save_baseline_json_entry(&dir, "j", "grp/one", &s, Some(Throughput::Bytes(64))).unwrap();
        let text = std::fs::read_to_string(dir.join("j.json")).unwrap();
        assert!(text.contains("\"kind\": \"nca-criterion-baseline\""));
        assert!(text.contains("\"version\": 1"));
        assert!(text.contains("\"baseline\": \"j\""));
        assert_eq!(text.matches("grp/one").count(), 1, "no duplicate entries");
        assert!(text.contains("\"unit\": \"bytes\", \"per_iter\": 64"));
        // 64 bytes per 1000 ns mean -> 64e6 bytes/s.
        assert!(text.contains("\"per_sec\": 64000000"));
        assert!(text.contains("\"name\": \"grp/two\", \"mean_ns\": 1000"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn malformed_baseline_lines_are_skipped() {
        let dir = std::env::temp_dir().join(format!("nca-criterion-skip-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("m.tsv"),
            "good\t1\t2\t3\nbad line\nworse\tx\ty\tz\n",
        )
        .unwrap();
        let loaded = load_baseline(&dir, "m").unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded["good"].p95, 3.0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim_selftest");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2))
            .throughput(Throughput::Bytes(64));
        g.bench_with_input(BenchmarkId::from_parameter("p"), &3u32, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }
}
