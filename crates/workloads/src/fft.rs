//! A small complex FFT (iterative radix-2 Cooley–Tukey) used by the
//! FFT2D example and to ground the LogGOPS compute-time model.

/// A complex number (f64 re/im).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct C64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl C64 {
    /// Construct.
    pub fn new(re: f64, im: f64) -> C64 {
        C64 { re, im }
    }

    /// Zero.
    pub fn zero() -> C64 {
        C64 { re: 0.0, im: 0.0 }
    }

    fn mul(self, o: C64) -> C64 {
        C64 {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn add(self, o: C64) -> C64 {
        C64 {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn sub(self, o: C64) -> C64 {
        C64 {
            re: self.re - o.re,
            im: self.im - o.im,
        }
    }

    /// Squared magnitude.
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }
}

/// In-place FFT (`inverse = false`) or unnormalized inverse FFT of a
/// power-of-two-length slice.
pub fn fft_in_place(x: &mut [C64], inverse: bool) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            x.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C64::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = C64::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = x[start + k];
                let v = x[start + k + len / 2].mul(w);
                x[start + k] = u.add(v);
                x[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Forward then (normalized) inverse; used for round-trip checks.
pub fn ifft_normalized(x: &mut [C64]) {
    let n = x.len() as f64;
    fft_in_place(x, true);
    for v in x.iter_mut() {
        v.re /= n;
        v.im /= n;
    }
}

/// Floating-point operation count of one radix-2 FFT of length `n`
/// (the classic 5·n·log₂n), used by the LogGOPS compute model.
pub fn fft_flops(n: u64) -> u64 {
    if n <= 1 {
        return 0;
    }
    5 * n * (63 - n.leading_zeros() as u64 + if n.is_power_of_two() { 1 } else { 2 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_recovers_signal() {
        let n = 256;
        let mut x: Vec<C64> = (0..n)
            .map(|i| C64::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let orig = x.clone();
        fft_in_place(&mut x, false);
        ifft_normalized(&mut x);
        for (a, b) in x.iter().zip(&orig) {
            assert!((a.re - b.re).abs() < 1e-9 && (a.im - b.im).abs() < 1e-9);
        }
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![C64::zero(); 64];
        x[0] = C64::new(1.0, 0.0);
        fft_in_place(&mut x, false);
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-12 && v.im.abs() < 1e-12);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let n = 128usize;
        let mut x: Vec<C64> = (0..n).map(|i| C64::new((i as f64).sin(), 0.0)).collect();
        let time_energy: f64 = x.iter().map(|v| v.norm_sq()).sum();
        fft_in_place(&mut x, false);
        let freq_energy: f64 = x.iter().map(|v| v.norm_sq()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-10);
    }

    #[test]
    fn flops_scale() {
        assert_eq!(fft_flops(1), 0);
        assert!(fft_flops(1024) > fft_flops(512) * 2 - 5 * 512);
    }
}
