//! The thirteen Fig. 16 application datatypes.

use nca_ddt::dataloop::compile;
use nca_ddt::types::{elem, ArrayOrder, Datatype, DatatypeExt};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One application/input combination of Fig. 16.
#[derive(Clone)]
pub struct AppWorkload {
    /// Application name as the figure labels it.
    pub app: &'static str,
    /// Datatype constructor class annotation (e.g. `vector(vector)`).
    pub ddt_class: &'static str,
    /// Input label (a, b, c, d).
    pub input: char,
    /// The receive datatype.
    pub dt: Datatype,
    /// Repetition count of the receive.
    pub count: u32,
}

impl AppWorkload {
    /// Full label, e.g. `MILC/b`.
    pub fn label(&self) -> String {
        format!("{}/{}", self.app, self.input)
    }

    /// Message size in bytes.
    pub fn msg_bytes(&self) -> u64 {
        self.dt.size * self.count as u64
    }

    /// Average contiguous regions per packet of `payload` bytes (γ).
    pub fn gamma(&self, payload: u64) -> f64 {
        let dl = compile(&self.dt, self.count);
        let npkt = dl.size.div_ceil(payload).max(1);
        dl.blocks as f64 / npkt as f64
    }
}

fn wl(
    app: &'static str,
    ddt_class: &'static str,
    input: char,
    dt: Datatype,
    count: u32,
) -> AppWorkload {
    AppWorkload {
        app,
        ddt_class,
        input,
        dt,
        count,
    }
}

/// COMB: n-dimensional array face exchanges, expressed as subarrays.
/// First two inputs are single-packet messages (the paper notes offload
/// brings no speedup there); the larger ones stress tiny strided blocks.
pub fn comb() -> Vec<AppWorkload> {
    let d = elem::double();
    let mk = |n: u64, face: u64, dim: usize, input| {
        // Exchange one face of an n³ grid: subsizes pick `face` planes of
        // the dimension `dim`.
        let sizes = [n, n, n];
        let mut subsizes = [n, n, n];
        subsizes[dim] = face;
        let starts = [0u64, 0, 0];
        let dt = Datatype::subarray(&sizes, &subsizes, &starts, ArrayOrder::C, &d).unwrap();
        wl("COMB", "subarray", input, dt, 1)
    };
    vec![
        mk(8, 1, 0, 'a'),   // 512 B — fits one packet
        mk(8, 2, 1, 'b'),   // 1 KiB — fits one packet
        mk(64, 2, 2, 'c'),  // x-face: 2-element blocks, strided
        mk(128, 2, 2, 'd'), // larger x-face
    ]
}

/// FFT2D: matrix-transpose receive — each peer's contribution is a
/// strided block-column, `contiguous(vector)`.
pub fn fft2d() -> Vec<AppWorkload> {
    let c = elem::complex_double();
    let mk = |n: u64, p: u64, input| {
        let rows = (n / p) as u32; // local rows
        let cols = (n / p) as u32; // columns from one peer
        let v = Datatype::vector(rows, cols, n as i64, &c);
        let dt = Datatype::contiguous(1, &v);
        wl("FFT2D", "contiguous(vector)", input, dt, 1)
    };
    vec![
        mk(2048, 16, 'a'),
        mk(4096, 16, 'b'),
        mk(8192, 16, 'c'),
        mk(8192, 8, 'd'),
    ]
}

/// LAMMPS: exchange of particle properties at arbitrary indices —
/// `index` (variable-length blocks).
pub fn lammps() -> Vec<AppWorkload> {
    let d = elem::double();
    let mk = |particles: u64, seed: u64, input| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut displs = Vec::with_capacity(particles as usize);
        let mut lens = Vec::with_capacity(particles as usize);
        let mut at = 0i64;
        for _ in 0..particles {
            let len = rng.random_range(1..=3u32); // 1..3 doubles/particle
            displs.push(at);
            lens.push(len);
            at += len as i64 + rng.random_range(1..=4i64);
        }
        let dt = Datatype::indexed(&lens, &displs, &d).unwrap();
        wl("LAMMPS", "index", input, dt, 1)
    };
    vec![
        mk(2_000, 11, 'a'),
        mk(8_000, 12, 'b'),
        mk(32_000, 13, 'c'),
        mk(64_000, 14, 'd'),
    ]
}

/// LAMMPS "full" variant: more properties per particle, fixed-size
/// blocks — `index_block`.
pub fn lammps_full() -> Vec<AppWorkload> {
    let d = elem::double();
    let mk = |particles: u64, props: u32, seed: u64, input| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut displs = Vec::with_capacity(particles as usize);
        let mut at = 0i64;
        for _ in 0..particles {
            displs.push(at);
            at += props as i64 + rng.random_range(1..=6i64);
        }
        let dt = Datatype::indexed_block(props, &displs, &d).unwrap();
        wl("LAMMPS-F", "index_block", input, dt, 1)
    };
    vec![
        mk(2_000, 8, 21, 'a'),
        mk(8_000, 8, 22, 'b'),
        mk(16_000, 8, 23, 'c'),
        mk(48_000, 8, 24, 'd'),
    ]
}

/// MILC: 4D lattice QCD halo exchange — `vector(vector)` of doubles
/// (su3 matrices on strided sites).
pub fn milc() -> Vec<AppWorkload> {
    let d = elem::double();
    let mk = |l: u64, input| {
        // site payload: 3x3 complex su3 matrix = 18 doubles
        let inner = Datatype::vector((l * l) as u32, 18, (18 * l) as i64, &d);
        // outer stride in BYTES (one t-slab of the l^4 lattice)
        let outer = Datatype::hvector(l as u32, 1, (18 * l * l * l * 8) as i64, &inner);
        wl("MILC", "vector(vector)", input, outer, 1)
    };
    vec![mk(8, 'a'), mk(12, 'b'), mk(16, 'c'), mk(20, 'd')]
}

/// NAS LU: rhs-solver halo — the first dimension holds 5 doubles, faces
/// of the 4D array are exchanged: small 40 B blocks on a fixed stride.
pub fn nas_lu() -> Vec<AppWorkload> {
    let d = elem::double();
    let mk = |nx: u64, nz: u64, input| {
        let dt = Datatype::vector((nx * nz) as u32, 5, (5 * (nx + 2)) as i64, &d);
        wl("NAS-LU", "vector", input, dt, 1)
    };
    vec![
        mk(33, 33, 'a'),
        mk(64, 64, 'b'),
        mk(102, 102, 'c'),
        mk(162, 162, 'd'),
    ]
}

/// NAS MG: 3D multigrid face exchange — row-sized blocks on the plane
/// stride.
pub fn nas_mg() -> Vec<AppWorkload> {
    let d = elem::double();
    let mk = |n: u64, input| {
        let dt = Datatype::vector(n as u32, n as u32, (n * n) as i64 * 2, &d);
        wl("NAS-MG", "vector", input, dt, 1)
    };
    vec![mk(32, 'a'), mk(64, 'b'), mk(128, 'c'), mk(256, 'd')]
}

/// SPECFEM3D outer-core exchange: single-float blocks at irregular mesh
/// indices (γ ≈ 512 in the paper — the pathological tiny-block case).
pub fn spec_oc() -> Vec<AppWorkload> {
    let f = elem::float();
    let mk = |points: u64, seed: u64, input| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut displs = Vec::with_capacity(points as usize);
        let mut at = 0i64;
        for _ in 0..points {
            displs.push(at);
            at += 1 + rng.random_range(1..=3i64);
        }
        let dt = Datatype::indexed_block(1, &displs, &f).unwrap();
        wl("SPEC-OC", "index_block", input, dt, 1)
    };
    vec![
        mk(8_000, 31, 'a'),
        mk(32_000, 32, 'b'),
        mk(131_072, 33, 'c'),
        mk(262_144, 34, 'd'),
    ]
}

/// SPECFEM3D crust-mantle exchange: 3-float blocks (vector fields) at
/// irregular indices.
pub fn spec_cm() -> Vec<AppWorkload> {
    let f = elem::float();
    let mk = |points: u64, seed: u64, input| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut displs = Vec::with_capacity(points as usize);
        let mut at = 0i64;
        for _ in 0..points {
            displs.push(at);
            at += 3 + rng.random_range(1..=4i64);
        }
        let dt = Datatype::indexed_block(3, &displs, &f).unwrap();
        wl("SPEC-CM", "index_block", input, dt, 1)
    };
    vec![
        mk(4_000, 41, 'a'),
        mk(16_000, 42, 'b'),
        mk(65_536, 43, 'c'),
        mk(131_072, 44, 'd'),
    ]
}

/// SW4LITE x-direction ghost planes: small strided blocks.
pub fn sw4_x() -> Vec<AppWorkload> {
    let d = elem::double();
    let mk = |n: u64, input| {
        // 2-wide ghost plane in x: blocks of 2 doubles, stride = row
        let dt = Datatype::vector((n * n) as u32, 2, n as i64, &d);
        wl("SW4LITE-X", "vector", input, dt, 1)
    };
    vec![mk(48, 'a'), mk(96, 'b'), mk(160, 'c')]
}

/// SW4LITE y-direction ghost planes: whole rows (large blocks).
pub fn sw4_y() -> Vec<AppWorkload> {
    let d = elem::double();
    let mk = |n: u64, input| {
        // 2 ghost rows of n doubles per plane, stride = plane
        let dt = Datatype::vector(n as u32, (2 * n) as u32, (n * n) as i64, &d);
        wl("SW4LITE-Y", "vector", input, dt, 1)
    };
    vec![mk(48, 'a'), mk(96, 'b'), mk(160, 'c')]
}

/// WRF halo exchanges: structs of subarrays of the 3D Cartesian grid.
/// x-direction: non-contiguous pencils (small blocks); y-direction:
/// contiguous row runs (large blocks).
fn wrf(dir: usize) -> Vec<AppWorkload> {
    let f = elem::float();
    let (app, inputs): (&'static str, [(u64, char); 3]) = if dir == 2 {
        ("WRF-X", [(32, 'a'), (64, 'b'), (96, 'c')])
    } else {
        ("WRF-Y", [(32, 'a'), (64, 'b'), (96, 'c')])
    };
    inputs
        .iter()
        .map(|&(n, input)| {
            // Grid (z, y, x) = (n/2, n, n); halo width 3 in `dir`.
            let sizes = [n / 2, n, n];
            let mut subsizes = sizes;
            subsizes[dir] = 3;
            let starts = [0u64, 0, 0];
            let sa = |field: u64| {
                let s = Datatype::subarray(&sizes, &subsizes, &starts, ArrayOrder::C, &f).unwrap();
                let bytes = sizes.iter().product::<u64>() * 4;
                (s, (field * bytes) as i64)
            };
            // Two field arrays exchanged together (u, v).
            let (s0, d0) = sa(0);
            let (s1, d1) = sa(1);
            let dt = Datatype::struct_(&[1, 1], &[d0, d1], &[s0, s1]).unwrap();
            wl(app, "struct(subarray)", input, dt, 1)
        })
        .collect()
}

/// WRF x-direction exchange.
pub fn wrf_x() -> Vec<AppWorkload> {
    wrf(2)
}

/// WRF y-direction exchange.
pub fn wrf_y() -> Vec<AppWorkload> {
    wrf(1)
}

/// All Fig. 16 workloads in figure order.
pub fn all_workloads() -> Vec<AppWorkload> {
    let mut v = Vec::new();
    v.extend(comb());
    v.extend(fft2d());
    v.extend(lammps());
    v.extend(lammps_full());
    v.extend(milc());
    v.extend(nas_lu());
    v.extend(nas_mg());
    v.extend(spec_cm());
    v.extend(spec_oc());
    v.extend(sw4_x());
    v.extend(sw4_y());
    v.extend(wrf_x());
    v.extend(wrf_y());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_workloads_nonempty_and_valid() {
        let ws = all_workloads();
        assert!(ws.len() >= 13 * 3);
        for w in &ws {
            assert!(w.msg_bytes() > 0, "{} empty", w.label());
            // γ < 1 is legitimate when blocks exceed the packet size.
            assert!(w.gamma(2048) > 0.0, "{} γ = {}", w.label(), w.gamma(2048));
            // buffer spans must stay laptop-sized
            let (_, span) = nca_ddt::pack::buffer_span(&w.dt, w.count);
            assert!(span < 1 << 28, "{} span = {}", w.label(), span);
        }
    }

    #[test]
    fn constructor_classes_match_annotations() {
        for w in milc() {
            assert_eq!(w.dt.signature(), "vector(vector(MPI_DOUBLE))");
        }
        for w in nas_lu() {
            assert_eq!(w.dt.signature(), "vector(MPI_DOUBLE)");
        }
        for w in lammps() {
            assert_eq!(w.dt.signature(), "index(MPI_DOUBLE)");
        }
        for w in wrf_x() {
            assert!(
                w.dt.signature().starts_with("struct("),
                "{}",
                w.dt.signature()
            );
        }
    }

    #[test]
    fn comb_first_inputs_fit_one_packet() {
        let c = comb();
        assert!(c[0].msg_bytes() <= 2048, "COMB/a = {}", c[0].msg_bytes());
        assert!(c[1].msg_bytes() <= 2048, "COMB/b = {}", c[1].msg_bytes());
    }

    #[test]
    fn spec_oc_has_pathological_gamma() {
        let oc = spec_oc();
        let g = oc.last().unwrap().gamma(2048);
        assert!(g > 300.0, "SPEC-OC γ must be huge, got {g}");
    }

    #[test]
    fn sw4_directions_differ_in_block_size() {
        let x = &sw4_x()[1];
        let y = &sw4_y()[1];
        assert!(x.gamma(2048) > 10.0 * y.gamma(2048).max(1.0) || y.gamma(2048) <= 2.0);
    }

    #[test]
    fn workloads_are_deterministic() {
        let a = lammps()[0].dt.clone();
        let b = lammps()[0].dt.clone();
        assert_eq!(
            nca_ddt::typemap::blocks(&a, 1),
            nca_ddt::typemap::blocks(&b, 1)
        );
    }

    #[test]
    fn messages_pack_and_unpack() {
        for w in all_workloads() {
            if w.msg_bytes() > 4 << 20 {
                continue; // keep the test fast
            }
            let (origin, span) = nca_ddt::pack::buffer_span(&w.dt, w.count);
            let src: Vec<u8> = (0..span as usize).map(|i| (i % 251) as u8).collect();
            let packed = nca_ddt::pack::pack(&w.dt, w.count, &src, origin).unwrap();
            assert_eq!(packed.len() as u64, w.msg_bytes(), "{}", w.label());
        }
    }
}
