//! # nca-workloads — application datatype workloads
//!
//! Generators for the receive datatypes of the applications evaluated in
//! the paper's Fig. 16, spanning atmospheric science (WRF), quantum
//! chromodynamics (MILC), molecular dynamics (LAMMPS), material/seismic
//! science (SPECFEM3D, SW4LITE), fluid dynamics (NAS LU/MG), FFT (FFT2D)
//! and the COMB communication benchmark.
//!
//! The paper's exact input decks are not public; each generator is
//! parameterized so that the *datatype constructor class* matches the
//! paper's annotation (e.g. MILC = `vector(vector)`, WRF =
//! `struct(subarray)`) and the per-input message sizes and γ (average
//! contiguous regions per 2 KiB packet) fall in the annotated ranges.
//! See DESIGN.md for the substitution note.

pub mod apps;
pub mod fft;

pub use apps::{all_workloads, AppWorkload};
