//! # nca-mpi — a mini message-passing layer over the simulated NIC
//!
//! The paper's Sec. 3.2.6 sketches how an MPI implementation drives the
//! offload (commit → post → complete). This crate assembles the whole
//! stack into a usable message-passing interface so application-level
//! code can be written against it:
//!
//! * [`World`] — a set of simulated ranks with their own buffers,
//!   [`nca_core::OffloadManager`]s, and a shared timing model.
//! * Tagged, datatype-aware `isend`/`irecv` with MPI matching semantics
//!   (source + tag, posted-receive vs unexpected queues).
//! * **Real data movement**: sends pack from the sender's buffer, and
//!   receives scatter into the receiver's buffer through the datatype
//!   engine — applications can verify their numerics.
//! * **Offload-aware timing**: an expected (pre-posted) receive whose
//!   datatype was committed for offload charges only the NIC residual;
//!   an unexpected message lands packed and pays the host unpack
//!   (Sec. 3.2.6: "they can be unpacked by falling back to the host
//!   CPU-based unpack methods").

pub mod world;

pub use world::{RankTime, Request, World};
