//! The simulated multi-rank world.

use std::collections::HashMap;

use nca_core::api::{OffloadManager, PostOutcome, TypeAttr};
use nca_core::costmodel::{HandlerCycles, HostCostModel};
use nca_core::heuristic::select_checkpoint_interval;
use nca_core::runner::Strategy;
use nca_ddt::dataloop::compile;
use nca_ddt::pack::{buffer_span, pack, unpack};
use nca_ddt::types::Datatype;
use nca_loggopsim::model::LogGopsParams;
use nca_sim::Time;
use nca_spin::params::NicParams;

/// A rank-local clock value.
pub type RankTime = Time;

/// Handle for an outstanding receive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Request(u64);

struct InFlight {
    src: u32,
    tag: u32,
    packed: Vec<u8>,
    dt_size: u64,
    arrival: Time,
}

struct PostedRecv {
    src: u32,
    tag: u32,
    dt: Datatype,
    count: u32,
    posted_at: Time,
    offloaded: Option<Strategy>,
    req: Request,
}

struct Pending {
    /// Completion time once known.
    complete_at: Option<Time>,
    /// Unpacked receive buffer once complete (index 0 ↔ origin).
    buffer: Option<Vec<u8>>,
    origin: i64,
}

struct RankState {
    mgr: OffloadManager,
    time: Time,
    nic_free: Time,
    posted: Vec<PostedRecv>,
    unexpected: Vec<InFlight>,
}

/// The simulated world: `n` ranks, a shared network model, per-rank
/// offload managers.
pub struct World {
    params: NicParams,
    net: LogGopsParams,
    host: HostCostModel,
    ranks: Vec<RankState>,
    pending: HashMap<Request, Pending>,
    next_req: u64,
    /// Messages that arrived with no matching posted receive and were
    /// served by the host-unpack fallback.
    pub unexpected_fallbacks: u64,
}

impl World {
    /// Create a world of `n` ranks.
    pub fn new(n: u32, params: NicParams) -> World {
        World {
            ranks: (0..n)
                .map(|_| RankState {
                    mgr: OffloadManager::new(params.clone()),
                    time: 0,
                    nic_free: 0,
                    posted: Vec::new(),
                    unexpected: Vec::new(),
                })
                .collect(),
            params,
            net: LogGopsParams::default(),
            host: HostCostModel::default(),
            pending: HashMap::new(),
            next_req: 0,
            unexpected_fallbacks: 0,
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> u32 {
        self.ranks.len() as u32
    }

    /// Rank-local time.
    pub fn time(&self, rank: u32) -> RankTime {
        self.ranks[rank as usize].time
    }

    /// Advance a rank's clock by local computation.
    pub fn compute(&mut self, rank: u32, duration: Time) {
        self.ranks[rank as usize].time += duration;
    }

    /// Nonblocking datatype send: packs `count` copies of `dt` from
    /// `buf` (index 0 ↔ `origin`) and injects toward `(dest, tag)`.
    /// The CPU is busy for `o` only (zero-copy injection).
    #[allow(clippy::too_many_arguments)] // mirrors the MPI_Isend signature
    pub fn isend(
        &mut self,
        rank: u32,
        buf: &[u8],
        origin: i64,
        dt: &Datatype,
        count: u32,
        dest: u32,
        tag: u32,
    ) {
        let packed = pack(dt, count, buf, origin).expect("send buffer too small");
        let r = &mut self.ranks[rank as usize];
        r.time += self.net.o;
        let inject_start = r.time.max(r.nic_free);
        let inject_end = inject_start + self.net.gap_time(packed.len() as u64);
        r.nic_free = inject_end;
        let arrival = inject_end + self.net.l;
        let msg = InFlight {
            src: rank,
            tag,
            dt_size: packed.len() as u64,
            packed,
            arrival,
        };
        self.deliver(dest, msg);
    }

    fn deliver(&mut self, dest: u32, msg: InFlight) {
        // Match against posted receives (MPI ordering: first match wins).
        let pos = self.ranks[dest as usize]
            .posted
            .iter()
            .position(|p| p.src == msg.src && p.tag == msg.tag);
        match pos {
            Some(i) => {
                let posted = self.ranks[dest as usize].posted.remove(i);
                self.complete_posted(dest, posted, msg);
            }
            None => self.ranks[dest as usize].unexpected.push(msg),
        }
    }

    /// Residual processing time beyond the transfer for an offloaded
    /// receive (the Sec. 3.2.4 message-processing model minus the wire
    /// time the network already charged).
    fn offload_residual(&self, strategy: Strategy, msg_bytes: u64, blocks: u64) -> Time {
        let p = &self.params;
        let cyc = HandlerCycles::default();
        let k = p.payload_size;
        let npkt = msg_bytes.div_ceil(k).max(1);
        let gamma = (blocks as f64 / npkt as f64).max(1.0).ceil() as u64;
        let (t_ph, delta_p) = match strategy {
            Strategy::Specialized => (p.cycles(cyc.init + gamma * cyc.block_specialized), 1),
            _ => {
                let t = p.cycles(cyc.init + cyc.setup + gamma * cyc.block_general);
                let plan = select_checkpoint_interval(p, msg_bytes, t, 0.2);
                (t, plan.delta_p)
            }
        };
        let hpus = p.hpus as u64;
        let fill = (delta_p * (hpus - 1)).min(npkt.saturating_sub(1));
        let tc = p.t_pkt() + fill * p.t_pkt() + npkt.div_ceil(hpus) * t_ph;
        let wire = npkt * p.t_pkt();
        tc.saturating_sub(wire.min(tc)) + p.pcie_latency
    }

    fn complete_posted(&mut self, dest: u32, posted: PostedRecv, msg: InFlight) {
        let (origin, span) = buffer_span(&posted.dt, posted.count);
        let mut buffer = vec![0u8; span as usize];
        unpack(&posted.dt, posted.count, &msg.packed, &mut buffer, origin)
            .expect("stream length matches datatype");
        let dl = compile(&posted.dt, posted.count);
        let ready = msg.arrival.max(posted.posted_at);
        let complete_at = match posted.offloaded {
            Some(s) => ready + self.net.o + self.offload_residual(s, msg.dt_size, dl.blocks),
            None => {
                // Host fallback for a pre-posted receive that could not
                // be offloaded (NIC memory pressure).
                ready + self.net.o + self.host.unpack_time(msg.dt_size, dl.blocks)
            }
        };
        let _ = dest;
        self.pending.insert(
            posted.req,
            Pending {
                complete_at: Some(complete_at),
                buffer: Some(buffer),
                origin,
            },
        );
    }

    /// Nonblocking datatype receive from `(src, tag)`. Returns a request
    /// to [`World::wait`] on.
    pub fn irecv(&mut self, rank: u32, dt: &Datatype, count: u32, src: u32, tag: u32) -> Request {
        let req = Request(self.next_req);
        self.next_req += 1;
        let now = {
            let r = &mut self.ranks[rank as usize];
            r.time += self.net.o;
            r.time
        };
        // Unexpected queue first (MPI semantics).
        if let Some(i) = self.ranks[rank as usize]
            .unexpected
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            let msg = self.ranks[rank as usize].unexpected.remove(i);
            // The message landed packed: the host must unpack it.
            self.unexpected_fallbacks += 1;
            let (origin, span) = buffer_span(dt, count);
            let mut buffer = vec![0u8; span as usize];
            unpack(dt, count, &msg.packed, &mut buffer, origin).expect("length matches");
            let dl = compile(dt, count);
            let complete_at = now.max(msg.arrival) + self.host.unpack_time(msg.dt_size, dl.blocks);
            self.pending.insert(
                req,
                Pending {
                    complete_at: Some(complete_at),
                    buffer: Some(buffer),
                    origin,
                },
            );
            return req;
        }
        // Pre-posted: commit + try to offload.
        let committed = self.ranks[rank as usize]
            .mgr
            .commit(dt, TypeAttr::default());
        let outcome = self.ranks[rank as usize]
            .mgr
            .post_receive(&committed, count);
        let offloaded = match outcome {
            PostOutcome::Offloaded(s) => Some(s),
            PostOutcome::FallbackHost => None,
        };
        let (origin, _) = buffer_span(dt, count);
        self.ranks[rank as usize].posted.push(PostedRecv {
            src,
            tag,
            dt: dt.clone(),
            count,
            posted_at: now,
            offloaded,
            req,
        });
        self.pending.insert(
            req,
            Pending {
                complete_at: None,
                buffer: None,
                origin,
            },
        );
        req
    }

    /// Wait for a receive: advances the rank clock to the completion
    /// time and returns `(buffer, origin)` with the unpacked data.
    ///
    /// Panics if the matching send was never issued (deadlock).
    pub fn wait(&mut self, rank: u32, req: Request) -> (Vec<u8>, i64) {
        let pending = self
            .pending
            .remove(&req)
            .expect("unknown or already-waited request");
        let (complete_at, buffer) = match (pending.complete_at, pending.buffer) {
            (Some(t), Some(b)) => (t, b),
            _ => panic!("wait would deadlock: no matching send for {req:?}"),
        };
        let r = &mut self.ranks[rank as usize];
        r.time = r.time.max(complete_at);
        (buffer, pending.origin)
    }

    /// Whether a request has a known completion (its send arrived).
    pub fn test(&self, req: Request) -> bool {
        self.pending
            .get(&req)
            .map(|p| p.complete_at.is_some())
            .unwrap_or(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_ddt::types::{elem, DatatypeExt};

    fn strided(count: u32, blocklen: u32) -> Datatype {
        Datatype::vector(count, blocklen, 2 * blocklen as i64, &elem::double())
    }

    fn pattern(span: u64) -> Vec<u8> {
        (0..span as usize).map(|i| (i % 251) as u8).collect()
    }

    #[test]
    fn ping_pong_moves_real_data() {
        let dt = strided(512, 8);
        let (origin, span) = buffer_span(&dt, 1);
        let src_buf = pattern(span);
        let mut w = World::new(2, NicParams::with_hpus(16));
        let req = w.irecv(1, &dt, 1, 0, 99);
        assert!(!w.test(req), "nothing sent yet");
        w.isend(0, &src_buf, origin, &dt, 1, 1, 99);
        assert!(w.test(req));
        let (buf, o) = w.wait(1, req);
        assert_eq!(o, origin);
        // every mapped byte round-trips
        nca_ddt::typemap::for_each_block(&dt, 1, |off, len| {
            let s = (off - origin) as usize;
            assert_eq!(&buf[s..s + len as usize], &src_buf[s..s + len as usize]);
        });
        assert!(w.time(1) > 0);
    }

    #[test]
    fn preposted_offload_faster_than_unexpected() {
        let dt = strided(4096, 16); // 512 KiB
        let (origin, span) = buffer_span(&dt, 1);
        let src_buf = pattern(span);

        // Pre-posted: receive first, then send.
        let mut a = World::new(2, NicParams::with_hpus(16));
        let ra = a.irecv(1, &dt, 1, 0, 1);
        a.isend(0, &src_buf, origin, &dt, 1, 1, 1);
        a.wait(1, ra);
        let t_posted = a.time(1);

        // Unexpected: send first, receive later.
        let mut b = World::new(2, NicParams::with_hpus(16));
        b.isend(0, &src_buf, origin, &dt, 1, 1, 1);
        let rb = b.irecv(1, &dt, 1, 0, 1);
        b.wait(1, rb);
        let t_unexpected = b.time(1);

        assert_eq!(b.unexpected_fallbacks, 1);
        assert!(
            t_posted < t_unexpected,
            "offloaded pre-posted ({t_posted}) must beat unexpected host unpack ({t_unexpected})"
        );
    }

    #[test]
    fn matching_is_by_source_and_tag() {
        let dt = strided(64, 4);
        let (origin, span) = buffer_span(&dt, 1);
        let mut w = World::new(3, NicParams::with_hpus(8));
        let from2 = w.irecv(0, &dt, 1, 2, 7);
        let from1 = w.irecv(0, &dt, 1, 1, 7);
        let buf1 = pattern(span);
        let buf2: Vec<u8> = buf1.iter().map(|b| b.wrapping_add(1)).collect();
        w.isend(1, &buf1, origin, &dt, 1, 0, 7);
        w.isend(2, &buf2, origin, &dt, 1, 0, 7);
        let (got2, _) = w.wait(0, from2);
        let (got1, _) = w.wait(0, from1);
        nca_ddt::typemap::for_each_block(&dt, 1, |off, len| {
            let s = (off - origin) as usize;
            assert_eq!(&got1[s..s + len as usize], &buf1[s..s + len as usize]);
            assert_eq!(&got2[s..s + len as usize], &buf2[s..s + len as usize]);
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn wait_without_send_panics() {
        let dt = strided(8, 2);
        let mut w = World::new(2, NicParams::with_hpus(4));
        let r = w.irecv(0, &dt, 1, 1, 0);
        w.wait(0, r);
    }

    #[test]
    fn halo_exchange_2d_verified() {
        // 4 ranks in a ring exchange column halos of an 8x8 tile.
        let n = 8u32;
        let col = Datatype::vector(n, 1, n as i64, &elem::double());
        let (origin, span) = buffer_span(&col, 1);
        let ranks = 4u32;
        let mut w = World::new(ranks, NicParams::with_hpus(8));
        let bufs: Vec<Vec<u8>> = (0..ranks)
            .map(|r| {
                (0..span as usize)
                    .map(|i| ((i + r as usize * 17) % 251) as u8)
                    .collect()
            })
            .collect();
        // Everyone posts a receive from the left, sends its column right.
        let reqs: Vec<Request> = (0..ranks)
            .map(|r| w.irecv(r, &col, 1, (r + ranks - 1) % ranks, 5))
            .collect();
        for r in 0..ranks {
            let buf = bufs[r as usize].clone();
            w.isend(r, &buf, origin, &col, 1, (r + 1) % ranks, 5);
        }
        for r in 0..ranks {
            let (got, _) = w.wait(r, reqs[r as usize]);
            let left = &bufs[((r + ranks - 1) % ranks) as usize];
            nca_ddt::typemap::for_each_block(&col, 1, |off, len| {
                let s = (off - origin) as usize;
                assert_eq!(
                    &got[s..s + len as usize],
                    &left[s..s + len as usize],
                    "rank {r}"
                );
            });
        }
    }

    #[test]
    fn compute_advances_clock() {
        let mut w = World::new(1, NicParams::default());
        w.compute(0, nca_sim::us(5));
        assert_eq!(w.time(0), nca_sim::us(5));
    }
}

/// Collective helpers built on the point-to-point layer.
impl World {
    /// A datatype alltoall among all ranks: every rank contributes one
    /// `dt`-shaped message per peer (taken from `bufs[rank]`), and the
    /// call returns each rank's received buffers indexed by source.
    /// Receives are pre-posted (offloadable); clocks advance to the
    /// completion of each rank's last receive.
    pub fn alltoall(
        &mut self,
        dt: &Datatype,
        count: u32,
        bufs: &[Vec<u8>],
        tag: u32,
    ) -> Vec<Vec<(u32, Vec<u8>)>> {
        let n = self.size();
        assert_eq!(bufs.len() as u32, n, "one contribution buffer per rank");
        let (origin, _) = buffer_span(dt, count);
        // Pre-post all receives.
        let mut reqs: Vec<Vec<(u32, Request)>> = Vec::with_capacity(n as usize);
        for r in 0..n {
            let mut v = Vec::with_capacity(n as usize - 1);
            for off in 1..n {
                let src = (r + n - off) % n;
                v.push((src, self.irecv(r, dt, count, src, tag)));
            }
            reqs.push(v);
        }
        // All sends.
        for r in 0..n {
            for off in 1..n {
                let dst = (r + off) % n;
                let buf = bufs[r as usize].clone();
                self.isend(r, &buf, origin, dt, count, dst, tag);
            }
        }
        // Drain.
        reqs.into_iter()
            .enumerate()
            .map(|(r, v)| {
                v.into_iter()
                    .map(|(src, req)| {
                        let (buf, _) = self.wait(r as u32, req);
                        (src, buf)
                    })
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod collective_tests {
    use super::*;
    use nca_ddt::types::{elem, DatatypeExt};

    #[test]
    fn alltoall_delivers_every_pairwise_buffer() {
        let dt = Datatype::vector(128, 2, 4, &elem::double());
        let (origin, span) = buffer_span(&dt, 1);
        let ranks = 4u32;
        let mut w = World::new(ranks, NicParams::with_hpus(8));
        let bufs: Vec<Vec<u8>> = (0..ranks)
            .map(|r| {
                (0..span as usize)
                    .map(|i| ((i + 13 * r as usize) % 251) as u8)
                    .collect()
            })
            .collect();
        let got = w.alltoall(&dt, 1, &bufs, 77);
        for (r, per_src) in got.iter().enumerate() {
            assert_eq!(per_src.len(), ranks as usize - 1);
            for (src, buf) in per_src {
                nca_ddt::typemap::for_each_block(&dt, 1, |off, len| {
                    let s = (off - origin) as usize;
                    assert_eq!(
                        &buf[s..s + len as usize],
                        &bufs[*src as usize][s..s + len as usize],
                        "rank {r} from {src}"
                    );
                });
            }
        }
        // everyone's clock advanced past the transfers
        for r in 0..ranks {
            assert!(w.time(r) > 0);
        }
    }

    #[test]
    fn alltoall_preposted_receives_offload() {
        let dt = Datatype::vector(2048, 4, 8, &elem::double());
        let (_, span) = buffer_span(&dt, 1);
        let ranks = 3u32;
        let mut w = World::new(ranks, NicParams::with_hpus(8));
        let bufs: Vec<Vec<u8>> = (0..ranks)
            .map(|r| {
                (0..span as usize)
                    .map(|i| ((i + r as usize) % 251) as u8)
                    .collect()
            })
            .collect();
        let _ = w.alltoall(&dt, 1, &bufs, 1);
        // all receives were pre-posted: no unexpected-message fallbacks
        assert_eq!(w.unexpected_fallbacks, 0);
    }
}
