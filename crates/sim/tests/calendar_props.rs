//! Property proof that the calendar queue is event-order-identical to a
//! `BinaryHeap` ordered by `(timestamp, insertion seq)` — the contract the
//! engine's determinism rests on. Covers same-timestamp ties, far-future
//! rollover into overflow days, and interleaved push/pop schedules.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use proptest::prelude::*;

use nca_sim::CalendarQueue;

/// Timestamps spanning sub-bucket ties up to far-future days (the default
/// bucket width is 2^13 ps × 512 buckets per day, so anything beyond
/// ~4.2e6 ps exercises overflow; the u64::MAX-scale values force width
/// retuning at rotation).
fn timestamp() -> impl Strategy<Value = u64> {
    prop_oneof![
        0u64..5_000u64,      // dense ties within day 0
        0u64..10_000_000u64, // several days
        0u64..u64::MAX / 2,  // far-future rollover
        Just(u64::MAX - 1),  // extreme retune
    ]
}

proptest! {
    #[test]
    fn pop_order_identical_to_heap(times in proptest::collection::vec(timestamp(), 1..300)) {
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeap::new();
        for (seq, &at) in times.iter().enumerate() {
            cal.push(at, seq as u64, seq);
            heap.push(Reverse((at, seq as u64, seq)));
        }
        prop_assert_eq!(cal.len(), heap.len());
        loop {
            match (cal.pop(), heap.pop()) {
                (Some(c), Some(Reverse(h))) => prop_assert_eq!(c, h),
                (None, None) => break,
                (c, h) => prop_assert!(false, "length mismatch: cal={:?} heap={:?}", c, h.map(|Reverse(x)| x)),
            }
        }
    }

    /// Interleave pushes with pops the way a simulator does: every push
    /// after a pop is at-or-after the popped time (no scheduling in the
    /// past), and future times are offsets from "now".
    #[test]
    fn interleaved_schedule_identical_to_heap(
        ops in proptest::collection::vec((any::<bool>(), 0u64..20_000_000u64), 1..300),
    ) {
        let mut cal = CalendarQueue::new();
        let mut heap = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for &(pop, delay) in &ops {
            if pop {
                let c = cal.pop();
                let h = heap.pop().map(|Reverse(x)| x);
                prop_assert_eq!(c, h);
                if let Some((at, _, _)) = c {
                    now = at;
                }
            } else {
                let at = now.saturating_add(delay);
                cal.push(at, seq, seq);
                heap.push(Reverse((at, seq, seq)));
                seq += 1;
            }
        }
        // Drain the remainder.
        loop {
            match (cal.pop(), heap.pop()) {
                (Some(c), Some(Reverse(h))) => prop_assert_eq!(c, h),
                (None, None) => break,
                _ => prop_assert!(false, "length mismatch"),
            }
        }
    }

    /// Ties at a single timestamp must pop in insertion order even when
    /// interleaved with pops (some pushed before the cursor reaches the
    /// bucket, some after).
    #[test]
    fn ties_pop_in_insertion_order(
        at in timestamp(),
        before in 1usize..40,
        after in 0usize..40,
    ) {
        let mut cal = CalendarQueue::new();
        let mut seq = 0u64;
        for _ in 0..before {
            cal.push(at, seq, seq);
            seq += 1;
        }
        let first = cal.pop().expect("nonempty");
        prop_assert_eq!(first.1, 0);
        for _ in 0..after {
            cal.push(at, seq, seq);
            seq += 1;
        }
        let mut prev = first.1;
        while let Some((t, s, _)) = cal.pop() {
            prop_assert_eq!(t, at);
            prop_assert!(s > prev);
            prev = s;
        }
        prop_assert_eq!(prev, (before + after) as u64 - 1);
    }
}
