//! Property tests for the discrete-event engine: execution order is the
//! sorted (time, insertion) order regardless of scheduling order.

use proptest::prelude::*;

use nca_sim::Sim;

proptest! {
    #[test]
    fn events_execute_in_time_then_insertion_order(times in proptest::collection::vec(0u64..10_000, 1..100)) {
        let mut sim: Sim<Vec<(u64, usize)>> = Sim::new();
        for (i, &t) in times.iter().enumerate() {
            sim.schedule(t, move |w, s| w.push((s.now(), i)));
        }
        let mut trace = Vec::new();
        sim.run(&mut trace);
        prop_assert_eq!(trace.len(), times.len());
        // times non-decreasing; ties in insertion order
        for w in trace.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        // each event executed at its scheduled time
        for &(t, i) in &trace {
            prop_assert_eq!(t, times[i]);
        }
    }

    #[test]
    fn chained_scheduling_accumulates(delays in proptest::collection::vec(1u64..1000, 1..50)) {
        struct W { remaining: Vec<u64>, count: usize }
        fn step(w: &mut W, s: &mut Sim<W>) {
            w.count += 1;
            if let Some(d) = w.remaining.pop() {
                s.schedule_in(d, step);
            }
        }
        let total: u64 = delays.iter().sum();
        let mut w = W { remaining: delays.clone(), count: 0 };
        let mut sim: Sim<W> = Sim::new();
        let first = w.remaining.pop().expect("nonempty");
        sim.schedule(first, step);
        sim.run(&mut w);
        prop_assert_eq!(w.count, delays.len());
        prop_assert_eq!(sim.now(), total);
    }
}
