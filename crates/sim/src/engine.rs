//! The event queue and run loop.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulated time in picoseconds.
pub type Time = u64;

type EventFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

struct Event<W> {
    at: Time,
    seq: u64,
    f: EventFn<W>,
}

// Ordering for the heap: earliest time, then lowest sequence number.
impl<W> PartialEq for Event<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Event<W> {}
impl<W> PartialOrd for Event<W> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Event<W> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Discrete-event simulator over a world type `W`.
///
/// ```
/// use nca_sim::{Sim, ns};
///
/// let mut sim: Sim<u64> = Sim::new();
/// sim.schedule(ns(5), |w, s| {
///     *w += 1;
///     s.schedule_in(ns(10), |w, _| *w += 10);
/// });
/// let mut world = 0u64;
/// sim.run(&mut world);
/// assert_eq!(world, 11);
/// assert_eq!(sim.now(), ns(15));
/// ```
/// Observer of the event loop itself (dispatch rate, heap depth).
///
/// The engine cannot depend on any metrics crate, so instrumentation is
/// inverted: a probe is installed by the caller (e.g. an adapter over
/// `nca-telemetry`) and invoked once per executed event. When no probe
/// is installed the loop pays a single `Option` check per event.
pub trait SimProbe {
    /// Called after an event is popped, before its closure runs.
    /// `pending` is the heap depth after the pop.
    fn event_dispatched(&self, now: Time, executed: u64, pending: usize);
}

pub struct Sim<W> {
    now: Time,
    seq: u64,
    queue: BinaryHeap<Reverse<Event<W>>>,
    executed: u64,
    probe: Option<Box<dyn SimProbe>>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Create an empty simulator at time 0.
    pub fn new() -> Self {
        Sim {
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            executed: 0,
            probe: None,
        }
    }

    /// Install an event-loop observer (replacing any previous one).
    pub fn set_probe(&mut self, probe: Box<dyn SimProbe>) {
        self.probe = Some(probe);
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past panics —
    /// it is always a model bug.
    pub fn schedule(&mut self, at: Time, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let _phase = crate::profile::enter(crate::profile::Phase::EventQueue);
        self.queue.push(Reverse(Event {
            at,
            seq,
            f: Box::new(f),
        }));
    }

    /// Schedule `f` `delay` after now.
    pub fn schedule_in(&mut self, delay: Time, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        let at = self.now + delay;
        self.schedule(at, f);
    }

    /// Run until the queue drains. Returns the final time.
    pub fn run(&mut self, world: &mut W) -> Time {
        while self.step(world) {}
        self.now
    }

    /// Run until the queue drains or `deadline` is reached (events at
    /// exactly `deadline` still execute).
    pub fn run_until(&mut self, world: &mut W, deadline: Time) -> Time {
        while let Some(Reverse(ev)) = self.queue.peek() {
            if ev.at > deadline {
                break;
            }
            self.step(world);
        }
        self.now
    }

    /// Execute the next event, if any. Returns whether one ran.
    pub fn step(&mut self, world: &mut W) -> bool {
        let popped = {
            let _phase = crate::profile::enter(crate::profile::Phase::EventQueue);
            self.queue.pop()
        };
        match popped {
            Some(Reverse(ev)) => {
                debug_assert!(ev.at >= self.now, "time went backwards");
                self.now = ev.at;
                self.executed += 1;
                if let Some(p) = &self.probe {
                    p.event_dispatched(self.now, self.executed, self.queue.len());
                }
                // Everything the event closure does — in the NIC model,
                // dominated by sPIN handler work — is the `Handler`
                // phase; nested DMA/telemetry/alloc slices pause it.
                let _phase = crate::profile::enter(crate::profile::Phase::Handler);
                (ev.f)(world, self);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule(30, |w, _| w.push(3));
        sim.schedule(10, |w, _| w.push(1));
        sim.schedule(20, |w, _| w.push(2));
        let mut trace = Vec::new();
        sim.run(&mut trace);
        assert_eq!(trace, vec![1, 2, 3]);
        assert_eq!(sim.now(), 30);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        for i in 0..16 {
            sim.schedule(100, move |w, _| w.push(i));
        }
        let mut trace = Vec::new();
        sim.run(&mut trace);
        assert_eq!(trace, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_chains() {
        let mut sim: Sim<u64> = Sim::new();
        fn tick(w: &mut u64, s: &mut Sim<u64>) {
            *w += 1;
            if *w < 100 {
                s.schedule_in(7, tick);
            }
        }
        sim.schedule(0, tick);
        let mut count = 0;
        sim.run(&mut count);
        assert_eq!(count, 100);
        assert_eq!(sim.now(), 99 * 7);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Sim<u64> = Sim::new();
        for t in (0..100).step_by(10) {
            sim.schedule(t, |w, _| *w += 1);
        }
        let mut n = 0;
        sim.run_until(&mut n, 45);
        assert_eq!(n, 5); // events at 0,10,20,30,40
        sim.run(&mut n);
        assert_eq!(n, 10);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule(100, |_, s| {
            s.schedule(50, |_, _| {});
        });
        sim.run(&mut ());
    }
}
