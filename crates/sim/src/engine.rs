//! The event queue and run loop.

use crate::calendar::CalendarQueue;

/// Simulated time in picoseconds.
pub type Time = u64;

/// A plain-function event body: world, sim, two scalar arguments.
type Call2Fn<W> = fn(&mut W, &mut Sim<W>, u64, u64);

/// A boxed-closure event body.
type BoxedFn<W> = Box<dyn FnOnce(&mut W, &mut Sim<W>)>;

/// An event body. The common hot-path events (packet arrival, HER ready,
/// handler dispatch, DMA service) carry only a function pointer plus two
/// scalar arguments, so they queue without touching the allocator; anything
/// richer (captured `Vec`s, fault-path state) boxes a closure as before.
enum EventFn<W> {
    Boxed(BoxedFn<W>),
    Call2(Call2Fn<W>, u64, u64),
}

impl<W> EventFn<W> {
    #[inline]
    fn invoke(self, world: &mut W, sim: &mut Sim<W>) {
        match self {
            EventFn::Boxed(f) => f(world, sim),
            EventFn::Call2(f, a, b) => f(world, sim, a, b),
        }
    }
}

/// Discrete-event simulator over a world type `W`.
///
/// ```
/// use nca_sim::{Sim, ns};
///
/// let mut sim: Sim<u64> = Sim::new();
/// sim.schedule(ns(5), |w, s| {
///     *w += 1;
///     s.schedule_in(ns(10), |w, _| *w += 10);
/// });
/// let mut world = 0u64;
/// sim.run(&mut world);
/// assert_eq!(world, 11);
/// assert_eq!(sim.now(), ns(15));
/// ```
/// Observer of the event loop itself (dispatch rate, queue depth).
///
/// The engine cannot depend on any metrics crate, so instrumentation is
/// inverted: a probe is installed by the caller (e.g. an adapter over
/// `nca-telemetry`) and invoked once per executed event. When no probe
/// is installed the loop pays a single `Option` check per event.
pub trait SimProbe {
    /// Called after an event is popped, before its closure runs.
    /// `pending` is the queue depth after the pop.
    fn event_dispatched(&self, now: Time, executed: u64, pending: usize);
}

pub struct Sim<W> {
    now: Time,
    seq: u64,
    queue: CalendarQueue<EventFn<W>>,
    executed: u64,
    probe: Option<Box<dyn SimProbe>>,
}

impl<W> Default for Sim<W> {
    fn default() -> Self {
        Self::new()
    }
}

impl<W> Sim<W> {
    /// Create an empty simulator at time 0.
    pub fn new() -> Self {
        Sim {
            now: 0,
            seq: 0,
            queue: CalendarQueue::new(),
            executed: 0,
            probe: None,
        }
    }

    /// Install an event-loop observer (replacing any previous one).
    pub fn set_probe(&mut self, probe: Box<dyn SimProbe>) {
        self.probe = Some(probe);
    }

    /// Current simulated time.
    pub fn now(&self) -> Time {
        self.now
    }

    /// Total events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    #[inline]
    fn enqueue(&mut self, at: Time, f: EventFn<W>) {
        assert!(
            at >= self.now,
            "event scheduled in the past: {} < {}",
            at,
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        let _phase = crate::profile::enter(crate::profile::Phase::EventQueue);
        self.queue.push(at, seq, f);
    }

    /// Schedule `f` at absolute time `at`. Scheduling in the past panics —
    /// it is always a model bug.
    pub fn schedule(&mut self, at: Time, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        self.enqueue(at, EventFn::Boxed(Box::new(f)));
    }

    /// Schedule `f` `delay` after now.
    pub fn schedule_in(&mut self, delay: Time, f: impl FnOnce(&mut W, &mut Sim<W>) + 'static) {
        let at = self.now + delay;
        self.schedule(at, f);
    }

    /// Schedule a plain function with two scalar arguments at absolute
    /// time `at`. Allocation-free: the event is stored inline in the
    /// queue, so hot paths that fire millions of events avoid one
    /// `Box` per event.
    pub fn schedule_call(
        &mut self,
        at: Time,
        f: fn(&mut W, &mut Sim<W>, u64, u64),
        a: u64,
        b: u64,
    ) {
        self.enqueue(at, EventFn::Call2(f, a, b));
    }

    /// Allocation-free variant of [`Sim::schedule_in`]; see
    /// [`Sim::schedule_call`].
    pub fn schedule_call_in(
        &mut self,
        delay: Time,
        f: fn(&mut W, &mut Sim<W>, u64, u64),
        a: u64,
        b: u64,
    ) {
        self.schedule_call(self.now + delay, f, a, b);
    }

    /// Run until the queue drains. Returns the final time.
    pub fn run(&mut self, world: &mut W) -> Time {
        while self.step(world) {}
        self.now
    }

    /// Run until the queue drains or `deadline` is reached (events at
    /// exactly `deadline` still execute).
    pub fn run_until(&mut self, world: &mut W, deadline: Time) -> Time {
        while let Some((at, _)) = self.queue.peek_key() {
            if at > deadline {
                break;
            }
            self.step(world);
        }
        self.now
    }

    /// Execute the next event, if any. Returns whether one ran.
    pub fn step(&mut self, world: &mut W) -> bool {
        let popped = {
            let _phase = crate::profile::enter(crate::profile::Phase::EventQueue);
            self.queue.pop()
        };
        match popped {
            Some((at, _seq, f)) => {
                debug_assert!(at >= self.now, "time went backwards");
                self.now = at;
                self.executed += 1;
                if let Some(p) = &self.probe {
                    p.event_dispatched(self.now, self.executed, self.queue.len());
                }
                // Everything the event closure does — in the NIC model,
                // dominated by sPIN handler work — is the `Handler`
                // phase; nested DMA/telemetry/alloc slices pause it.
                let _phase = crate::profile::enter(crate::profile::Phase::Handler);
                f.invoke(world, self);
                true
            }
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_run_in_time_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        sim.schedule(30, |w, _| w.push(3));
        sim.schedule(10, |w, _| w.push(1));
        sim.schedule(20, |w, _| w.push(2));
        let mut trace = Vec::new();
        sim.run(&mut trace);
        assert_eq!(trace, vec![1, 2, 3]);
        assert_eq!(sim.now(), 30);
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut sim: Sim<Vec<u32>> = Sim::new();
        for i in 0..16 {
            sim.schedule(100, move |w, _| w.push(i));
        }
        let mut trace = Vec::new();
        sim.run(&mut trace);
        assert_eq!(trace, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_chains() {
        let mut sim: Sim<u64> = Sim::new();
        fn tick(w: &mut u64, s: &mut Sim<u64>) {
            *w += 1;
            if *w < 100 {
                s.schedule_in(7, tick);
            }
        }
        sim.schedule(0, tick);
        let mut count = 0;
        sim.run(&mut count);
        assert_eq!(count, 100);
        assert_eq!(sim.now(), 99 * 7);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim: Sim<u64> = Sim::new();
        for t in (0..100).step_by(10) {
            sim.schedule(t, |w, _| *w += 1);
        }
        let mut n = 0;
        sim.run_until(&mut n, 45);
        assert_eq!(n, 5); // events at 0,10,20,30,40
        sim.run(&mut n);
        assert_eq!(n, 10);
    }

    #[test]
    fn schedule_call_interleaves_with_closures() {
        fn bump(w: &mut Vec<u64>, _s: &mut Sim<Vec<u64>>, a: u64, b: u64) {
            w.push(a * 100 + b);
        }
        let mut sim: Sim<Vec<u64>> = Sim::new();
        sim.schedule_call(20, bump, 2, 7);
        sim.schedule(10, |w, s| {
            w.push(1);
            s.schedule_call_in(5, bump, 9, 9);
        });
        sim.schedule(20, |w, _| w.push(3));
        let mut trace = Vec::new();
        sim.run(&mut trace);
        // t=10 closure, t=15 call, t=20 call (earlier seq) then closure.
        assert_eq!(trace, vec![1, 909, 207, 3]);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn scheduling_in_the_past_panics() {
        let mut sim: Sim<()> = Sim::new();
        sim.schedule(100, |_, s| {
            s.schedule(50, |_, _| {});
        });
        sim.run(&mut ());
    }
}
