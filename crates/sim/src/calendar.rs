//! Hierarchical calendar (bucket) queue for the event core.
//!
//! A discrete-event simulator pops events in `(time, seq)` order. A binary
//! heap does this in `O(log n)` per operation with poor cache behaviour; a
//! calendar queue exploits the fact that simulated time advances
//! monotonically: events land in an array of time-sliced buckets ("days" of
//! `NBUCKETS` buckets, each `1 << shift` picoseconds wide), and the pop path
//! walks an occupancy bitmap instead of rebalancing a heap.
//!
//! Ordering contract (proven against `BinaryHeap` in
//! `crates/sim/tests/calendar_props.rs`): pops come out in strictly
//! ascending `(at, seq)` order regardless of push order, including
//! same-timestamp ties (sequence numbers break them) and far-future events
//! that overflow the current day.
//!
//! Structure:
//!
//! * `current` — a small binary heap holding the bucket the cursor points
//!   at, plus anything pushed at-or-before the cursor (late pushes relative
//!   to the cursor stay correctly ordered because `current` is a real heap).
//! * `slab` + `heads` — the remaining buckets of the current day. Staged
//!   entries live in one contiguous slab (a free-list recycles slots), and
//!   each bucket is an intrusive singly-linked list through the slab with a
//!   `u32` head per bucket. Sorting is deferred until the cursor reaches a
//!   bucket and its list drains into `current`. A single slab means a whole
//!   simulation run costs O(1) allocations however many buckets get
//!   touched — a per-bucket `Vec` design pays one malloc per touched
//!   bucket, which dominates short runs. A 512-bit occupancy bitmap makes
//!   empty buckets cost one `trailing_zeros` scan, not a probe.
//! * `overflow` — events beyond the current day, unsorted. When a day
//!   drains, the queue *rotates*: it finds the earliest overflow event,
//!   retunes the bucket width so the whole overflow span fits in one day
//!   where possible (classic calendar-queue resize, safe here because the
//!   ring is empty), and re-buckets that day in one pass.
//!
//! The common case — NIC events scheduled a few ns out — is a push into a
//! near bucket (slab write + list link) and a pop from `current` (small
//! heap), both O(1)-ish and cache-friendly at millions of in-flight events.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::engine::Time;

/// Buckets per day. Power of two; the low 9 bits of the bucket serial.
const NBUCKETS: usize = 512;
const BUCKET_BITS: u32 = 9;
const BUCKET_MASK: u64 = (NBUCKETS as u64) - 1;
/// Narrowest bucket: 2^7 ps = 128 ps (one day ≈ 65.5 ns). Sub-bucket
/// events fall into the `current` heap, so narrow buckets keep that heap
/// tiny; rotation widens the bucket when the pending span outgrows a day.
const MIN_SHIFT: u32 = 7;
/// Widest bucket; caps `NBUCKETS << shift` far below u64 overflow.
const MAX_SHIFT: u32 = 48;
/// Null link in the slab lists.
const NIL: u32 = u32::MAX;

struct Entry<T> {
    at: Time,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// One slab slot: a staged event plus its intrusive list link. `item` is
/// `None` only while the slot sits on the free list.
struct Node<T> {
    at: Time,
    seq: u64,
    next: u32,
    item: Option<T>,
}

/// Min-ordered calendar queue over `(at, seq)` keys.
pub struct CalendarQueue<T> {
    /// log2 of the bucket width in picoseconds.
    shift: u32,
    /// Day index of the ring: `(at >> shift) >> BUCKET_BITS`.
    day: u64,
    /// Bucket the cursor points at within the current day.
    cursor: usize,
    /// Heap of everything at-or-before the cursor.
    current: BinaryHeap<Reverse<Entry<T>>>,
    /// Slot arena for staged bucket entries.
    slab: Vec<Node<T>>,
    /// Free-list head into `slab`.
    free: u32,
    /// Per-bucket intrusive list heads into `slab`.
    heads: [u32; NBUCKETS],
    /// Occupancy bitmap over the buckets.
    occ: [u64; NBUCKETS / 64],
    /// Events beyond the current day, unsorted.
    overflow: Vec<Entry<T>>,
    len: usize,
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> CalendarQueue<T> {
    /// Empty queue with the default (narrowest) bucket width.
    pub fn new() -> Self {
        CalendarQueue {
            shift: MIN_SHIFT,
            day: 0,
            cursor: 0,
            current: BinaryHeap::new(),
            slab: Vec::new(),
            free: NIL,
            heads: [NIL; NBUCKETS],
            occ: [0; NBUCKETS / 64],
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Number of queued events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn locate(&self, at: Time) -> (u64, usize) {
        let serial = at >> self.shift;
        ((serial >> BUCKET_BITS), (serial & BUCKET_MASK) as usize)
    }

    /// Link an entry into bucket `b`'s slab list.
    fn stage(&mut self, b: usize, e: Entry<T>) {
        let head = self.heads[b];
        let slot = if self.free != NIL {
            let i = self.free;
            let n = &mut self.slab[i as usize];
            self.free = n.next;
            n.at = e.at;
            n.seq = e.seq;
            n.next = head;
            n.item = Some(e.item);
            i
        } else {
            assert!(self.slab.len() < NIL as usize, "calendar slab full");
            self.slab.push(Node {
                at: e.at,
                seq: e.seq,
                next: head,
                item: Some(e.item),
            });
            (self.slab.len() - 1) as u32
        };
        self.heads[b] = slot;
        self.occ[b >> 6] |= 1u64 << (b & 63);
    }

    /// Insert an event. `seq` must be unique per queue (the caller's
    /// monotone insertion counter); ties on `at` pop in `seq` order.
    pub fn push(&mut self, at: Time, seq: u64, item: T) {
        let (d, b) = self.locate(at);
        let e = Entry { at, seq, item };
        self.len += 1;
        if d < self.day || (d == self.day && b <= self.cursor) {
            // At or behind the cursor: the sorted heap keeps it ordered.
            self.current.push(Reverse(e));
        } else if d == self.day {
            self.stage(b, e);
        } else {
            self.overflow.push(e);
        }
    }

    /// Earliest `(at, seq)` key without removing it.
    pub fn peek_key(&mut self) -> Option<(Time, u64)> {
        if self.ensure_current() {
            self.current.peek().map(|Reverse(e)| (e.at, e.seq))
        } else {
            None
        }
    }

    /// Remove and return the earliest event.
    pub fn pop(&mut self) -> Option<(Time, u64, T)> {
        if self.ensure_current() {
            let Reverse(e) = self.current.pop().expect("ensure_current lied");
            self.len -= 1;
            Some((e.at, e.seq, e.item))
        } else {
            None
        }
    }

    /// Make `current` hold the globally-minimal event, advancing the
    /// cursor / rotating days as needed. Returns false iff empty.
    fn ensure_current(&mut self) -> bool {
        loop {
            if !self.current.is_empty() {
                return true;
            }
            if let Some(b) = self.next_occupied(self.cursor + 1) {
                self.cursor = b;
                self.occ[b >> 6] &= !(1u64 << (b & 63));
                let mut i = std::mem::replace(&mut self.heads[b], NIL);
                while i != NIL {
                    let n = &mut self.slab[i as usize];
                    let at = n.at;
                    let seq = n.seq;
                    let next = n.next;
                    let item = n.item.take().expect("staged slot without item");
                    n.next = self.free;
                    self.free = i;
                    self.current.push(Reverse(Entry { at, seq, item }));
                    i = next;
                }
            } else if !self.overflow.is_empty() {
                self.rotate();
            } else {
                return false;
            }
        }
    }

    /// First occupied bucket index `>= from`, scanning the bitmap.
    fn next_occupied(&self, from: usize) -> Option<usize> {
        if from >= NBUCKETS {
            return None;
        }
        let mut word = from >> 6;
        let mut bits = self.occ[word] & (!0u64 << (from & 63));
        loop {
            if bits != 0 {
                return Some((word << 6) + bits.trailing_zeros() as usize);
            }
            word += 1;
            if word >= NBUCKETS / 64 {
                return None;
            }
            bits = self.occ[word];
        }
    }

    /// Advance the ring to the day of the earliest overflow event,
    /// retuning the bucket width so the whole overflow span fits in one
    /// day where possible. Only called with the ring (current + buckets)
    /// empty, so rebucketing under a new `shift` is consistent.
    fn rotate(&mut self) {
        debug_assert!(self.current.is_empty());
        let mut min_at = Time::MAX;
        let mut max_at = 0;
        for e in &self.overflow {
            min_at = min_at.min(e.at);
            max_at = max_at.max(e.at);
        }
        // Prefer the narrowest width whose day covers the whole overflow
        // span — one rotation instead of many for far-future clusters.
        let span = max_at - min_at;
        let mut shift = MIN_SHIFT;
        while shift < MAX_SHIFT && ((NBUCKETS as u64) << shift) <= span {
            shift += 1;
        }
        self.shift = shift;
        let serial = min_at >> shift;
        self.day = serial >> BUCKET_BITS;
        self.cursor = (serial & BUCKET_MASK) as usize;
        let staged = std::mem::take(&mut self.overflow);
        for e in staged {
            let (d, b) = self.locate(e.at);
            debug_assert!(d > self.day || (d == self.day && b >= self.cursor));
            if d == self.day {
                if b == self.cursor {
                    self.current.push(Reverse(e));
                } else {
                    self.stage(b, e);
                }
            } else {
                self.overflow.push(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(q: &mut CalendarQueue<u32>) -> Vec<(Time, u64, u32)> {
        let mut out = Vec::new();
        while let Some(e) = q.pop() {
            out.push(e);
        }
        out
    }

    #[test]
    fn pops_in_time_then_seq_order() {
        let mut q = CalendarQueue::new();
        q.push(30, 0, 3);
        q.push(10, 1, 1);
        q.push(20, 2, 2);
        q.push(10, 3, 11);
        assert_eq!(q.len(), 4);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|e| e.2).collect();
        assert_eq!(order, vec![1, 11, 2, 3]);
        assert!(q.is_empty());
    }

    #[test]
    fn same_bucket_ties_pop_by_seq() {
        let mut q = CalendarQueue::new();
        for i in (0..64u64).rev() {
            q.push(1_000_000, i, i as u32);
        }
        let order: Vec<u64> = drain(&mut q).into_iter().map(|e| e.1).collect();
        assert_eq!(order, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn far_future_overflow_rotates() {
        let mut q = CalendarQueue::new();
        // Beyond day 0 at MIN_SHIFT (day spans 512 << MIN_SHIFT ps).
        let far = (NBUCKETS as u64) << (MIN_SHIFT + 4);
        q.push(far, 0, 2);
        q.push(5, 1, 1);
        q.push(far * 3, 2, 3);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|e| e.2).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn huge_span_retunes_width() {
        let mut q = CalendarQueue::new();
        q.push(0, 0, 0);
        q.push(u64::MAX / 2, 1, 1);
        q.push(u64::MAX - 1, 2, 2);
        let order: Vec<u32> = drain(&mut q).into_iter().map(|e| e.2).collect();
        assert_eq!(order, vec![0, 1, 2]);
    }

    #[test]
    fn pushes_behind_cursor_stay_ordered() {
        let mut q = CalendarQueue::new();
        for t in 0..100u64 {
            q.push(t * 100_000, t, t as u32);
        }
        // Drain half, then push an event that lands at-or-behind the
        // cursor region (still >= the last pop in key order).
        let mut got = Vec::new();
        for _ in 0..50 {
            got.push(q.pop().unwrap().2);
        }
        q.push(50 * 100_000, 1000, 999); // ties with next pop's bucket region
        while let Some(e) = q.pop() {
            got.push(e.2);
        }
        let mut expect: Vec<u32> = (0..100).collect();
        expect.insert(51, 999);
        assert_eq!(got, expect);
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = CalendarQueue::new();
        q.push(7, 0, 70);
        q.push(3, 1, 30);
        assert_eq!(q.peek_key(), Some((3, 1)));
        assert_eq!(q.pop(), Some((3, 1, 30)));
        assert_eq!(q.peek_key(), Some((7, 0)));
        assert_eq!(q.pop(), Some((7, 0, 70)));
        assert_eq!(q.peek_key(), None);
    }

    #[test]
    fn interleaved_push_pop_across_days() {
        let mut q = CalendarQueue::new();
        let day = (NBUCKETS as u64) << MIN_SHIFT;
        let mut seq = 0u64;
        let mut expected = Vec::new();
        for round in 0..5u64 {
            for k in 0..20u64 {
                let at = round * day + k * (day / 32);
                q.push(at, seq, (at % 251) as u32);
                expected.push((at, seq));
                seq += 1;
            }
        }
        expected.sort();
        let got: Vec<(Time, u64)> = drain(&mut q).into_iter().map(|e| (e.0, e.1)).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn slab_slots_recycle() {
        let mut q = CalendarQueue::new();
        // Many push/pop cycles over a rolling horizon: the slab must stay
        // bounded by the peak in-flight count, not total throughput.
        for round in 0..1000u64 {
            let base = round * 10_000;
            for k in 0..8u64 {
                q.push(base + k * 1000, round * 8 + k, k as u32);
            }
            while q.pop().is_some() {}
        }
        assert!(q.slab.len() <= 16, "slab grew to {}", q.slab.len());
    }
}
