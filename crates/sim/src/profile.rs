//! Simulator self-profiler: where does the *wall-clock* go?
//!
//! The telemetry stack measures *simulated* time in detail; this module
//! measures the simulator itself, attributing host wall-clock to a
//! small fixed set of [`Phase`]s — event-queue operations, event/handler
//! execution, DMA-copy kernels, telemetry emission, and
//! allocation/packing — so hot-path work can be optimized against real
//! numbers instead of guesses (`ncmt_cli profile` renders the result as
//! an `ncmt-profile` artifact).
//!
//! Mechanics:
//!
//! * Scoped guards over a monotonic clock. [`enter`] pushes a phase and
//!   returns a guard; dropping it pops back to the parent. Elapsed time
//!   is charged to whichever phase is **innermost**, so nested phases
//!   never double-count and the per-phase totals tile the instrumented
//!   wall-clock: `sum(phases) + unattributed = wall`.
//! * Per-thread accumulators, flushed into a process-wide table keyed
//!   by worker id ([`set_worker`] / [`flush`]; the pool does both for
//!   its workers). The hot path touches only a thread-local — no locks.
//! * Two gates. Compile time: the whole module is a no-op unless the
//!   `self-profile` cargo feature is on (instrumented call sites melt
//!   away). Runtime: even when compiled in, a disabled profiler
//!   ([`set_enabled`]) costs one relaxed atomic load per call site.
//!
//! Instrumented sites call [`enter`] unconditionally; the signatures
//! exist (as no-ops) with the feature off, so no caller needs cfg.

use std::sync::atomic::{AtomicBool, Ordering};

/// Number of profiled phases.
pub const NUM_PHASES: usize = 5;

/// What a slice of simulator wall-clock was spent on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Event-queue operations: heap push on schedule, pop on step.
    EventQueue,
    /// Event execution: the scheduled closure, which in the NIC model
    /// is dominated by sPIN handler work (nested phases are excluded).
    Handler,
    /// DMA-copy kernels: landing payload bytes into host memory.
    DmaCopy,
    /// Telemetry emission and sink work (ring push / streaming fold).
    Telemetry,
    /// Allocation and packing: building message payloads, staging
    /// buffers.
    Alloc,
}

impl Phase {
    /// Every phase, in reporting order.
    pub const ALL: [Phase; NUM_PHASES] = [
        Phase::EventQueue,
        Phase::Handler,
        Phase::DmaCopy,
        Phase::Telemetry,
        Phase::Alloc,
    ];

    /// Stable snake_case label used in the `ncmt-profile` artifact.
    pub fn label(self) -> &'static str {
        match self {
            Phase::EventQueue => "event_queue",
            Phase::Handler => "handler",
            Phase::DmaCopy => "dma_copy",
            Phase::Telemetry => "telemetry",
            Phase::Alloc => "alloc",
        }
    }

    /// Index of this phase in the [`WorkerProfile`] arrays (the
    /// position in [`Phase::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Phase::EventQueue => 0,
            Phase::Handler => 1,
            Phase::DmaCopy => 2,
            Phase::Telemetry => 3,
            Phase::Alloc => 4,
        }
    }
}

/// One worker's accumulated profile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker id ([`set_worker`]; 0 is the coordinating thread).
    pub worker: usize,
    /// Nanoseconds charged to each phase, indexed like [`Phase::ALL`].
    pub ns: [u64; NUM_PHASES],
    /// Number of [`enter`] calls per phase, same indexing.
    pub counts: [u64; NUM_PHASES],
}

impl WorkerProfile {
    /// Total attributed nanoseconds across all phases.
    pub fn attributed_ns(&self) -> u64 {
        self.ns.iter().sum()
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turn the profiler on or off at runtime. Off (the default), every
/// instrumented site costs one relaxed atomic load. No-op without the
/// `self-profile` feature.
pub fn set_enabled(on: bool) {
    ENABLED.store(on && cfg!(feature = "self-profile"), Ordering::Relaxed);
}

/// Whether the profiler is compiled in *and* enabled.
#[inline]
pub fn is_enabled() -> bool {
    cfg!(feature = "self-profile") && ENABLED.load(Ordering::Relaxed)
}

/// Whether the `self-profile` feature was compiled in.
pub fn is_compiled() -> bool {
    cfg!(feature = "self-profile")
}

/// Enter `phase`: wall-clock is charged to it until the guard drops or
/// a nested [`enter`] supersedes it.
#[inline]
#[must_use = "the phase ends when the guard drops"]
pub fn enter(phase: Phase) -> PhaseGuard {
    #[cfg(feature = "self-profile")]
    {
        if is_enabled() {
            imp::push(phase);
            return PhaseGuard { active: true };
        }
        PhaseGuard { active: false }
    }
    #[cfg(not(feature = "self-profile"))]
    {
        let _ = phase;
        PhaseGuard {}
    }
}

/// Scoped phase marker; see [`enter`].
pub struct PhaseGuard {
    #[cfg(feature = "self-profile")]
    active: bool,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        #[cfg(feature = "self-profile")]
        if self.active {
            imp::pop();
        }
    }
}

/// Label the calling thread's accumulator with `worker` (pool workers
/// call this before their job loop; unlabelled threads report as 0).
pub fn set_worker(worker: usize) {
    #[cfg(feature = "self-profile")]
    imp::set_worker(worker);
    #[cfg(not(feature = "self-profile"))]
    let _ = worker;
}

/// Fold the calling thread's accumulator into the process-wide table
/// and zero it. Call when a worker finishes (the pool does) — a
/// thread's counts are invisible to [`snapshot`] until flushed.
pub fn flush() {
    #[cfg(feature = "self-profile")]
    imp::flush();
}

/// Zero the process-wide table and the calling thread's accumulator
/// (start of a profiled region).
pub fn reset() {
    #[cfg(feature = "self-profile")]
    imp::reset();
}

/// Flush the calling thread, then return every worker's totals in
/// worker-id order. Empty without the `self-profile` feature.
pub fn snapshot() -> Vec<WorkerProfile> {
    #[cfg(feature = "self-profile")]
    {
        imp::flush();
        imp::snapshot()
    }
    #[cfg(not(feature = "self-profile"))]
    Vec::new()
}

#[cfg(feature = "self-profile")]
mod imp {
    use super::{Phase, WorkerProfile, NUM_PHASES};
    use std::cell::RefCell;
    use std::collections::BTreeMap;
    use std::sync::Mutex;
    use std::time::Instant;

    struct Acc {
        worker: usize,
        ns: [u64; NUM_PHASES],
        counts: [u64; NUM_PHASES],
        /// Innermost-wins phase stack; `mark` is when the current
        /// innermost phase (re)started.
        stack: Vec<usize>,
        mark: Option<Instant>,
    }

    impl Acc {
        const fn new() -> Acc {
            Acc {
                worker: 0,
                ns: [0; NUM_PHASES],
                counts: [0; NUM_PHASES],
                stack: Vec::new(),
                mark: None,
            }
        }

        /// Charge elapsed time since `mark` to the innermost phase.
        fn settle(&mut self, now: Instant) {
            if let (Some(&top), Some(mark)) = (self.stack.last(), self.mark) {
                self.ns[top] += now.duration_since(mark).as_nanos() as u64;
            }
        }
    }

    thread_local! {
        static ACC: RefCell<Acc> = const { RefCell::new(Acc::new()) };
    }

    /// Per-worker `(ns, counts)` totals, indexed by phase.
    type Totals = ([u64; NUM_PHASES], [u64; NUM_PHASES]);

    static GLOBAL: Mutex<BTreeMap<usize, Totals>> = Mutex::new(BTreeMap::new());

    fn lock() -> std::sync::MutexGuard<'static, BTreeMap<usize, Totals>> {
        GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub(super) fn push(phase: Phase) {
        ACC.with(|acc| {
            let mut acc = acc.borrow_mut();
            let now = Instant::now();
            acc.settle(now);
            let idx = phase.index();
            acc.stack.push(idx);
            acc.counts[idx] += 1;
            acc.mark = Some(now);
        });
    }

    pub(super) fn pop() {
        ACC.with(|acc| {
            let mut acc = acc.borrow_mut();
            let now = Instant::now();
            acc.settle(now);
            acc.stack.pop();
            acc.mark = Some(now);
        });
    }

    pub(super) fn set_worker(worker: usize) {
        ACC.with(|acc| acc.borrow_mut().worker = worker);
    }

    pub(super) fn flush() {
        ACC.with(|acc| {
            let mut acc = acc.borrow_mut();
            if acc.ns.iter().all(|&n| n == 0) && acc.counts.iter().all(|&c| c == 0) {
                return;
            }
            let mut table = lock();
            let entry = table
                .entry(acc.worker)
                .or_insert(([0; NUM_PHASES], [0; NUM_PHASES]));
            for i in 0..NUM_PHASES {
                entry.0[i] += acc.ns[i];
                entry.1[i] += acc.counts[i];
            }
            drop(table);
            acc.ns = [0; NUM_PHASES];
            acc.counts = [0; NUM_PHASES];
        });
    }

    pub(super) fn reset() {
        lock().clear();
        ACC.with(|acc| {
            let mut acc = acc.borrow_mut();
            acc.ns = [0; NUM_PHASES];
            acc.counts = [0; NUM_PHASES];
        });
    }

    pub(super) fn snapshot() -> Vec<WorkerProfile> {
        lock()
            .iter()
            .map(|(&worker, &(ns, counts))| WorkerProfile { worker, ns, counts })
            .collect()
    }
}

#[cfg(all(test, feature = "self-profile"))]
mod tests {
    use super::*;

    /// The profiler state is process-global, so the tests that drive it
    /// share one lock (cargo runs tests concurrently).
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn spin_for(ns: u64) {
        let t0 = std::time::Instant::now();
        while (t0.elapsed().as_nanos() as u64) < ns {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(false);
        {
            let _p = enter(Phase::Handler);
            spin_for(50_000);
        }
        assert!(snapshot().is_empty());
    }

    #[test]
    fn nested_phases_pause_their_parent() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        {
            let _h = enter(Phase::Handler);
            spin_for(200_000);
            {
                let _d = enter(Phase::DmaCopy);
                spin_for(200_000);
            }
            spin_for(200_000);
        }
        set_enabled(false);
        let snap = snapshot();
        reset();
        assert_eq!(snap.len(), 1);
        let w = snap[0];
        let handler = w.ns[Phase::Handler.index()];
        let dma = w.ns[Phase::DmaCopy.index()];
        assert_eq!(w.counts[Phase::Handler.index()], 1);
        assert_eq!(w.counts[Phase::DmaCopy.index()], 1);
        // Handler held the clock for ~400µs of the ~600µs total; the
        // nested DMA slice must NOT be double-charged to it.
        assert!(dma >= 150_000, "dma {dma}ns");
        assert!(handler >= 300_000, "handler {handler}ns");
        assert!(
            handler < 550_000,
            "handler {handler}ns double-counts the nested dma slice"
        );
    }

    #[test]
    fn flush_accumulates_per_worker() {
        let _g = SERIAL.lock().unwrap_or_else(|e| e.into_inner());
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            for w in [1usize, 2] {
                s.spawn(move || {
                    set_worker(w);
                    let _p = enter(Phase::EventQueue);
                    spin_for(100_000);
                    drop(_p);
                    flush();
                });
            }
        });
        set_enabled(false);
        let snap = snapshot();
        reset();
        let workers: Vec<usize> = snap.iter().map(|w| w.worker).collect();
        assert_eq!(workers, vec![1, 2]);
        for w in snap {
            assert_eq!(w.counts[Phase::EventQueue.index()], 1);
            assert!(w.ns[Phase::EventQueue.index()] > 0);
        }
    }

    #[test]
    fn labels_are_stable() {
        let labels: Vec<&str> = Phase::ALL.iter().map(|p| p.label()).collect();
        assert_eq!(
            labels,
            vec!["event_queue", "handler", "dma_copy", "telemetry", "alloc"]
        );
    }
}
