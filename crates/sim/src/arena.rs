//! Per-worker buffer arena: recycled byte buffers for hot allocation sites.
//!
//! The packet-path hot loop allocates a handful of large, short-lived
//! buffers per simulated message — the simulated host receive buffer
//! (~128 KiB for the bench datatype, i.e. over glibc's mmap threshold, so a
//! plain `vec![0; span]` costs an mmap + page faults + munmap per run), the
//! packed-message pattern, and the verification image. Sweeps repeat that
//! thousands of times per worker.
//!
//! [`PooledBuf`] is a `Vec<u8>` that returns its storage to a thread-local
//! free list on drop; [`take_zeroed`] hands it back re-zeroed (a memset,
//! not a fresh mapping). Pool hits are witnessed by the profiler's `alloc`
//! phase share in `ncmt_cli profile`.
//!
//! The pool is strictly thread-local, so the `nca_sim::pool` workers each
//! get an independent arena and no locks are involved. Bounds: at most
//! [`MAX_POOLED`] buffers retained per thread, each at most
//! [`MAX_RETAIN_BYTES`] capacity (larger ones are freed on drop).

use std::cell::RefCell;
use std::ops::{Deref, DerefMut};

/// Max buffers kept per thread.
const MAX_POOLED: usize = 8;
/// Max capacity of a buffer worth retaining (4 MiB).
const MAX_RETAIN_BYTES: usize = 4 << 20;

thread_local! {
    static POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// A `Vec<u8>` whose storage is recycled through the thread-local arena.
///
/// Dereferences to `Vec<u8>`, so indexing, slicing, iteration and length
/// checks all work unchanged; it also compares equal to plain `Vec<u8>` /
/// `[u8]` so assertions against reference images need no conversion.
#[derive(Default)]
pub struct PooledBuf {
    buf: Vec<u8>,
}

/// Take a buffer of `len` zeroed bytes, reusing pooled storage when a
/// pooled buffer's capacity suffices.
pub fn take_zeroed(len: usize) -> PooledBuf {
    let _phase = crate::profile::enter(crate::profile::Phase::Alloc);
    let mut buf = POOL.with(|p| {
        let mut pool = p.borrow_mut();
        // Best fit: prefer a buffer that already has the capacity.
        if let Some(i) = pool.iter().position(|b| b.capacity() >= len) {
            pool.swap_remove(i)
        } else {
            pool.pop().unwrap_or_default()
        }
    });
    buf.clear();
    buf.resize(len, 0);
    PooledBuf { buf }
}

impl PooledBuf {
    /// Wrap an existing vector (it joins the pool when dropped).
    pub fn from_vec(buf: Vec<u8>) -> Self {
        PooledBuf { buf }
    }

    /// Move the bytes out, bypassing the pool.
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.buf)
    }
}

impl Drop for PooledBuf {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.buf);
        if buf.capacity() == 0 || buf.capacity() > MAX_RETAIN_BYTES {
            return;
        }
        POOL.with(|p| {
            let mut pool = p.borrow_mut();
            if pool.len() < MAX_POOLED {
                pool.push(buf);
            }
        });
    }
}

impl Deref for PooledBuf {
    type Target = Vec<u8>;
    #[inline]
    fn deref(&self) -> &Vec<u8> {
        &self.buf
    }
}

impl DerefMut for PooledBuf {
    #[inline]
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.buf
    }
}

impl Clone for PooledBuf {
    fn clone(&self) -> Self {
        let mut c = take_zeroed(self.buf.len());
        c.copy_from_slice(&self.buf);
        c
    }
}

impl std::fmt::Debug for PooledBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.buf.fmt(f)
    }
}

impl From<Vec<u8>> for PooledBuf {
    fn from(buf: Vec<u8>) -> Self {
        PooledBuf { buf }
    }
}

impl PartialEq for PooledBuf {
    fn eq(&self, other: &Self) -> bool {
        self.buf == other.buf
    }
}
impl Eq for PooledBuf {}

impl PartialEq<Vec<u8>> for PooledBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        &self.buf == other
    }
}
impl PartialEq<PooledBuf> for Vec<u8> {
    fn eq(&self, other: &PooledBuf) -> bool {
        self == &other.buf
    }
}
impl PartialEq<[u8]> for PooledBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.buf.as_slice() == other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zeroed_is_zeroed_after_reuse() {
        {
            let mut a = take_zeroed(1024);
            a.iter_mut().for_each(|b| *b = 0xAB);
        } // returns to pool dirty
        let b = take_zeroed(512);
        assert_eq!(b.len(), 512);
        assert!(b.iter().all(|&x| x == 0));
    }

    #[test]
    fn reuse_keeps_capacity() {
        let cap = {
            let a = take_zeroed(100_000);
            a.capacity()
        };
        let b = take_zeroed(100_000);
        assert!(b.capacity() >= 100_000);
        // Same thread, pool hit: capacity survives the round trip.
        assert!(cap >= 100_000 && b.capacity() >= cap.min(100_000));
    }

    #[test]
    fn compares_with_plain_vecs() {
        let mut a = take_zeroed(4);
        a[1] = 7;
        let v = vec![0u8, 7, 0, 0];
        assert_eq!(a, v);
        assert_eq!(v, a);
        assert_eq!(a, *v.as_slice());
        let b = a.clone();
        assert_eq!(a, b);
    }

    #[test]
    fn oversized_buffers_are_not_retained() {
        let huge = MAX_RETAIN_BYTES + 1;
        drop(PooledBuf::from_vec(Vec::with_capacity(huge)));
        // Nothing observable to assert beyond "no panic"; the cap is a
        // memory bound, exercised here for miri.
        let s = take_zeroed(16);
        assert_eq!(s.len(), 16);
    }
}
