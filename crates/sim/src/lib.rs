//! # nca-sim — deterministic discrete-event simulation engine
//!
//! A small, allocation-light discrete-event core used by every simulated
//! component in this workspace (NIC model, LogGOPS simulator, PULP timing
//! model).
//!
//! Design points (per the reproduction's determinism requirement):
//!
//! * Simulated time is `u64` **picoseconds** ([`Time`]); at 200 Gbit/s a
//!   byte takes 40 ps, so picoseconds keep serialization arithmetic exact.
//! * Events are `FnOnce(&mut W, &mut Sim<W>)` closures over a caller-owned
//!   world type `W`; the engine pops an event *before* invoking it, so
//!   handlers freely schedule follow-ups.
//! * Ties are broken by insertion sequence number — identical runs replay
//!   identically.

pub mod arena;
pub mod calendar;
pub mod engine;
pub mod fault;
pub mod fifo;
pub mod pool;
pub mod profile;
pub mod stats;
pub mod units;
pub mod wire;

pub use arena::PooledBuf;
pub use calendar::CalendarQueue;
pub use engine::{Sim, SimProbe, Time};
pub use fault::{DeliveredCopy, FaultInjector, FaultSpec, Verdict};
pub use fifo::TrackedFifo;
pub use pool::Pool;
pub use units::{ns, ps, us, Bandwidth};
pub use wire::{PktView, WireBuf};
