//! Scoped work-stealing thread pool for independent deterministic
//! simulations.
//!
//! The evaluation harnesses run large matrices of *independent*
//! simulations (seed × scale × strategy fault sweeps, the 13 Fig. 16
//! application workloads, per-figure parameter bins). Every cell is a
//! pure function of its configuration — the event engine breaks ties by
//! insertion sequence, so a cell's result is bit-identical however and
//! whenever it runs. That makes the matrix embarrassingly parallel
//! *provided the harness keeps the aggregation deterministic*, which is
//! exactly the [`Pool::par_map`] contract:
//!
//! * **Ordering** — results come back in input order, whatever order the
//!   workers finished in. A caller that prints or serializes after the
//!   barrier emits byte-identical output at any worker count.
//! * **Isolation** — the closure receives owned items; jobs share
//!   nothing unless the caller opts in (e.g. an `Arc` datatype). Give
//!   each job its own telemetry sink and merge after the barrier (see
//!   `nca-telemetry`'s `merge_ring_events`).
//! * **Panics propagate** — a panicking job poisons nothing silently:
//!   the pool joins every worker, then resumes the first panic payload
//!   on the caller's thread, same as the serial loop would have.
//!
//! Scheduling is work-stealing over per-worker deques: the items are
//! dealt into contiguous blocks (good locality for parameter sweeps,
//! where neighbours share compiled state), each worker drains its own
//! block front-to-back and steals from the *back* of a victim's deque
//! once idle, so long-tailed cells (large messages, high fault rates)
//! don't leave workers parked behind a static partition.
//!
//! There are no external dependencies (the container builds with no
//! crates.io route, per the rand/proptest shim precedent) — workers are
//! `std::thread::scope` threads, so borrowed captures work and nothing
//! outlives the call.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard};

/// Lock that survives a poisoned mutex: pool state is only item/queue
/// bookkeeping, always consistent between operations, and panics are
/// re-raised after the barrier anyway.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Pick the worker count: an explicit request (CLI `--jobs`) wins, then
/// the `NCMT_JOBS` environment variable, then the machine's available
/// parallelism. Zero (from either source) means "auto", mirroring
/// `make -j`.
pub fn resolve_jobs(requested: Option<usize>, env: Option<&str>) -> usize {
    if let Some(j) = requested {
        if j >= 1 {
            return j;
        }
    }
    if let Some(v) = env {
        if let Ok(j) = v.trim().parse::<usize>() {
            if j >= 1 {
                return j;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A fixed-width worker pool. Creating one allocates nothing; threads
/// are scoped to each [`Pool::par_map`] call.
#[derive(Debug, Clone)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool of `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Pool {
        Pool { jobs: jobs.max(1) }
    }

    /// A single-worker pool: `par_map` degenerates to the plain serial
    /// loop on the calling thread (no threads spawned).
    pub fn serial() -> Pool {
        Pool::new(1)
    }

    /// A pool sized by [`resolve_jobs`]: `requested` (e.g. a parsed
    /// `--jobs` flag) beats `NCMT_JOBS` beats the machine.
    pub fn from_env(requested: Option<usize>) -> Pool {
        Pool::new(resolve_jobs(
            requested,
            std::env::var("NCMT_JOBS").ok().as_deref(),
        ))
    }

    /// The worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Apply `f` to every item concurrently and return the results **in
    /// input order**. `f` gets `(index, item)`; the index is the item's
    /// position in `items`, stable across worker counts. Panics from
    /// any job are re-raised here after all workers have stopped.
    pub fn par_map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        let n = items.len();
        if self.jobs == 1 || n <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let workers = self.jobs.min(n);
        // Each item sits behind its own lock so exactly one worker takes
        // it, even when a steal races the owner.
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        // Contiguous index blocks, one deque per worker.
        let queues: Vec<Mutex<VecDeque<usize>>> = (0..workers)
            .map(|w| Mutex::new((w * n / workers..(w + 1) * n / workers).collect()))
            .collect();

        let gathered: Vec<(usize, R)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (queues, slots, f) = (&queues, &slots, &f);
                    scope.spawn(move || {
                        crate::profile::set_worker(w);
                        let mut out: Vec<(usize, R)> = Vec::new();
                        loop {
                            // Own deque first (front), then steal from a
                            // victim's back.
                            let next = lock(&queues[w]).pop_front().or_else(|| {
                                (1..workers)
                                    .map(|d| (w + d) % workers)
                                    .find_map(|v| lock(&queues[v]).pop_back())
                            });
                            let Some(i) = next else { break };
                            // Item lock is released before `f` runs so a
                            // panicking job never poisons a slot.
                            let taken = lock(&slots[i]).take();
                            if let Some(item) = taken {
                                out.push((i, f(i, item)));
                            }
                        }
                        // Self-profiler: worker threads die with the
                        // scope; bank their phase totals first.
                        crate::profile::flush();
                        out
                    })
                })
                .collect();
            let mut all = Vec::with_capacity(n);
            let mut panic = None;
            for h in handles {
                match h.join() {
                    Ok(part) => all.extend(part),
                    Err(payload) => panic = panic.or(Some(payload)),
                }
            }
            if let Some(payload) = panic {
                std::panic::resume_unwind(payload);
            }
            all
        });

        let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in gathered {
            results[i] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every index produced exactly once"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_keep_input_order_at_any_worker_count() {
        let items: Vec<u64> = (0..97).collect();
        for jobs in [1, 2, 3, 8, 128] {
            let out = Pool::new(jobs).par_map(items.clone(), |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
            assert_eq!(out, expect, "jobs = {jobs}");
        }
    }

    #[test]
    fn every_item_runs_exactly_once() {
        let hits = AtomicUsize::new(0);
        let out = Pool::new(4).par_map((0..1000).collect::<Vec<u32>>(), |_, x| {
            hits.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(out.len(), 1000);
        assert_eq!(hits.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn stealing_drains_long_tails() {
        // Worker 0's block is one huge job; the rest are tiny. With a
        // static partition worker 0 would also own jobs 1..=3; stealing
        // lets the others finish them while it grinds.
        let out = Pool::new(4).par_map(vec![40u64, 1, 1, 1, 1, 1, 1, 1], |_, ms| {
            std::thread::sleep(std::time::Duration::from_millis(ms));
            ms
        });
        assert_eq!(out, vec![40, 1, 1, 1, 1, 1, 1, 1]);
    }

    #[test]
    fn panics_propagate_to_the_caller() {
        let r = std::panic::catch_unwind(|| {
            Pool::new(3).par_map((0..16).collect::<Vec<u32>>(), |_, x| {
                if x == 7 {
                    panic!("job 7 exploded");
                }
                x
            })
        });
        let payload = r.expect_err("panic must cross the barrier");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("job 7"), "payload preserved, got {msg:?}");
    }

    #[test]
    fn serial_pool_runs_inline() {
        let caller = std::thread::current().id();
        Pool::serial().par_map(vec![(), (), ()], |_, ()| {
            assert_eq!(std::thread::current().id(), caller);
        });
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = Pool::new(8).par_map(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn resolve_jobs_precedence() {
        assert_eq!(resolve_jobs(Some(3), Some("8")), 3, "CLI wins");
        assert_eq!(resolve_jobs(None, Some("8")), 8, "env next");
        assert_eq!(resolve_jobs(None, Some(" 2 ")), 2, "env is trimmed");
        let auto = resolve_jobs(None, None);
        assert!(auto >= 1, "machine fallback");
        assert_eq!(resolve_jobs(Some(0), Some("5")), 5, "0 means auto");
        assert_eq!(resolve_jobs(None, Some("zero")), auto, "bad env ignored");
    }
}
