//! Small statistics helpers used by the experiment harnesses
//! (medians, geometric means, confidence-style summaries).

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (average of middle two for even length); 0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in stats"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Geometric mean of positive values; `None` if the input is empty or
/// contains a value ≤ 0 (the mean is undefined, not zero — callers must
/// decide how to report that). (Fig. 17 reports geometric means of data
/// volumes.)
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// p-th percentile (0..=100), nearest-rank; `None` for empty input.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in stats"));
    let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
    Some(v[rank.min(v.len() - 1)])
}

/// Nearest-rank percentiles for several `qs` at once (one sort, same
/// convention as [`percentile`]); `None` for empty input.
pub fn percentiles(xs: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in stats"));
    Some(
        qs.iter()
            .map(|&p| {
                let rank = ((p / 100.0) * (v.len() as f64 - 1.0)).round() as usize;
                v[rank.min(v.len() - 1)]
            })
            .collect(),
    )
}

/// A log₂ histogram over positive values (Fig. 17 uses a log-x histogram
/// of transfer volumes).
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    /// `(bucket_floor, count)` pairs; bucket_floor = 2^k.
    pub buckets: Vec<(u64, u32)>,
}

/// Build a log₂ histogram of `xs` (values < 1 land in bucket 1).
pub fn log2_histogram(xs: &[f64]) -> Log2Histogram {
    use std::collections::BTreeMap;
    let mut map: BTreeMap<u32, u32> = BTreeMap::new();
    for &x in xs {
        let k = if x < 1.0 { 0 } else { x.log2().floor() as u32 };
        *map.entry(k).or_insert(0) += 1;
    }
    Log2Histogram {
        buckets: map.into_iter().map(|(k, c)| (1u64 << k, c)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_matches_definition() {
        let g = geomean(&[2.0, 8.0]).expect("defined");
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(
            geomean(&[1.0, 0.0]),
            None,
            "zero makes the geomean undefined"
        );
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[-1.0, 2.0]), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(100.0));
        let p50 = percentile(&xs, 50.0).expect("defined");
        assert!((p50 - 50.0).abs() <= 1.0);
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let h = log2_histogram(&[1.5, 2.0, 3.9, 1024.0, 0.2]);
        let total: u32 = h.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 5);
        assert!(h.buckets.iter().any(|&(b, c)| b == 2 && c == 2)); // 2.0, 3.9
        assert!(h.buckets.iter().any(|&(b, _)| b == 1024));
    }
}
