//! Small statistics helpers used by the experiment harnesses
//! (medians, geometric means, confidence-style summaries).

/// Arithmetic mean; 0 for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Median (average of middle two for even length); 0 for empty input.
pub fn median(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in stats"));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        (v[n / 2 - 1] + v[n / 2]) / 2.0
    }
}

/// Geometric mean of positive values; `None` if the input is empty or
/// contains a value ≤ 0 (the mean is undefined, not zero — callers must
/// decide how to report that). (Fig. 17 reports geometric means of data
/// volumes.)
pub fn geomean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return None;
    }
    Some((xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp())
}

/// Sorted copy of `xs`; `None` for empty input. Panics on NaN (all
/// stats here share that contract).
fn sorted(xs: &[f64]) -> Option<Vec<f64>> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in stats"));
    Some(v)
}

/// Nearest-rank selection from an already-sorted slice: the
/// `⌈p/100 · n⌉`-th smallest sample (1-based), clamped to `[1, n]` so
/// `p ≤ 0` yields the minimum and `p ≥ 100` the maximum. Always an
/// actual sample, never an interpolated value — the same convention the
/// `LogHistogram` percentiles and the criterion shim use.
fn nearest_rank(sorted: &[f64], p: f64) -> f64 {
    let n = sorted.len();
    let rank = ((p / 100.0) * n as f64).ceil() as usize;
    sorted[rank.clamp(1, n) - 1]
}

/// p-th percentile (0..=100), nearest-rank (see [`percentiles`] for the
/// exact rank rule); `None` for empty input.
pub fn percentile(xs: &[f64], p: f64) -> Option<f64> {
    Some(nearest_rank(&sorted(xs)?, p))
}

/// Nearest-rank percentiles for several `qs` at once (one sort, same
/// convention as [`percentile`]): each result is the `⌈q/100 · n⌉`-th
/// smallest sample (1-based, clamped), always a member of `xs`. `None`
/// for empty input.
pub fn percentiles(xs: &[f64], qs: &[f64]) -> Option<Vec<f64>> {
    let v = sorted(xs)?;
    Some(qs.iter().map(|&p| nearest_rank(&v, p)).collect())
}

/// A log₂ histogram over positive values (Fig. 17 uses a log-x histogram
/// of transfer volumes).
#[derive(Debug, Clone)]
pub struct Log2Histogram {
    /// `(bucket_floor, count)` pairs; bucket_floor = 2^k.
    pub buckets: Vec<(u64, u32)>,
    /// Inputs skipped because they were not finite (NaN or ±∞). They
    /// belong to no bucket; counting them keeps the total auditable.
    pub non_finite: u32,
}

/// Build a log₂ histogram of `xs`. Finite values < 1 (including
/// negatives) land in bucket 1; values at or beyond 2⁶³ saturate into
/// the top bucket (floor 2⁶³) instead of overflowing the shift; NaN and
/// ±∞ are skipped and tallied in [`Log2Histogram::non_finite`].
pub fn log2_histogram(xs: &[f64]) -> Log2Histogram {
    use std::collections::BTreeMap;
    let mut map: BTreeMap<u32, u32> = BTreeMap::new();
    let mut non_finite = 0u32;
    for &x in xs {
        if !x.is_finite() {
            non_finite += 1;
            continue;
        }
        let k = if x < 1.0 {
            0
        } else {
            // log2().floor() of a huge f64 can reach 1023; clamp to the
            // last representable bucket floor, 2^63.
            (x.log2().floor() as u32).min(63)
        };
        *map.entry(k).or_insert(0) += 1;
    }
    Log2Histogram {
        buckets: map.into_iter().map(|(k, c)| (1u64 << k, c)).collect(),
        non_finite,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_median_basics() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert_eq!(median(&[5.0, 1.0, 3.0]), 3.0);
        assert_eq!(median(&[4.0, 1.0, 3.0, 2.0]), 2.5);
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn geomean_matches_definition() {
        let g = geomean(&[2.0, 8.0]).expect("defined");
        assert!((g - 4.0).abs() < 1e-12);
        assert_eq!(
            geomean(&[1.0, 0.0]),
            None,
            "zero makes the geomean undefined"
        );
        assert_eq!(geomean(&[]), None);
        assert_eq!(geomean(&[-1.0, 2.0]), None);
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 100.0), Some(100.0));
        // Nearest rank ⌈p/100·n⌉ is exact, not interpolated.
        assert_eq!(percentile(&xs, 50.0), Some(50.0));
        assert_eq!(percentile(&xs, 95.0), Some(95.0));
        assert_eq!(percentile(&xs, 0.1), Some(1.0), "⌈0.1⌉ = first sample");
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_returns_a_sample_even_between_ranks() {
        // n = 4: p50 → rank ⌈2⌉ = 2 → the 2nd smallest, never (2+3)/2.
        let xs = [4.0, 1.0, 3.0, 2.0];
        assert_eq!(percentile(&xs, 50.0), Some(2.0));
        assert_eq!(percentile(&xs, 51.0), Some(3.0));
        // n = 5 matches the criterion shim's documented behaviour.
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 50.0), Some(3.0));
        assert_eq!(percentile(&xs, 95.0), Some(5.0));
    }

    #[test]
    fn percentiles_match_percentile_with_one_sort() {
        let xs: Vec<f64> = (0..37).map(|i| ((i * 29) % 37) as f64).collect();
        let qs = [0.0, 12.5, 50.0, 90.0, 99.0, 100.0];
        let many = percentiles(&xs, &qs).expect("non-empty");
        for (q, got) in qs.iter().zip(&many) {
            assert_eq!(percentile(&xs, *q), Some(*got), "q = {q}");
        }
        assert_eq!(percentiles(&[], &qs), None);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let h = log2_histogram(&[1.5, 2.0, 3.9, 1024.0, 0.2]);
        let total: u32 = h.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 5);
        assert_eq!(h.non_finite, 0);
        assert!(h.buckets.iter().any(|&(b, c)| b == 2 && c == 2)); // 2.0, 3.9
        assert!(h.buckets.iter().any(|&(b, _)| b == 1024));
    }

    #[test]
    fn histogram_saturates_huge_values_and_counts_non_finite() {
        let h = log2_histogram(&[
            2.0f64.powi(64), // would shift-overflow unclamped
            1e300,
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::NAN,
            -5.0, // finite negative: documented bucket-1 landing
        ]);
        let total: u32 = h.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(total, 3, "two saturated + one negative are bucketed");
        assert_eq!(h.non_finite, 3, "NaN and ±∞ are skipped but counted");
        assert!(
            h.buckets.iter().any(|&(b, c)| b == 1u64 << 63 && c == 2),
            "≥ 2^63 saturates into the top bucket: {:?}",
            h.buckets
        );
        assert!(h.buckets.iter().any(|&(b, c)| b == 1 && c == 1));
    }
}
