//! Time and bandwidth units.
//!
//! All simulated time is picoseconds; these helpers keep the conversion
//! arithmetic in one place (and exact where it can be).

use crate::engine::Time;

/// Picoseconds (identity, for symmetry).
pub const fn ps(v: u64) -> Time {
    v
}

/// Nanoseconds → picoseconds.
pub const fn ns(v: u64) -> Time {
    v * 1_000
}

/// Microseconds → picoseconds.
pub const fn us(v: u64) -> Time {
    v * 1_000_000
}

/// Milliseconds → picoseconds.
pub const fn ms(v: u64) -> Time {
    v * 1_000_000_000
}

/// Picoseconds → fractional microseconds (for reporting).
pub fn to_us(t: Time) -> f64 {
    t as f64 / 1e6
}

/// Picoseconds → fractional milliseconds (for reporting).
pub fn to_ms(t: Time) -> f64 {
    t as f64 / 1e9
}

/// A link/memory bandwidth, stored as picoseconds per byte (f64 to allow
/// non-integral rates; serialization times are rounded to whole ps).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bandwidth {
    ps_per_byte: f64,
}

impl Bandwidth {
    /// From Gbit/s (e.g. the paper's 200 Gbit/s line rate).
    pub fn gbit_per_s(g: f64) -> Bandwidth {
        // 1 Gbit/s = 0.125 GB/s = 8 ps/byte per Gbit.
        Bandwidth {
            ps_per_byte: 8_000.0 / g,
        }
    }

    /// From GiB/s (e.g. the paper's 50 GiB/s NIC memory).
    pub fn gib_per_s(g: f64) -> Bandwidth {
        let bytes_per_ps = g * (1u64 << 30) as f64 / 1e12;
        Bandwidth {
            ps_per_byte: 1.0 / bytes_per_ps,
        }
    }

    /// Serialization time for `bytes` at this rate, rounded up to 1 ps
    /// minimum for nonzero transfers.
    pub fn time_for(&self, bytes: u64) -> Time {
        if bytes == 0 {
            return 0;
        }
        ((bytes as f64 * self.ps_per_byte).round() as u64).max(1)
    }

    /// The rate expressed back in Gbit/s (for reporting).
    pub fn as_gbit_per_s(&self) -> f64 {
        8_000.0 / self.ps_per_byte
    }

    /// Scale the bandwidth by a factor (e.g. per-channel share).
    pub fn scaled(&self, factor: f64) -> Bandwidth {
        Bandwidth {
            ps_per_byte: self.ps_per_byte / factor,
        }
    }
}

/// Throughput in Gbit/s from bytes moved over a time span.
pub fn throughput_gbit(bytes: u64, elapsed: Time) -> f64 {
    if elapsed == 0 {
        return 0.0;
    }
    bytes as f64 * 8.0 / (elapsed as f64 / 1000.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_conversions() {
        assert_eq!(ns(1), 1_000);
        assert_eq!(us(3), 3_000_000);
        assert_eq!(ms(2), 2_000_000_000);
        assert!((to_us(us(7)) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn line_rate_serialization() {
        let link = Bandwidth::gbit_per_s(200.0);
        // 200 Gbit/s = 25 GB/s = 40 ps/byte
        assert_eq!(link.time_for(1), 40);
        assert_eq!(link.time_for(2048), 2048 * 40);
        assert!((link.as_gbit_per_s() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn gib_bandwidth() {
        let mem = Bandwidth::gib_per_s(50.0);
        // 50 GiB/s ≈ 53.687 GB/s → ≈ 18.6 ps/byte
        let t = mem.time_for(1 << 20);
        let expect = (1u64 << 20) as f64 / (50.0 * (1u64 << 30) as f64) * 1e12;
        assert!((t as f64 - expect).abs() / expect < 0.01);
    }

    #[test]
    fn throughput_round_trip() {
        let link = Bandwidth::gbit_per_s(100.0);
        let bytes = 1_000_000u64;
        let t = link.time_for(bytes);
        assert!((throughput_gbit(bytes, t) - 100.0).abs() < 0.1);
    }

    #[test]
    fn zero_bytes_take_zero_time() {
        assert_eq!(Bandwidth::gbit_per_s(200.0).time_for(0), 0);
    }
}
