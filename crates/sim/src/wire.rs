//! Shared-ownership wire buffers.
//!
//! The packet path used to copy payload bytes at every hop: the sender
//! gathered the message into a `Vec<u8>`, the NIC cloned the packed
//! stream into its world state, every dispatch re-sliced it with
//! `to_vec()`, and the fault layer copied once more before flipping a
//! byte. [`WireBuf`] and [`PktView`] replace all of that with
//! reference-per-hop semantics:
//!
//! - [`WireBuf`] is an immutable, atomically reference-counted packed
//!   stream (`Arc<[u8]>`). Cloning it is a refcount bump; the bytes are
//!   written exactly once, when the buffer is built from a `Vec<u8>`.
//! - [`PktView`] is a `{buf, offset, len}` handle into a `WireBuf` —
//!   the payload of one packet. It derefs to `&[u8]`, clones for the
//!   price of an `Arc` clone, and can be re-sliced ([`PktView::subview`])
//!   without touching the underlying bytes.
//!
//! Mutation is deliberately absent. The one consumer that needs to
//! change payload bytes — fault-injected corruption — does so
//! copy-on-write (`DeliveredCopy::materialize` returns a
//! `Cow::Owned` only for corrupted copies), so the sender's buffer is
//! provably untouched no matter what the wire does to the packet.

use std::fmt;
use std::sync::{Arc, OnceLock};

/// The interned zero-length buffer: empty views are created on hot
/// paths (length-only DMA writes, completion signals), and `Arc::from`
/// on an empty slice still pays a heap allocation per call.
fn empty_arc() -> Arc<[u8]> {
    static EMPTY: OnceLock<Arc<[u8]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(Vec::new())).clone()
}

/// An immutable packed wire stream shared by every layer that sees it.
///
/// Construction from a `Vec<u8>` costs the one unavoidable copy (the
/// refcount header is allocated in front of the bytes); every
/// subsequent `clone()` is a refcount bump.
#[derive(Clone)]
pub struct WireBuf {
    bytes: Arc<[u8]>,
}

impl WireBuf {
    /// An empty stream.
    pub fn empty() -> Self {
        WireBuf { bytes: empty_arc() }
    }

    /// Length of the packed stream in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the stream has no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// A view of `len` bytes starting at `offset`.
    ///
    /// Panics if the range is out of bounds, same as slicing would.
    pub fn view(&self, offset: usize, len: usize) -> PktView {
        assert!(
            offset + len <= self.bytes.len(),
            "view {offset}..{} out of bounds for WireBuf of {} bytes",
            offset + len,
            self.bytes.len()
        );
        PktView {
            buf: Some(self.bytes.clone()),
            off: offset,
            len,
        }
    }

    /// A view covering the whole stream.
    pub fn view_all(&self) -> PktView {
        self.view(0, self.len())
    }
}

impl From<Vec<u8>> for WireBuf {
    fn from(v: Vec<u8>) -> Self {
        WireBuf {
            bytes: Arc::from(v),
        }
    }
}

impl From<&[u8]> for WireBuf {
    fn from(v: &[u8]) -> Self {
        WireBuf {
            bytes: Arc::from(v),
        }
    }
}

impl std::ops::Deref for WireBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

impl AsRef<[u8]> for WireBuf {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl PartialEq for WireBuf {
    fn eq(&self, other: &Self) -> bool {
        self.bytes[..] == other.bytes[..]
    }
}

impl Eq for WireBuf {}

impl PartialEq<Vec<u8>> for WireBuf {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.bytes[..] == other[..]
    }
}

impl PartialEq<WireBuf> for Vec<u8> {
    fn eq(&self, other: &WireBuf) -> bool {
        self[..] == other.bytes[..]
    }
}

impl PartialEq<[u8]> for WireBuf {
    fn eq(&self, other: &[u8]) -> bool {
        self.bytes[..] == *other
    }
}

impl fmt::Debug for WireBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WireBuf({} bytes)", self.bytes.len())
    }
}

/// A packet's payload: a cheap handle into a shared [`WireBuf`].
///
/// The backing buffer is optional so the empty view — constructed per
/// length-only DMA write and completion signal on the hot path — costs
/// nothing: no allocation, no refcount traffic.
#[derive(Clone)]
pub struct PktView {
    buf: Option<Arc<[u8]>>,
    off: usize,
    len: usize,
}

impl PktView {
    /// A view of zero bytes (completion signals, zero-length messages).
    pub fn empty() -> Self {
        PktView {
            buf: None,
            off: 0,
            len: 0,
        }
    }

    /// Length of the viewed payload in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Offset of this view within its backing stream.
    pub fn offset(&self) -> usize {
        self.off
    }

    /// A narrower view within this one: `rel_off` is relative to this
    /// view's start. Shares the same backing buffer — no bytes move.
    pub fn subview(&self, rel_off: usize, len: usize) -> PktView {
        assert!(
            rel_off + len <= self.len,
            "subview {rel_off}..{} out of bounds for PktView of {} bytes",
            rel_off + len,
            self.len
        );
        if len == 0 {
            return PktView::empty();
        }
        PktView {
            buf: self.buf.clone(),
            off: self.off + rel_off,
            len,
        }
    }
}

impl From<Vec<u8>> for PktView {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        PktView {
            buf: Some(Arc::from(v)),
            off: 0,
            len,
        }
    }
}

impl From<&[u8]> for PktView {
    fn from(v: &[u8]) -> Self {
        let len = v.len();
        PktView {
            buf: Some(Arc::from(v)),
            off: 0,
            len,
        }
    }
}

impl From<WireBuf> for PktView {
    fn from(w: WireBuf) -> Self {
        let len = w.len();
        PktView {
            buf: Some(w.bytes),
            off: 0,
            len,
        }
    }
}

impl std::ops::Deref for PktView {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        match &self.buf {
            Some(b) => &b[self.off..self.off + self.len],
            None => &[],
        }
    }
}

impl AsRef<[u8]> for PktView {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for PktView {
    fn eq(&self, other: &Self) -> bool {
        self[..] == other[..]
    }
}

impl Eq for PktView {}

impl PartialEq<Vec<u8>> for PktView {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self[..] == other[..]
    }
}

impl PartialEq<[u8]> for PktView {
    fn eq(&self, other: &[u8]) -> bool {
        self[..] == *other
    }
}

impl fmt::Debug for PktView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PktView({}..{} of {} bytes)",
            self.off,
            self.off + self.len,
            self.buf.as_ref().map_or(0, |b| b.len())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wirebuf_clone_shares_bytes() {
        let w: WireBuf = vec![1u8, 2, 3, 4].into();
        let w2 = w.clone();
        assert_eq!(w, w2);
        assert!(std::ptr::eq(w.as_ref().as_ptr(), w2.as_ref().as_ptr()));
    }

    #[test]
    fn view_derefs_to_the_right_range() {
        let w: WireBuf = (0u8..32).collect::<Vec<u8>>().into();
        let v = w.view(8, 4);
        assert_eq!(&v[..], &[8, 9, 10, 11]);
        assert_eq!(v.len(), 4);
        assert_eq!(v.offset(), 8);
    }

    #[test]
    fn subview_is_relative_and_shares_storage() {
        let w: WireBuf = (0u8..32).collect::<Vec<u8>>().into();
        let v = w.view(8, 16);
        let s = v.subview(4, 4);
        assert_eq!(&s[..], &[12, 13, 14, 15]);
        assert!(std::ptr::eq(s.as_ref().as_ptr(), w.as_ref()[12..].as_ptr()));
    }

    #[test]
    fn empty_views_are_fine() {
        let v = PktView::empty();
        assert!(v.is_empty());
        assert_eq!(&v[..], &[] as &[u8]);
        let w = WireBuf::empty();
        assert_eq!(w.len(), 0);
        let z = w.view(0, 0);
        assert!(z.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn view_past_the_end_panics() {
        let w: WireBuf = vec![0u8; 8].into();
        let _ = w.view(4, 8);
    }

    #[test]
    fn equality_against_vecs_and_slices() {
        let w: WireBuf = vec![5u8, 6, 7].into();
        assert_eq!(w, vec![5u8, 6, 7]);
        assert_eq!(vec![5u8, 6, 7], w);
        let v: PktView = w.view_all();
        assert_eq!(v, vec![5u8, 6, 7]);
        assert_eq!(v, *b"\x05\x06\x07".as_slice());
    }
}
