//! An occupancy-tracked FIFO.
//!
//! The DMA-queue figures of the paper (Figs. 14 and 15) report the
//! *maximum* queue occupancy and the occupancy *time series*;
//! [`TrackedFifo`] records both as items are pushed/popped at simulated
//! times.

use std::collections::VecDeque;

use crate::engine::Time;

/// A FIFO that records its occupancy history.
#[derive(Debug)]
pub struct TrackedFifo<T> {
    items: VecDeque<T>,
    max_occupancy: usize,
    total_pushed: u64,
    /// `(time, occupancy)` samples, one per push/pop.
    history: Vec<(Time, usize)>,
    record_history: bool,
}

impl<T> Default for TrackedFifo<T> {
    fn default() -> Self {
        Self::new(true)
    }
}

impl<T> TrackedFifo<T> {
    /// Create a FIFO; `record_history` enables the time-series log
    /// (disable for long runs where only the max matters).
    pub fn new(record_history: bool) -> Self {
        TrackedFifo {
            items: VecDeque::new(),
            max_occupancy: 0,
            total_pushed: 0,
            history: Vec::new(),
            record_history,
        }
    }

    /// Push an item at simulated time `now`.
    pub fn push(&mut self, now: Time, item: T) {
        self.items.push_back(item);
        self.total_pushed += 1;
        self.max_occupancy = self.max_occupancy.max(self.items.len());
        if self.record_history {
            self.history.push((now, self.items.len()));
        }
    }

    /// Pop the oldest item at simulated time `now`.
    pub fn pop(&mut self, now: Time) -> Option<T> {
        let item = self.items.pop_front();
        if item.is_some() && self.record_history {
            self.history.push((now, self.items.len()));
        }
        item
    }

    /// Peek at the head.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Highest occupancy ever observed.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }

    /// Total items ever pushed.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// The `(time, occupancy)` series.
    pub fn history(&self) -> &[(Time, usize)] {
        &self.history
    }

    /// Take ownership of the `(time, occupancy)` series, leaving the
    /// FIFO's log empty (report extraction without a copy).
    pub fn take_history(&mut self) -> Vec<(Time, usize)> {
        std::mem::take(&mut self.history)
    }

    /// Downsample the history to at most `n` evenly spaced points
    /// (for plotting Fig. 15-style timelines).
    pub fn sampled_history(&self, n: usize) -> Vec<(Time, usize)> {
        if self.history.len() <= n || n == 0 {
            return self.history.clone();
        }
        let step = self.history.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.history[(i as f64 * step) as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_occupancy() {
        let mut f = TrackedFifo::new(true);
        f.push(10, 'a');
        f.push(20, 'b');
        f.push(30, 'c');
        assert_eq!(f.max_occupancy(), 3);
        assert_eq!(f.pop(40), Some('a'));
        assert_eq!(f.pop(50), Some('b'));
        f.push(60, 'd');
        assert_eq!(f.max_occupancy(), 3);
        assert_eq!(f.total_pushed(), 4);
        assert_eq!(f.history().len(), 6);
        assert_eq!(f.pop(70), Some('c'));
        assert_eq!(f.pop(70), Some('d'));
        assert_eq!(f.pop(70), None);
    }

    #[test]
    fn history_can_be_disabled() {
        let mut f = TrackedFifo::new(false);
        for i in 0..1000u32 {
            f.push(i as Time, i);
        }
        assert!(f.history().is_empty());
        assert_eq!(f.max_occupancy(), 1000);
    }

    #[test]
    fn sampled_history_bounds() {
        let mut f = TrackedFifo::new(true);
        for i in 0..500u32 {
            f.push(i as Time, i);
        }
        let s = f.sampled_history(50);
        assert!(s.len() <= 50);
        assert_eq!(s[0].0, 0);
    }
}
