//! Deterministic, seeded network fault injection.
//!
//! The fault layer sits between a sender's wire transmissions and the
//! receiver's arrival events. For every transmission attempt it renders
//! a *verdict*: how many copies arrive (0 = dropped, 2 = duplicated),
//! whether a copy is corrupted in flight, and how much extra reordering
//! delay each copy picks up.
//!
//! **Determinism guarantee.** Verdicts are pure functions of
//! `(seed, msg_id, seq, attempt)` — the injector keeps no mutable state
//! and draws every random number by hashing those coordinates with
//! splitmix64. Two runs with the same seed and fault rates therefore
//! inject *exactly* the same fault schedule regardless of event
//! ordering, retransmission timing, or how many other packets are in
//! flight, and a retransmission (higher `attempt`) gets an independent
//! draw from the original transmission.

use crate::Time;

/// Per-packet fault probabilities plus the seed that fixes the schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Probability a transmission is dropped in flight.
    pub drop: f64,
    /// Probability a transmission is duplicated (two copies arrive).
    pub duplicate: f64,
    /// Probability a delivered copy is corrupted (one payload byte is
    /// flipped; the receiver's checksum must catch it).
    pub corrupt: f64,
    /// Extra reordering window: each delivered copy is delayed by a
    /// uniform amount in `[0, reorder_window]` ps on top of its nominal
    /// arrival time (0 = no widening).
    pub reorder_window: Time,
    /// Seed of the deterministic schedule.
    pub seed: u64,
}

impl FaultSpec {
    /// The no-fault spec: every transmission delivers exactly one
    /// pristine copy with no extra delay.
    pub fn inert() -> Self {
        FaultSpec {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder_window: 0,
            seed: 0,
        }
    }

    /// Whether this spec can never perturb a run.
    pub fn is_inert(&self) -> bool {
        self.drop <= 0.0 && self.duplicate <= 0.0 && self.corrupt <= 0.0 && self.reorder_window == 0
    }

    /// Scale all probabilities by `f` (clamped to `[0, 1]`), keeping the
    /// seed and reorder window. Used by fault-rate sweeps.
    pub fn scaled(&self, f: f64) -> Self {
        let clamp = |p: f64| (p * f).clamp(0.0, 1.0);
        FaultSpec {
            drop: clamp(self.drop),
            duplicate: clamp(self.duplicate),
            corrupt: clamp(self.corrupt),
            ..*self
        }
    }

    /// Same schedule, different seed.
    pub fn with_seed(&self, seed: u64) -> Self {
        FaultSpec { seed, ..*self }
    }
}

impl Default for FaultSpec {
    fn default() -> Self {
        Self::inert()
    }
}

/// One copy of a transmission that the network will deliver.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeliveredCopy {
    /// Extra delay beyond the nominal arrival time (reordering).
    pub extra_delay: Time,
    /// In-flight corruption: XOR `corrupt_mask` into the payload byte at
    /// `corrupt_at % payload_len` before checksum verification. The mask
    /// is always nonzero, so the payload byte *does* change.
    pub corrupt: bool,
    /// Byte index selector for the corruption (modulo payload length).
    pub corrupt_at: u64,
    /// Nonzero XOR mask applied to the corrupted byte.
    pub corrupt_mask: u8,
}

impl DeliveredCopy {
    /// The payload bytes this copy delivers, copy-on-write: pristine
    /// copies borrow the original payload untouched; corrupted copies
    /// get an owned clone with one byte XOR-flipped. The sender's
    /// buffer is therefore provably never mutated by the fault layer —
    /// the only payload copy in the whole lossless receive path is the
    /// one this method makes, and it makes it only when a byte actually
    /// has to change.
    pub fn materialize<'a>(&self, payload: &'a [u8]) -> std::borrow::Cow<'a, [u8]> {
        if !self.corrupt || payload.is_empty() {
            return std::borrow::Cow::Borrowed(payload);
        }
        let mut bytes = payload.to_vec();
        let at = (self.corrupt_at % bytes.len() as u64) as usize;
        bytes[at] ^= self.corrupt_mask;
        std::borrow::Cow::Owned(bytes)
    }
}

/// The injector's decision for one transmission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Copies the network delivers (empty = the transmission was
    /// dropped). At most 2 (original + duplicate).
    pub copies: Vec<DeliveredCopy>,
    /// Whether the transmission was dropped.
    pub dropped: bool,
    /// Whether a duplicate copy was injected.
    pub duplicated: bool,
    /// Whether any delivered copy was corrupted.
    pub corrupted: bool,
}

/// Stateless fault oracle over a [`FaultSpec`].
#[derive(Debug, Clone, Copy)]
pub struct FaultInjector {
    spec: FaultSpec,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl FaultInjector {
    /// Build an injector for `spec`.
    pub fn new(spec: FaultSpec) -> Self {
        FaultInjector { spec }
    }

    /// The spec this injector renders verdicts for.
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// Raw 64-bit draw for coordinate `(msg_id, seq, attempt, lane)`.
    /// Mixing in a `lane` keeps independent decisions (drop vs duplicate
    /// vs corrupt vs delays) uncorrelated.
    fn draw(&self, msg_id: u64, seq: u64, attempt: u32, lane: u64) -> u64 {
        let mut h = splitmix64(self.spec.seed ^ 0x6E63_615F_6661_756C); // "nca_faul"
        h = splitmix64(h ^ msg_id);
        h = splitmix64(h ^ seq.wrapping_mul(0x9E37_79B9));
        h = splitmix64(h ^ attempt as u64);
        splitmix64(h ^ lane)
    }

    /// Uniform `[0, 1)` draw for a coordinate.
    fn unit(&self, msg_id: u64, seq: u64, attempt: u32, lane: u64) -> f64 {
        (self.draw(msg_id, seq, attempt, lane) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Deterministic uniform timer jitter in `[0, max]` picoseconds for
    /// transmission `attempt` of `(msg_id, seq)`. Used to de-synchronize
    /// retransmission timeouts; a pure function of the schedule seed, so
    /// replays stay identical. `max == 0` disables jitter.
    pub fn jitter(&self, msg_id: u64, seq: u64, attempt: u32, max: Time) -> Time {
        if max == 0 {
            return 0;
        }
        self.draw(msg_id, seq, attempt, 5) % (max + 1)
    }

    /// Render the verdict for transmission `attempt` of `(msg_id, seq)`.
    pub fn judge(&self, msg_id: u64, seq: u64, attempt: u32) -> Verdict {
        if self.spec.is_inert() {
            return Verdict {
                copies: vec![DeliveredCopy {
                    extra_delay: 0,
                    corrupt: false,
                    corrupt_at: 0,
                    corrupt_mask: 1,
                }],
                dropped: false,
                duplicated: false,
                corrupted: false,
            };
        }
        let dropped = self.unit(msg_id, seq, attempt, 0) < self.spec.drop;
        if dropped {
            return Verdict {
                copies: Vec::new(),
                dropped: true,
                duplicated: false,
                corrupted: false,
            };
        }
        let duplicated = self.unit(msg_id, seq, attempt, 1) < self.spec.duplicate;
        let ncopies = if duplicated { 2 } else { 1 };
        let mut corrupted = false;
        let copies = (0..ncopies)
            .map(|copy| {
                let lane = 16 + copy * 8;
                let corrupt = self.unit(msg_id, seq, attempt, lane) < self.spec.corrupt;
                corrupted |= corrupt;
                let extra_delay = if self.spec.reorder_window > 0 {
                    self.draw(msg_id, seq, attempt, lane + 1) % (self.spec.reorder_window + 1)
                } else {
                    0
                };
                // Mask drawn from the low byte, forced nonzero.
                let mask = (self.draw(msg_id, seq, attempt, lane + 2) as u8) | 1;
                DeliveredCopy {
                    extra_delay,
                    corrupt,
                    corrupt_at: self.draw(msg_id, seq, attempt, lane + 3),
                    corrupt_mask: mask,
                }
            })
            .collect();
        Verdict {
            copies,
            dropped: false,
            duplicated,
            corrupted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jitter_is_bounded_seeded_and_replayable() {
        let inj = FaultInjector::new(FaultSpec {
            seed: 42,
            ..FaultSpec::inert()
        });
        let max = 1_000_000;
        let mut seen_nonzero = false;
        for seq in 0..64 {
            let j = inj.jitter(7, seq, 1, max);
            assert!(j <= max);
            assert_eq!(j, inj.jitter(7, seq, 1, max), "replay must match");
            seen_nonzero |= j > 0;
        }
        assert!(seen_nonzero, "64 draws in [0,1e6] can't all be zero");
        assert_eq!(inj.jitter(7, 0, 1, 0), 0, "max 0 disables jitter");
        let other = FaultInjector::new(FaultSpec {
            seed: 43,
            ..FaultSpec::inert()
        });
        assert!(
            (0..64).any(|s| inj.jitter(7, s, 1, max) != other.jitter(7, s, 1, max)),
            "different seeds must draw different jitter"
        );
    }

    #[test]
    fn inert_spec_delivers_exactly_one_pristine_copy() {
        let inj = FaultInjector::new(FaultSpec::inert());
        for seq in 0..64 {
            let v = inj.judge(0, seq, 0);
            assert_eq!(v.copies.len(), 1);
            assert!(!v.dropped && !v.duplicated && !v.corrupted);
            assert_eq!(v.copies[0].extra_delay, 0);
            assert!(!v.copies[0].corrupt);
        }
    }

    #[test]
    fn verdicts_are_pure_functions_of_coordinates() {
        let spec = FaultSpec {
            drop: 0.3,
            duplicate: 0.2,
            corrupt: 0.1,
            reorder_window: 10_000,
            seed: 42,
        };
        let a = FaultInjector::new(spec);
        let b = FaultInjector::new(spec);
        for seq in 0..256 {
            for attempt in 0..4 {
                assert_eq!(a.judge(7, seq, attempt), b.judge(7, seq, attempt));
            }
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let spec = FaultSpec {
            drop: 0.5,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder_window: 0,
            seed: 1,
        };
        let a = FaultInjector::new(spec);
        let b = FaultInjector::new(spec.with_seed(2));
        let sched = |inj: &FaultInjector| -> Vec<bool> {
            (0..128).map(|s| inj.judge(0, s, 0).dropped).collect()
        };
        assert_ne!(sched(&a), sched(&b));
    }

    #[test]
    fn retransmissions_draw_independently() {
        let spec = FaultSpec {
            drop: 0.5,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder_window: 0,
            seed: 9,
        };
        let inj = FaultInjector::new(spec);
        // With p=0.5 per attempt, some packet must survive a retry even
        // if its first attempt dropped (probability of this test failing
        // for all 256 seqs is astronomically small).
        let recovered = (0..256).any(|s| inj.judge(0, s, 0).dropped && !inj.judge(0, s, 1).dropped);
        assert!(recovered, "retries must not inherit the original verdict");
    }

    #[test]
    fn rates_are_respected_approximately() {
        let spec = FaultSpec {
            drop: 0.2,
            duplicate: 0.1,
            corrupt: 0.05,
            reorder_window: 0,
            seed: 3,
        };
        let inj = FaultInjector::new(spec);
        let n = 20_000u64;
        let mut drops = 0;
        let mut dups = 0;
        for seq in 0..n {
            let v = inj.judge(0, seq, 0);
            if v.dropped {
                drops += 1;
            }
            if v.duplicated {
                dups += 1;
            }
        }
        let p_drop = drops as f64 / n as f64;
        let p_dup = dups as f64 / (n - drops) as f64;
        assert!((p_drop - 0.2).abs() < 0.02, "drop rate {p_drop}");
        assert!((p_dup - 0.1).abs() < 0.02, "dup rate {p_dup}");
    }

    #[test]
    fn scaled_spec_clamps_and_keeps_seed() {
        let spec = FaultSpec {
            drop: 0.6,
            duplicate: 0.2,
            corrupt: 0.1,
            reorder_window: 5,
            seed: 11,
        };
        let s = spec.scaled(2.0);
        assert_eq!(s.drop, 1.0);
        assert_eq!(s.duplicate, 0.4);
        assert_eq!(s.seed, 11);
        assert!(spec.scaled(0.0).is_inert() || spec.reorder_window > 0);
    }

    #[test]
    fn corrupt_mask_is_never_zero() {
        let spec = FaultSpec {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 1.0,
            reorder_window: 0,
            seed: 5,
        };
        let inj = FaultInjector::new(spec);
        for seq in 0..512 {
            let v = inj.judge(0, seq, 0);
            assert!(v.copies[0].corrupt);
            assert_ne!(v.copies[0].corrupt_mask, 0);
        }
    }

    #[test]
    fn materialize_borrows_pristine_and_copies_corrupt() {
        use std::borrow::Cow;
        let payload = vec![7u8; 64];
        let pristine = DeliveredCopy {
            extra_delay: 0,
            corrupt: false,
            corrupt_at: 0,
            corrupt_mask: 0,
        };
        match pristine.materialize(&payload) {
            Cow::Borrowed(b) => assert!(std::ptr::eq(b.as_ptr(), payload.as_ptr())),
            Cow::Owned(_) => panic!("pristine copy must borrow"),
        }
        let corrupt = DeliveredCopy {
            extra_delay: 0,
            corrupt: true,
            corrupt_at: 70, // wraps to byte 6
            corrupt_mask: 0x10,
        };
        let bytes = corrupt.materialize(&payload);
        assert!(matches!(bytes, Cow::Owned(_)));
        assert_eq!(bytes[6], 7 ^ 0x10);
        assert_eq!(payload[6], 7, "sender's buffer must be untouched");
        // Zero-length payloads have no byte to flip; still borrowed.
        assert!(matches!(corrupt.materialize(&[]), Cow::Borrowed(_)));
    }
}
