//! Seeded open-loop arrival processes.
//!
//! Each tenant owns one sampler: Poisson (exponential interarrivals,
//! the memoryless baseline) or lognormal (heavy-tailed — bursts of
//! closely spaced messages followed by long gaps, the regime where
//! queue-discipline choice separates in the tail). Sampling goes
//! through [`crate::detmath`] so the drawn gaps are bit-identical on
//! every platform.

use nca_sim::Time;
use rand::rngs::StdRng;
use rand::Rng;

use crate::detmath::{exp, ln};

/// An interarrival-gap distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Exponential gaps with the given mean (a Poisson process).
    Poisson {
        /// Mean interarrival gap (ps).
        mean_gap_ps: f64,
    },
    /// Lognormal gaps: `median · e^(σ·Z)` with `Z ~ N(0,1)`.
    LogNormal {
        /// Median interarrival gap (ps).
        median_gap_ps: f64,
        /// Shape parameter σ of the underlying normal (σ ≈ 1.5 gives a
        /// pronounced heavy tail; σ → 0 degenerates to constant gaps).
        sigma: f64,
    },
}

impl ArrivalProcess {
    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::LogNormal { .. } => "lognormal",
        }
    }

    /// The distribution mean (ps). For the lognormal this is
    /// `median · e^(σ²/2)` — use it to equalize offered load across
    /// processes.
    pub fn mean_gap_ps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { mean_gap_ps } => mean_gap_ps,
            ArrivalProcess::LogNormal {
                median_gap_ps,
                sigma,
            } => median_gap_ps * exp(sigma * sigma / 2.0),
        }
    }

    /// A Poisson process whose mean gap offers `load` (fraction of line
    /// rate) when `ntenants` tenants of mean message wire time
    /// `mean_msg_wire_ps` share the link.
    pub fn poisson_for_load(mean_msg_wire_ps: f64, ntenants: usize, load: f64) -> Self {
        ArrivalProcess::Poisson {
            mean_gap_ps: mean_gap_for_load(mean_msg_wire_ps, ntenants, load),
        }
    }

    /// A lognormal process with the same *mean* gap as
    /// [`poisson_for_load`](Self::poisson_for_load) would give — equal
    /// offered load, heavier tail.
    pub fn lognormal_for_load(
        mean_msg_wire_ps: f64,
        ntenants: usize,
        load: f64,
        sigma: f64,
    ) -> Self {
        let mean = mean_gap_for_load(mean_msg_wire_ps, ntenants, load);
        ArrivalProcess::LogNormal {
            median_gap_ps: mean / exp(sigma * sigma / 2.0),
            sigma,
        }
    }
}

/// Per-tenant mean interarrival gap (ps) that offers `load` of line
/// rate across `ntenants` equal tenants.
pub fn mean_gap_for_load(mean_msg_wire_ps: f64, ntenants: usize, load: f64) -> f64 {
    assert!(load > 0.0, "offered load must be positive");
    mean_msg_wire_ps * ntenants.max(1) as f64 / load
}

/// A stateful sampler: the process plus the tenant's RNG stream and the
/// spare normal from the Marsaglia polar draw.
#[derive(Debug, Clone)]
pub struct GapSampler {
    process: ArrivalProcess,
    spare_normal: Option<f64>,
}

impl GapSampler {
    /// A sampler for `process`.
    pub fn new(process: ArrivalProcess) -> Self {
        GapSampler {
            process,
            spare_normal: None,
        }
    }

    /// Draw the next interarrival gap in whole picoseconds (≥ 1, so
    /// arrivals always advance the clock).
    pub fn next_gap(&mut self, rng: &mut StdRng) -> Time {
        let gap = match self.process {
            ArrivalProcess::Poisson { mean_gap_ps } => {
                // Inverse CDF: −ln(1−u)·mean, u ∈ [0, 1).
                let u: f64 = rng.random();
                -ln(1.0 - u) * mean_gap_ps
            }
            ArrivalProcess::LogNormal {
                median_gap_ps,
                sigma,
            } => median_gap_ps * exp(sigma * self.next_normal(rng)),
        };
        // Clamp into [1, 2^63) ps — a heavy tail can in principle draw
        // a gap beyond any horizon; one clamped sample just ends the
        // tenant's schedule.
        if gap < 1.0 {
            1
        } else if gap >= 9.2e18 {
            i64::MAX as Time
        } else {
            gap as Time
        }
    }

    /// Standard normal via Marsaglia polar (needs only `ln`/`sqrt`,
    /// both bit-deterministic; no trig).
    fn next_normal(&mut self, rng: &mut StdRng) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        loop {
            let u: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let v: f64 = rng.random::<f64>() * 2.0 - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                let f = (-2.0 * ln(s) / s).sqrt();
                self.spare_normal = Some(v * f);
                return u * f;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mean_of(process: ArrivalProcess, n: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut s = GapSampler::new(process);
        (0..n).map(|_| s.next_gap(&mut rng) as f64).sum::<f64>() / n as f64
    }

    #[test]
    fn poisson_empirical_mean_approaches_parameter() {
        let mean = mean_of(
            ArrivalProcess::Poisson {
                mean_gap_ps: 50_000.0,
            },
            20_000,
            7,
        );
        assert!((mean - 50_000.0).abs() < 2_000.0, "mean {mean}");
    }

    #[test]
    fn lognormal_empirical_mean_matches_closed_form() {
        let p = ArrivalProcess::LogNormal {
            median_gap_ps: 40_000.0,
            sigma: 1.0,
        };
        let mean = mean_of(p, 200_000, 9);
        let want = p.mean_gap_ps();
        assert!(
            (mean - want).abs() / want < 0.05,
            "mean {mean} vs closed form {want}"
        );
    }

    #[test]
    fn lognormal_is_heavier_tailed_than_poisson_at_equal_mean() {
        let wire = 100_000.0;
        let pois = ArrivalProcess::poisson_for_load(wire, 4, 0.8);
        let logn = ArrivalProcess::lognormal_for_load(wire, 4, 0.8, 1.5);
        assert!((pois.mean_gap_ps() - logn.mean_gap_ps()).abs() < 1.0);
        let draw = |p: ArrivalProcess| -> Vec<Time> {
            let mut rng = StdRng::seed_from_u64(3);
            let mut s = GapSampler::new(p);
            let mut v: Vec<Time> = (0..50_000).map(|_| s.next_gap(&mut rng)).collect();
            v.sort_unstable();
            v
        };
        let (a, b) = (draw(pois), draw(logn));
        // p999 gap of the heavy-tailed process dwarfs the exponential's.
        assert!(b[49_950] > 2 * a[49_950], "{} vs {}", b[49_950], a[49_950]);
    }

    #[test]
    fn sampling_is_a_pure_function_of_the_seed() {
        let p = ArrivalProcess::LogNormal {
            median_gap_ps: 10_000.0,
            sigma: 1.5,
        };
        let run = || {
            let mut rng = StdRng::seed_from_u64(11);
            let mut s = GapSampler::new(p);
            (0..256).map(|_| s.next_gap(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
