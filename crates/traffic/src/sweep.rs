//! Offered-load × discipline × application sweeps.
//!
//! A sweep runs one traffic cell per grid point on a [`Pool`] and
//! merges the results in grid order, so the emitted `ncmt-traffic`
//! document is byte-identical at any `--jobs` worker count. All cells
//! of one (app, load) pair share the master seed — the offered
//! schedule is the *same* across disciplines, so a p99 difference
//! between blocked-RR, cFCFS and dFCFS is attributable to scheduling
//! alone.

use nca_core::runner::Strategy;
use nca_sim::units::throughput_gbit;
use nca_sim::{Pool, Time};
use nca_spin::params::NicParams;
use nca_spin::sched::QueueDiscipline;
use nca_telemetry::report::{
    HistSummary, TenantTrafficReport, TrafficCell, TrafficDoc, UtilizationReport,
};
use nca_telemetry::{Recorder, StreamingRecorder, Telemetry};
use nca_workloads::apps::{self, AppWorkload};
use std::sync::Arc;

use crate::arrival::ArrivalProcess;
use crate::engine::{
    mean_mix_wire_ps, run_traffic_with, TenantSpec, TrafficConfig, TrafficRunResult,
};

/// Which arrival process the sweep's tenants use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArrivalKind {
    /// All tenants Poisson.
    Poisson,
    /// All tenants lognormal (heavy-tailed).
    LogNormal,
    /// Alternating: even tenants Poisson, odd tenants lognormal.
    Mixed,
}

impl ArrivalKind {
    /// Label used in reports and on the CLI.
    pub fn label(&self) -> &'static str {
        match self {
            ArrivalKind::Poisson => "poisson",
            ArrivalKind::LogNormal => "lognormal",
            ArrivalKind::Mixed => "mixed",
        }
    }

    /// Parse a CLI label.
    pub fn parse(s: &str) -> Option<ArrivalKind> {
        match s {
            "poisson" => Some(ArrivalKind::Poisson),
            "lognormal" => Some(ArrivalKind::LogNormal),
            "mixed" => Some(ArrivalKind::Mixed),
            _ => None,
        }
    }

    fn process(
        &self,
        tenant: usize,
        wire_ps: f64,
        ntenants: usize,
        load: f64,
        sigma: f64,
    ) -> ArrivalProcess {
        let heavy = match self {
            ArrivalKind::Poisson => false,
            ArrivalKind::LogNormal => true,
            ArrivalKind::Mixed => tenant % 2 == 1,
        };
        if heavy {
            ArrivalProcess::lognormal_for_load(wire_ps, ntenants, load, sigma)
        } else {
            ArrivalProcess::poisson_for_load(wire_ps, ntenants, load)
        }
    }
}

/// Resolve an application name to its workload mix: either a Fig. 16
/// family (`"milc"`, `"comb"`, `"fft2d"`, …) whose inputs form the mix,
/// or one exact workload label (`"MILC/b"`) as a single-entry mix.
pub fn app_group(name: &str) -> Option<Vec<AppWorkload>> {
    let group = match name {
        "comb" => apps::comb(),
        "fft2d" => apps::fft2d(),
        "lammps" => apps::lammps(),
        "lammps_full" => apps::lammps_full(),
        "milc" => apps::milc(),
        "nas_lu" => apps::nas_lu(),
        "nas_mg" => apps::nas_mg(),
        "spec_cm" => apps::spec_cm(),
        "spec_oc" => apps::spec_oc(),
        "sw4_x" => apps::sw4_x(),
        "sw4_y" => apps::sw4_y(),
        "wrf_x" => apps::wrf_x(),
        "wrf_y" => apps::wrf_y(),
        _ => {
            let one: Vec<AppWorkload> = apps::all_workloads()
                .into_iter()
                .filter(|w| w.label() == name)
                .collect();
            if one.is_empty() {
                return None;
            }
            one
        }
    };
    Some(group)
}

/// The names [`app_group`] resolves as families (for CLI help text).
pub const APP_GROUPS: [&str; 13] = [
    "comb",
    "fft2d",
    "lammps",
    "lammps_full",
    "milc",
    "nas_lu",
    "nas_mg",
    "spec_cm",
    "spec_oc",
    "sw4_x",
    "sw4_y",
    "wrf_x",
    "wrf_y",
];

/// The grid a traffic sweep runs.
#[derive(Debug, Clone)]
pub struct TrafficSweepSpec {
    /// Application names ([`app_group`] syntax).
    pub apps: Vec<String>,
    /// Offered loads (fraction of line rate).
    pub loads: Vec<f64>,
    /// Queue disciplines.
    pub disciplines: Vec<QueueDiscipline>,
    /// Concurrent tenants per cell.
    pub tenants: usize,
    /// Strategy every tenant runs.
    pub strategy: Strategy,
    /// Arrival-process mix.
    pub arrival: ArrivalKind,
    /// Lognormal shape (only used by lognormal/mixed tenants).
    pub sigma: f64,
    /// Master seed.
    pub seed: u64,
    /// Physical HPUs.
    pub hpus: usize,
    /// RSS indirection-table slots.
    pub rss_entries: usize,
    /// Flows per tenant.
    pub flows_per_tenant: u64,
    /// Open-loop generation horizon (ps).
    pub horizon_ps: Time,
    /// Override the NIC packet-buffer budget (admission-control knob);
    /// `None` keeps the [`NicParams`] default.
    pub pkt_buffer_bytes: Option<u64>,
    /// Time-series bucket width of the per-cell streaming capture (ps).
    /// Memory per cell is O(t_end / bucket), independent of message
    /// count.
    pub stream_bucket_ps: Time,
}

impl TrafficSweepSpec {
    /// The benchmark-default grid shape: RW-CP tenants, Poisson
    /// arrivals, 4 tenants, all three disciplines, no grid points (fill
    /// in `apps`/`loads` before running).
    pub fn new(seed: u64) -> Self {
        TrafficSweepSpec {
            apps: Vec::new(),
            loads: Vec::new(),
            disciplines: QueueDiscipline::ALL.to_vec(),
            tenants: 4,
            strategy: Strategy::RwCp,
            arrival: ArrivalKind::Poisson,
            sigma: 1.5,
            seed,
            hpus: 16,
            rss_entries: 64,
            flows_per_tenant: 8,
            horizon_ps: nca_sim::us(400),
            pkt_buffer_bytes: None,
            stream_bucket_ps: nca_sim::us(1),
        }
    }

    /// The config one grid cell runs.
    pub fn cell_config(&self, app: &str, load: f64, discipline: QueueDiscipline) -> TrafficConfig {
        let mix =
            app_group(app).unwrap_or_else(|| panic!("unknown application {app:?}; see app_group"));
        let mut params = NicParams::with_hpus(self.hpus);
        params.discipline = discipline;
        if let Some(bytes) = self.pkt_buffer_bytes {
            params.pkt_buffer_bytes = bytes;
        }
        let wire = mean_mix_wire_ps(&params, &mix);
        let n = self.tenants.max(1);
        let tenants: Vec<TenantSpec> = (0..n)
            .map(|t| TenantSpec {
                name: format!("t{t}"),
                arrival: self.arrival.process(t, wire, n, load, self.sigma),
                mix: mix.clone(),
                strategy: self.strategy,
            })
            .collect();
        let mut cfg = TrafficConfig::new(params, self.seed, tenants);
        cfg.horizon_ps = self.horizon_ps;
        cfg.flows_per_tenant = self.flows_per_tenant;
        cfg.rss_entries = self.rss_entries;
        cfg
    }
}

/// Summarize one run as a report cell.
pub fn cell_report(
    app: &str,
    discipline: QueueDiscipline,
    load: f64,
    r: &TrafficRunResult,
) -> TrafficCell {
    TrafficCell {
        app: app.to_string(),
        discipline: discipline.label().to_string(),
        offered_load: load,
        byte_exact: r.byte_exact,
        utilization: None,
        tenants: r
            .tenants
            .iter()
            .map(|t| TenantTrafficReport {
                tenant: t.name.clone(),
                offered: t.offered,
                admitted: t.admitted,
                completed: t.completed,
                dropped: t.dropped,
                retried: t.retried,
                lost: t.lost,
                goodput_gbit: throughput_gbit(t.bytes_completed, r.t_end),
                latency: HistSummary::of(&t.latency),
            })
            .collect(),
    }
}

/// Run the full grid on `pool` and assemble the `ncmt-traffic` document.
/// Cells execute in parallel but are merged in grid order — the output
/// is byte-identical at any worker count.
pub fn traffic_sweep(spec: &TrafficSweepSpec, pool: &Pool) -> TrafficDoc {
    assert!(!spec.apps.is_empty(), "sweep needs at least one app");
    assert!(!spec.loads.is_empty(), "sweep needs at least one load");
    assert!(!spec.disciplines.is_empty(), "sweep needs a discipline");
    let mut grid: Vec<(String, f64, QueueDiscipline)> = Vec::new();
    for app in &spec.apps {
        for &load in &spec.loads {
            for &d in &spec.disciplines {
                grid.push((app.clone(), load, d));
            }
        }
    }
    let cells = pool.par_map(grid, |_, (app, load, d)| {
        // Each cell streams into its own bounded aggregate — the sweep
        // never retains raw events, so memory is flat over the horizon.
        let rec = Arc::new(StreamingRecorder::new(spec.stream_bucket_ps));
        let tel = Telemetry::with_recorder(rec.clone() as Arc<dyn Recorder>);
        let r = run_traffic_with(&spec.cell_config(&app, load, d), &tel);
        let agg = rec.take();
        let mut cell = cell_report(&app, d, load, &r);
        cell.utilization = Some(UtilizationReport::from_aggregate(
            &agg,
            "traffic",
            r.t_end,
            spec.hpus as u64,
        ));
        cell
    });
    TrafficDoc {
        version: TrafficDoc::VERSION,
        seed: spec.seed,
        hpus: spec.hpus as u64,
        strategy: spec.strategy.label().to_string(),
        arrival: spec.arrival.label().to_string(),
        horizon_ps: spec.horizon_ps,
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> TrafficSweepSpec {
        let mut s = TrafficSweepSpec::new(3);
        s.apps = vec!["comb".to_string()];
        s.loads = vec![0.4, 1.2];
        s.disciplines = vec![QueueDiscipline::BlockedRR, QueueDiscipline::DFcfs];
        s.tenants = 2;
        s.hpus = 8;
        s.horizon_ps = nca_sim::us(120);
        s
    }

    #[test]
    fn sweep_covers_the_grid_in_order() {
        let doc = traffic_sweep(&tiny_spec(), &Pool::serial());
        assert_eq!(doc.cells.len(), 4);
        let key: Vec<(String, f64, String)> = doc
            .cells
            .iter()
            .map(|c| (c.app.clone(), c.offered_load, c.discipline.clone()))
            .collect();
        assert_eq!(key[0], ("comb".into(), 0.4, "blocked-rr".into()));
        assert_eq!(key[1], ("comb".into(), 0.4, "dfcfs".into()));
        assert_eq!(key[2], ("comb".into(), 1.2, "blocked-rr".into()));
        assert_eq!(key[3], ("comb".into(), 1.2, "dfcfs".into()));
        assert!(doc.all_byte_exact());
        for c in &doc.cells {
            assert_eq!(c.tenants.len(), 2);
            for t in &c.tenants {
                assert!(t.offered > 0);
                assert_eq!(t.admitted + t.lost, t.offered);
            }
        }
    }

    #[test]
    fn parallel_merge_is_byte_identical_to_serial() {
        let spec = tiny_spec();
        let a = traffic_sweep(&spec, &Pool::serial()).to_json();
        let b = traffic_sweep(&spec, &Pool::new(4)).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn same_schedule_across_disciplines_at_one_grid_point() {
        // Offered counts per tenant depend only on (app, load, seed) —
        // the discipline must not perturb the arrival schedule.
        let doc = traffic_sweep(&tiny_spec(), &Pool::serial());
        assert_eq!(
            doc.cells[0]
                .tenants
                .iter()
                .map(|t| t.offered)
                .collect::<Vec<_>>(),
            doc.cells[1]
                .tenants
                .iter()
                .map(|t| t.offered)
                .collect::<Vec<_>>(),
        );
    }

    #[test]
    fn app_group_resolves_families_and_exact_labels() {
        assert!(app_group("milc").is_some());
        for name in APP_GROUPS {
            assert!(app_group(name).is_some(), "{name}");
        }
        let one = app_group("MILC/b").expect("exact label");
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].label(), "MILC/b");
        assert!(app_group("no-such-app").is_none());
    }
}
