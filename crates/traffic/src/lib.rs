//! Open-loop multi-tenant traffic engine for the sPIN NIC model.
//!
//! The per-message pipeline (`nca-spin`) answers the paper's
//! microbenchmark questions; this crate asks the *service* question: at
//! a sustained offered load from many tenants, what tail latency and
//! loss does each tenant see, and how much of it is the NIC's HPU
//! queue discipline?
//!
//! - [`arrival`] — seeded Poisson and heavy-tailed lognormal
//!   interarrival samplers, bit-deterministic via [`detmath`].
//! - [`rss`] — RSS-style flow → HPU steering (hash + indirection
//!   table), the enqueue hint dFCFS consumes.
//! - [`engine`] — the cell run: open-loop offers, admission control
//!   against the NIC packet buffer with capped+jittered backoff, shared
//!   ingress link, full receive pipeline, per-tenant latency and
//!   drop/goodput accounting.
//! - [`sweep`] — offered-load × discipline × application grids on a
//!   worker pool with deterministic merge (`ncmt-traffic` artifact).
//!
//! Everything is a pure function of the configuration, seed included:
//! committed golden artifacts reproduce byte-identically on any host at
//! any `--jobs` count.

pub mod arrival;
pub mod detmath;
pub mod engine;
pub mod rss;
pub mod sweep;

pub use arrival::{ArrivalProcess, GapSampler};
pub use engine::{
    generate_schedule, mean_mix_wire_ps, render_schedule, run_traffic, run_traffic_with,
    ScheduledMsg, TenantSpec, TenantStats, TrafficConfig, TrafficRunResult,
};
pub use rss::{flow_hash, IndirectionTable};
pub use sweep::{app_group, traffic_sweep, ArrivalKind, TrafficSweepSpec, APP_GROUPS};
