//! The open-loop traffic engine.
//!
//! A cell run drives the sPIN NIC model with many concurrent tenants.
//! Each tenant owns a seeded arrival process ([`crate::arrival`]), a
//! message mix over application datatypes, and a strategy; the engine
//! offers messages open-loop (arrivals do not wait for completions),
//! admits them against the NIC packet-buffer budget, serializes
//! admitted packets onto the shared ingress link, and runs the full
//! receive pipeline — inbound engine, pluggable-discipline HPU
//! scheduler, real handler execution, DMA/PCIe — to completion.
//!
//! Overload shows up as admission rejections: a rejected offer backs
//! off (capped exponential + seeded jitter, the same policy the
//! reliability layer's retransmit timers use) and re-offers, up to the
//! retry budget; past it the message is *lost*. Offer→completion
//! latency therefore includes backoff delay, link serialization, HPU
//! queueing and DMA — the end-to-end number a tenant would see.
//!
//! Everything is a pure function of the config (seed included): two
//! runs produce bit-identical schedules, latencies and counters.

use std::collections::HashMap;

use nca_core::runner::Strategy;
use nca_ddt::pack::{buffer_span, pack, unpack};
use nca_portals::packet::{packetize_wire, Packet};
use nca_sim::{FaultInjector, FaultSpec, Sim, Time, TrackedFifo, WireBuf};
use nca_spin::handler::{DmaWrite, MessageProcessor};
use nca_spin::params::{NicParams, ReliabilityParams};
use nca_spin::sched::{QueueDiscipline, Scheduler};
use nca_telemetry::hist::LogHistogram;
use nca_telemetry::Telemetry;
use nca_workloads::apps::AppWorkload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::arrival::{ArrivalProcess, GapSampler};
use crate::rss::{flow_hash, IndirectionTable};

/// One tenant of a traffic run.
#[derive(Clone)]
pub struct TenantSpec {
    /// Label used in reports (`"t0"`, …).
    pub name: String,
    /// The tenant's interarrival process.
    pub arrival: ArrivalProcess,
    /// Message mix: each offer picks one workload uniformly.
    pub mix: Vec<AppWorkload>,
    /// Receive strategy for every message of this tenant.
    pub strategy: Strategy,
}

/// Configuration of one traffic cell run.
#[derive(Clone)]
pub struct TrafficConfig {
    /// NIC parameters; `params.discipline` selects the HPU scheduler.
    pub params: NicParams,
    /// Backoff policy for admission retries (rto / backoff_cap /
    /// rto_max / rto_jitter / max_retries).
    pub reliability: ReliabilityParams,
    /// Master seed: arrival schedules and retry jitter derive from it.
    pub seed: u64,
    /// Open-loop generation horizon (ps); admitted work drains fully.
    pub horizon_ps: Time,
    /// Flows per tenant (RSS steering granularity).
    pub flows_per_tenant: u64,
    /// RSS indirection-table slots.
    pub rss_entries: usize,
    /// ε scheduling-overhead budget handed to checkpointed strategies.
    pub epsilon: f64,
    /// Verify every completed receive buffer against a reference unpack.
    pub verify: bool,
    /// The tenants.
    pub tenants: Vec<TenantSpec>,
}

impl TrafficConfig {
    /// Sensible defaults around a tenant set: 64-slot RSS table, 8
    /// flows per tenant, 1 ms horizon, verification on.
    pub fn new(params: NicParams, seed: u64, tenants: Vec<TenantSpec>) -> Self {
        TrafficConfig {
            params,
            reliability: ReliabilityParams::default(),
            seed,
            horizon_ps: nca_sim::us(1000),
            flows_per_tenant: 8,
            rss_entries: 64,
            epsilon: 0.2,
            verify: true,
            tenants,
        }
    }
}

/// One scheduled offer (before admission).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledMsg {
    /// Tenant index.
    pub tenant: usize,
    /// Per-tenant message sequence number.
    pub seq: u64,
    /// Offer time (ps).
    pub arrival_ps: Time,
    /// Index into the tenant's mix.
    pub mix_idx: usize,
    /// Flow id within the tenant (RSS steering key).
    pub flow: u64,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate the full offer schedule: per-tenant seeded streams, merged
/// by `(arrival, tenant, seq)`. Pure function of the config — the
/// schedule is identical however the run is later parallelized.
pub fn generate_schedule(cfg: &TrafficConfig) -> Vec<ScheduledMsg> {
    let mut out = Vec::new();
    for (t, spec) in cfg.tenants.iter().enumerate() {
        let mut rng = StdRng::seed_from_u64(splitmix64(cfg.seed ^ (t as u64).wrapping_mul(0xA5)));
        let mut sampler = GapSampler::new(spec.arrival);
        let mut at: Time = 0;
        let mut seq = 0u64;
        loop {
            at = at.saturating_add(sampler.next_gap(&mut rng));
            if at > cfg.horizon_ps {
                break;
            }
            let mix_idx = if spec.mix.len() > 1 {
                rng.random_range(0..spec.mix.len())
            } else {
                0
            };
            let flow = if cfg.flows_per_tenant > 1 {
                rng.random_range(0..cfg.flows_per_tenant)
            } else {
                0
            };
            out.push(ScheduledMsg {
                tenant: t,
                seq,
                arrival_ps: at,
                mix_idx,
                flow,
            });
            seq += 1;
        }
    }
    out.sort_by_key(|m| (m.arrival_ps, m.tenant, m.seq));
    out
}

/// Render a schedule as one line per offer — the canonical byte form
/// determinism tests compare.
pub fn render_schedule(sched: &[ScheduledMsg]) -> String {
    use std::fmt::Write as _;
    let mut o = String::new();
    for m in sched {
        let _ = writeln!(
            o,
            "t={} tenant={} seq={} mix={} flow={}",
            m.arrival_ps, m.tenant, m.seq, m.mix_idx, m.flow
        );
    }
    o
}

/// Per-tenant accounting of one run.
#[derive(Debug, Clone)]
pub struct TenantStats {
    /// Tenant label.
    pub name: String,
    /// Offers generated inside the horizon.
    pub offered: u64,
    /// Offers admitted into the NIC.
    pub admitted: u64,
    /// Admitted messages that completed.
    pub completed: u64,
    /// Admission rejections (each backed-off attempt counts once).
    pub dropped: u64,
    /// Re-offers scheduled after a rejection.
    pub retried: u64,
    /// Messages abandoned after the retry budget.
    pub lost: u64,
    /// Payload bytes of completed messages.
    pub bytes_completed: u64,
    /// Offer→completion latency (ps).
    pub latency: LogHistogram,
}

impl TenantStats {
    fn new(name: &str) -> Self {
        TenantStats {
            name: name.to_string(),
            offered: 0,
            admitted: 0,
            completed: 0,
            dropped: 0,
            retried: 0,
            lost: 0,
            bytes_completed: 0,
            latency: LogHistogram::new(),
        }
    }
}

/// Outcome of one traffic cell run.
#[derive(Debug, Clone)]
pub struct TrafficRunResult {
    /// Per-tenant accounting, in tenant order.
    pub tenants: Vec<TenantStats>,
    /// Every completed receive buffer unpacked byte-exactly (always
    /// true when `verify` was off — nothing was checked).
    pub byte_exact: bool,
    /// Last completion time (ps); at least the horizon.
    pub t_end: Time,
}

/// A workload instantiated once and shared by every message using it.
struct CachedWorkload {
    dt: nca_ddt::types::Datatype,
    count: u32,
    packed: WireBuf,
    expect: Vec<u8>,
    origin: i64,
    span: u64,
}

/// Wire occupancy (ps) of a packed message of `len` bytes under
/// `params` (payload plus per-packet header bytes at line rate).
pub fn message_wire_ps(params: &NicParams, len: u64) -> Time {
    let npkt = len.div_ceil(params.payload_size).max(1);
    params
        .line_rate
        .time_for(len + npkt * params.pkt_header_bytes)
}

/// Mean wire occupancy (ps) over a tenant mix — the per-message cost
/// figure offered-load calculations divide by.
pub fn mean_mix_wire_ps(params: &NicParams, mix: &[AppWorkload]) -> f64 {
    assert!(!mix.is_empty(), "empty tenant mix");
    let total: u128 = mix
        .iter()
        .map(|w| {
            let packed = packed_message(&w.dt, w.count);
            message_wire_ps(params, packed.len() as u64) as u128
        })
        .sum();
    total as f64 / mix.len() as f64
}

/// The deterministic packed byte pattern every message of a workload
/// carries (same generator as `core::runner::Experiment`).
fn packed_message(dt: &nca_ddt::types::Datatype, count: u32) -> Vec<u8> {
    let _phase = nca_sim::profile::enter(nca_sim::profile::Phase::Alloc);
    let (origin, span) = buffer_span(dt, count);
    let src: Vec<u8> = (0..span as usize)
        .map(|i| (i.wrapping_mul(31) % 251) as u8)
        .collect();
    pack(dt, count, &src, origin).expect("packable")
}

struct MsgState {
    tenant: usize,
    wl: usize,
    flow: u64,
    offered_at: Time,
    packets: Vec<Packet>,
    proc: Box<dyn MessageProcessor>,
    host_buf: Vec<u8>,
    host_origin: i64,
    pending_payload: u64,
    completion_dispatched: bool,
}

struct TrafficWorld {
    params: NicParams,
    rel: ReliabilityParams,
    /// Seeded jitter source for admission-retry backoff (the fault
    /// spec is inert: only the jitter lane is drawn).
    jitter_src: FaultInjector,
    epsilon: f64,
    verify: bool,
    cache: Vec<CachedWorkload>,
    /// `(tenant, mix_idx)` → cache slot.
    mix_slot: Vec<Vec<usize>>,
    strategies: Vec<Strategy>,
    schedule: Vec<ScheduledMsg>,
    rss: IndirectionTable,
    msgs: Vec<MsgState>,
    sched: Scheduler<(usize, u64)>,
    /// When each physical HPU slot frees up, for span attribution.
    /// Blocked-RR and cFCFS schedule against an anonymous free-HPU
    /// *count* (their [`Dispatch::hpu`] is always 0), so the busy
    /// series assigns each handler the lowest slot free at dispatch;
    /// dFCFS binds real HPU indices and bypasses this.
    hpu_busy_until: Vec<Time>,
    dma_queue: TrackedFifo<(usize, DmaWrite)>,
    dma_chan_busy: Vec<bool>,
    link_free: Time,
    inflight_bytes: u64,
    stats: Vec<TenantStats>,
    byte_exact: bool,
    t_end: Time,
    /// Trace sink (component `"traffic"`); disabled handles make every
    /// emission a no-op, so the closed-loop hot path stays clean.
    tel: Telemetry,
}

impl TrafficWorld {
    fn offer(&mut self, sim: &mut Sim<TrafficWorld>, sched_idx: usize, attempt: u32) {
        let m = self.schedule[sched_idx];
        let wl = self.mix_slot[m.tenant][m.mix_idx];
        let bytes = self.cache[wl].packed.len() as u64;
        if self.inflight_bytes + bytes > self.params.pkt_buffer_bytes {
            // Admission rejection: the NIC's packet buffer cannot hold
            // another in-flight message. Back off and re-offer.
            self.stats[m.tenant].dropped += 1;
            self.tel
                .counter("traffic", "dropped", m.tenant as u64, sim.now(), 1);
            if attempt < self.rel.max_retries {
                self.stats[m.tenant].retried += 1;
                let shift = attempt.min(self.rel.backoff_cap);
                let backoff = (self.rel.rto << shift).min(self.rel.rto_max.max(self.rel.rto));
                let jitter =
                    self.jitter_src
                        .jitter(sched_idx as u64, 0, attempt, self.rel.rto_jitter);
                sim.schedule_in(backoff + jitter, move |w, s| {
                    w.offer(s, sched_idx, attempt + 1)
                });
            } else {
                self.stats[m.tenant].lost += 1;
                self.tel
                    .counter("traffic", "lost", m.tenant as u64, sim.now(), 1);
            }
            return;
        }
        self.admit(sim, sched_idx);
    }

    fn admit(&mut self, sim: &mut Sim<TrafficWorld>, sched_idx: usize) {
        let m = self.schedule[sched_idx];
        let wl = self.mix_slot[m.tenant][m.mix_idx];
        let run = self.msgs.len();
        let (proc, packed, span, origin) = {
            let c = &self.cache[wl];
            let proc = self.strategies[m.tenant].build(
                &c.dt,
                c.count,
                self.params.clone(),
                self.epsilon,
                Telemetry::disabled(),
            );
            (proc, c.packed.clone(), c.span, c.origin)
        };
        let packets = packetize_wire(run as u64, &packed, self.params.payload_size);
        self.inflight_bytes += packed.len() as u64;
        self.stats[m.tenant].admitted += 1;
        self.tel
            .counter("traffic", "admitted", m.tenant as u64, sim.now(), 1);
        self.tel.gauge(
            "traffic",
            "inflight_bytes",
            0,
            sim.now(),
            self.inflight_bytes as f64,
        );
        // Serialize onto the shared ingress link FIFO from now (or from
        // whenever the link frees up).
        let now = sim.now();
        let mut begin = self.link_free.max(now);
        for (i, pkt) in packets.iter().enumerate() {
            let end = begin + self.params.pkt_wire_time(pkt.len);
            let at = end + self.params.net_latency;
            sim.schedule(at, move |w, s| w.packet_arrival(s, run, i));
            begin = end;
        }
        self.link_free = begin;
        self.msgs.push(MsgState {
            tenant: m.tenant,
            wl,
            flow: m.flow,
            offered_at: m.arrival_ps,
            pending_payload: packets.len() as u64,
            packets,
            proc,
            host_buf: vec![0u8; span as usize],
            host_origin: origin,
            completion_dispatched: false,
        });
    }

    fn packet_arrival(&mut self, sim: &mut Sim<TrafficWorld>, run: usize, idx: usize) {
        let len = self.msgs[run].packets[idx].len;
        let inbound = self.params.nic_passthrough + self.params.nicmem_copy_time(len);
        sim.schedule_in(inbound, move |w, s| w.her_ready(s, run, idx));
    }

    fn her_ready(&mut self, sim: &mut Sim<TrafficWorld>, run: usize, idx: usize) {
        let st = &self.msgs[run];
        let seq = st.packets[idx].seq;
        let vhpu = st.proc.policy().vhpu_of(seq);
        let hint = self.rss.hpu_for(flow_hash(st.tenant, st.flow));
        self.sched.enqueue((run, vhpu), idx, hint);
        self.try_dispatch(sim);
    }

    fn try_dispatch(&mut self, sim: &mut Sim<TrafficWorld>) {
        while let Some(d) = self.sched.next_dispatch() {
            let (key, idx, hpu) = (d.key, d.pkt, d.hpu);
            let dispatch = self.params.sched_dispatch;
            sim.schedule_in(dispatch, move |w, s| w.run_handler(s, key, idx, hpu));
        }
    }

    fn run_handler(
        &mut self,
        sim: &mut Sim<TrafficWorld>,
        key: (usize, u64),
        idx: usize,
        hpu: usize,
    ) {
        let (run, vhpu) = key;
        let st = &mut self.msgs[run];
        let hdr = st.packets[idx].hdr;
        let mut ctx = nca_spin::handler::PacketCtx {
            payload: &st.packets[idx].payload,
            stream_offset: hdr.offset,
            seq: hdr.seq,
            npkt: st.packets.len() as u64,
            vhpu,
            now: sim.now(),
            direct: None,
        };
        let out = st.proc.on_payload(&mut ctx);
        let runtime = out.cost.total();
        // Track the span by *physical* HPU — the busy resource the
        // utilization block reports on (vHPUs are per-message virtual).
        // dFCFS dispatches carry a real HPU binding; the pool
        // disciplines carry `hpu == 0` (anonymous free count), so pick
        // the lowest slot free at dispatch — handlers are
        // non-preemptive with runtime known up front, so slot occupancy
        // is a pure function of sim time and stays deterministic.
        let now = sim.now();
        let slot = if self.params.discipline == QueueDiscipline::DFcfs {
            hpu
        } else {
            let s = self
                .hpu_busy_until
                .iter()
                .position(|&free_at| free_at <= now)
                .unwrap_or(0);
            self.hpu_busy_until[s] = now + runtime;
            s
        };
        self.tel
            .span("traffic", "handler", slot as u64, now, now + runtime);
        sim.schedule_in(runtime, move |w, s| w.handler_done(s, key, hpu, out.dma));
    }

    fn handler_done(
        &mut self,
        sim: &mut Sim<TrafficWorld>,
        key: (usize, u64),
        hpu: usize,
        dma: Vec<DmaWrite>,
    ) {
        let (run, _) = key;
        for w in dma {
            self.enqueue_dma(sim, run, w);
        }
        self.sched.done(key, hpu);
        self.msgs[run].pending_payload -= 1;
        if self.msgs[run].pending_payload == 0 && !self.msgs[run].completion_dispatched {
            self.msgs[run].completion_dispatched = true;
            let dispatch = self.params.sched_dispatch;
            sim.schedule_in(dispatch, move |w, s| {
                let out = w.msgs[run].proc.on_completion();
                let runtime = out.cost.total();
                s.schedule_in(runtime, move |w2, s2| {
                    for wr in out.dma {
                        w2.enqueue_dma(s2, run, wr);
                    }
                });
            });
        }
        self.try_dispatch(sim);
    }

    fn enqueue_dma(&mut self, sim: &mut Sim<TrafficWorld>, run: usize, w: DmaWrite) {
        self.dma_queue.push(sim.now(), (run, w));
        self.tel.gauge(
            "traffic",
            "dma_queue",
            0,
            sim.now(),
            self.dma_queue.len() as f64,
        );
        self.kick_dma(sim);
    }

    fn kick_dma(&mut self, sim: &mut Sim<TrafficWorld>) {
        while let Some(chan) = self.dma_chan_busy.iter().position(|&b| !b) {
            if let Some((_, front)) = self.dma_queue.front() {
                // Event writes must not overtake in-flight data writes.
                if front.event && self.dma_chan_busy.iter().any(|&b| b) {
                    return;
                }
            }
            let Some((run, w)) = self.dma_queue.pop(sim.now()) else {
                return;
            };
            self.dma_chan_busy[chan] = true;
            let service = self.params.dma_service_time(w.len);
            let landing = self.params.pcie_latency;
            self.tel.gauge(
                "traffic",
                "dma_queue",
                0,
                sim.now(),
                self.dma_queue.len() as f64,
            );
            self.tel.span(
                "traffic",
                "dma_chan",
                chan as u64,
                sim.now(),
                sim.now() + service,
            );
            sim.schedule_in(service, move |world, s| {
                world.dma_chan_busy[chan] = false;
                s.schedule_in(landing, move |w2, s2| {
                    let t = s2.now();
                    w2.dma_landed(t, run, &w);
                });
                world.kick_dma(s);
            });
        }
    }

    fn dma_landed(&mut self, t: Time, run: usize, w: &DmaWrite) {
        let st = &mut self.msgs[run];
        if !w.data.is_empty() {
            let _phase = nca_sim::profile::enter(nca_sim::profile::Phase::DmaCopy);
            let start = (w.host_off - st.host_origin) as usize;
            st.host_buf[start..start + w.data.len()].copy_from_slice(&w.data);
        }
        if w.event {
            self.complete(t, run);
        }
    }

    fn complete(&mut self, t: Time, run: usize) {
        let st = &mut self.msgs[run];
        let c = &self.cache[st.wl];
        if self.verify && st.host_buf != c.expect {
            self.byte_exact = false;
        }
        let stats = &mut self.stats[st.tenant];
        stats.completed += 1;
        stats.bytes_completed += c.packed.len() as u64;
        stats.latency.record(t.saturating_sub(st.offered_at));
        self.inflight_bytes -= c.packed.len() as u64;
        self.tel
            .counter("traffic", "completed", st.tenant as u64, t, 1);
        self.t_end = self.t_end.max(t);
        // The buffer and packets are dead weight from here; a soak run
        // admits tens of thousands of messages.
        st.host_buf = Vec::new();
        st.packets = Vec::new();
    }
}

/// Run one traffic cell to completion (no trace).
pub fn run_traffic(cfg: &TrafficConfig) -> TrafficRunResult {
    run_traffic_with(cfg, &Telemetry::disabled())
}

/// Run one traffic cell to completion, emitting the engine's trace
/// (component `"traffic"`) into `tel`: per-HPU `handler` busy spans,
/// per-channel `dma_chan` service spans, `dma_queue` / `inflight_bytes`
/// gauges, per-tenant admission counters and an end-of-run `latency_ps`
/// histogram per tenant (track = tenant index). Attach a
/// `StreamingRecorder` to keep the capture bounded-memory however long
/// the run is; results are identical to [`run_traffic`] either way.
pub fn run_traffic_with(cfg: &TrafficConfig, tel: &Telemetry) -> TrafficRunResult {
    assert!(!cfg.tenants.is_empty(), "at least one tenant");
    // Instantiate each distinct workload once, shared across tenants.
    let mut cache: Vec<CachedWorkload> = Vec::new();
    let mut by_label: HashMap<String, usize> = HashMap::new();
    let mut mix_slot: Vec<Vec<usize>> = Vec::new();
    for spec in &cfg.tenants {
        assert!(
            !spec.mix.is_empty(),
            "tenant {} has an empty mix",
            spec.name
        );
        let mut slots = Vec::with_capacity(spec.mix.len());
        for w in &spec.mix {
            let label = w.label();
            let slot = *by_label.entry(label).or_insert_with(|| {
                let (origin, span) = buffer_span(&w.dt, w.count);
                let packed: WireBuf = packed_message(&w.dt, w.count).into();
                let mut expect = vec![0u8; span as usize];
                unpack(&w.dt, w.count, &packed, &mut expect, origin).expect("unpackable");
                cache.push(CachedWorkload {
                    dt: w.dt.clone(),
                    count: w.count,
                    packed,
                    expect,
                    origin,
                    span,
                });
                cache.len() - 1
            });
            slots.push(slot);
        }
        mix_slot.push(slots);
    }
    let schedule = generate_schedule(cfg);
    let mut stats: Vec<TenantStats> = cfg
        .tenants
        .iter()
        .map(|t| TenantStats::new(&t.name))
        .collect();
    for m in &schedule {
        stats[m.tenant].offered += 1;
    }
    let mut world = TrafficWorld {
        params: cfg.params.clone(),
        rel: cfg.reliability.clone(),
        jitter_src: FaultInjector::new(FaultSpec::inert().with_seed(splitmix64(cfg.seed ^ 0x7261))),
        epsilon: cfg.epsilon,
        verify: cfg.verify,
        cache,
        mix_slot,
        strategies: cfg.tenants.iter().map(|t| t.strategy).collect(),
        schedule: schedule.clone(),
        rss: IndirectionTable::new(cfg.rss_entries, cfg.params.hpus),
        msgs: Vec::new(),
        sched: Scheduler::new(cfg.params.discipline, cfg.params.hpus),
        hpu_busy_until: vec![0; cfg.params.hpus.max(1)],
        dma_queue: TrackedFifo::new(false),
        dma_chan_busy: vec![false; cfg.params.dma_channels.max(1)],
        link_free: 0,
        inflight_bytes: 0,
        stats,
        byte_exact: true,
        t_end: cfg.horizon_ps,
        tel: tel.clone(),
    };
    let mut sim: Sim<TrafficWorld> = Sim::new();
    for (i, m) in schedule.iter().enumerate() {
        let at = m.arrival_ps;
        sim.schedule(at, move |w, s| w.offer(s, i, 0));
    }
    sim.run(&mut world);
    debug_assert_eq!(world.inflight_bytes, 0, "all admitted work must drain");
    for (t, st) in world.stats.iter().enumerate() {
        if st.latency.count() > 0 {
            tel.histogram("traffic", "latency_ps", t as u64, world.t_end, &st.latency);
        }
    }
    TrafficRunResult {
        tenants: world.stats,
        byte_exact: world.byte_exact,
        t_end: world.t_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nca_spin::sched::QueueDiscipline;
    use nca_workloads::apps;

    fn small_mix() -> Vec<AppWorkload> {
        // Pick the two smallest COMB inputs: single-packet messages run
        // fast and still exercise the full pipeline.
        apps::comb().into_iter().take(2).collect()
    }

    fn cfg(load: f64, discipline: QueueDiscipline, seed: u64) -> TrafficConfig {
        let mut params = NicParams::with_hpus(8);
        params.discipline = discipline;
        let wire = mean_mix_wire_ps(&params, &small_mix());
        let tenants: Vec<TenantSpec> = (0..3)
            .map(|t| TenantSpec {
                name: format!("t{t}"),
                arrival: ArrivalProcess::poisson_for_load(wire, 3, load),
                mix: small_mix(),
                strategy: Strategy::RwCp,
            })
            .collect();
        let mut c = TrafficConfig::new(params, seed, tenants);
        c.horizon_ps = nca_sim::us(300);
        c
    }

    #[test]
    fn light_load_completes_everything_byte_exact() {
        let r = run_traffic(&cfg(0.3, QueueDiscipline::BlockedRR, 1));
        assert!(r.byte_exact);
        for t in &r.tenants {
            assert!(t.offered > 0, "{}: no offers inside horizon", t.name);
            assert_eq!(
                t.admitted, t.offered,
                "{}: light load must admit all",
                t.name
            );
            assert_eq!(t.completed, t.admitted);
            assert_eq!(t.lost, 0);
            assert!(t.latency.count() == t.completed);
        }
    }

    #[test]
    fn runs_are_a_pure_function_of_the_seed() {
        let a = run_traffic(&cfg(0.8, QueueDiscipline::CFcfs, 42));
        let b = run_traffic(&cfg(0.8, QueueDiscipline::CFcfs, 42));
        for (x, y) in a.tenants.iter().zip(&b.tenants) {
            assert_eq!(x.offered, y.offered);
            assert_eq!(x.completed, y.completed);
            assert_eq!(x.dropped, y.dropped);
            assert_eq!(x.latency, y.latency);
        }
        assert_eq!(a.t_end, b.t_end);
        // A different seed draws a different schedule.
        let c = run_traffic(&cfg(0.8, QueueDiscipline::CFcfs, 43));
        assert_ne!(
            a.tenants.iter().map(|t| t.offered).collect::<Vec<_>>(),
            c.tenants.iter().map(|t| t.offered).collect::<Vec<_>>()
        );
    }

    #[test]
    fn overload_drops_and_accounting_balances() {
        // 4× line rate into a tiny packet buffer: admission must reject.
        let mut c = cfg(4.0, QueueDiscipline::BlockedRR, 7);
        c.params.pkt_buffer_bytes = 4 << 10;
        c.reliability.max_retries = 2;
        let r = run_traffic(&c);
        let drops: u64 = r.tenants.iter().map(|t| t.dropped).sum();
        let lost: u64 = r.tenants.iter().map(|t| t.lost).sum();
        assert!(drops > 0, "4x overload must reject offers");
        assert!(
            lost > 0,
            "retry budget must exhaust under sustained overload"
        );
        for t in &r.tenants {
            assert_eq!(t.admitted + t.lost, t.offered, "{}: conservation", t.name);
            assert_eq!(t.completed, t.admitted, "admitted work drains");
            assert_eq!(
                t.dropped,
                t.retried + t.lost,
                "each rejection retries or loses"
            );
        }
        assert!(
            r.byte_exact,
            "completed messages stay byte-exact under overload"
        );
    }

    #[test]
    fn latency_grows_with_offered_load() {
        let lo = run_traffic(&cfg(0.2, QueueDiscipline::BlockedRR, 5));
        let hi = run_traffic(&cfg(1.5, QueueDiscipline::BlockedRR, 5));
        let p99 = |r: &TrafficRunResult| {
            let mut h = LogHistogram::new();
            for t in &r.tenants {
                h.merge(&t.latency);
            }
            h.percentile_ps(99.0)
        };
        assert!(
            p99(&hi) > p99(&lo),
            "queueing must show in the tail: {} vs {}",
            p99(&hi),
            p99(&lo)
        );
    }

    #[test]
    fn all_disciplines_run_all_strategies_byte_exact() {
        for d in QueueDiscipline::ALL {
            for s in [Strategy::Specialized, Strategy::HpuLocal] {
                let mut c = cfg(0.7, d, 11);
                c.horizon_ps = nca_sim::us(120);
                for t in &mut c.tenants {
                    t.strategy = s;
                }
                let r = run_traffic(&c);
                assert!(r.byte_exact, "{} / {}", d.label(), s.label());
                assert!(r.tenants.iter().any(|t| t.completed > 0));
            }
        }
    }

    #[test]
    fn schedule_renders_deterministically() {
        let c = cfg(0.5, QueueDiscipline::BlockedRR, 99);
        let a = render_schedule(&generate_schedule(&c));
        let b = render_schedule(&generate_schedule(&c));
        assert_eq!(a, b);
        assert!(a.lines().count() > 10, "horizon should yield many offers");
    }
}
