//! RSS-style flow → HPU steering.
//!
//! Real NICs steer flows with a hash over the flow identity indexing a
//! small indirection table of queue ids. The traffic engine mirrors
//! that: [`flow_hash`] mixes `(tenant, flow)` into a stable 64-bit
//! identity, and [`IndirectionTable`] maps it onto a physical HPU. The
//! table is what dFCFS consumes as its enqueue hint — hash collisions
//! land different flows on the same HPU, and that imbalance is exactly
//! the tail-latency cost the sweeps measure.

/// A fixed flow → HPU indirection table.
#[derive(Debug, Clone)]
pub struct IndirectionTable {
    entries: Vec<u32>,
}

impl IndirectionTable {
    /// A table of `nentries` slots filled round-robin over `hpus`
    /// (the conventional even initial spread; real NICs rebalance by
    /// rewriting entries, which the model does not need).
    pub fn new(nentries: usize, hpus: usize) -> Self {
        let n = nentries.max(1);
        let h = hpus.max(1) as u32;
        IndirectionTable {
            entries: (0..n).map(|i| i as u32 % h).collect(),
        }
    }

    /// Number of table slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no slots (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The HPU a flow hash steers to.
    pub fn hpu_for(&self, flow_hash: u64) -> usize {
        self.entries[(flow_hash % self.entries.len() as u64) as usize] as usize
    }
}

/// Stable 64-bit flow identity for `(tenant, flow)` (splitmix64
/// finalizer — well-spread so the table index behaves like a hash).
pub fn flow_hash(tenant: usize, flow: u64) -> u64 {
    let mut z = (tenant as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(flow);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_fill_spreads_evenly() {
        let t = IndirectionTable::new(128, 16);
        let mut counts = [0u32; 16];
        for i in 0..128u64 {
            counts[t.hpu_for(i * 128)] += 1; // index the slots directly
        }
        // Slot fill is exactly even; hashed flows need not be, but the
        // slots themselves are.
        let slots: Vec<usize> = (0..128).map(|i| t.entries[i] as usize).collect();
        for h in 0..16 {
            assert_eq!(slots.iter().filter(|&&s| s == h).count(), 8);
        }
        assert_eq!(counts.iter().sum::<u32>(), 128);
    }

    #[test]
    fn steering_is_stable_and_in_range() {
        let t = IndirectionTable::new(64, 7);
        for tenant in 0..5 {
            for flow in 0..100 {
                let h = flow_hash(tenant, flow);
                let hpu = t.hpu_for(h);
                assert!(hpu < 7);
                assert_eq!(hpu, t.hpu_for(h), "steering must be stable");
            }
        }
    }

    #[test]
    fn flow_hash_separates_tenants() {
        // Same flow id under different tenants must (overwhelmingly)
        // hash apart.
        let collisions = (0..1000u64)
            .filter(|&f| flow_hash(0, f) == flow_hash(1, f))
            .count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn degenerate_sizes_are_clamped() {
        let t = IndirectionTable::new(0, 0);
        assert_eq!(t.len(), 1);
        assert!(!t.is_empty());
        assert_eq!(t.hpu_for(12345), 0);
    }
}
