//! Bit-deterministic `ln`/`exp` for arrival-process sampling.
//!
//! The traffic engine commits byte-exact golden artifacts, and CI
//! compares runs produced on whatever glibc the runner ships. libm's
//! `ln`/`exp` are *not* guaranteed to round identically across
//! implementations, so sampling through `f64::ln` would make the
//! committed schedule an accident of the build host. These routines use
//! only IEEE-754 operations with exactly-specified results (`+`, `-`,
//! `*`, `/`, and bit manipulation), evaluated in a fixed order, so every
//! platform produces the same bits.
//!
//! Accuracy is a few ulp — far below the picosecond rounding of the
//! sampled interarrival gaps — but the point is determinism, not
//! last-ulp correctness.

const LN2_HI: f64 = std::f64::consts::LN_2; // nearest f64 to ln 2

/// Natural logarithm, deterministic across platforms. Requires
/// `x > 0` and finite; out-of-domain inputs panic (the samplers only
/// pass `1 - u` with `u ∈ [0, 1)` and positive scale factors).
pub fn ln(x: f64) -> f64 {
    assert!(x > 0.0 && x.is_finite(), "ln domain: {x}");
    // Decompose x = m · 2^e exactly via the bit pattern, m ∈ [1, 2).
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut m = f64::from_bits((bits & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    if e == -1023 {
        // Subnormal: renormalize by scaling up exactly (2^64 is a power
        // of two, so the multiply is exact).
        let scaled = x * 18_446_744_073_709_551_616.0; // 2^64
        let sb = scaled.to_bits();
        e = ((sb >> 52) & 0x7ff) as i64 - 1023 - 64;
        m = f64::from_bits((sb & 0x000f_ffff_ffff_ffff) | (1023u64 << 52));
    }
    // Center m on 1: for m ≥ √2 use m/2 (exact) and bump the exponent,
    // so m ∈ [√2/2, √2) and |s| ≤ 3 - 2√2 ≈ 0.1716.
    if m >= std::f64::consts::SQRT_2 {
        m *= 0.5;
        e += 1;
    }
    // atanh series: ln(m) = 2·(s + s³/3 + s⁵/5 + …), s = (m-1)/(m+1).
    let s = (m - 1.0) / (m + 1.0);
    let s2 = s * s;
    let mut sum = 0.0;
    // Fixed 11 terms (k = 21, 19, …, 1), Horner-style from the tail:
    // s²ᵏ⁺¹ ≤ 0.1716²¹ < 10⁻¹⁶, so the truncation is below double ulp.
    for k in (0..11).rev() {
        sum = sum * s2 + 1.0 / (2 * k + 1) as f64;
    }
    e as f64 * LN2_HI + 2.0 * s * sum
}

/// Exponential, deterministic across platforms. Finite inputs only;
/// extreme magnitudes saturate to 0 / `f64::MAX` rather than producing
/// platform-dependent edge behavior.
pub fn exp(x: f64) -> f64 {
    assert!(x.is_finite(), "exp domain: {x}");
    if x < -708.0 {
        return 0.0;
    }
    if x > 709.0 {
        return f64::MAX;
    }
    // x = k·ln2 + r with |r| ≤ ln2/2; e^x = 2^k · e^r.
    let k = (x / LN2_HI + if x >= 0.0 { 0.5 } else { -0.5 }) as i64;
    let r = x - k as f64 * LN2_HI;
    // Taylor e^r = Σ rⁿ/n!, 14 fixed terms: |r| ≤ 0.347, and
    // 0.347¹⁴/14! < 10⁻¹⁸.
    let mut sum = 1.0;
    for n in (1..=14u64).rev() {
        sum = sum * r / n as f64 + 1.0;
    }
    // Scale by 2^k exactly through the exponent field (k is within
    // [-1075, 1024] here; split the scaling to dodge overflow of the
    // intermediate power for large negative k).
    scale_pow2(sum, k)
}

/// `v · 2^k` using only exact power-of-two multiplies.
fn scale_pow2(v: f64, k: i64) -> f64 {
    let mut v = v;
    let mut k = k;
    while k > 511 {
        v *= f64::from_bits(((1023 + 511) as u64) << 52);
        k -= 511;
    }
    while k < -511 {
        v *= f64::from_bits(((1023 - 511) as u64) << 52);
        k += 511;
    }
    v * f64::from_bits(((1023 + k) as u64) << 52)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_tracks_std_to_twelve_digits() {
        for &x in &[
            1e-12, 0.001, 0.5, 0.9999, 1.0, 1.0001, 2.0, 10.0, 12345.678, 1e18,
        ] {
            let got = ln(x);
            let want = f64::ln(x);
            let tol = want.abs().max(1.0) * 1e-12;
            assert!((got - want).abs() <= tol, "ln({x}): {got} vs {want}");
        }
        assert_eq!(ln(1.0), 0.0);
    }

    #[test]
    fn exp_tracks_std_to_twelve_digits() {
        for &x in &[-700.0, -20.0, -1.0, -1e-9, 0.0, 1e-9, 0.5, 1.0, 20.0, 700.0] {
            let got = exp(x);
            let want = f64::exp(x);
            let tol = want.abs().max(f64::MIN_POSITIVE) * 1e-12;
            assert!((got - want).abs() <= tol, "exp({x}): {got} vs {want}");
        }
        assert_eq!(exp(0.0), 1.0);
        assert_eq!(exp(-1000.0), 0.0);
    }

    #[test]
    fn exp_ln_round_trip() {
        for &x in &[0.037, 1.0, 2.5, 1e6] {
            let rt = exp(ln(x));
            assert!((rt - x).abs() <= x * 1e-12, "round trip {x} -> {rt}");
        }
    }

    #[test]
    fn ln_handles_subnormals() {
        let tiny = f64::MIN_POSITIVE / 1024.0; // subnormal
        let got = ln(tiny);
        let want = f64::ln(tiny);
        assert!((got - want).abs() < 1e-9, "{got} vs {want}");
    }
}
