//! Strict hand-rolled scenario parser over the in-tree
//! [`Json`](nca_telemetry::report::Json) value. Unknown keys are hard
//! errors that name the offending path (`scenario.traffic.loadz:
//! unknown key`), wrong types name the path and the expectation, and
//! enum-like strings are validated against the simulator's own
//! `parse` functions so a scenario can never name a strategy or
//! discipline the code cannot run.

use nca_core::runner::Strategy;
use nca_spin::nic::EngineMode;
use nca_spin::sched::QueueDiscipline;
use nca_telemetry::report::Json;
use nca_traffic::{app_group, ArrivalKind};

use crate::schema::{
    FaultsSpec, Scenario, ScenarioKind, SchedulingSpec, SweepSpec, TelemetrySpec, TrafficSpec,
    WorkloadSpec, VERSION,
};

/// Parse a strategy name the way the CLI always has: case-insensitive,
/// `-`/`_` ignored (`rw-cp`, `RW_CP` and `RwCp` all work).
pub fn parse_strategy(s: &str) -> Option<Strategy> {
    let t = s.to_ascii_lowercase().replace(['-', '_'], "");
    Strategy::ALL
        .into_iter()
        .find(|st| st.label().to_ascii_lowercase().replace('-', "") == t)
}

/// An object being consumed key by key; [`Obj::done`] rejects anything
/// left over, which is what makes unknown keys hard errors.
struct Obj<'a> {
    path: String,
    members: &'a [(String, Json)],
    used: Vec<bool>,
}

impl<'a> Obj<'a> {
    fn new(j: &'a Json, path: &str) -> Result<Obj<'a>, String> {
        match j {
            Json::Obj(members) => Ok(Obj {
                path: path.to_string(),
                members,
                used: vec![false; members.len()],
            }),
            _ => Err(format!("{path}: expected an object")),
        }
    }

    fn at(&self, key: &str) -> String {
        format!("{}.{key}", self.path)
    }

    fn get(&mut self, key: &str) -> Option<&'a Json> {
        let i = self.members.iter().position(|(k, _)| k == key)?;
        self.used[i] = true;
        Some(&self.members[i].1)
    }

    fn req(&mut self, key: &str) -> Result<&'a Json, String> {
        let path = self.at(key);
        self.get(key)
            .ok_or_else(|| format!("{path}: missing required key"))
    }

    fn done(self) -> Result<(), String> {
        for (i, (k, _)) in self.members.iter().enumerate() {
            if !self.used[i] {
                return Err(format!("{}.{k}: unknown key", self.path));
            }
        }
        Ok(())
    }
}

fn num(j: &Json, path: &str) -> Result<f64, String> {
    match j {
        Json::Num(v) => Ok(*v),
        _ => Err(format!("{path}: expected a number")),
    }
}

/// A non-negative integer that survives the f64 round-trip exactly.
fn uint(j: &Json, path: &str) -> Result<u64, String> {
    let v = num(j, path)?;
    if v < 0.0 || v.fract() != 0.0 || v > (1u64 << 53) as f64 {
        return Err(format!("{path}: expected a non-negative integer"));
    }
    Ok(v as u64)
}

fn int(j: &Json, path: &str) -> Result<i64, String> {
    let v = num(j, path)?;
    if v.fract() != 0.0 || v.abs() > (1u64 << 53) as f64 {
        return Err(format!("{path}: expected an integer"));
    }
    Ok(v as i64)
}

fn string<'a>(j: &'a Json, path: &str) -> Result<&'a str, String> {
    match j {
        Json::Str(s) => Ok(s),
        _ => Err(format!("{path}: expected a string")),
    }
}

fn arr<'a>(j: &'a Json, path: &str) -> Result<&'a [Json], String> {
    match j {
        Json::Arr(items) => Ok(items),
        _ => Err(format!("{path}: expected an array")),
    }
}

fn rate(j: &Json, path: &str) -> Result<f64, String> {
    let v = num(j, path)?;
    if !(0.0..=1.0).contains(&v) {
        return Err(format!("{path}: expected a probability in [0, 1]"));
    }
    Ok(v)
}

fn workload(j: &Json, path: &str) -> Result<WorkloadSpec, String> {
    let mut o = Obj::new(j, path)?;
    let kind = string(o.req("kind")?, &o.at("kind"))?.to_string();
    let spec = match kind.as_str() {
        "vector" => WorkloadSpec::Vector {
            count: uint(o.req("count")?, &o.at("count"))? as u32,
            blocklen: uint(o.req("blocklen")?, &o.at("blocklen"))? as u32,
            stride: int(o.req("stride")?, &o.at("stride"))?,
        },
        "indexed" => WorkloadSpec::Indexed {
            blocks: uint(o.req("blocks")?, &o.at("blocks"))?,
            blocklen: uint(o.req("blocklen")?, &o.at("blocklen"))? as u32,
            seed: uint(o.req("seed")?, &o.at("seed"))?,
        },
        "app" => WorkloadSpec::App {
            label: string(o.req("label")?, &o.at("label"))?.to_string(),
        },
        "apps" => WorkloadSpec::Apps {
            max_kib: o
                .get("max_kib")
                .map(|j| uint(j, &o.at("max_kib")))
                .transpose()?,
        },
        other => {
            return Err(format!(
                "{}: unknown workload kind {other:?} (want vector, indexed, app or apps)",
                o.at("kind")
            ))
        }
    };
    o.done()?;
    Ok(spec)
}

fn faults(j: &Json, path: &str) -> Result<FaultsSpec, String> {
    let mut o = Obj::new(j, path)?;
    let d = FaultsSpec::default();
    let spec = FaultsSpec {
        drop: o
            .get("drop")
            .map(|j| rate(j, &o.at("drop")))
            .transpose()?
            .unwrap_or(d.drop),
        duplicate: o
            .get("duplicate")
            .map(|j| rate(j, &o.at("duplicate")))
            .transpose()?
            .unwrap_or(d.duplicate),
        corrupt: o
            .get("corrupt")
            .map(|j| rate(j, &o.at("corrupt")))
            .transpose()?
            .unwrap_or(d.corrupt),
        reorder_ns: o
            .get("reorder_ns")
            .map(|j| uint(j, &o.at("reorder_ns")))
            .transpose()?
            .unwrap_or(d.reorder_ns),
        seed: o
            .get("seed")
            .map(|j| uint(j, &o.at("seed")))
            .transpose()?
            .unwrap_or(d.seed),
    };
    o.done()?;
    Ok(spec)
}

fn scheduling(j: &Json, path: &str) -> Result<SchedulingSpec, String> {
    let mut o = Obj::new(j, path)?;
    let d = SchedulingSpec::default();
    let hpus = o
        .get("hpus")
        .map(|j| uint(j, &o.at("hpus")))
        .transpose()?
        .unwrap_or(d.hpus);
    if hpus == 0 {
        return Err(format!("{}: at least one HPU is required", o.at("hpus")));
    }
    let epsilon = o
        .get("epsilon")
        .map(|j| num(j, &o.at("epsilon")))
        .transpose()?
        .unwrap_or(d.epsilon);
    if !epsilon.is_finite() || epsilon < 0.0 {
        return Err(format!(
            "{}: expected a non-negative number",
            o.at("epsilon")
        ));
    }
    let engine = match o.get("engine") {
        Some(j) => {
            let s = string(j, &o.at("engine"))?;
            EngineMode::parse(s).ok_or_else(|| {
                format!(
                    "{}: unknown engine {s:?} (want auto, event or eager)",
                    o.at("engine")
                )
            })?
        }
        None => d.engine,
    };
    let copies = o
        .get("copies")
        .map(|j| uint(j, &o.at("copies")))
        .transpose()?
        .unwrap_or(d.copies as u64);
    if copies == 0 {
        return Err(format!("{}: expected at least one copy", o.at("copies")));
    }
    let out_of_order = o
        .get("out_of_order")
        .map(|j| uint(j, &o.at("out_of_order")))
        .transpose()?;
    let spec = SchedulingSpec {
        hpus,
        epsilon,
        engine,
        copies: copies as u32,
        out_of_order,
    };
    o.done()?;
    Ok(spec)
}

fn telemetry(j: &Json, path: &str) -> Result<TelemetrySpec, String> {
    let mut o = Obj::new(j, path)?;
    let spec = TelemetrySpec {
        ring_capacity: o
            .get("ring_capacity")
            .map(|j| uint(j, &o.at("ring_capacity")))
            .transpose()?,
        bucket_ps: o
            .get("bucket_ps")
            .map(|j| uint(j, &o.at("bucket_ps")))
            .transpose()?,
    };
    if spec.ring_capacity == Some(0) {
        return Err(format!(
            "{}: ring capacity must be nonzero",
            o.at("ring_capacity")
        ));
    }
    if spec.bucket_ps == Some(0) {
        return Err(format!(
            "{}: bucket width must be nonzero",
            o.at("bucket_ps")
        ));
    }
    o.done()?;
    Ok(spec)
}

fn traffic(j: &Json, path: &str) -> Result<TrafficSpec, String> {
    let mut o = Obj::new(j, path)?;
    let d = TrafficSpec::default();
    let apps = match o.get("apps") {
        Some(j) => {
            let items = arr(j, &o.at("apps"))?;
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let p = format!("{}[{i}]", o.at("apps"));
                let s = string(item, &p)?;
                if app_group(s).is_none() {
                    return Err(format!("{p}: unknown application mix {s:?}"));
                }
                out.push(s.to_string());
            }
            out
        }
        None => d.apps,
    };
    let loads = match o.get("loads") {
        Some(j) => {
            let items = arr(j, &o.at("loads"))?;
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let p = format!("{}[{i}]", o.at("loads"));
                let v = num(item, &p)?;
                if !(v.is_finite() && v > 0.0) {
                    return Err(format!("{p}: expected a positive offered load"));
                }
                out.push(v);
            }
            out
        }
        None => d.loads,
    };
    let disciplines = match o.get("disciplines") {
        Some(j) => {
            let items = arr(j, &o.at("disciplines"))?;
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let p = format!("{}[{i}]", o.at("disciplines"));
                let s = string(item, &p)?;
                out.push(
                    QueueDiscipline::parse(s)
                        .ok_or_else(|| format!("{p}: unknown discipline {s:?}"))?,
                );
            }
            out
        }
        None => d.disciplines,
    };
    if apps.is_empty() || loads.is_empty() || disciplines.is_empty() {
        return Err(format!(
            "{path}: apps, loads and disciplines must each be non-empty"
        ));
    }
    let strategy = match o.get("strategy") {
        Some(j) => {
            let s = string(j, &o.at("strategy"))?;
            parse_strategy(s)
                .ok_or_else(|| format!("{}: unknown strategy {s:?}", o.at("strategy")))?
        }
        None => d.strategy,
    };
    let arrival = match o.get("arrival") {
        Some(j) => {
            let s = string(j, &o.at("arrival"))?;
            ArrivalKind::parse(s).ok_or_else(|| {
                format!(
                    "{}: unknown arrival process {s:?} (want poisson, lognormal or mixed)",
                    o.at("arrival")
                )
            })?
        }
        None => d.arrival,
    };
    let sigma = o
        .get("sigma")
        .map(|j| num(j, &o.at("sigma")))
        .transpose()?
        .unwrap_or(d.sigma);
    if !(sigma.is_finite() && sigma > 0.0) {
        return Err(format!(
            "{}: expected a positive shape parameter",
            o.at("sigma")
        ));
    }
    let tenants = o
        .get("tenants")
        .map(|j| uint(j, &o.at("tenants")))
        .transpose()?
        .unwrap_or(d.tenants);
    let horizon_us = o
        .get("horizon_us")
        .map(|j| uint(j, &o.at("horizon_us")))
        .transpose()?
        .unwrap_or(d.horizon_us);
    if tenants == 0 || horizon_us == 0 {
        return Err(format!(
            "{path}: tenants and horizon_us must both be nonzero"
        ));
    }
    let rss_entries = o
        .get("rss_entries")
        .map(|j| uint(j, &o.at("rss_entries")))
        .transpose()?
        .unwrap_or(d.rss_entries);
    if rss_entries == 0 {
        return Err(format!(
            "{}: expected at least one slot",
            o.at("rss_entries")
        ));
    }
    let spec = TrafficSpec {
        apps,
        loads,
        disciplines,
        tenants,
        strategy,
        arrival,
        sigma,
        flows_per_tenant: o
            .get("flows_per_tenant")
            .map(|j| uint(j, &o.at("flows_per_tenant")))
            .transpose()?
            .unwrap_or(d.flows_per_tenant),
        rss_entries,
        horizon_us,
        buffer_kib: o
            .get("buffer_kib")
            .map(|j| uint(j, &o.at("buffer_kib")))
            .transpose()?,
        seed: o
            .get("seed")
            .map(|j| uint(j, &o.at("seed")))
            .transpose()?
            .unwrap_or(d.seed),
    };
    o.done()?;
    Ok(spec)
}

fn sweep(j: &Json, path: &str) -> Result<SweepSpec, String> {
    let mut o = Obj::new(j, path)?;
    let d = SweepSpec::default();
    let seeds = o
        .get("seeds")
        .map(|j| uint(j, &o.at("seeds")))
        .transpose()?
        .unwrap_or(d.seeds);
    if seeds == 0 {
        return Err(format!("{}: expected at least one seed", o.at("seeds")));
    }
    let scales = match o.get("scales") {
        Some(j) => {
            let items = arr(j, &o.at("scales"))?;
            let mut out = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let p = format!("{}[{i}]", o.at("scales"));
                let v = num(item, &p)?;
                if !(v.is_finite() && v >= 0.0) {
                    return Err(format!("{p}: expected a non-negative scale"));
                }
                out.push(v);
            }
            if out.is_empty() {
                return Err(format!("{}: expected at least one scale", o.at("scales")));
            }
            out
        }
        None => d.scales,
    };
    let spec = SweepSpec {
        seeds,
        seed0: o
            .get("seed0")
            .map(|j| uint(j, &o.at("seed0")))
            .transpose()?
            .unwrap_or(d.seed0),
        scales,
    };
    o.done()?;
    Ok(spec)
}

/// Parse a scenario document. Errors name the offending JSON path.
pub fn parse_scenario(text: &str) -> Result<Scenario, String> {
    let doc = Json::parse(text).map_err(|e| format!("scenario: {e}"))?;
    let mut o = Obj::new(&doc, "scenario")?;
    let name = string(o.req("name")?, &o.at("name"))?.to_string();
    let version = uint(o.req("version")?, &o.at("version"))?;
    if version != VERSION {
        return Err(format!(
            "{}: unsupported schema version {version} (this build reads version {VERSION})",
            o.at("version")
        ));
    }
    let kind_s = string(o.req("kind")?, &o.at("kind"))?;
    let kind = ScenarioKind::parse(kind_s).ok_or_else(|| {
        let all: Vec<&str> = ScenarioKind::ALL.iter().map(|k| k.label()).collect();
        format!(
            "{}: unknown scenario kind {kind_s:?} (want one of {})",
            o.at("kind"),
            all.join(", ")
        )
    })?;
    let scn = Scenario {
        name,
        kind,
        workload: o
            .get("workload")
            .map(|j| workload(j, &o.at("workload")))
            .transpose()?,
        faults: o
            .get("faults")
            .map(|j| faults(j, &o.at("faults")))
            .transpose()?
            .unwrap_or_default(),
        scheduling: o
            .get("scheduling")
            .map(|j| scheduling(j, &o.at("scheduling")))
            .transpose()?
            .unwrap_or_default(),
        telemetry: o
            .get("telemetry")
            .map(|j| telemetry(j, &o.at("telemetry")))
            .transpose()?
            .unwrap_or_default(),
        traffic: o
            .get("traffic")
            .map(|j| traffic(j, &o.at("traffic")))
            .transpose()?,
        sweep: o
            .get("sweep")
            .map(|j| sweep(j, &o.at("sweep")))
            .transpose()?
            .unwrap_or_default(),
    };
    o.done()?;
    Ok(scn)
}
