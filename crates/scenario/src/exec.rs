//! Compile a parsed [`Scenario`] into a concrete [`Plan`] and run it
//! on a worker [`Pool`]. The run functions here are the single
//! implementation behind both `ncmt_cli run <scenario.json>` and the
//! legacy `fault-sweep`/`traffic` subcommands (now thin wrappers), so
//! the printed tables and written artifacts are byte-identical by
//! construction — at any `--jobs` value, every grid comes back in
//! serial job order.

use std::fmt::Write;

use nca_core::report::{report_config, strategy_report, UTILIZATION_BUCKET_PS};
use nca_core::runner::{CaptureSpec, Experiment, Strategy};
use nca_core::sweep::{cell_ok, fault_sweep, FaultSweepSpec};
use nca_ddt::normalize::classify;
use nca_ddt::types::{elem, Datatype, DatatypeExt};
use nca_sim::{FaultSpec, Pool};
use nca_spin::nic::EngineMode;
use nca_spin::params::NicParams;
use nca_telemetry::export;
use nca_telemetry::report::{FaultSweepDoc, RunReportDoc};
use nca_traffic::{traffic_sweep, TrafficSweepSpec};
use nca_workloads::apps::all_workloads;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::ddt_compare::{self, DdtCompareDoc};
use crate::fig16;
use crate::schema::{Scenario, ScenarioKind, WorkloadSpec};

/// What the caller wants out of a run beyond the table.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Export a Chrome/Perfetto trace (strategy runs only).
    pub want_trace: bool,
    /// Build the machine-readable artifact document.
    pub want_report: bool,
}

/// A produced artifact plus the stdout line announcing where it went;
/// `line` contains a literal `{path}` the CLI substitutes once it
/// knows the output file.
#[derive(Debug, Clone)]
pub struct Artifact {
    pub text: String,
    pub line: String,
}

/// Everything one scenario run produced, ready for the CLI to print,
/// write and turn into an exit status.
#[derive(Debug, Clone, Default)]
pub struct Outcome {
    /// The human table (everything legacy printed before any artifact
    /// announcement).
    pub stdout: String,
    /// Non-fatal warning for stderr (e.g. dropped trace events).
    pub warn: Option<String>,
    /// Perfetto trace, when requested.
    pub trace: Option<Artifact>,
    /// The machine-readable document, when requested.
    pub artifact: Option<Artifact>,
    /// Trailing success line, printed only when `fail` is `None`.
    pub verdict: Option<String>,
    /// Failure message for stderr; its presence means exit status 1.
    pub fail: Option<String>,
}

/// A single-datatype strategy run, fully resolved.
#[derive(Debug, Clone)]
pub struct StrategyPlan {
    pub dt: Datatype,
    pub copies: u32,
    /// Extra leading stdout line for app workloads
    /// (`workload : MILC/b (vector(vector))`).
    pub workload_line: Option<String>,
    pub hpus: usize,
    pub epsilon: f64,
    pub engine: EngineMode,
    pub out_of_order: Option<u64>,
    pub faults: FaultSpec,
    /// Explicit telemetry ring request; `None` falls back to the
    /// historical 4 Mi-event ring when an artifact needs capture.
    pub ring_capacity: Option<usize>,
    /// Explicit streaming bucket width; `None` falls back to
    /// [`UTILIZATION_BUCKET_PS`].
    pub bucket_ps: Option<u64>,
}

/// A compiled scenario: concrete simulator specs, ready to run.
pub enum Plan {
    Strategy(StrategyPlan),
    FaultSweep(FaultSweepSpec),
    Traffic(TrafficSweepSpec),
    Fig16 { max_kib: Option<u64> },
    DdtCompare { max_kib: Option<u64> },
}

impl std::fmt::Debug for Plan {
    // Compact: the inner specs carry whole datatype trees.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Plan::Strategy(_) => "Plan::Strategy",
            Plan::FaultSweep(_) => "Plan::FaultSweep",
            Plan::Traffic(_) => "Plan::Traffic",
            Plan::Fig16 { .. } => "Plan::Fig16",
            Plan::DdtCompare { .. } => "Plan::DdtCompare",
        })
    }
}

/// Resolve a single-datatype workload section into `(dt, copies,
/// leading stdout line)`. `copies` multiplies vector/indexed datatypes;
/// app workloads carry their own repetition count.
fn resolve_single(
    w: &WorkloadSpec,
    copies: u32,
) -> Result<(Datatype, u32, Option<String>), String> {
    match w {
        WorkloadSpec::Vector {
            count,
            blocklen,
            stride,
        } => Ok((
            Datatype::vector(*count, *blocklen, *stride, &elem::double()),
            copies,
            None,
        )),
        WorkloadSpec::Indexed {
            blocks,
            blocklen,
            seed,
        } => {
            // Same construction as the `indexed` subcommand: fixed-size
            // blocks at seeded random offsets with 1–4 element gaps.
            let mut rng = StdRng::seed_from_u64(*seed);
            let mut displs = Vec::with_capacity(*blocks as usize);
            let mut at = 0i64;
            for _ in 0..*blocks {
                displs.push(at);
                at += *blocklen as i64 + rng.random_range(1..=4i64);
            }
            let dt = Datatype::indexed_block(*blocklen, &displs, &elem::double())
                .map_err(|e| format!("scenario.workload: {e}"))?;
            Ok((dt, copies, None))
        }
        WorkloadSpec::App { label } => {
            let w = all_workloads()
                .into_iter()
                .find(|w| w.label() == *label)
                .ok_or_else(|| format!("scenario.workload.label: unknown workload {label}"))?;
            let line = format!("workload : {} ({})", w.label(), w.ddt_class);
            Ok((w.dt.clone(), w.count, Some(line)))
        }
        WorkloadSpec::Apps { .. } => Err(
            "scenario.workload: this scenario kind needs a single workload \
             (vector, indexed or app)"
                .to_string(),
        ),
    }
}

impl Scenario {
    /// Compile the scenario into a concrete [`Plan`], validating the
    /// section combination (e.g. a `traffic` section is only legal on
    /// a traffic scenario, a fault sweep needs nonzero fault rates).
    pub fn compile(&self) -> Result<Plan, String> {
        if self.traffic.is_some() && self.kind != ScenarioKind::Traffic {
            return Err(
                "scenario.traffic: only traffic scenarios use a traffic section".to_string(),
            );
        }
        let base = FaultSpec {
            drop: self.faults.drop,
            duplicate: self.faults.duplicate,
            corrupt: self.faults.corrupt,
            reorder_window: self.faults.reorder_ns * 1_000,
            seed: self.faults.seed,
        };
        match self.kind {
            ScenarioKind::StrategyRun => {
                let w = self
                    .workload
                    .as_ref()
                    .ok_or("scenario.workload: strategy-run scenarios need a workload section")?;
                let (dt, copies, workload_line) = resolve_single(w, self.scheduling.copies)?;
                Ok(Plan::Strategy(StrategyPlan {
                    dt,
                    copies,
                    workload_line,
                    hpus: self.scheduling.hpus as usize,
                    epsilon: self.scheduling.epsilon,
                    engine: self.scheduling.engine,
                    out_of_order: self.scheduling.out_of_order,
                    faults: base,
                    ring_capacity: self.telemetry.ring_capacity.map(|v| v as usize),
                    bucket_ps: self.telemetry.bucket_ps,
                }))
            }
            ScenarioKind::FaultSweep => {
                if self.faults.is_inert() {
                    return Err("scenario.faults: fault-sweep needs at least one nonzero \
                                fault rate (drop/duplicate/corrupt/reorder_ns)"
                        .to_string());
                }
                let w = self
                    .workload
                    .as_ref()
                    .ok_or("scenario.workload: fault-sweep scenarios need a workload section")?;
                let (dt, count, _) = resolve_single(w, self.scheduling.copies)?;
                Ok(Plan::FaultSweep(FaultSweepSpec {
                    dt,
                    count,
                    params: NicParams::with_hpus(self.scheduling.hpus as usize),
                    base,
                    seed0: self.sweep.seed0,
                    seeds: self.sweep.seeds,
                    scales: self.sweep.scales.clone(),
                    ring_capacity: self.telemetry.ring_capacity.unwrap_or(1 << 20) as usize,
                }))
            }
            ScenarioKind::Traffic => {
                if self.workload.is_some() {
                    return Err(
                        "scenario.workload: traffic scenarios take their mixes from \
                                the traffic section, not a workload"
                            .to_string(),
                    );
                }
                let t = self.traffic.clone().unwrap_or_default();
                let mut spec = TrafficSweepSpec::new(t.seed);
                spec.apps = t.apps;
                spec.loads = t.loads;
                spec.disciplines = t.disciplines;
                spec.tenants = t.tenants as usize;
                spec.strategy = t.strategy;
                spec.arrival = t.arrival;
                spec.sigma = t.sigma;
                spec.flows_per_tenant = t.flows_per_tenant;
                spec.rss_entries = t.rss_entries as usize;
                spec.horizon_ps = nca_sim::us(t.horizon_us);
                spec.hpus = self.scheduling.hpus as usize;
                spec.pkt_buffer_bytes = t.buffer_kib.map(|k| k << 10);
                if let Some(b) = self.telemetry.bucket_ps {
                    spec.stream_bucket_ps = b;
                }
                Ok(Plan::Traffic(spec))
            }
            ScenarioKind::Fig16 | ScenarioKind::DdtHostCompare => {
                let max_kib = match &self.workload {
                    None => None,
                    Some(WorkloadSpec::Apps { max_kib }) => *max_kib,
                    Some(_) => {
                        return Err(format!(
                            "scenario.workload: {} scenarios run the application set \
                             (use an `apps` workload or omit the section)",
                            self.kind.label()
                        ))
                    }
                };
                Ok(match self.kind {
                    ScenarioKind::Fig16 => Plan::Fig16 { max_kib },
                    _ => Plan::DdtCompare { max_kib },
                })
            }
        }
    }
}

impl Plan {
    /// Run the compiled plan on `pool`.
    pub fn run(&self, pool: &Pool, opts: &RunOptions) -> Outcome {
        match self {
            Plan::Strategy(plan) => run_strategy(plan, pool, opts),
            Plan::FaultSweep(spec) => run_fault_sweep(spec, pool),
            Plan::Traffic(spec) => run_traffic(spec, pool),
            Plan::Fig16 { max_kib } => {
                let table = fig16::render(*max_kib, pool);
                Outcome {
                    artifact: Some(Artifact {
                        text: table.clone(),
                        line: "\nfigure → {path}".to_string(),
                    }),
                    stdout: table,
                    ..Outcome::default()
                }
            }
            Plan::DdtCompare { max_kib } => run_ddt_compare(*max_kib, pool),
        }
    }
}

/// One datatype through every strategy plus the host and iovec
/// baselines — the body the `vector`/`indexed`/`app` subcommands have
/// always run, now shared with `run <scenario.json>`.
pub fn run_strategy(plan: &StrategyPlan, pool: &Pool, opts: &RunOptions) -> Outcome {
    // Per-strategy rings merged after the barrier reproduce exactly
    // what one shared ring would capture from the serial loop;
    // per-strategy scopes keep the overlapping runs apart.
    let capture_on = opts.want_trace
        || opts.want_report
        || plan.ring_capacity.is_some()
        || plan.bucket_ps.is_some();
    let capture = capture_on.then(|| plan.ring_capacity.unwrap_or(1usize << 22));

    let mut exp = Experiment::new(
        plan.dt.clone(),
        plan.copies,
        NicParams::with_hpus(plan.hpus),
    );
    exp.epsilon = plan.epsilon;
    exp.out_of_order = plan.out_of_order;
    exp.verify = plan.dt.size * plan.copies as u64 <= 16 << 20;
    exp.faults = plan.faults;
    exp.engine = plan.engine;
    let faulty = !exp.faults.is_inert();

    let mut o = String::new();
    if let Some(line) = &plan.workload_line {
        let _ = writeln!(o, "{line}");
    }
    let _ = writeln!(o, "datatype : {}", plan.dt.signature());
    let _ = writeln!(o, "shape    : {:?}", classify(&plan.dt));
    let _ = writeln!(
        o,
        "message  : {:.1} KiB in {} regions (gamma = {:.1}), {} HPUs{}",
        plan.dt.size as f64 * plan.copies as f64 / 1024.0,
        nca_ddt::dataloop::compile(&plan.dt, plan.copies).blocks,
        exp.gamma(),
        plan.hpus,
        if plan.out_of_order.is_some() {
            ", out-of-order"
        } else {
            ""
        }
    );
    let _ = writeln!(o);
    let _ = writeln!(
        o,
        "{:<14} {:>12} {:>10} {:>12}",
        "method", "time (us)", "Gbit/s", "NIC KiB"
    );
    // All strategies run as independent pool jobs; rendering happens
    // after the barrier, in Strategy::ALL order, from the merged sweep.
    let sweep = exp.run_all_captured(
        pool,
        CaptureSpec {
            ring_capacity: capture,
            stream_bucket_ps: capture
                .is_some()
                .then(|| plan.bucket_ps.unwrap_or(UTILIZATION_BUCKET_PS)),
        },
    );
    for (s, run) in &sweep.runs {
        let rel = if faulty {
            let r = &run.report.rel;
            format!(
                "  rtx {} drop {} dup {} corrupt {} fallback {}",
                r.retransmissions,
                r.drops_injected,
                r.dups_suppressed,
                r.corrupts_rejected,
                r.host_fallback_packets
            )
        } else {
            String::new()
        };
        let _ = writeln!(
            o,
            "{:<14} {:>12.1} {:>10.1} {:>12.2}{}",
            s.label(),
            run.report.processing_time() as f64 / 1e6,
            run.report.throughput_gbit(),
            run.report.nic_mem_bytes as f64 / 1024.0,
            rel
        );
    }
    let host = exp.run_host();
    let _ = writeln!(
        o,
        "{:<14} {:>12.1} {:>10.1} {:>12.2}",
        "Host unpack",
        host.processing_time as f64 / 1e6,
        host.throughput_gbit(),
        0.0
    );
    let iov = exp.run_iovec();
    let _ = writeln!(
        o,
        "{:<14} {:>12.1} {:>10.1} {:>12.2}",
        "Portals iovec",
        iov.processing_time as f64 / 1e6,
        iov.throughput_gbit(),
        iov.nic_bytes as f64 / 1024.0
    );
    if exp.verify {
        let _ = writeln!(o, "\nreceive buffers byte-verified ✓");
    }

    let mut out = Outcome {
        stdout: o,
        ..Outcome::default()
    };
    if capture.is_some() {
        if sweep.dropped > 0 {
            out.warn = Some(format!(
                "warning: trace ring dropped {} event(s); the exported trace is a \
                 suffix of the run (see trace_dropped_events in the report)",
                sweep.dropped
            ));
        }
        let events = sweep.events;
        if opts.want_trace {
            // Streaming time series ride along as Perfetto counter
            // tracks, scoped per strategy like the raw events.
            let aggs: Vec<(&str, &nca_telemetry::StreamAggregate)> = sweep
                .aggregates
                .iter()
                .map(|(s, a)| (s.label(), a))
                .collect();
            out.trace = Some(Artifact {
                text: export::chrome_trace_json_with_aggregates(&events, &aggs),
                line: format!(
                    "\ntrace    : {} events → {{path}} (Perfetto/chrome://tracing){}",
                    events.len(),
                    if sweep.dropped > 0 {
                        format!(", {} oldest dropped", sweep.dropped)
                    } else {
                        String::new()
                    }
                ),
            });
        }
        if opts.want_report {
            let doc = RunReportDoc {
                version: RunReportDoc::VERSION,
                trace_dropped_events: sweep.dropped,
                config: report_config(&exp),
                strategies: sweep
                    .runs
                    .iter()
                    .map(|(s, run)| strategy_report(&exp, run, &events, s.label()))
                    .collect(),
            };
            out.artifact = Some(Artifact {
                line: format!("report   : {} strategies → {{path}}", doc.strategies.len()),
                text: doc.to_json(),
            });
        }
    }
    out
}

/// The seed × fault-scale matrix over all strategies, with the exact
/// table and `ncmt-fault-sweep` artifact the `fault-sweep` subcommand
/// has always produced.
pub fn run_fault_sweep(spec: &FaultSweepSpec, pool: &Pool) -> Outcome {
    let base = spec.base;
    let mut o = String::new();
    let _ = writeln!(
        o,
        "fault-sweep: {} over {} seeds × {:?} scales × {} strategies",
        spec.dt.signature(),
        spec.seeds,
        spec.scales,
        Strategy::ALL.len()
    );
    let _ = writeln!(
        o,
        "rates at 1.0: drop {} dup {} corrupt {} reorder {} ns\n",
        base.drop,
        base.duplicate,
        base.corrupt,
        base.reorder_window / 1_000
    );
    let _ = writeln!(
        o,
        "{:<6} {:>6} {:<14} {:>6} {:>6} {:>9} {:>9} {:>9} {:>6}",
        "seed", "scale", "strategy", "exact", "tx", "rtx", "rejected", "fallback", "rcvry"
    );

    // The matrix runs in parallel at (seed, scale)-cell granularity;
    // cells come back in serial order, so the table and the artifact
    // are byte-identical at any --jobs value.
    let cells = fault_sweep(spec, pool);
    let mut failures = 0u64;
    for cell in &cells {
        let ok = cell_ok(cell);
        if !ok {
            failures += 1;
        }
        let f = &cell.faults;
        let _ = writeln!(
            o,
            "{:<6} {:>6.1} {:<14} {:>6} {:>6} {:>9} {:>9} {:>9} {:>6}",
            cell.seed,
            cell.scale,
            cell.strategy,
            if ok { "yes" } else { "NO" },
            f.transmissions,
            f.retransmissions,
            f.corrupts_rejected,
            f.host_fallback_packets,
            f.checkpoint_reverts + f.catchup_blocks
        );
    }
    let ncells = cells.len();
    let doc = FaultSweepDoc {
        version: FaultSweepDoc::VERSION,
        drop: base.drop,
        duplicate: base.duplicate,
        corrupt: base.corrupt,
        reorder_ns: base.reorder_window / 1_000,
        cells,
    };
    Outcome {
        stdout: o,
        artifact: Some(Artifact {
            text: doc.to_json(),
            line: "\nsweep report → {path}".to_string(),
        }),
        verdict: (failures == 0)
            .then(|| format!("\nall {ncells} cells byte-exact, delivered exactly once ✓")),
        fail: (failures > 0)
            .then(|| format!("\nFAIL: {failures} cell(s) were not byte-exact exactly-once")),
        ..Outcome::default()
    }
}

/// The open-loop traffic grid with the exact table and `ncmt-traffic`
/// artifact the `traffic` subcommand has always produced.
pub fn run_traffic(spec: &TrafficSweepSpec, pool: &Pool) -> Outcome {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "traffic: {} × {:?} loads × {} disciplines, {} {} tenants ({} arrivals), {} HPUs",
        spec.apps.join("/"),
        spec.loads,
        spec.disciplines.len(),
        spec.tenants,
        spec.strategy.label(),
        spec.arrival.label(),
        spec.hpus
    );
    let _ = writeln!(o);
    let _ = writeln!(
        o,
        "{:<8} {:<11} {:>5} {:<4} {:>7} {:>7} {:>6} {:>5} {:>9} {:>9} {:>9} {:>8}",
        "app",
        "discipline",
        "load",
        "ten",
        "offered",
        "compl",
        "drop",
        "lost",
        "p50 us",
        "p99 us",
        "p999 us",
        "Gbit/s"
    );
    let doc = traffic_sweep(spec, pool);
    for c in &doc.cells {
        for t in &c.tenants {
            let _ = writeln!(
                o,
                "{:<8} {:<11} {:>5.2} {:<4} {:>7} {:>7} {:>6} {:>5} {:>9.1} {:>9.1} {:>9.1} {:>8.1}",
                c.app,
                c.discipline,
                c.offered_load,
                t.tenant,
                t.offered,
                t.completed,
                t.dropped,
                t.lost,
                t.latency.p50 as f64 / 1e6,
                t.latency.p99 as f64 / 1e6,
                t.latency.p999 as f64 / 1e6,
                t.goodput_gbit
            );
        }
    }
    let ok = doc.all_byte_exact();
    Outcome {
        stdout: o,
        artifact: Some(Artifact {
            text: doc.to_json(),
            line: "\ntraffic report → {path}".to_string(),
        }),
        verdict: ok.then(|| "\nall completed messages byte-verified ✓".to_string()),
        fail: (!ok).then(|| "\nFAIL: a completed message was not byte-exact".to_string()),
        ..Outcome::default()
    }
}

fn run_ddt_compare(max_kib: Option<u64>, pool: &Pool) -> Outcome {
    let rows = ddt_compare::rows_filtered(max_kib, pool);
    let table = ddt_compare::render(&rows);
    let ok = rows.iter().all(|r| r.byte_exact);
    let n = rows.len();
    let doc = DdtCompareDoc {
        version: DdtCompareDoc::VERSION,
        rows,
    };
    Outcome {
        stdout: table,
        artifact: Some(Artifact {
            text: doc.to_json(),
            line: "\nddt compare report → {path}".to_string(),
        }),
        verdict: ok
            .then(|| format!("\nengine and manual unpack byte-identical on all {n} workloads ✓")),
        fail: (!ok).then(|| "\nFAIL: engine and manual unpack disagree".to_string()),
        ..Outcome::default()
    }
}
