//! Declarative scenario configs for the NCMT reproduction: one JSON
//! document names workload × traffic × faults × scheduling × telemetry
//! × sweep, a strict hand-rolled parser rejects anything it does not
//! understand (unknown keys are hard errors naming the JSON path), and
//! the compiler turns the result into the same deterministic pool jobs
//! the individual CLI subcommands always ran — so `ncmt_cli run
//! scenarios/fig16.json` and the legacy `fig16`/`fault-sweep`/`traffic`
//! entry points produce byte-identical artifacts at any `--jobs` value.
//!
//! Layers:
//! - [`schema`] — the scenario document as plain data with defaults
//!   and a canonical serializer.
//! - [`parse_scenario`] — strict JSON → [`Scenario`].
//! - [`exec`] — [`Scenario::compile`] into a [`exec::Plan`] and run it.
//! - [`fig16`] — the Fig. 16 application-speedup table (moved here
//!   from `nca-bench`, which re-exports it).
//! - [`ddt_compare`] — dataloop/kernels engine vs naive element-wise
//!   manual copy, per application datatype.

pub mod ddt_compare;
pub mod exec;
pub mod fig16;
mod parse;
pub mod schema;

pub use exec::{Artifact, Outcome, Plan, RunOptions, StrategyPlan};
pub use parse::{parse_scenario, parse_strategy};
pub use schema::{
    FaultsSpec, Scenario, ScenarioKind, SchedulingSpec, SweepSpec, TelemetrySpec, TrafficSpec,
    WorkloadSpec, VERSION,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_round_trip_for_every_kind() {
        for kind in ScenarioKind::ALL {
            let mut scn = Scenario::new("rt", kind);
            if matches!(kind, ScenarioKind::Traffic) {
                scn.traffic = Some(TrafficSpec::default());
            }
            if matches!(kind, ScenarioKind::StrategyRun | ScenarioKind::FaultSweep) {
                scn.workload = Some(WorkloadSpec::Vector {
                    count: 512,
                    blocklen: 16,
                    stride: 32,
                });
            }
            let text = scn.to_json();
            let back = parse_scenario(&text).unwrap_or_else(|e| panic!("{}: {e}", kind.label()));
            assert_eq!(back, scn, "{} round trip", kind.label());
        }
    }

    #[test]
    fn unknown_top_level_key_is_rejected_with_its_path() {
        let err =
            parse_scenario(r#"{ "name": "x", "version": 1, "kind": "fig16", "workloads": {} }"#)
                .unwrap_err();
        assert!(err.contains("scenario.workloads"), "{err}");
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn nested_unknown_key_names_the_full_path() {
        let err = parse_scenario(
            r#"{ "name": "x", "version": 1, "kind": "traffic",
                 "traffic": { "loadz": [0.5] } }"#,
        )
        .unwrap_err();
        assert!(err.contains("scenario.traffic.loadz"), "{err}");
    }

    #[test]
    fn wrong_schema_version_is_rejected() {
        let err = parse_scenario(r#"{ "name": "x", "version": 2, "kind": "fig16" }"#).unwrap_err();
        assert!(err.contains("scenario.version"), "{err}");
    }

    #[test]
    fn bad_array_entries_name_their_index() {
        let err = parse_scenario(
            r#"{ "name": "x", "version": 1, "kind": "traffic",
                 "traffic": { "loads": [0.5, -1.0] } }"#,
        )
        .unwrap_err();
        assert!(err.contains("scenario.traffic.loads[1]"), "{err}");
    }

    #[test]
    fn fault_sweep_without_rates_fails_to_compile() {
        let mut scn = Scenario::new("s", ScenarioKind::FaultSweep);
        scn.workload = Some(WorkloadSpec::Vector {
            count: 512,
            blocklen: 16,
            stride: 32,
        });
        let err = scn.compile().unwrap_err();
        assert!(err.contains("scenario.faults"), "{err}");
    }

    #[test]
    fn traffic_section_is_rejected_on_other_kinds() {
        let mut scn = Scenario::new("s", ScenarioKind::Fig16);
        scn.traffic = Some(TrafficSpec::default());
        let err = scn.compile().unwrap_err();
        assert!(err.contains("scenario.traffic"), "{err}");
    }

    #[test]
    fn sweep_expansion_is_seed_major() {
        let sweep = SweepSpec {
            seeds: 2,
            seed0: 5,
            scales: vec![0.0, 1.0],
        };
        assert_eq!(sweep.expand(), vec![(5, 0.0), (5, 1.0), (6, 0.0), (6, 1.0)]);
    }
}
