//! The declarative scenario schema: a JSON document that names a
//! workload, fault model, scheduling setup, telemetry capture, traffic
//! mix and sweep axes, compiled by [`crate::exec`] into pool jobs.
//!
//! Every struct here is plain data with explicit defaults — no
//! [`Datatype`](nca_ddt::types::Datatype) or simulator state — so a
//! scenario value round-trips exactly through [`Scenario::to_json`]
//! and [`crate::parse_scenario`].

use std::fmt::Write;

use nca_core::runner::Strategy;
use nca_spin::nic::EngineMode;
use nca_spin::sched::QueueDiscipline;
use nca_traffic::ArrivalKind;

/// Schema version this build reads and writes.
pub const VERSION: u64 = 1;

/// What the scenario runs: one of the five experiment families the CLI
/// exposes. The label is the `"kind"` string in the JSON document.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// One datatype through every strategy plus the host/iovec
    /// baselines (the `vector`/`indexed`/`app` subcommands).
    StrategyRun,
    /// Seed × fault-scale matrix over all strategies.
    FaultSweep,
    /// Open-loop multi-tenant traffic sweep.
    Traffic,
    /// The Fig. 16 application-speedup table.
    Fig16,
    /// Host-side DDT unpack: dataloop/kernels engine vs a naive
    /// element-wise manual copy, per application datatype.
    DdtHostCompare,
}

impl ScenarioKind {
    /// All kinds, for help text and error messages.
    pub const ALL: [ScenarioKind; 5] = [
        ScenarioKind::StrategyRun,
        ScenarioKind::FaultSweep,
        ScenarioKind::Traffic,
        ScenarioKind::Fig16,
        ScenarioKind::DdtHostCompare,
    ];

    /// The `"kind"` string in the scenario document.
    pub fn label(self) -> &'static str {
        match self {
            ScenarioKind::StrategyRun => "strategy-run",
            ScenarioKind::FaultSweep => "fault-sweep",
            ScenarioKind::Traffic => "traffic",
            ScenarioKind::Fig16 => "fig16",
            ScenarioKind::DdtHostCompare => "ddt-host-compare",
        }
    }

    /// Inverse of [`ScenarioKind::label`].
    pub fn parse(s: &str) -> Option<ScenarioKind> {
        Self::ALL.into_iter().find(|k| k.label() == s)
    }
}

/// Which receive datatype the scenario drives.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// Strided blocks of doubles (`MPI_Type_vector`).
    Vector {
        count: u32,
        blocklen: u32,
        stride: i64,
    },
    /// Irregular fixed-size blocks at seeded random offsets.
    Indexed {
        blocks: u64,
        blocklen: u32,
        seed: u64,
    },
    /// One Fig. 16 application workload by exact label (e.g. `MILC/b`).
    App { label: String },
    /// Every Fig. 16 application workload, optionally capped at
    /// `max_kib` KiB of message size (the figures' quick mode is 512).
    Apps { max_kib: Option<u64> },
}

/// The fault-injection knobs (PR 3); rates are per packet at scale 1.0.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultsSpec {
    pub drop: f64,
    pub duplicate: f64,
    pub corrupt: f64,
    /// Extra-delay reordering window in nanoseconds.
    pub reorder_ns: u64,
    /// Fault-schedule seed (sweeps use `sweep.seed0..+seeds` instead).
    pub seed: u64,
}

impl Default for FaultsSpec {
    fn default() -> Self {
        FaultsSpec {
            drop: 0.0,
            duplicate: 0.0,
            corrupt: 0.0,
            reorder_ns: 0,
            seed: 1,
        }
    }
}

impl FaultsSpec {
    /// No fault machinery engaged at these rates.
    pub fn is_inert(&self) -> bool {
        self.drop == 0.0 && self.duplicate == 0.0 && self.corrupt == 0.0 && self.reorder_ns == 0
    }
}

/// Pipeline/scheduling knobs shared by every kind.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulingSpec {
    /// Handler processing units.
    pub hpus: u64,
    /// RW-CP scheduling-overhead bound ε.
    pub epsilon: f64,
    /// DMA engine selection (`auto` keeps the historical behaviour:
    /// eager when nothing needs per-event timing).
    pub engine: EngineMode,
    /// Datatype repetition count (strategy runs and fault sweeps).
    pub copies: u32,
    /// Shuffle payload-packet arrival order with this seed.
    pub out_of_order: Option<u64>,
}

impl Default for SchedulingSpec {
    fn default() -> Self {
        SchedulingSpec {
            hpus: 16,
            epsilon: 0.2,
            engine: EngineMode::Auto,
            copies: 1,
            out_of_order: None,
        }
    }
}

/// Telemetry capture request. Absent knobs fall back to each kind's
/// historical default (strategy runs: a 4 Mi-event ring only when an
/// artifact is requested; fault sweeps: a 1 Mi ring per cell).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TelemetrySpec {
    /// Ring capacity in events.
    pub ring_capacity: Option<u64>,
    /// Streaming-aggregation bucket width (ps).
    pub bucket_ps: Option<u64>,
}

/// The open-loop traffic grid (`kind: "traffic"` only).
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficSpec {
    /// Application mixes: Fig. 16 family names or exact labels.
    pub apps: Vec<String>,
    /// Offered loads as fractions of line rate.
    pub loads: Vec<f64>,
    /// Queue disciplines to grid over.
    pub disciplines: Vec<QueueDiscipline>,
    pub tenants: u64,
    /// Strategy all tenants run.
    pub strategy: Strategy,
    pub arrival: ArrivalKind,
    /// Log-normal shape parameter.
    pub sigma: f64,
    /// Flows per tenant for RSS steering.
    pub flows_per_tenant: u64,
    /// RSS indirection-table slots.
    pub rss_entries: u64,
    /// Open-loop generation horizon in microseconds.
    pub horizon_us: u64,
    /// Override the NIC packet-buffer admission budget (KiB).
    pub buffer_kib: Option<u64>,
    /// Master schedule seed.
    pub seed: u64,
}

impl Default for TrafficSpec {
    fn default() -> Self {
        TrafficSpec {
            apps: vec!["milc".into(), "comb".into(), "fft2d".into()],
            loads: vec![0.3, 0.6, 0.9, 1.2],
            disciplines: QueueDiscipline::ALL.to_vec(),
            tenants: 4,
            strategy: Strategy::RwCp,
            arrival: ArrivalKind::Poisson,
            sigma: 1.5,
            flows_per_tenant: 8,
            rss_entries: 64,
            horizon_us: 400,
            buffer_kib: None,
            seed: 1,
        }
    }
}

/// The fault-sweep axes; the grid is the cartesian product
/// `seed0..seed0+seeds × scales` run over every strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    pub seeds: u64,
    pub seed0: u64,
    /// Scale factors applied to the base fault rates (0.0 = lossless
    /// control).
    pub scales: Vec<f64>,
}

impl Default for SweepSpec {
    fn default() -> Self {
        SweepSpec {
            seeds: 4,
            seed0: 1,
            scales: vec![0.0, 0.5, 1.0],
        }
    }
}

impl SweepSpec {
    /// The expanded (seed, scale) grid, seed-major — the exact job
    /// order [`nca_core::sweep::FaultSweepSpec::cells`] runs.
    pub fn expand(&self) -> Vec<(u64, f64)> {
        let mut out = Vec::with_capacity((self.seeds as usize) * self.scales.len());
        for s in 0..self.seeds {
            for &scale in &self.scales {
                out.push((self.seed0 + s, scale));
            }
        }
        out
    }
}

/// One parsed scenario document.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Free-form scenario name (shows up nowhere load-bearing).
    pub name: String,
    pub kind: ScenarioKind,
    pub workload: Option<WorkloadSpec>,
    pub faults: FaultsSpec,
    pub scheduling: SchedulingSpec,
    pub telemetry: TelemetrySpec,
    pub traffic: Option<TrafficSpec>,
    pub sweep: SweepSpec,
}

impl Scenario {
    /// A scenario of `kind` with every section at its default.
    pub fn new(name: &str, kind: ScenarioKind) -> Scenario {
        Scenario {
            name: name.to_string(),
            kind,
            workload: None,
            faults: FaultsSpec::default(),
            scheduling: SchedulingSpec::default(),
            telemetry: TelemetrySpec::default(),
            traffic: None,
            sweep: SweepSpec::default(),
        }
    }
}

// ---------------------------------------------------------------- JSON out

pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string() // NaN/inf are not JSON; parsing treats them as 0
    }
}

fn f64_list(vs: &[f64]) -> String {
    let items: Vec<String> = vs.iter().map(|&v| fmt_f64(v)).collect();
    format!("[{}]", items.join(", "))
}

fn str_list(vs: &[String]) -> String {
    let items: Vec<String> = vs.iter().map(|v| format!("\"{}\"", esc(v))).collect();
    format!("[{}]", items.join(", "))
}

impl Scenario {
    /// Render the scenario in canonical form: every section written,
    /// every present field explicit. `parse_scenario(to_json(s)) == s`.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"name\": \"{}\",", esc(&self.name));
        let _ = writeln!(o, "  \"version\": {VERSION},");
        let _ = writeln!(o, "  \"kind\": \"{}\",", self.kind.label());
        if let Some(w) = &self.workload {
            o.push_str("  \"workload\": ");
            match w {
                WorkloadSpec::Vector {
                    count,
                    blocklen,
                    stride,
                } => {
                    let _ = writeln!(
                        o,
                        "{{ \"kind\": \"vector\", \"count\": {count}, \
                         \"blocklen\": {blocklen}, \"stride\": {stride} }},"
                    );
                }
                WorkloadSpec::Indexed {
                    blocks,
                    blocklen,
                    seed,
                } => {
                    let _ = writeln!(
                        o,
                        "{{ \"kind\": \"indexed\", \"blocks\": {blocks}, \
                         \"blocklen\": {blocklen}, \"seed\": {seed} }},"
                    );
                }
                WorkloadSpec::App { label } => {
                    let _ = writeln!(o, "{{ \"kind\": \"app\", \"label\": \"{}\" }},", esc(label));
                }
                WorkloadSpec::Apps { max_kib } => match max_kib {
                    Some(kib) => {
                        let _ = writeln!(o, "{{ \"kind\": \"apps\", \"max_kib\": {kib} }},");
                    }
                    None => {
                        let _ = writeln!(o, "{{ \"kind\": \"apps\" }},");
                    }
                },
            }
        }
        let f = &self.faults;
        let _ = writeln!(
            o,
            "  \"faults\": {{ \"drop\": {}, \"duplicate\": {}, \"corrupt\": {}, \
             \"reorder_ns\": {}, \"seed\": {} }},",
            fmt_f64(f.drop),
            fmt_f64(f.duplicate),
            fmt_f64(f.corrupt),
            f.reorder_ns,
            f.seed
        );
        let s = &self.scheduling;
        let ooo = s
            .out_of_order
            .map(|v| format!(", \"out_of_order\": {v}"))
            .unwrap_or_default();
        let _ = writeln!(
            o,
            "  \"scheduling\": {{ \"hpus\": {}, \"epsilon\": {}, \"engine\": \"{}\", \
             \"copies\": {}{} }},",
            s.hpus,
            fmt_f64(s.epsilon),
            s.engine.label(),
            s.copies,
            ooo
        );
        let t = &self.telemetry;
        let mut tel = Vec::new();
        if let Some(rc) = t.ring_capacity {
            tel.push(format!("\"ring_capacity\": {rc}"));
        }
        if let Some(b) = t.bucket_ps {
            tel.push(format!("\"bucket_ps\": {b}"));
        }
        if tel.is_empty() {
            let _ = writeln!(o, "  \"telemetry\": {{}},");
        } else {
            let _ = writeln!(o, "  \"telemetry\": {{ {} }},", tel.join(", "));
        }
        if let Some(t) = &self.traffic {
            let disciplines: Vec<String> = t
                .disciplines
                .iter()
                .map(|d| format!("\"{}\"", d.label()))
                .collect();
            let buffer = t
                .buffer_kib
                .map(|v| format!("\n    \"buffer_kib\": {v},"))
                .unwrap_or_default();
            let _ = writeln!(
                o,
                "  \"traffic\": {{\n    \"apps\": {},\n    \"loads\": {},\n    \
                 \"disciplines\": [{}],\n    \"tenants\": {},\n    \"strategy\": \"{}\",\n    \
                 \"arrival\": \"{}\",\n    \"sigma\": {},\n    \"flows_per_tenant\": {},\n    \
                 \"rss_entries\": {},\n    \"horizon_us\": {},{}\n    \"seed\": {}\n  }},",
                str_list(&t.apps),
                f64_list(&t.loads),
                disciplines.join(", "),
                t.tenants,
                t.strategy.label(),
                t.arrival.label(),
                fmt_f64(t.sigma),
                t.flows_per_tenant,
                t.rss_entries,
                t.horizon_us,
                buffer,
                t.seed
            );
        }
        let sw = &self.sweep;
        let _ = writeln!(
            o,
            "  \"sweep\": {{ \"seeds\": {}, \"seed0\": {}, \"scales\": {} }}",
            sw.seeds,
            sw.seed0,
            f64_list(&sw.scales)
        );
        o.push_str("}\n");
        o
    }
}
