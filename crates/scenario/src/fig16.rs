//! Fig. 16 — message-processing-time speedup over host-based unpacking
//! for the thirteen application DDTs, for RW-CP, specialized handlers,
//! and the Portals 4 iovec baseline; annotated with γ, the host baseline
//! time T, the message size S, and the data moved to the NIC.
//!
//! Lives in the scenario crate so `ncmt_cli run scenarios/fig16.json`
//! and the `fig16_applications` binary render the one table from one
//! implementation; `nca_bench::figures::fig16` re-exports everything.

use std::fmt::Write;

use nca_core::runner::{Experiment, Strategy};
use nca_sim::Pool;
use nca_spin::params::NicParams;
use nca_workloads::apps::all_workloads;

/// One application/input row.
pub struct Row {
    /// e.g. `MILC/b`.
    pub label: String,
    /// Datatype constructor class.
    pub class: &'static str,
    /// Average regions per packet.
    pub gamma: f64,
    /// Host baseline message processing time (ms) — the figure's `T`.
    pub host_ms: f64,
    /// Message size in KiB — the figure's `S`.
    pub size_kib: f64,
    /// Speedups over host: RW-CP, Specialized, Portals-4 iovec.
    pub speedup: [f64; 3],
    /// Data moved to the NIC (KiB): RW-CP, Specialized, iovec.
    pub nic_kib: [f64; 3],
}

/// Compute the figure keeping only messages of at most `max_kib` KiB
/// (`None` keeps all thirteen workloads). Workload experiments are
/// independent and deterministic; `pool` bounds the concurrency and
/// results keep figure order.
pub fn rows_filtered(max_kib: Option<u64>, pool: &Pool) -> Vec<Row> {
    let workloads: Vec<_> = all_workloads()
        .into_iter()
        .filter(|w| max_kib.is_none_or(|kib| w.msg_bytes() <= kib << 10))
        .collect();
    pool.par_map(workloads, |_, w| compute_row(&w))
}

/// Compute the figure (quick mode keeps only messages ≤ 512 KiB).
pub fn rows_on(quick: bool, pool: &Pool) -> Vec<Row> {
    rows_filtered(quick.then_some(512), pool)
}

/// [`rows_on`] with a pool sized from `NCMT_JOBS`/core count.
pub fn rows(quick: bool) -> Vec<Row> {
    rows_on(quick, &Pool::from_env(None))
}

fn compute_row(w: &nca_workloads::AppWorkload) -> Row {
    let params = NicParams::with_hpus(16);
    let mut exp = Experiment::new(w.dt.clone(), w.count, params);
    exp.verify = false;
    let host = exp.run_host();
    let iovec = exp.run_iovec();
    let rwcp = exp.run(Strategy::RwCp);
    let spec = exp.run(Strategy::Specialized);
    let host_t = host.processing_time as f64;
    Row {
        label: w.label(),
        class: w.ddt_class,
        gamma: w.gamma(2048),
        host_ms: host_t / 1e9,
        size_kib: w.msg_bytes() as f64 / 1024.0,
        speedup: [
            host_t / rwcp.processing_time() as f64,
            host_t / spec.processing_time() as f64,
            host_t / iovec.processing_time as f64,
        ],
        nic_kib: [
            rwcp.nic_mem_bytes as f64 / 1024.0,
            spec.nic_mem_bytes as f64 / 1024.0,
            iovec.nic_bytes as f64 / 1024.0,
        ],
    }
}

/// The figure table as a string — what [`print_on`] prints and what
/// the `fig16` scenario writes as its artifact (so the file and the
/// legacy stdout are byte-identical).
pub fn render(max_kib: Option<u64>, pool: &Pool) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# Fig. 16 — speedup over host-based unpacking (13 app DDTs)"
    );
    let _ = writeln!(o, "app\tclass\tgamma\tT_host_ms\tS_kib\tRW-CP\tSpecialized\tPortals4-iovec\tnic_rwcp_kib\tnic_spec_kib\tnic_iovec_kib");
    let rows = rows_filtered(max_kib, pool);
    for r in &rows {
        let _ = writeln!(
            o,
            "{}\t{}\t{:.1}\t{:.3}\t{:.1}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}\t{:.2}",
            r.label,
            r.class,
            r.gamma,
            r.host_ms,
            r.size_kib,
            r.speedup[0],
            r.speedup[1],
            r.speedup[2],
            r.nic_kib[0],
            r.nic_kib[1],
            r.nic_kib[2]
        );
    }
    let best = rows
        .iter()
        .map(|r| r.speedup[0].max(r.speedup[1]))
        .fold(0.0f64, f64::max);
    let _ = writeln!(o, "# max offload speedup: {best:.1}x (paper: up to ~12x)");
    o
}

/// Print the figure table, computing rows on `pool`.
pub fn print_on(quick: bool, pool: &Pool) {
    print!("{}", render(quick.then_some(512), pool));
}

/// Print the figure table.
pub fn print(quick: bool) {
    print_on(quick, &Pool::from_env(None));
}
