//! Host-side DDT pack/unpack comparison: the dataloop/kernels engine
//! against a naive manual copy that walks the typemap one elementary
//! element at a time (the "loop over MPI_DOUBLEs" a hand-rolled
//! application copy would do). Both paths must produce byte-identical
//! receive buffers; the modeled times come from the deterministic
//! [`HostCostModel`], so the artifact is bit-reproducible and lives as
//! a golden under `tests/golden/`.

use std::fmt::Write;

use nca_core::costmodel::HostCostModel;
use nca_ddt::dataloop::compile_cached;
use nca_ddt::pack::{buffer_span, pack, unpack};
use nca_ddt::typemap::for_each_block;
use nca_sim::Pool;
use nca_workloads::apps::all_workloads;

use crate::schema::{esc, fmt_f64};

/// One application workload compared across the two unpack paths.
#[derive(Debug, Clone, PartialEq)]
pub struct CompareRow {
    /// Workload label, e.g. `MILC/b`.
    pub label: String,
    /// Datatype constructor class.
    pub class: &'static str,
    /// Packed message size in bytes.
    pub msg_bytes: u64,
    /// Contiguous regions after dataloop merging (the engine's copies).
    pub blocks: u64,
    /// Elementary typemap entries (the manual path's copies).
    pub elements: u64,
    /// Engine and manual unpack produced identical receive buffers.
    pub byte_exact: bool,
    /// Modeled engine unpack time (ps): one copy per merged block.
    pub engine_ps: u64,
    /// Modeled manual unpack time (ps): one copy per element.
    pub manual_ps: u64,
    /// Engine throughput (Gbit/s) at the modeled time.
    pub engine_gbit: f64,
    /// Manual-copy throughput (Gbit/s) at the modeled time.
    pub manual_gbit: f64,
    /// Throughput ratio engine/manual (= `manual_ps / engine_ps`).
    pub ratio: f64,
}

/// Artifact of the `ddt-host-compare` scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct DdtCompareDoc {
    /// Schema version ([`DdtCompareDoc::VERSION`]).
    pub version: u64,
    /// One row per application workload, figure order.
    pub rows: Vec<CompareRow>,
}

impl DdtCompareDoc {
    /// `kind` tag of the JSON document.
    pub const KIND: &'static str = "ncmt-ddt-compare";
    /// Current schema version.
    pub const VERSION: u64 = 1;

    /// Render the document as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut o = String::from("{\n");
        let _ = writeln!(o, "  \"kind\": \"{}\",", Self::KIND);
        let _ = writeln!(o, "  \"version\": {},", self.version);
        o.push_str("  \"rows\": [\n");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(o, "    {{");
            let _ = writeln!(o, "      \"label\": \"{}\",", esc(&r.label));
            let _ = writeln!(o, "      \"class\": \"{}\",", esc(r.class));
            let _ = writeln!(o, "      \"msg_bytes\": {},", r.msg_bytes);
            let _ = writeln!(o, "      \"blocks\": {},", r.blocks);
            let _ = writeln!(o, "      \"elements\": {},", r.elements);
            let _ = writeln!(o, "      \"byte_exact\": {},", r.byte_exact);
            let _ = writeln!(o, "      \"engine_ps\": {},", r.engine_ps);
            let _ = writeln!(o, "      \"manual_ps\": {},", r.manual_ps);
            let _ = writeln!(o, "      \"engine_gbit\": {},", fmt_f64(r.engine_gbit));
            let _ = writeln!(o, "      \"manual_gbit\": {},", fmt_f64(r.manual_gbit));
            let _ = writeln!(o, "      \"ratio\": {}", fmt_f64(r.ratio));
            let _ = writeln!(
                o,
                "    }}{}",
                if i + 1 < self.rows.len() { "," } else { "" }
            );
        }
        o.push_str("  ]\n}\n");
        o
    }
}

fn throughput_gbit(bytes: u64, ps: u64) -> f64 {
    if ps == 0 {
        return 0.0;
    }
    // bits / (ps · 1e-12 s) / 1e9 = bytes · 8000 / ps
    bytes as f64 * 8000.0 / ps as f64
}

fn compare_row(w: &nca_workloads::AppWorkload) -> CompareRow {
    let (origin, span) = buffer_span(&w.dt, w.count);
    let mut src = vec![0u8; span as usize];
    for (i, b) in src.iter_mut().enumerate() {
        *b = (i * 31 % 251) as u8;
    }
    let packed = pack(&w.dt, w.count, &src, origin).expect("app datatypes pack");
    let mut engine_dst = vec![0u8; span as usize];
    unpack(&w.dt, w.count, &packed, &mut engine_dst, origin).expect("app datatypes unpack");

    // The manual path: walk the typemap leaf by leaf and copy one
    // elementary element at a time from the packed stream — no block
    // merging, no vectorized kernels. (The copies themselves use
    // copy_from_slice; what the modeled cost charges for is the
    // per-element dispatch, counted in `elements`.)
    let mut manual_dst = vec![0u8; span as usize];
    let mut cursor = 0usize;
    let mut elements = 0u64;
    for_each_block(&w.dt, w.count, |off, len| {
        elements += 1;
        let at = (off - origin) as usize;
        let len = len as usize;
        manual_dst[at..at + len].copy_from_slice(&packed[cursor..cursor + len]);
        cursor += len;
    });

    let dl = compile_cached(&w.dt, w.count);
    let model = HostCostModel::default();
    let engine_ps = model.unpack_time(dl.size, dl.blocks);
    let manual_ps = model.unpack_time(dl.size, elements);
    CompareRow {
        label: w.label(),
        class: w.ddt_class,
        msg_bytes: dl.size,
        blocks: dl.blocks,
        elements,
        byte_exact: engine_dst == manual_dst,
        engine_ps,
        manual_ps,
        engine_gbit: throughput_gbit(dl.size, engine_ps),
        manual_gbit: throughput_gbit(dl.size, manual_ps),
        ratio: manual_ps as f64 / engine_ps as f64,
    }
}

/// Compare every application workload of at most `max_kib` KiB
/// (`None` keeps all). Rows run as independent pool jobs and come back
/// in figure order, so the artifact is byte-identical at any job count.
pub fn rows_filtered(max_kib: Option<u64>, pool: &Pool) -> Vec<CompareRow> {
    let workloads: Vec<_> = all_workloads()
        .into_iter()
        .filter(|w| max_kib.is_none_or(|kib| w.msg_bytes() <= kib << 10))
        .collect();
    pool.par_map(workloads, |_, w| compare_row(&w))
}

/// The human table for a set of rows (tab-separated like the figures).
pub fn render(rows: &[CompareRow]) -> String {
    let mut o = String::new();
    let _ = writeln!(
        o,
        "# DDT host unpack — dataloop/kernels engine vs element-wise manual copy"
    );
    let _ = writeln!(
        o,
        "workload\tclass\tsize_kib\tblocks\telements\tengine_us\tmanual_us\tengine_gbit\tmanual_gbit\tratio\texact"
    );
    for r in rows {
        let _ = writeln!(
            o,
            "{}\t{}\t{:.1}\t{}\t{}\t{:.3}\t{:.3}\t{:.2}\t{:.2}\t{:.2}\t{}",
            r.label,
            r.class,
            r.msg_bytes as f64 / 1024.0,
            r.blocks,
            r.elements,
            r.engine_ps as f64 / 1e6,
            r.manual_ps as f64 / 1e6,
            r.engine_gbit,
            r.manual_gbit,
            r.ratio,
            if r.byte_exact { "yes" } else { "NO" }
        );
    }
    let n = rows.len().max(1) as f64;
    let mean = rows.iter().map(|r| r.ratio).sum::<f64>() / n;
    let _ = writeln!(o, "# mean manual/engine time ratio: {mean:.2}x");
    o
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_and_manual_unpack_agree_on_every_workload() {
        let rows = rows_filtered(Some(512), &Pool::serial());
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.byte_exact, "{}: engine vs manual mismatch", r.label);
            assert!(
                r.elements >= r.blocks,
                "{}: merging cannot create blocks",
                r.label
            );
            assert!(r.ratio >= 1.0, "{}: manual path cannot be faster", r.label);
        }
    }

    #[test]
    fn doc_round_trips_through_the_json_parser() {
        let doc = DdtCompareDoc {
            version: DdtCompareDoc::VERSION,
            rows: rows_filtered(Some(64), &Pool::serial()),
        };
        let v = nca_telemetry::report::Json::parse(&doc.to_json()).expect("valid JSON");
        assert_eq!(
            v.get("kind").and_then(nca_telemetry::report::Json::as_str),
            Some(DdtCompareDoc::KIND)
        );
        let rows = v
            .get("rows")
            .and_then(nca_telemetry::report::Json::as_arr)
            .expect("rows array");
        assert_eq!(rows.len(), doc.rows.len());
    }
}
