//! Property tests for the scenario schema: every generated scenario
//! round-trips parse → serialize → parse bit-for-bit, the canonical
//! serializer is a fixed point, and an unknown key injected anywhere
//! in the document is rejected with an error naming its JSON path.

use proptest::prelude::*;

use nca_core::runner::Strategy as RunStrategy;
use nca_scenario::{
    parse_scenario, FaultsSpec, Scenario, ScenarioKind, SchedulingSpec, SweepSpec, TelemetrySpec,
    TrafficSpec, WorkloadSpec,
};
use nca_spin::nic::EngineMode;
use nca_spin::sched::QueueDiscipline;
use nca_traffic::ArrivalKind;

/// Pick one of a fixed set of strings (includes every character class
/// the serializer has to escape).
fn pick_str(items: &'static [&'static str]) -> impl Strategy<Value = String> {
    (0..items.len()).prop_map(move |i| items[i].to_string())
}

const NAMES: &[&str] = &[
    "sweep",
    "ci fault sweep",
    "tricky \"name\"",
    "back\\slash",
    "line\nbreak\ttab",
    "Ω-mix",
];

/// Seeds and counters must survive the JSON number domain (f64 with
/// 53-bit mantissa), so the generators stay below 2^53.
const MAX_UINT: u64 = 1 << 53;

fn arb_kind() -> impl Strategy<Value = ScenarioKind> {
    (0..ScenarioKind::ALL.len()).prop_map(|i| ScenarioKind::ALL[i])
}

fn arb_workload() -> impl Strategy<Value = Option<WorkloadSpec>> {
    prop_oneof![
        Just(None),
        (1u32..5000, 1u32..64, -64i64..128).prop_map(|(count, blocklen, stride)| Some(
            WorkloadSpec::Vector {
                count,
                blocklen,
                stride,
            }
        )),
        (1u64..10_000, 1u32..16, 0u64..MAX_UINT).prop_map(|(blocks, blocklen, seed)| Some(
            WorkloadSpec::Indexed {
                blocks,
                blocklen,
                seed,
            }
        )),
        pick_str(&["MILC/b", "COMB/a", "NAS-MG/a", "not a \"real\" app"])
            .prop_map(|label| Some(WorkloadSpec::App { label })),
        prop_oneof![Just(None), (1u64..4096).prop_map(Some)]
            .prop_map(|max_kib| Some(WorkloadSpec::Apps { max_kib })),
    ]
}

fn arb_faults() -> impl Strategy<Value = FaultsSpec> {
    (
        0.0f64..1.0,
        0.0f64..1.0,
        0.0f64..1.0,
        0u64..100_000,
        0u64..MAX_UINT,
    )
        .prop_map(|(drop, duplicate, corrupt, reorder_ns, seed)| FaultsSpec {
            drop,
            duplicate,
            corrupt,
            reorder_ns,
            seed,
        })
}

fn arb_scheduling() -> impl Strategy<Value = SchedulingSpec> {
    (
        1u64..1024,
        0.0f64..8.0,
        (0..EngineMode::ALL.len()).prop_map(|i| EngineMode::ALL[i]),
        1u32..64,
        prop_oneof![Just(None), (0u64..MAX_UINT).prop_map(Some)],
    )
        .prop_map(
            |(hpus, epsilon, engine, copies, out_of_order)| SchedulingSpec {
                hpus,
                epsilon,
                engine,
                copies,
                out_of_order,
            },
        )
}

fn arb_telemetry() -> impl Strategy<Value = TelemetrySpec> {
    (
        prop_oneof![Just(None), (1u64..(1 << 32)).prop_map(Some)],
        prop_oneof![Just(None), (1u64..1_000_000_000).prop_map(Some)],
    )
        .prop_map(|(ring_capacity, bucket_ps)| TelemetrySpec {
            ring_capacity,
            bucket_ps,
        })
}

fn arb_traffic() -> impl Strategy<Value = Option<TrafficSpec>> {
    let apps = proptest::collection::vec(
        pick_str(&["milc", "comb", "fft2d", "MILC/b", "NAS-MG/a"]),
        1..4,
    );
    let loads = proptest::collection::vec(0.05f64..2.0, 1..4);
    let disciplines = proptest::collection::vec(
        (0..QueueDiscipline::ALL.len()).prop_map(|i| QueueDiscipline::ALL[i]),
        1..4,
    );
    let knobs = (
        1u64..8,
        (0..RunStrategy::ALL.len()).prop_map(|i| RunStrategy::ALL[i]),
        (0..3usize).prop_map(|i| {
            [
                ArrivalKind::Poisson,
                ArrivalKind::LogNormal,
                ArrivalKind::Mixed,
            ][i]
        }),
        0.1f64..5.0,
    );
    let sizes = (
        1u64..32,
        1u64..128,
        1u64..1000,
        prop_oneof![Just(None), (1u64..(1 << 20)).prop_map(Some)],
        0u64..MAX_UINT,
    );
    prop_oneof![
        Just(None),
        ((apps, loads, disciplines), knobs, sizes).prop_map(
            |(
                (apps, loads, disciplines),
                (tenants, strategy, arrival, sigma),
                (flows_per_tenant, rss_entries, horizon_us, buffer_kib, seed),
            )| {
                Some(TrafficSpec {
                    apps,
                    loads,
                    disciplines,
                    tenants,
                    strategy,
                    arrival,
                    sigma,
                    flows_per_tenant,
                    rss_entries,
                    horizon_us,
                    buffer_kib,
                    seed,
                })
            }
        ),
    ]
}

fn arb_sweep() -> impl Strategy<Value = SweepSpec> {
    (
        1u64..8,
        0u64..MAX_UINT,
        proptest::collection::vec(0.0f64..2.0, 1..5),
    )
        .prop_map(|(seeds, seed0, scales)| SweepSpec {
            seeds,
            seed0,
            scales,
        })
}

fn arb_scenario() -> impl Strategy<Value = Scenario> {
    (
        (pick_str(NAMES), arb_kind(), arb_workload()),
        (arb_faults(), arb_scheduling(), arb_telemetry()),
        (arb_traffic(), arb_sweep()),
    )
        .prop_map(
            |((name, kind, workload), (faults, scheduling, telemetry), (traffic, sweep))| {
                let mut scn = Scenario::new(&name, kind);
                scn.workload = workload;
                scn.faults = faults;
                scn.scheduling = scheduling;
                scn.telemetry = telemetry;
                scn.traffic = traffic;
                scn.sweep = sweep;
                scn
            },
        )
}

/// Insert an unknown key right after the opening brace of `section`
/// (the whole document when `section` is empty).
fn inject_unknown(text: &str, section: &str) -> Option<String> {
    let brace = if section.is_empty() {
        text.find('{')?
    } else {
        let at = text.find(&format!("\"{section}\":"))?;
        at + text[at..].find('{')?
    };
    let rest = &text[brace + 1..];
    // No trailing comma when the section was empty (`{}`).
    let sep = if rest.trim_start().starts_with('}') {
        ""
    } else {
        ","
    };
    Some(format!("{} \"zz_unknown\": 1{sep}{rest}", &text[..=brace]))
}

proptest! {
    #[test]
    fn scenario_round_trips_through_json(scn in arb_scenario()) {
        let text = scn.to_json();
        let back = parse_scenario(&text)
            .unwrap_or_else(|e| panic!("serialized scenario must parse: {e}\n{text}"));
        prop_assert_eq!(&back, &scn);
        // The serializer is canonical: a second trip is a fixed point.
        prop_assert_eq!(back.to_json(), text);
    }

    #[test]
    fn unknown_keys_are_rejected_with_their_path(
        scn in arb_scenario(),
        section in (0..6usize),
    ) {
        let names = ["", "faults", "scheduling", "telemetry", "traffic", "sweep"];
        let section = names[section];
        let Some(mutated) = inject_unknown(&scn.to_json(), section) else {
            // Optional section absent from this document — nothing to mutate.
            return Ok(());
        };
        let err = parse_scenario(&mutated)
            .expect_err("a document with an unknown key must not parse");
        prop_assert!(err.contains("zz_unknown"), "error names the key: {}", &err);
        prop_assert!(err.contains("unknown key"), "error says why: {}", &err);
        let path = if section.is_empty() {
            "scenario.zz_unknown".to_string()
        } else {
            format!("scenario.{section}.zz_unknown")
        };
        prop_assert!(err.contains(&path), "error names the path {}: {}", &path, &err);
    }
}
