//! RW-CP datatype processing on PULP (paper Sec. 4.3.2, Figs. 10/11).
//!
//! The RTL microkernel preloads dummy 2 KiB packets and HERs in L2,
//! statically assigns blocks of 4 consecutive packets to each core
//! (emulating blocked-RR), keeps the dataloops in **L2** and the
//! checkpoints in L1, and reports throughput from the slowest core.
//! Small blocks mean more per-packet dataloop iterations → more L2
//! accesses → contention stalls: PULP is slower than the ARM/gem5
//! configuration below ~256 B blocks and far faster above (the run is
//! not network-capped, so it exceeds line rate).

use crate::arch::PulpConfig;

/// Result of the Fig. 10/11 microkernel model for one block size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PulpDdtResult {
    /// Block size in bytes.
    pub block_bytes: u64,
    /// Aggregate throughput in Gbit/s (from the slowest core).
    pub throughput_gbit: f64,
    /// Instructions per cycle of the payload handler.
    pub ipc: f64,
    /// Handler cycles per packet.
    pub cycles_per_packet: f64,
}

/// Instructions executed per packet independent of γ (HER parse, segment
/// bookkeeping, DMA kick-off).
const INSTR_PER_PACKET: f64 = 260.0;
/// Instructions per contiguous region (dataloop step + DMA command).
const INSTR_PER_BLOCK: f64 = 22.0;
/// L2 accesses per region (dataloop descriptor reads).
const L2_ACCESSES_PER_BLOCK: f64 = 3.0;
/// Uncontended L2 access latency in cycles.
const L2_LATENCY_CYCLES: f64 = 14.0;
/// Additional L2 latency per concurrently-requesting core beyond the
/// bank count (arbitration under contention).
const L2_CONTENTION_SLOPE: f64 = 0.3;
/// Fixed per-packet stall cycles (L1 checkpoint access, barriers,
/// segment bookkeeping loads) — calibrated so the large-block plateau
/// sits near Fig. 10's ≈500 Gbit/s and the IPC near Fig. 11's ≈0.26.
const STALL_PER_PACKET: f64 = 760.0;

/// Model the RW-CP microkernel for a message of `msg_bytes` with a
/// vector datatype of `block_bytes` blocks; `payload` is the packet
/// payload size (2 KiB in the paper).
pub fn rwcp_on_pulp(
    cfg: &PulpConfig,
    msg_bytes: u64,
    block_bytes: u64,
    payload: u64,
) -> PulpDdtResult {
    let npkt = msg_bytes.div_ceil(payload).max(1) as f64;
    let gamma = (payload as f64 / block_bytes as f64).max(1.0);
    let cores = cfg.cores() as f64;

    // L2 pressure: accesses per cycle issued by all cores together; the
    // two banks serve one access per cycle each.
    // Start from the uncontended handler time to estimate the rate.
    let instr = INSTR_PER_PACKET + gamma * INSTR_PER_BLOCK;
    let base_stalls = STALL_PER_PACKET + gamma * L2_ACCESSES_PER_BLOCK * L2_LATENCY_CYCLES;
    let uncontended = instr + base_stalls;
    let access_rate = cores * gamma * L2_ACCESSES_PER_BLOCK / uncontended;
    let over = (access_rate / cfg.l2_banks as f64 - 0.25).max(0.0);
    let contended_latency = L2_LATENCY_CYCLES * (1.0 + L2_CONTENTION_SLOPE * over * cores);
    let stalls = STALL_PER_PACKET + gamma * L2_ACCESSES_PER_BLOCK * contended_latency;

    let cycles_per_packet = instr + stalls;
    let ipc = instr / cycles_per_packet;
    // Static assignment: each core processes npkt/cores packets.
    let packets_per_core = (npkt / cores).ceil().max(1.0);
    let core_time_cycles = packets_per_core * cycles_per_packet;
    let seconds = core_time_cycles / (cfg.clock_mhz as f64 * 1e6);
    let throughput_gbit = msg_bytes as f64 * 8.0 / seconds / 1e9;
    PulpDdtResult {
        block_bytes,
        throughput_gbit,
        ipc,
        cycles_per_packet,
    }
}

/// Fixed per-packet cycles of the ARM/gem5 microkernel: HER dispatch
/// loop, handler launch and the A15 memory-system stalls gem5 models —
/// calibrated so the ARM curve plateaus near Fig. 10's ≈300–350 Gbit/s
/// for large blocks (the per-γ slope is the same `block_general` cost
/// the NIC-level simulation uses).
const ARM_FIXED_CYCLES: f64 = 1_200.0;

/// The ARM/gem5 reference (paper Sec. 5.1 config: Cortex-A15 @800 MHz)
/// for the same microkernel.
pub fn rwcp_on_arm(
    cores: u32,
    clock_mhz: u64,
    msg_bytes: u64,
    block_bytes: u64,
    payload: u64,
) -> f64 {
    let npkt = msg_bytes.div_ceil(payload).max(1) as f64;
    let gamma = (payload as f64 / block_bytes as f64).max(1.0);
    let cycles_per_packet = ARM_FIXED_CYCLES + gamma * 36.0;
    let packets_per_core = (npkt / cores as f64).ceil().max(1.0);
    let seconds = packets_per_core * cycles_per_packet / (clock_mhz as f64 * 1e6);
    msg_bytes as f64 * 8.0 / seconds / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    const MSG: u64 = 1 << 20; // 1 MiB as in the paper's microkernel

    #[test]
    fn pulp_slower_than_arm_for_tiny_blocks() {
        let cfg = PulpConfig::default();
        for b in [32u64, 64, 128] {
            let p = rwcp_on_pulp(&cfg, MSG, b, 2048).throughput_gbit;
            let a = rwcp_on_arm(32, 800, MSG, b, 2048);
            assert!(p < a, "block {b}: PULP {p} must trail ARM {a}");
        }
    }

    #[test]
    fn pulp_faster_than_arm_for_large_blocks() {
        let cfg = PulpConfig::default();
        for b in [1024u64, 4096, 16384] {
            let p = rwcp_on_pulp(&cfg, MSG, b, 2048).throughput_gbit;
            let a = rwcp_on_arm(32, 800, MSG, b, 2048);
            assert!(p > a, "block {b}: PULP {p} must beat ARM {a}");
        }
    }

    #[test]
    fn pulp_line_rate_above_256b() {
        let cfg = PulpConfig::default();
        for b in [256u64, 512, 2048, 16384] {
            let r = rwcp_on_pulp(&cfg, MSG, b, 2048);
            assert!(
                r.throughput_gbit >= 190.0,
                "block {b}: {}",
                r.throughput_gbit
            );
        }
        // Fig. 10 tops out around ~500 Gbit/s.
        let top = rwcp_on_pulp(&cfg, MSG, 16384, 2048).throughput_gbit;
        assert!((300.0..=700.0).contains(&top), "top {top}");
    }

    #[test]
    fn ipc_in_measured_band_and_lower_for_small_blocks() {
        // Fig. 11 annotations: medians 0.14–0.26, lower for small blocks.
        let cfg = PulpConfig::default();
        let small = rwcp_on_pulp(&cfg, MSG, 32, 2048).ipc;
        let large = rwcp_on_pulp(&cfg, MSG, 16384, 2048).ipc;
        assert!((0.10..=0.30).contains(&small), "small-block IPC {small}");
        assert!((0.10..=0.40).contains(&large), "large-block IPC {large}");
        assert!(small < large, "contention must depress small-block IPC");
    }
}
