//! DMA-chain bandwidth model (paper Fig. 9c).
//!
//! The RTL benchmark moves blocks L2 → L1 → PCIe output port using the
//! cluster DMAs. Effective bandwidth is limited by (a) the fixed DMA
//! programming/setup cost per block, amortized with block size, and
//! (b) the L2 ports (2 banks × 256 bit @ 1 GHz). The paper measures
//! 192 Gbit/s at 256 B blocks and above line rate for all larger sizes.

use crate::arch::PulpConfig;

/// DMA programming + synchronization overhead per transfer, in cycles.
/// The RTL benchmark double-buffers transfers, so only the
/// non-overlappable part remains (calibrated to 192 Gbit/s at 256 B).
const DMA_SETUP_CYCLES: f64 = 10.0;
/// Per-cluster DMA streaming rate in bytes/cycle (64 bit per direction).
const DMA_BYTES_PER_CYCLE: f64 = 8.0;
/// Fraction of the raw L2 port bandwidth usable under 4-cluster
/// contention (bank conflicts, arbitration).
const L2_EFFICIENCY: f64 = 0.88;

/// Aggregate achievable bandwidth in Gbit/s when all clusters stream
/// blocks of `block_bytes` through the L2→L1→output chain.
pub fn dma_bandwidth_gbit(cfg: &PulpConfig, block_bytes: u64) -> f64 {
    let b = block_bytes as f64;
    // One cluster: blocks pipeline over setup + streaming.
    let cycles_per_block = DMA_SETUP_CYCLES + b / DMA_BYTES_PER_CYCLE;
    let per_cluster_bytes_per_cycle = b / cycles_per_block;
    let aggregate = per_cluster_bytes_per_cycle * cfg.clusters as f64;
    let aggregate_gbit = aggregate * 8.0 * cfg.clock_mhz as f64 / 1000.0;
    // L2 cap: both banks serve reads; the same data crosses once.
    let l2_cap_gbit = cfg.l2_banks as f64 * cfg.port_bandwidth_gbit() * L2_EFFICIENCY;
    aggregate_gbit.min(l2_cap_gbit)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_rate_reached_at_256b() {
        let cfg = PulpConfig::default();
        let bw = dma_bandwidth_gbit(&cfg, 256);
        // Paper: "a throughput of 192 Gbit/s can be reached for blocks
        // of 256 B".
        assert!((170.0..=215.0).contains(&bw), "got {bw}");
    }

    #[test]
    fn above_line_rate_beyond_256b() {
        let cfg = PulpConfig::default();
        for b in [512u64, 1024, 4096, 131072] {
            let bw = dma_bandwidth_gbit(&cfg, b);
            assert!(bw >= 200.0, "block {b}: {bw} Gbit/s");
        }
    }

    #[test]
    fn monotone_in_block_size_until_cap() {
        let cfg = PulpConfig::default();
        let mut prev = 0.0;
        for b in [64u64, 128, 256, 512, 1024, 2048, 8192, 32768, 131072] {
            let bw = dma_bandwidth_gbit(&cfg, b);
            assert!(bw + 1e-9 >= prev, "non-monotone at {b}");
            prev = bw;
        }
        // capped by the L2 ports
        let cap = cfg.l2_banks as f64 * cfg.port_bandwidth_gbit() * 0.88;
        assert!(prev <= cap + 1e-9);
    }

    #[test]
    fn small_blocks_setup_bound() {
        let cfg = PulpConfig::default();
        let bw64 = dma_bandwidth_gbit(&cfg, 64);
        assert!(
            bw64 < 150.0,
            "64 B blocks must be setup-dominated, got {bw64}"
        );
    }
}
