//! A sPIN runtime for PULP — the paper's stated future work (Sec. 4.5:
//! "Design a sPIN runtime running on PULP. The runtime is in charge to
//! manage the cores/clusters, assigning new HERs to execute to the idle
//! ones").
//!
//! Two HER-assignment policies over the multicluster:
//!
//! * [`Assignment::Static`] — the Sec. 4.3.2 microkernel's scheme:
//!   blocks of consecutive packets pre-assigned per core. Zero runtime
//!   overhead, but load imbalance under heterogeneous handler runtimes.
//! * [`Assignment::Dynamic`] — a runtime dispatcher hands each HER to
//!   the earliest-idle core, paying a small dispatch cost per HER and a
//!   migration penalty when the handler's checkpoint lives in another
//!   cluster's L1 (data must be DMA'd across).

use crate::arch::PulpConfig;

/// HER-assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Assignment {
    /// Blocks of `chunk` consecutive packets per core, round-robin.
    Static {
        /// Packets per block (the microkernel uses 4).
        chunk: u32,
    },
    /// Earliest-idle-core dispatch with per-HER runtime overhead.
    Dynamic {
        /// Runtime dispatch cost per HER, in cycles.
        dispatch_cycles: u64,
        /// Penalty when the packet's sequence state lives in another
        /// cluster (checkpoint migration L1→L1), in cycles.
        migration_cycles: u64,
    },
}

/// Outcome of one runtime simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RuntimeReport {
    /// Makespan in cycles (slowest core).
    pub makespan_cycles: u64,
    /// Aggregate throughput in Gbit/s for the message.
    pub throughput_gbit: f64,
    /// Coefficient of load imbalance: max core busy / mean core busy.
    pub imbalance: f64,
    /// Cross-cluster checkpoint migrations (dynamic only).
    pub migrations: u64,
}

/// Simulate processing `handler_cycles[i]` (per-packet runtimes) on the
/// multicluster under the given policy. Packet `i` belongs to sequence
/// `i / seq_len` (its checkpoint's home follows its first executor).
pub fn simulate_runtime(
    cfg: &PulpConfig,
    handler_cycles: &[u64],
    payload_bytes: u64,
    seq_len: u32,
    policy: Assignment,
) -> RuntimeReport {
    let cores = cfg.cores() as usize;
    let mut core_busy = vec![0u64; cores];
    let mut migrations = 0u64;
    match policy {
        Assignment::Static { chunk } => {
            let chunk = chunk.max(1) as usize;
            for (block, cycles) in handler_cycles.chunks(chunk).enumerate() {
                let core = block % cores;
                core_busy[core] += cycles.iter().sum::<u64>();
            }
        }
        Assignment::Dynamic {
            dispatch_cycles,
            migration_cycles,
        } => {
            // seq id → cluster that owns its checkpoint
            let mut home: Vec<Option<usize>> =
                vec![None; handler_cycles.len() / seq_len.max(1) as usize + 1];
            for (i, &cycles) in handler_cycles.iter().enumerate() {
                // earliest-idle core
                let core = (0..cores)
                    .min_by_key(|&c| core_busy[c])
                    .expect("at least one core");
                let cluster = core / cfg.cores_per_cluster as usize;
                let seq = i / seq_len.max(1) as usize;
                let extra = match home[seq] {
                    None => {
                        home[seq] = Some(cluster);
                        0
                    }
                    Some(h) if h == cluster => 0,
                    Some(_) => {
                        home[seq] = Some(cluster);
                        migrations += 1;
                        migration_cycles
                    }
                };
                core_busy[core] += dispatch_cycles + extra + cycles;
            }
        }
    }
    let makespan = *core_busy.iter().max().expect("cores > 0");
    let busy_sum: u64 = core_busy.iter().sum();
    let mean = busy_sum as f64 / cores as f64;
    let seconds = makespan as f64 / (cfg.clock_mhz as f64 * 1e6);
    let bytes = handler_cycles.len() as u64 * payload_bytes;
    RuntimeReport {
        makespan_cycles: makespan,
        throughput_gbit: bytes as f64 * 8.0 / seconds / 1e9,
        imbalance: if mean > 0.0 {
            makespan as f64 / mean
        } else {
            1.0
        },
        migrations,
    }
}

/// A skewed per-packet runtime distribution: fraction `hot` of the
/// packets cost `ratio`× the base cycles (bursts of complex datatypes,
/// the case Sec. 4.2 reserves compute headroom for).
pub fn skewed_handlers(npkt: usize, base: u64, hot: f64, ratio: u64, seed: u64) -> Vec<u64> {
    // Deterministic pseudo-random pattern (xorshift), no rand dependency.
    let mut state = seed.max(1);
    (0..npkt)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if (state % 1000) as f64 / 1000.0 < hot {
                base * ratio
            } else {
                base
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PulpConfig {
        PulpConfig::default()
    }

    fn dynamic() -> Assignment {
        Assignment::Dynamic {
            dispatch_cycles: 40,
            migration_cycles: 300,
        }
    }

    #[test]
    fn uniform_load_policies_comparable() {
        let handlers = vec![1000u64; 512];
        let s = simulate_runtime(&cfg(), &handlers, 2048, 4, Assignment::Static { chunk: 4 });
        let d = simulate_runtime(&cfg(), &handlers, 2048, 4, dynamic());
        // Dynamic pays dispatch overhead but stays within ~10%.
        assert!(d.makespan_cycles as f64 <= s.makespan_cycles as f64 * 1.1);
        assert!(
            (s.imbalance - 1.0).abs() < 0.01,
            "uniform static is balanced"
        );
    }

    #[test]
    fn dynamic_wins_under_skew() {
        let handlers = skewed_handlers(512, 800, 0.1, 20, 7);
        let s = simulate_runtime(&cfg(), &handlers, 2048, 4, Assignment::Static { chunk: 4 });
        let d = simulate_runtime(&cfg(), &handlers, 2048, 4, dynamic());
        assert!(
            d.makespan_cycles < s.makespan_cycles,
            "dynamic {} must beat static {} under skew",
            d.makespan_cycles,
            s.makespan_cycles
        );
        assert!(d.imbalance < s.imbalance);
    }

    #[test]
    fn migration_penalty_matters_for_tiny_sequences() {
        let handlers = vec![500u64; 256];
        let cheap = simulate_runtime(
            &cfg(),
            &handlers,
            2048,
            1, // every packet its own sequence: no migrations possible
            dynamic(),
        );
        let long_seq = simulate_runtime(&cfg(), &handlers, 2048, 64, dynamic());
        // Long sequences bounce between earliest-idle cores across
        // clusters, paying migrations.
        assert_eq!(cheap.migrations, 0);
        assert!(long_seq.migrations > 0);
    }

    #[test]
    fn throughput_consistent_with_makespan() {
        let handlers = vec![1000u64; 512];
        let r = simulate_runtime(&cfg(), &handlers, 2048, 4, Assignment::Static { chunk: 4 });
        let bytes = 512u64 * 2048;
        let expect = bytes as f64 * 8.0 / (r.makespan_cycles as f64 / 1e9/* GHz */) / 1e9;
        assert!((r.throughput_gbit - expect).abs() / expect < 1e-9);
    }
}
