//! The PULP multicluster configuration (paper Sec. 4.1).

/// Architectural parameters of the sPIN-on-PULP accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PulpConfig {
    /// Number of clusters.
    pub clusters: u32,
    /// RV32 cores per cluster.
    pub cores_per_cluster: u32,
    /// Core clock in MHz (target technology closes timing at 1 GHz).
    pub clock_mhz: u64,
    /// L1 scratchpad banks per cluster.
    pub l1_banks: u32,
    /// Size of one L1 bank in KiB.
    pub l1_bank_kib: u32,
    /// Number of L2 scratchpad banks.
    pub l2_banks: u32,
    /// Size of one L2 bank in MiB.
    pub l2_bank_mib: u32,
    /// System interconnect width in bits.
    pub bus_width_bits: u32,
}

impl Default for PulpConfig {
    fn default() -> Self {
        PulpConfig {
            clusters: 4,
            cores_per_cluster: 8,
            clock_mhz: 1000,
            l1_banks: 16,
            l1_bank_kib: 64,
            l2_banks: 2,
            l2_bank_mib: 4,
            bus_width_bits: 256,
        }
    }
}

impl PulpConfig {
    /// Total cores (the paper's analyzed configuration has 32).
    pub fn cores(&self) -> u32 {
        self.clusters * self.cores_per_cluster
    }

    /// L1 capacity per cluster in bytes (1 MiB in the default config).
    pub fn l1_bytes_per_cluster(&self) -> u64 {
        self.l1_banks as u64 * self.l1_bank_kib as u64 * 1024
    }

    /// Total L2 capacity in bytes (8 MiB default).
    pub fn l2_bytes(&self) -> u64 {
        self.l2_banks as u64 * self.l2_bank_mib as u64 * (1 << 20)
    }

    /// Total on-chip memory (12 MiB default: 4×1 MiB L1 + 8 MiB L2).
    pub fn total_memory_bytes(&self) -> u64 {
        self.l2_bytes() + self.clusters as u64 * self.l1_bytes_per_cluster()
    }

    /// Raw compute throughput in Gop/s (1 op/cycle/core).
    pub fn gops(&self) -> f64 {
        self.cores() as f64 * self.clock_mhz as f64 / 1000.0
    }

    /// Peak bandwidth of one interconnect port in Gbit/s
    /// (bus width × clock).
    pub fn port_bandwidth_gbit(&self) -> f64 {
        self.bus_width_bits as f64 * self.clock_mhz as f64 / 1000.0
    }

    /// Picoseconds per core cycle.
    pub fn cycle_ps(&self) -> u64 {
        1_000_000 / self.clock_mhz
    }

    /// The BlueField-comparison configuration the paper mentions
    /// (double clusters and memory within the same area budget).
    pub fn bluefield_budget() -> PulpConfig {
        PulpConfig {
            clusters: 8,
            l2_bank_mib: 5,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_derived_quantities() {
        let c = PulpConfig::default();
        assert_eq!(c.cores(), 32);
        assert_eq!(c.l1_bytes_per_cluster(), 1 << 20);
        assert_eq!(c.l2_bytes(), 8 << 20);
        assert_eq!(c.total_memory_bytes(), 12 << 20);
        // "raw compute throughput amounts to 32 Gop/s"
        assert!((c.gops() - 32.0).abs() < 1e-9);
        // 256-bit @ 1 GHz = 256 Gbit/s per port, sized for 200 Gbit/s line rate
        assert!((c.port_bandwidth_gbit() - 256.0).abs() < 1e-9);
    }

    #[test]
    fn memory_exceeds_design_requirement() {
        // Sec. 4: ≥6 MiB needed for double-buffered 3 MiB use cases.
        let c = PulpConfig::default();
        assert!(c.total_memory_bytes() >= 6 << 20);
    }

    #[test]
    fn bluefield_budget_doubles_clusters() {
        let b = PulpConfig::bluefield_budget();
        assert_eq!(b.cores(), 64);
        assert!(b.total_memory_bytes() >= 18 << 20);
    }
}
