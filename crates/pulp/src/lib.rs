//! # nca-pulp — PULP-based sPIN accelerator prototype models
//!
//! Sec. 4 of the paper prototypes sPIN on the PULP RISC-V multicluster
//! (4 clusters × 8 cores @ 1 GHz, 16×64 KiB L1 SPM banks per cluster,
//! 2×4 MiB L2 banks, 256-bit interconnect) and reports:
//!
//! * Fig. 9b — area breakdown (≈100 MGE, 23.5 mm² in 22 nm FDSOI),
//! * Fig. 9c — achievable DMA bandwidth vs block size,
//! * Fig. 10 — RW-CP datatype-processing throughput vs the ARM/gem5
//!   configuration,
//! * Fig. 11 — RW-CP handler IPC,
//!
//! plus a ~6 W full-load power estimate and a comparison against the
//! Mellanox BlueField compute subsystem. The paper's numbers come from
//! RTL simulation and synthesis; this crate substitutes parametric
//! analytic models calibrated to the same published anchors
//! (see DESIGN.md).

pub mod arch;
pub mod area;
pub mod bandwidth;
pub mod ddtproc;
pub mod runtime;

pub use arch::PulpConfig;
pub use area::{area_breakdown, AreaBreakdown};
pub use bandwidth::dma_bandwidth_gbit;
pub use ddtproc::{rwcp_on_pulp, PulpDdtResult};
pub use runtime::{simulate_runtime, Assignment, RuntimeReport};
