//! Area and power model (paper Sec. 4.4, Fig. 9b).
//!
//! The paper synthesizes the accelerator in GlobalFoundries 22 nm FDSOI:
//! ≈100 MGE total, 1 GE = 0.199 µm², 85 % layout density → 23.5 mm²,
//! ≈6 W under full load. The breakdown: the four clusters ≈39 % of the
//! total, L2 ≈59 %, interconnect/DWCs/buffers ≈2 %; within a cluster the
//! L1 SPM is 84 %, shared I$ 7 %, the eight cores 6 %, DMA+interconnect
//! 3 %. We model area with per-component GE densities chosen to hit
//! those anchors for the default configuration, so re-parameterized
//! configs (e.g. the BlueField-budget one) scale sensibly.

use crate::arch::PulpConfig;

/// GE per KiB of SPM (both levels; register-file-based SRAM macro).
const GE_PER_KIB_SPM: f64 = 7_200.0;
/// GE per RV32 core (small in-order core with DSP extensions).
const GE_PER_CORE: f64 = 73_000.0;
/// GE for a cluster's shared instruction cache.
const GE_ICACHE: f64 = 680_000.0;
/// GE for a cluster's DMA engine + local interconnect.
const GE_CLUSTER_DMA_ICON: f64 = 290_000.0;
/// GE for the top-level interconnect, DWCs and buffers.
const GE_TOP_INTERCONNECT: f64 = 2_000_000.0;
/// Area of one gate equivalent in 22 nm (µm²).
const UM2_PER_GE: f64 = 0.199;
/// Assumed layout density.
const LAYOUT_DENSITY: f64 = 0.85;
/// Power density: W per MGE under full load (calibrated to ≈6 W total).
const W_PER_MGE: f64 = 0.06;

/// Area breakdown in gate equivalents.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaBreakdown {
    /// One cluster's L1 SPM.
    pub cluster_l1: f64,
    /// One cluster's shared I$.
    pub cluster_icache: f64,
    /// One cluster's cores.
    pub cluster_cores: f64,
    /// One cluster's DMA + interconnect.
    pub cluster_dma_icon: f64,
    /// All clusters together.
    pub clusters_total: f64,
    /// L2 SPM.
    pub l2: f64,
    /// Top-level interconnect, DWCs, buffers.
    pub top_interconnect: f64,
    /// Total GE.
    pub total: f64,
}

impl AreaBreakdown {
    /// One cluster's GE.
    pub fn cluster_total(&self) -> f64 {
        self.cluster_l1 + self.cluster_icache + self.cluster_cores + self.cluster_dma_icon
    }

    /// Silicon area in mm² at the assumed density.
    pub fn silicon_mm2(&self) -> f64 {
        self.total * UM2_PER_GE / LAYOUT_DENSITY / 1e6
    }

    /// Full-load power estimate in W.
    pub fn power_w(&self) -> f64 {
        self.total / 1e6 * W_PER_MGE
    }
}

/// Compute the breakdown for a configuration.
pub fn area_breakdown(cfg: &PulpConfig) -> AreaBreakdown {
    let cluster_l1 = cfg.l1_banks as f64 * cfg.l1_bank_kib as f64 * GE_PER_KIB_SPM;
    let cluster_icache = GE_ICACHE;
    let cluster_cores = cfg.cores_per_cluster as f64 * GE_PER_CORE;
    let cluster_dma_icon = GE_CLUSTER_DMA_ICON;
    let cluster = cluster_l1 + cluster_icache + cluster_cores + cluster_dma_icon;
    let clusters_total = cluster * cfg.clusters as f64;
    let l2 = (cfg.l2_bytes() / 1024) as f64 * GE_PER_KIB_SPM;
    let top_interconnect = GE_TOP_INTERCONNECT;
    let total = clusters_total + l2 + top_interconnect;
    AreaBreakdown {
        cluster_l1,
        cluster_icache,
        cluster_cores,
        cluster_dma_icon,
        clusters_total,
        l2,
        top_interconnect,
        total,
    }
}

/// The BlueField A72 compute-subsystem area the paper compares against
/// (16 cores ≈ 51 mm² in 22 nm, from 5.6 mm² per dual-core tile).
pub fn bluefield_subsystem_mm2() -> f64 {
    8.0 * 5.6 + 6.0 // 8 dual-core tiles + L3 slice estimate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_match_paper_anchors() {
        let a = area_breakdown(&PulpConfig::default());
        let mge = a.total / 1e6;
        assert!(
            (90.0..=110.0).contains(&mge),
            "total {mge} MGE (paper: ≈100)"
        );
        let mm2 = a.silicon_mm2();
        assert!((21.0..=26.0).contains(&mm2), "area {mm2} mm² (paper: 23.5)");
        let w = a.power_w();
        assert!((5.0..=7.0).contains(&w), "power {w} W (paper: ≈6)");
    }

    #[test]
    fn top_level_shares() {
        let a = area_breakdown(&PulpConfig::default());
        let clusters = a.clusters_total / a.total;
        let l2 = a.l2 / a.total;
        let icon = a.top_interconnect / a.total;
        assert!(
            (0.34..=0.44).contains(&clusters),
            "clusters {clusters} (paper 39%)"
        );
        assert!((0.54..=0.64).contains(&l2), "L2 {l2} (paper 59%)");
        assert!(icon <= 0.03, "interconnect {icon} (paper ~2%)");
    }

    #[test]
    fn cluster_shares() {
        let a = area_breakdown(&PulpConfig::default());
        let c = a.cluster_total();
        let l1 = a.cluster_l1 / c;
        let icache = a.cluster_icache / c;
        let cores = a.cluster_cores / c;
        assert!((0.80..=0.88).contains(&l1), "L1 {l1} (paper 84%)");
        assert!((0.05..=0.09).contains(&icache), "I$ {icache} (paper 7%)");
        assert!((0.04..=0.08).contains(&cores), "cores {cores} (paper 6%)");
    }

    #[test]
    fn fits_bluefield_budget_at_double_size() {
        let a = area_breakdown(&PulpConfig::default());
        // Paper: the default config uses ~45% of the BlueField compute
        // subsystem area; doubling clusters+memory still fits.
        assert!(a.silicon_mm2() < 0.55 * bluefield_subsystem_mm2());
        let big = area_breakdown(&PulpConfig::bluefield_budget());
        assert!(big.silicon_mm2() < 1.1 * bluefield_subsystem_mm2());
    }
}
