//! Property-based tests for the datatype engine.
//!
//! A bounded random datatype generator drives the core invariants:
//! pack∘unpack identity, partial-processing equivalence, seek/advance
//! agreement, checkpoint correctness, and normalization typemap
//! preservation.

use proptest::prelude::*;

use nca_ddt::checkpoint::CheckpointTable;
use nca_ddt::dataloop::compile;
use nca_ddt::normalize::normalize;
use nca_ddt::pack::{buffer_span, pack, unpack, unpack_partial};
use nca_ddt::segment::Segment;
use nca_ddt::sink::{NullSink, VecSink};
use nca_ddt::typemap;
use nca_ddt::types::{elem, Datatype, DatatypeExt};

/// A strategy producing random (but bounded) datatype trees.
fn arb_datatype() -> impl Strategy<Value = Datatype> {
    let leaf = prop_oneof![
        Just(elem::byte()),
        Just(elem::int()),
        Just(elem::float()),
        Just(elem::double()),
    ];
    leaf.prop_recursive(3, 24, 6, |inner| {
        prop_oneof![
            // contiguous
            (1u32..5, inner.clone()).prop_map(|(c, t)| Datatype::contiguous(c, &t)),
            // vector (positive strides keep buffers small)
            (1u32..5, 1u32..4, 1i64..8, inner.clone()).prop_map(|(c, b, s, t)| Datatype::vector(
                c,
                b,
                s.max(b as i64),
                &t
            )),
            // indexed_block with increasing displacements
            (
                1u32..3,
                proptest::collection::vec(0i64..6, 1..5),
                inner.clone()
            )
                .prop_map(|(b, gaps, t)| {
                    let mut displs = Vec::new();
                    let mut at = 0i64;
                    for g in gaps {
                        displs.push(at);
                        at += b as i64 + g;
                    }
                    Datatype::indexed_block(b, &displs, &t).unwrap()
                }),
            // indexed with variable lengths
            (
                proptest::collection::vec((1u32..4, 0i64..6), 1..5),
                inner.clone()
            )
                .prop_map(|(items, t)| {
                    let mut lens = Vec::new();
                    let mut displs = Vec::new();
                    let mut at = 0i64;
                    for (l, g) in items {
                        lens.push(l);
                        displs.push(at);
                        at += l as i64 + g;
                    }
                    Datatype::indexed(&lens, &displs, &t).unwrap()
                }),
            // 2-field struct
            (inner.clone(), inner, 0i64..64).prop_map(|(a, b, gap)| {
                let d1 = a.true_ub.max(a.ub) + gap;
                Datatype::struct_(&[1, 1], &[0, d1], &[a, b]).unwrap()
            }),
        ]
    })
}

fn pattern(len: usize, seed: u8) -> Vec<u8> {
    (0..len)
        .map(|i| (i.wrapping_mul(37).wrapping_add(seed as usize) % 251) as u8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn size_laws(dt in arb_datatype(), count in 1u32..4) {
        let dl = compile(&dt, count);
        prop_assert_eq!(dl.size, dt.size * count as u64);
        // typemap total equals size
        let total: u64 = typemap::blocks(&dt, count).iter().map(|&(_, l)| l).sum();
        prop_assert_eq!(total, dt.size * count as u64);
        // true extent bounds every block
        for (off, len) in typemap::blocks(&dt, 1) {
            prop_assert!(off >= dt.true_lb);
            prop_assert!(off + len as i64 <= dt.true_ub);
        }
    }

    #[test]
    fn pack_unpack_identity(dt in arb_datatype(), count in 1u32..4, seed in 0u8..255) {
        let (origin, span) = buffer_span(&dt, count);
        prop_assume!(span > 0 && span < 1 << 20);
        let src = pattern(span as usize, seed);
        let packed = pack(&dt, count, &src, origin).unwrap();
        prop_assert_eq!(packed.len() as u64, dt.size * count as u64);
        let mut dst = vec![0u8; span as usize];
        unpack(&dt, count, &packed, &mut dst, origin).unwrap();
        let mut ok = true;
        typemap::for_each_block(&dt, count, |off, len| {
            let s = (off - origin) as usize;
            if dst[s..s + len as usize] != src[s..s + len as usize] {
                ok = false;
            }
        });
        prop_assert!(ok, "mapped bytes did not round-trip");
    }

    #[test]
    fn chunked_processing_equivalent(
        dt in arb_datatype(),
        count in 1u32..3,
        chunk in 1u64..64,
        seed in 0u8..255,
    ) {
        let (origin, span) = buffer_span(&dt, count);
        prop_assume!(span > 0 && span < 1 << 20);
        let src = pattern(span as usize, seed);
        let packed = pack(&dt, count, &src, origin).unwrap();
        let mut full = vec![0u8; span as usize];
        unpack(&dt, count, &packed, &mut full, origin).unwrap();

        let dl = compile(&dt, count);
        let mut seg = Segment::new(dl);
        let mut piecewise = vec![0u8; span as usize];
        let mut pos = 0usize;
        while pos < packed.len() {
            let end = (pos + chunk as usize).min(packed.len());
            unpack_partial(&mut seg, pos as u64, &packed[pos..end], &mut piecewise, origin)
                .unwrap();
            pos = end;
        }
        prop_assert_eq!(piecewise, full);
    }

    #[test]
    fn seek_equals_linear_advance(dt in arb_datatype(), count in 1u32..3, frac in 0.0f64..1.0) {
        let dl = compile(&dt, count);
        prop_assume!(dl.size > 0);
        let pos = ((dl.size as f64 * frac) as u64).min(dl.size);
        let mut a = Segment::new(dl.clone());
        a.seek(pos).unwrap();
        let mut b = Segment::new(dl);
        b.advance(pos, &mut NullSink);
        prop_assert_eq!(a.position(), b.position());
        let mut sa = VecSink::default();
        let mut sb = VecSink::default();
        a.advance(32, &mut sa);
        b.advance(32, &mut sb);
        prop_assert_eq!(sa.blocks, sb.blocks);
    }

    #[test]
    fn checkpoint_resume_equals_fresh(
        dt in arb_datatype(),
        interval in 8u64..256,
        frac in 0.0f64..1.0,
    ) {
        let dl = compile(&dt, 2);
        prop_assume!(dl.size > 1);
        let table = CheckpointTable::build(&dl, interval).unwrap();
        let first = ((dl.size as f64 * frac) as u64).min(dl.size - 1);
        let last = (first + 40).min(dl.size);
        let mut from_cp = table.closest(first).materialize();
        let mut a = VecSink::default();
        from_cp.process_range(first, last, &mut a).unwrap();
        let mut fresh = Segment::new(dl);
        let mut b = VecSink::default();
        fresh.process_range(first, last, &mut b).unwrap();
        prop_assert_eq!(a.blocks, b.blocks);
        // resuming from the floor checkpoint never needs more catch-up
        // than one interval
        prop_assert!(from_cp.stats.catchup_bytes < interval);
    }

    #[test]
    fn normalization_preserves_merged_typemap(dt in arb_datatype()) {
        let n = normalize(&dt);
        prop_assert_eq!(n.size, dt.size);
        let merge = |t: &Datatype| {
            let mut out: Vec<(i64, u64)> = Vec::new();
            for (off, len) in typemap::blocks(t, 1) {
                match out.last_mut() {
                    Some(last) if last.0 + last.1 as i64 == off => last.1 += len,
                    _ => out.push((off, len)),
                }
            }
            out
        };
        prop_assert_eq!(merge(&dt), merge(&n));
    }

    #[test]
    fn flatten_covers_size(dt in arb_datatype(), count in 1u32..4) {
        let iov = nca_ddt::flatten::flatten(&dt, count);
        prop_assert_eq!(iov.total_bytes(), dt.size * count as u64);
        // entries are maximal: no two adjacent entries touch
        for w in iov.entries.windows(2) {
            prop_assert!(w[0].offset + w[0].len as i64 != w[1].offset);
        }
    }
}
