//! Property tests: descriptor serialization round-trips for random
//! datatypes, and darray tiles the global array.

use proptest::prelude::*;

use nca_ddt::darray::{darray, Distribution};
use nca_ddt::dataloop::compile;
use nca_ddt::descr::{decode, encode, encoded_len};
use nca_ddt::segment::Segment;
use nca_ddt::sink::VecSink;
use nca_ddt::typemap;
use nca_ddt::types::{elem, ArrayOrder, Datatype, DatatypeExt};

fn arb_dt() -> impl Strategy<Value = Datatype> {
    let leaf = prop_oneof![Just(elem::int()), Just(elem::double())];
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (1u32..5, inner.clone()).prop_map(|(c, t)| Datatype::contiguous(c, &t)),
            (1u32..6, 1u32..4, 1i64..6, inner.clone()).prop_map(|(c, b, s, t)| Datatype::vector(
                c,
                b,
                s.max(b as i64),
                &t
            )),
            (proptest::collection::vec((1u32..3, 0i64..4), 1..5), inner).prop_map(|(items, t)| {
                let mut lens = Vec::new();
                let mut displs = Vec::new();
                let mut at = 0i64;
                for (l, g) in items {
                    lens.push(l);
                    displs.push(at);
                    at += l as i64 + g;
                }
                Datatype::indexed(&lens, &displs, &t).expect("valid")
            }),
        ]
    })
}

proptest! {
    #[test]
    fn descriptor_roundtrip(dt in arb_dt(), count in 1u32..4) {
        let dl = compile(&dt, count);
        let bytes = encode(&dl);
        prop_assert_eq!(bytes.len() as u64, encoded_len(&dl));
        let back = decode(&bytes).expect("decodable");
        prop_assert_eq!(back.size, dl.size);
        prop_assert_eq!(back.blocks, dl.blocks);
        let mut a = VecSink::default();
        Segment::new(dl).advance(u64::MAX, &mut a);
        let mut b = VecSink::default();
        Segment::new(back).advance(u64::MAX, &mut b);
        prop_assert_eq!(a.blocks, b.blocks);
    }

    #[test]
    fn darray_partitions_1d(
        gsize in 1u64..200,
        procs in 1u64..8,
        cyclic in any::<bool>(),
    ) {
        let dist = if cyclic { Distribution::Cyclic } else { Distribution::Block };
        let base = elem::int();
        let mut covered = std::collections::HashSet::new();
        let mut total = 0u64;
        for r in 0..procs {
            let dt = darray(&[gsize], &[dist], &[procs], &[r], ArrayOrder::C, &base)
                .expect("valid");
            total += dt.size;
            for (off, len) in typemap::blocks(&dt, 1) {
                for byte in off..off + len as i64 {
                    prop_assert!(covered.insert(byte), "byte {byte} doubly covered");
                }
            }
        }
        prop_assert_eq!(total, gsize * 4);
    }
}
