//! Block sinks: consumers of the contiguous regions a [`crate::Segment`]
//! emits while processing a packed stream.
//!
//! The segment engine is sink-agnostic; the same walk drives
//!
//! * real byte movement ([`CopySink`], [`PackSink`]) — used by pack/unpack
//!   and by the simulated NIC handlers (which *actually* scatter payload
//!   bytes into the simulated host buffer),
//! * pure accounting ([`CountSink`], [`NullSink`]) — used for catch-up
//!   phases and cost modelling,
//! * capture ([`VecSink`]) — used by tests and by iovec flattening.

/// Receives contiguous blocks in typemap order.
///
/// `buf_off` is the (possibly negative, relative to the datatype origin)
/// byte offset in the user buffer; `len` the block length; `stream_off`
/// the absolute packed-stream offset of the block's first byte.
pub trait BlockSink {
    /// Consume one contiguous region.
    fn block(&mut self, buf_off: i64, len: u64, stream_off: u64);

    /// Consume `n` equal-sized blocks at a fixed buffer stride: block `i`
    /// is `(buf_off + i*step, len, stream_off + i*len)`. This is the shape
    /// every `vector`-like dataloop level emits, so sinks that can move
    /// bytes (or count them) in bulk override it with a specialized
    /// kernel; the default just replays the per-block path.
    #[inline]
    fn strided(&mut self, buf_off: i64, len: u64, stream_off: u64, n: u64, step: i64) {
        let (mut b, mut s) = (buf_off, stream_off);
        for _ in 0..n {
            self.block(b, len, s);
            b += step;
            s += len;
        }
    }
}

/// Discards all blocks (catch-up phases).
#[derive(Debug, Default)]
pub struct NullSink;

impl BlockSink for NullSink {
    #[inline]
    fn block(&mut self, _buf_off: i64, _len: u64, _stream_off: u64) {}

    #[inline]
    fn strided(&mut self, _buf_off: i64, _len: u64, _stream_off: u64, _n: u64, _step: i64) {}
}

/// Counts blocks and bytes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CountSink {
    /// Number of blocks seen.
    pub blocks: u64,
    /// Total bytes seen.
    pub bytes: u64,
}

impl BlockSink for CountSink {
    #[inline]
    fn block(&mut self, _buf_off: i64, len: u64, _stream_off: u64) {
        self.blocks += 1;
        self.bytes += len;
    }

    #[inline]
    fn strided(&mut self, _buf_off: i64, len: u64, _stream_off: u64, n: u64, _step: i64) {
        self.blocks += n;
        self.bytes += n * len;
    }
}

/// Collects `(buf_off, len, stream_off)` triples.
#[derive(Debug, Default)]
pub struct VecSink {
    /// Captured blocks in emission order.
    pub blocks: Vec<(i64, u64, u64)>,
}

impl BlockSink for VecSink {
    #[inline]
    fn block(&mut self, buf_off: i64, len: u64, stream_off: u64) {
        self.blocks.push((buf_off, len, stream_off));
    }
}

/// Unpack sink: copies from a packed source slice into a destination
/// buffer. The source slice covers stream offsets
/// `[stream_base, stream_base + src.len())`; destination index 0
/// corresponds to buffer offset `origin`.
pub struct CopySink<'a> {
    /// Packed source bytes (e.g. one packet payload).
    pub src: &'a [u8],
    /// Absolute stream offset of `src[0]`.
    pub stream_base: u64,
    /// Destination (receive) buffer.
    pub dst: &'a mut [u8],
    /// Buffer offset corresponding to `dst[0]`.
    pub origin: i64,
}

impl BlockSink for CopySink<'_> {
    #[inline]
    fn block(&mut self, buf_off: i64, len: u64, stream_off: u64) {
        let s = (stream_off - self.stream_base) as usize;
        let d = (buf_off - self.origin) as usize;
        crate::kernels::copy_block(self.dst, d, self.src, s, len as usize);
    }

    #[inline]
    fn strided(&mut self, buf_off: i64, len: u64, stream_off: u64, n: u64, step: i64) {
        crate::kernels::copy_strided(
            self.dst,
            buf_off - self.origin,
            step,
            self.src,
            (stream_off - self.stream_base) as i64,
            len as i64,
            len,
            n,
        );
    }
}

/// Pack sink: gathers from a user buffer into a packed output vector.
pub struct PackSink<'a> {
    /// Source (send) buffer.
    pub src: &'a [u8],
    /// Buffer offset corresponding to `src[0]`.
    pub origin: i64,
    /// Packed output, appended in stream order.
    pub out: &'a mut Vec<u8>,
}

impl BlockSink for PackSink<'_> {
    #[inline]
    fn block(&mut self, buf_off: i64, len: u64, _stream_off: u64) {
        let s = (buf_off - self.origin) as usize;
        self.out.extend_from_slice(&self.src[s..s + len as usize]);
    }

    #[inline]
    fn strided(&mut self, buf_off: i64, len: u64, _stream_off: u64, n: u64, step: i64) {
        let start = self.out.len();
        self.out.resize(start + (n * len) as usize, 0);
        crate::kernels::copy_strided(
            self.out,
            start as i64,
            len as i64,
            self.src,
            buf_off - self.origin,
            step,
            len,
            n,
        );
    }
}

/// Fans one block stream out to two sinks (e.g. copy + count).
pub struct TeeSink<'a, A: BlockSink, B: BlockSink> {
    /// First sink.
    pub a: &'a mut A,
    /// Second sink.
    pub b: &'a mut B,
}

impl<A: BlockSink, B: BlockSink> BlockSink for TeeSink<'_, A, B> {
    #[inline]
    fn block(&mut self, buf_off: i64, len: u64, stream_off: u64) {
        self.a.block(buf_off, len, stream_off);
        self.b.block(buf_off, len, stream_off);
    }

    #[inline]
    fn strided(&mut self, buf_off: i64, len: u64, stream_off: u64, n: u64, step: i64) {
        self.a.strided(buf_off, len, stream_off, n, step);
        self.b.strided(buf_off, len, stream_off, n, step);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_sink_accumulates() {
        let mut s = CountSink::default();
        s.block(0, 8, 0);
        s.block(16, 4, 8);
        assert_eq!(s.blocks, 2);
        assert_eq!(s.bytes, 12);
    }

    #[test]
    fn copy_sink_respects_bases() {
        let src = [1u8, 2, 3, 4];
        let mut dst = [0u8; 8];
        let mut s = CopySink {
            src: &src,
            stream_base: 100,
            dst: &mut dst,
            origin: -4,
        };
        s.block(0, 2, 100); // dst[4..6] = src[0..2]
        s.block(-2, 2, 102); // dst[2..4] = src[2..4]
        assert_eq!(dst, [0, 0, 3, 4, 1, 2, 0, 0]);
    }

    #[test]
    fn tee_sink_forwards_to_both() {
        let mut a = CountSink::default();
        let mut b = VecSink::default();
        let mut t = TeeSink {
            a: &mut a,
            b: &mut b,
        };
        t.block(4, 4, 0);
        assert_eq!(a.blocks, 1);
        assert_eq!(b.blocks.len(), 1);
    }
}
