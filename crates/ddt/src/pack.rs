//! Pack/unpack built on the segment engine — the host-side reference
//! implementation (what `MPI_Pack`/`MPI_Unpack`/`MPIT_Type_memcpy` do).

use crate::dataloop::compile;
use crate::error::{DdtError, Result};
use crate::segment::{SegStats, Segment};
use crate::sink::{CopySink, PackSink};
use crate::types::Datatype;

/// Byte span a buffer must cover to hold `count` copies of `dt`:
/// `(origin, len)` where `origin` is the lowest touched byte offset
/// (≤ 0 for types with negative displacements) and `len` the span size.
pub fn buffer_span(dt: &Datatype, count: u32) -> (i64, u64) {
    if count == 0 || dt.size == 0 {
        return (0, 0);
    }
    let first = dt.true_lb;
    let last = dt.true_ub + (count as i64 - 1) * dt.extent();
    let last = last.max(dt.true_ub);
    (first.min(0), (last - first.min(0)) as u64)
}

/// Pack `count` copies of `dt` from `src` into a fresh contiguous buffer.
/// `src[0]` corresponds to buffer offset `origin`.
pub fn pack(dt: &Datatype, count: u32, src: &[u8], origin: i64) -> Result<Vec<u8>> {
    let (lo, span) = buffer_span(dt, count);
    if (src.len() as u64) < span || lo < origin {
        return Err(DdtError::BufferTooSmall {
            needed: span,
            got: src.len() as u64,
        });
    }
    let dl = compile(dt, count);
    let mut out = Vec::with_capacity(dl.size as usize);
    let mut seg = Segment::new(dl);
    let mut sink = PackSink {
        src,
        origin,
        out: &mut out,
    };
    seg.advance(u64::MAX, &mut sink);
    Ok(out)
}

/// Unpack a full packed stream into `dst` (`dst[0]` ↔ buffer offset
/// `origin`). Returns the segment statistics (block counts drive the
/// host-unpack cost model).
pub fn unpack(
    dt: &Datatype,
    count: u32,
    packed: &[u8],
    dst: &mut [u8],
    origin: i64,
) -> Result<SegStats> {
    let dl = compile(dt, count);
    if packed.len() as u64 != dl.size {
        return Err(DdtError::StreamOutOfBounds {
            pos: packed.len() as u64,
            size: dl.size,
        });
    }
    let mut seg = Segment::new(dl);
    let mut sink = CopySink {
        src: packed,
        stream_base: 0,
        dst,
        origin,
    };
    seg.advance(u64::MAX, &mut sink);
    Ok(seg.stats)
}

/// Unpack one contiguous piece of the packed stream (e.g. a packet
/// payload) covering stream offsets `[first, first + piece.len())`,
/// resuming `seg` with catch-up/reset semantics.
pub fn unpack_partial(
    seg: &mut Segment,
    first: u64,
    piece: &[u8],
    dst: &mut [u8],
    origin: i64,
) -> Result<()> {
    let mut sink = CopySink {
        src: piece,
        stream_base: first,
        dst,
        origin,
    };
    seg.process_range(first, first + piece.len() as u64, &mut sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataloop::compile;
    use crate::typemap;
    use crate::types::{elem, ArrayOrder, Datatype, DatatypeExt};

    fn pattern(len: usize) -> Vec<u8> {
        (0..len).map(|i| (i.wrapping_mul(31) % 251) as u8).collect()
    }

    fn roundtrip(dt: &Datatype, count: u32) {
        let (origin, span) = buffer_span(dt, count);
        let src = pattern(span as usize);
        let packed = pack(dt, count, &src, origin).unwrap();
        assert_eq!(packed.len() as u64, dt.size * count as u64);
        // Compare against the slow reference.
        let reference = typemap::reference_pack(dt, count, &src, origin);
        assert_eq!(packed, reference, "pack mismatch for {}", dt.signature());

        let mut dst = vec![0u8; span as usize];
        unpack(dt, count, &packed, &mut dst, origin).unwrap();
        // Every mapped byte must round-trip.
        typemap::for_each_block(dt, count, |off, len| {
            let s = (off - origin) as usize;
            assert_eq!(&dst[s..s + len as usize], &src[s..s + len as usize]);
        });
    }

    #[test]
    fn roundtrip_various_types() {
        roundtrip(&Datatype::contiguous(9, &elem::int()), 3);
        roundtrip(&Datatype::vector(5, 2, 7, &elem::double()), 2);
        roundtrip(&Datatype::vector(5, 2, -7, &elem::double()), 1);
        roundtrip(
            &Datatype::indexed(&[3, 1, 2], &[4, 0, 10], &elem::float()).unwrap(),
            2,
        );
        roundtrip(
            &Datatype::subarray(
                &[5, 6, 7],
                &[2, 3, 4],
                &[1, 2, 1],
                ArrayOrder::Fortran,
                &elem::int(),
            )
            .unwrap(),
            1,
        );
        let sa = Datatype::subarray(&[10, 10], &[3, 10], &[2, 0], ArrayOrder::C, &elem::double())
            .unwrap();
        let st = Datatype::struct_(&[1, 2], &[0, 1024], &[sa, elem::int()]).unwrap();
        roundtrip(&st, 2);
    }

    #[test]
    fn unpack_partial_packetwise_equals_full() {
        let dt = Datatype::vector(40, 3, 8, &elem::int());
        let (origin, span) = buffer_span(&dt, 2);
        let src = pattern(span as usize);
        let packed = pack(&dt, 2, &src, origin).unwrap();

        let mut full = vec![0u8; span as usize];
        unpack(&dt, 2, &packed, &mut full, origin).unwrap();

        for pkt in [1usize, 5, 64, 333] {
            let dl = compile(&dt, 2);
            let mut seg = Segment::new(dl);
            let mut piecewise = vec![0u8; span as usize];
            let mut pos = 0usize;
            while pos < packed.len() {
                let end = (pos + pkt).min(packed.len());
                unpack_partial(
                    &mut seg,
                    pos as u64,
                    &packed[pos..end],
                    &mut piecewise,
                    origin,
                )
                .unwrap();
                pos = end;
            }
            assert_eq!(piecewise, full, "packet size {pkt}");
        }
    }

    #[test]
    fn unpack_partial_out_of_order_with_catchup() {
        let dt = Datatype::vector(32, 1, 3, &elem::double());
        let (origin, span) = buffer_span(&dt, 1);
        let src = pattern(span as usize);
        let packed = pack(&dt, 1, &src, origin).unwrap();
        let mut full = vec![0u8; span as usize];
        unpack(&dt, 1, &packed, &mut full, origin).unwrap();

        // Deliver packets in a shuffled order; each forces catch-up or reset.
        let k = 32usize;
        let order = [3usize, 0, 5, 1, 7, 2, 4, 6];
        let dl = compile(&dt, 1);
        let mut seg = Segment::new(dl);
        let mut out = vec![0u8; span as usize];
        for &i in &order {
            let s = i * k;
            let e = ((i + 1) * k).min(packed.len());
            unpack_partial(&mut seg, s as u64, &packed[s..e], &mut out, origin).unwrap();
        }
        assert_eq!(out, full);
        assert!(seg.stats.resets > 0);
    }

    #[test]
    fn pack_rejects_small_buffer() {
        let dt = Datatype::contiguous(100, &elem::double());
        let e = pack(&dt, 1, &[0u8; 10], 0);
        assert!(matches!(e, Err(DdtError::BufferTooSmall { .. })));
    }

    #[test]
    fn unpack_rejects_wrong_stream_len() {
        let dt = Datatype::contiguous(4, &elem::int());
        let mut dst = [0u8; 16];
        assert!(unpack(&dt, 1, &[0u8; 15], &mut dst, 0).is_err());
    }

    #[test]
    fn buffer_span_with_negative_lb() {
        let dt = Datatype::vector(4, 1, -2, &elem::int());
        let (origin, span) = buffer_span(&dt, 1);
        assert!(origin <= dt.true_lb);
        assert!(span >= dt.true_extent() as u64);
        roundtrip(&dt, 1);
    }
}
