//! # nca-ddt — MPI Derived Datatype engine
//!
//! A from-scratch reimplementation of the datatype machinery the paper
//! builds on (MPI derived datatypes + the MPITypes dataloop/segment
//! library of Ross et al.), written in safe Rust.
//!
//! The crate provides:
//!
//! * [`Datatype`] — immutable, reference-counted datatype trees built with
//!   MPI-style constructors (`vector`, `indexed`, `struct_`, `subarray`, …
//!   via the [`types::DatatypeExt`] trait).
//! * [`dataloop::Dataloop`] — the compiled ("committed") representation:
//!   a compact loop nest with contiguous subtrees collapsed into leaves,
//!   exactly in the spirit of MPITypes dataloops (contig, vector,
//!   blockindexed, indexed, struct + leaf).
//! * [`segment::Segment`] — resumable, partial-processing state over a
//!   dataloop: process an arbitrary `[first, last)` byte range of the
//!   packed stream, emitting `(buffer offset, length)` contiguous blocks
//!   to a [`sink::BlockSink`]. Supports catch-up (advance without
//!   emitting), reset, O(depth · log n) random seek, and deep snapshots
//!   ([`checkpoint::Checkpoint`]) used by the RO-CP/RW-CP offload
//!   strategies.
//! * [`pack`] — reference pack/unpack built on segments.
//! * [`flatten`] — iovec extraction (merged contiguous regions), used by
//!   the Portals 4 iovec baseline.
//! * [`normalize`] — datatype normalization (Träff-style simplification),
//!   used to decide when a specialized NIC handler applies.
//! * [`darray`] — `MPI_Type_create_darray` (block/cyclic distributions).
//! * [`descr`] — dataloop descriptor serialization (the bytes shipped to
//!   NIC memory), round-trip tested.
//! * [`display`] — envelope/contents introspection and tree dumps.
//!
//! All displacements are stored in **bytes** internally; constructors
//! perform the element→byte conversions mandated by the MPI standard.

pub mod checkpoint;
pub mod darray;
pub mod dataloop;
pub mod descr;
pub mod display;
pub mod error;
pub mod flatten;
pub mod kernels;
pub mod normalize;
pub mod pack;
pub mod segment;
pub mod sink;
pub mod typemap;
pub mod types;

pub use checkpoint::Checkpoint;
pub use dataloop::Dataloop;
pub use error::{DdtError, Result};
pub use segment::Segment;
pub use sink::{BlockSink, CopySink, CountSink, NullSink, VecSink};
pub use types::{Datatype, DatatypeKind, Elementary};
